/**
 * @file
 * The wetlab's pool layout through the PoolManager API: many files
 * share one physical DNA pool, each under its own primer pair, and
 * single blocks of any file are retrieved with the two-stage PCR
 * protocol (main primers isolate the partition, the elongated
 * primer isolates the block — paper Sections 6.1 and 7.7.3).
 */

#include <cstdio>
#include <vector>

#include "core/pool_manager.h"
#include "corpus/text.h"

int
main()
{
    using namespace dnastore;

    std::printf("=== Thirteen files, one tube ===\n\n");

    core::PoolManagerParams params;
    core::PoolManager manager(params);
    std::printf("primer library holds %zu compatible pairs\n",
                manager.primerPairsAvailable());

    // Store 13 files of varying sizes (file 13 is the "book").
    std::vector<uint32_t> ids;
    for (int f = 1; f <= 12; ++f) {
        ids.push_back(manager.storeFile(
            corpus::generateBytes((4 + f % 5) * 256, 100 + f)));
    }
    core::Bytes book = corpus::generateBytes(40 * 256, 2023);
    uint32_t book_id = manager.storeFile(book);
    std::printf("stored 13 files: %zu molecules in the tube\n\n",
                manager.pool().speciesCount());

    // Random block access into the book while 12 unrelated
    // partitions share the tube.
    auto paragraph = manager.readBlock(book_id, 17);
    if (!paragraph) {
        std::printf("block read failed\n");
        return 1;
    }
    std::string text(paragraph->begin(), paragraph->begin() + 40);
    std::printf("book block 17: \"%s...\"\n", text.c_str());
    bool exact = std::equal(paragraph->begin(), paragraph->end(),
                            book.begin() + 17 * 256);
    std::printf("byte-exact: %s\n\n", exact ? "yes" : "NO");

    // Update a block of file 3 and read it back.
    core::UpdateOp op;
    op.insert_pos = 0;
    op.insert_bytes = {'*', '*'};
    manager.updateBlock(ids[2], 1, op);
    auto updated = manager.readBlock(ids[2], 1);
    if (!updated) {
        std::printf("updated block read failed\n");
        return 1;
    }
    std::printf("file %u block 1 after update starts with: %c%c\n",
                ids[2], (*updated)[0], (*updated)[1]);

    // Whole-file retrieval still works per partition.
    auto file5 = manager.readFile(ids[4]);
    std::printf("file %u whole-file read: %s\n", ids[4],
                file5 ? "ok" : "FAILED");

    std::printf("\nledger: %zu molecules synthesized, %zu reads, "
                "%zu round trips\n",
                manager.costs().moleculesSynthesized(),
                manager.costs().readsSequenced(),
                manager.costs().roundTrips());
    return 0;
}
