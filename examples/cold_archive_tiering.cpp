/**
 * @file
 * Cold-archive tiering: compare the baseline object store [23] with
 * the block device on the paper's motivating workload — retrieving a
 * small, hot subset of a large cold archive.
 *
 * A 64-block archive is stored both ways; a Zipfian-ish access
 * pattern repeatedly reads a handful of hot blocks. The example
 * prints the accumulated sequencing cost of each system and the
 * break-even, demonstrating why block semantics matter for DNA as a
 * usable storage tier (Section 1's 1TB/1GB argument in miniature).
 */

#include <cstdio>

#include "baseline/object_store.h"
#include "core/block_device.h"
#include "corpus/text.h"

int
main()
{
    using namespace dnastore;

    std::printf("=== Cold archive: object store vs block device "
                "===\n\n");

    core::Bytes archive = corpus::generateBytes(64 * 256, 7);

    // --- Our block device. -------------------------------------------
    core::BlockDeviceParams device_params;
    device_params.reads_per_block_access = 800;
    core::BlockDevice device(
        device_params, dna::Sequence("ACGTACGTACGTACGTACGT"),
        dna::Sequence("TGCATGCATGCATGCATGCA"));
    device.writeFile(archive);

    // --- Baseline object store (prior work). -------------------------
    baseline::ObjectStoreParams store_params;
    baseline::ObjectStore store(
        store_params, dna::Sequence("GGATCCGGATCCGGATCCGG"),
        dna::Sequence("CAGTCAGTCAGTCAGTCAGT"));
    store.writeObject(archive);

    // Hot set: blocks 3, 17, 42 read five times each.
    const uint64_t hot[] = {3, 17, 42};
    size_t device_failures = 0;
    for (int round = 0; round < 5; ++round) {
        for (uint64_t block : hot) {
            if (!device.readBlock(block))
                ++device_failures;
            // The baseline must fetch the WHOLE object per access.
            store.readObject();
        }
    }

    std::printf("15 hot-block accesses (3 blocks x 5 rounds):\n\n");
    std::printf("%-22s %16s %16s\n", "", "block device",
                "object store");
    std::printf("%-22s %16zu %16zu\n", "reads sequenced",
                device.costs().readsSequenced(),
                store.costs().readsSequenced());
    std::printf("%-22s %16.4f %16.4f\n", "sequencing cost ($)",
                device.costs().sequencingCost(),
                store.costs().sequencingCost());
    std::printf("%-22s %16zu %16zu\n", "round trips",
                device.costs().roundTrips(),
                store.costs().roundTrips());
    double reduction =
        static_cast<double>(store.costs().readsSequenced()) /
        static_cast<double>(device.costs().readsSequenced());
    std::printf("\nsequencing reduction from block semantics: "
                "%.1fx on this 16KB archive\n",
                reduction);
    std::printf("(the factor scales with archive size: the paper's "
                "587-block partition gives ~141x, a 1TB partition "
                "~10^6x)\n");
    if (device_failures)
        std::printf("WARNING: %zu block reads failed to decode\n",
                    device_failures);
    return 0;
}
