/**
 * @file
 * The admission-controlled storage frontend, end to end.
 *
 * Stores three files in one multi-partition pool, then hammers it
 * with concurrent reads from two frontends sharing one bounded
 * DecodeService: a batched readFiles() fan-out plus per-file reads
 * from worker threads. The two frontends are bound to two competing
 * tenants with 3:1 WDRR weights, so the run also demos per-tenant
 * fair scheduling: every decode is billed to its frontend's tenant,
 * and the printed registry snapshot includes the per-tenant
 * admitted/dispatched counters and queue-latency histograms next to
 * the service-wide ones. Every byte is checked against the stored
 * sources, and the run finishes by printing the shared
 * MetricsRegistry snapshot in the text export format.
 */

#include <cstdio>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/storage_frontend.h"
#include "corpus/text.h"

using namespace dnastore;

int
main()
{
    constexpr size_t kFiles = 3;
    constexpr size_t kRounds = 2;

    std::printf("=== storage frontend + telemetry ===\n\n");

    // One pool, three files. Wetlab knobs stay at their defaults;
    // primer pairs come from the manager's generated library.
    core::PoolManagerParams pool_params;
    pool_params.reads_per_block_access = 1000;
    core::PoolManager pool(pool_params);

    std::vector<core::Bytes> sources;
    std::vector<uint32_t> file_ids;
    for (size_t i = 0; i < kFiles; ++i) {
        sources.push_back(corpus::generateBytes(
            (3 + i) * pool_params.config.block_data_bytes, 77 + i));
        file_ids.push_back(pool.storeFile(sources.back()));
        std::printf("stored file %u: %zu bytes\n", file_ids.back(),
                    sources.back().size());
    }

    // One shared, bounded service; one registry sees everything.
    // Two tenants compete for the decode pool at 3:1 weights.
    telemetry::MetricsRegistry registry;
    core::DecodeServiceParams service_params;
    service_params.max_queue_depth = 16;
    service_params.overflow = core::OverflowPolicy::Block;
    service_params.metrics = &registry;
    service_params.tenants[1].weight = 3;
    service_params.tenants[2].weight = 1;
    core::DecodeService service(service_params);

    core::StorageFrontendParams frontend_params;
    frontend_params.metrics = &registry;
    frontend_params.tenant = 1;  // the heavy tenant
    core::StorageFrontend frontend(service, frontend_params);

    // Round 1: batched fan-out — all files decode as one service
    // batch, sharded across the pool.
    bool all_exact = true;
    std::vector<std::optional<core::Bytes>> files =
        frontend.readFiles(pool, file_ids);
    for (size_t i = 0; i < kFiles; ++i) {
        bool exact = files[i].has_value() && *files[i] == sources[i];
        std::printf("batched read file %u: %s\n", file_ids[i],
                    exact ? "exact" : "MISMATCH");
        all_exact = all_exact && exact;
    }

    // Round 2: concurrent frontends. Each worker owns its own pool
    // twin (PoolManager is not thread-safe) and a second frontend —
    // bound to the light tenant — on the same service, so the two
    // tenants' submissions contend on one weighted-fair queue.
    core::StorageFrontendParams light_params = frontend_params;
    light_params.tenant = 2;  // the light tenant
    core::StorageFrontend frontend2(service, light_params);
    std::vector<std::unique_ptr<core::PoolManager>> twins;
    for (size_t w = 0; w < 2; ++w) {
        twins.push_back(
            std::make_unique<core::PoolManager>(pool_params));
        for (size_t i = 0; i < kFiles; ++i)
            twins[w]->storeFile(sources[i]);
    }
    std::vector<std::thread> workers;
    std::vector<size_t> exact_counts(twins.size(), 0);
    for (size_t w = 0; w < twins.size(); ++w) {
        workers.emplace_back([&, w] {
            core::StorageFrontend &mine =
                w == 0 ? frontend : frontend2;
            for (size_t round = 0; round < kRounds; ++round) {
                for (size_t i = 0; i < kFiles; ++i) {
                    std::optional<core::Bytes> content =
                        mine.readFile(*twins[w], file_ids[i]);
                    if (content && *content == sources[i])
                        ++exact_counts[w];
                }
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    for (size_t w = 0; w < twins.size(); ++w) {
        std::printf("worker %zu: %zu/%zu concurrent reads exact\n", w,
                    exact_counts[w], kRounds * kFiles);
        all_exact = all_exact && exact_counts[w] == kRounds * kFiles;
    }

    std::printf("\n--- metrics snapshot ---\n%s",
                registry.exportText().c_str());
    std::printf("\n%s\n", all_exact ? "all reads exact"
                                    : "READS INCOMPLETE");
    return all_exact ? 0 : 1;
}
