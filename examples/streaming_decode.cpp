/**
 * @file
 * Streaming incremental decode with early termination.
 *
 * A sequencing run does not land as one read set — reads arrive in
 * chunks, and most of the run is redundant coverage. This example
 * opens a DecodeService stream that expects every (block, 0) unit of
 * an archive, feeds the run chunk by chunk, and watches per-unit
 * completion futures resolve the moment each unit's RS decode clears
 * the early-accept reliability margin. Once the last expected unit is
 * recovered the session reports complete() and stops consuming —
 * every further chunk is counted but skipped — so the sequencer can
 * be stopped early. The payloads delivered early are byte-identical
 * to what a one-shot Decoder::decodeAll over the full run produces.
 */

#include <cstdio>
#include <future>
#include <vector>

#include "core/decode_service.h"
#include "corpus/text.h"
#include "sim/synthesis.h"

using namespace dnastore;

int
main()
{
    constexpr size_t kBlocks = 8;
    constexpr size_t kCoverage = 25;
    constexpr size_t kChunk = 400;

    std::printf("=== streaming decode with early termination ===\n\n");

    // Encode one archive and sequence it with realistic noise.
    core::PartitionConfig config;
    core::Partition partition(
        config, dna::Sequence("ACTGAGGTCTGCCTGAAGTC"),
        dna::Sequence("TGAACGCGGTATTGCAGACC"), 13);
    core::Bytes file =
        corpus::generateBytes(kBlocks * config.block_data_bytes, 77);
    sim::SynthesisParams synthesis;
    sim::Pool pool =
        sim::synthesize(partition.encodeFile(file), synthesis);
    sim::SequencerParams sequencer;
    sequencer.sub_rate = 0.01;
    sequencer.ins_rate = 0.002;
    sequencer.del_rate = 0.002;
    sequencer.seed = 3;
    std::vector<sim::Read> reads = sim::sequencePool(
        pool, kBlocks * config.rs_n * kCoverage, sequencer);
    std::printf("archive: %zu blocks, sequencing run of %zu reads\n\n",
                kBlocks, reads.size());

    // One-shot decode of the full run — the identity baseline.
    core::Decoder decoder(partition, core::DecoderParams{});
    std::map<uint64_t, core::BlockVersions> baseline =
        decoder.decodeAll(reads);

    // Open a stream expecting every (block, 0) unit and claim the
    // per-unit completion futures up front.
    core::DecodeService service;
    core::StreamParams params;
    params.decoder = &decoder;
    for (uint64_t block = 0; block < kBlocks; ++block)
        params.expected_units.push_back({block, 0u});
    core::DecodeStream stream = service.openStream(params);
    std::vector<std::future<core::StreamUnitResult>> unit_futures;
    for (uint64_t block = 0; block < kBlocks; ++block)
        unit_futures.push_back(stream.unitFuture(block, 0));

    // Feed the run chunk by chunk until the session completes. The
    // chunk futures carry the session's running stats.
    size_t chunks_fed = 0;
    size_t reads_fed = 0;
    for (size_t i = 0; i < reads.size() && !stream.complete();
         i += kChunk) {
        std::vector<sim::Read> chunk(
            reads.begin() + static_cast<ptrdiff_t>(i),
            reads.begin() + static_cast<ptrdiff_t>(
                                std::min(reads.size(), i + kChunk)));
        reads_fed += chunk.size();
        stream.feed(std::move(chunk)).get();
        ++chunks_fed;
    }
    std::printf("session complete after %zu chunks (%zu of %zu "
                "reads)\n\n",
                chunks_fed, reads_fed, reads.size());

    // Every unit future resolved Decoded, byte-identical to the
    // one-shot baseline.
    bool all_exact = true;
    for (auto &future : unit_futures) {
        core::StreamUnitResult unit = future.get();
        bool decoded = unit.status == core::UnitStatus::Decoded;
        bool exact =
            decoded &&
            baseline.count(unit.block) &&
            baseline.at(unit.block).versions.count(unit.version) &&
            baseline.at(unit.block).versions.at(unit.version) ==
                unit.payload;
        std::printf("unit (%llu, %u): %s%s\n",
                    static_cast<unsigned long long>(unit.block),
                    unit.version,
                    decoded ? "decoded early" : "INCOMPLETE",
                    exact ? ", identical to one-shot" : "");
        all_exact = all_exact && exact;
    }

    core::DecodeOutcome final = stream.finish().get();
    std::printf("\nfinish: %s, consumed %zu reads, skipped %zu\n",
                final.status == core::DecodeStatus::Ok ? "Ok"
                                                       : "Partial",
                final.stats.reads_consumed,
                final.stats.reads_skipped);
    std::printf("%s\n", all_exact
                            ? "all units recovered early and exactly"
                            : "RECOVERY INCOMPLETE");
    return all_exact ? 0 : 1;
}
