/**
 * @file
 * Quickstart: store a file in a DNA block device, read one block
 * back precisely, update it, and read it again.
 *
 * This walks the whole public API surface in ~60 lines:
 * BlockDevice wraps a Partition (encoding + PCR-navigable index), a
 * simulated wetlab (synthesis, PCR, sequencing), and the decoding
 * pipeline (clustering, trace reconstruction, RS correction, update
 * application).
 */

#include <cstdio>
#include <string>

#include "core/block_device.h"
#include "corpus/text.h"

int
main()
{
    using namespace dnastore;

    // 1. Configure a device. Defaults reproduce the paper's wetlab
    //    geometry: 150-base strands, RS(15,11), 1024 blocks of 256B.
    core::BlockDeviceParams params;
    core::BlockDevice device(
        params, dna::Sequence("ACGTACGTACGTACGTACGT"),
        dna::Sequence("TGCATGCATGCATGCATGCA"));

    // 2. Write a 8 KiB file (32 blocks). This encodes every block
    //    into 15 DNA molecules and "synthesizes" them into a pool.
    core::Bytes file = corpus::generateBytes(32 * 256, 42);
    device.writeFile(file);
    std::printf("stored %zu bytes as %llu blocks (%zu molecules)\n",
                file.size(),
                static_cast<unsigned long long>(device.blockCount()),
                device.pool().speciesCount());

    // 3. Random block access: one PCR with an elongated primer, a
    //    few hundred sequencing reads, full decode.
    auto block9 = device.readBlock(9);
    if (!block9) {
        std::printf("block 9 failed to decode!\n");
        return 1;
    }
    std::string text(block9->begin(), block9->begin() + 60);
    std::printf("block 9 starts with: \"%s...\"\n", text.c_str());
    std::printf("decode used %zu clusters from %zu reads\n",
                device.lastStats().clusters_used,
                device.lastStats().reads_in);

    // 4. Update the block: a patch of 15 molecules is synthesized
    //    and mixed in; nothing is chemically edited.
    core::UpdateOp op;
    op.delete_pos = 0;
    op.delete_len = 0;
    op.insert_pos = 0;
    std::string banner = "[v2] ";
    op.insert_bytes.assign(banner.begin(), banner.end());
    device.updateBlock(9, op);

    // 5. Read it again: the same elongated primer retrieves data and
    //    update together; the patch is applied in software.
    auto updated = device.readBlock(9);
    if (!updated) {
        std::printf("updated block 9 failed to decode!\n");
        return 1;
    }
    std::string updated_text(updated->begin(), updated->begin() + 60);
    std::printf("block 9 after update: \"%s...\"\n",
                updated_text.c_str());

    std::printf("total: %zu molecules synthesized, %zu reads "
                "sequenced, %zu round trips\n",
                device.costs().moleculesSynthesized(),
                device.costs().readsSequenced(),
                device.costs().roundTrips());
    return 0;
}
