/**
 * @file
 * Request-scoped tracing, end to end.
 *
 * Stores one file in a pool, then reads it through an
 * admission-controlled StorageFrontend whose DecodeService carries a
 * TraceCollector: every read roots a trace whose span tree covers
 * admission (token-bucket outcome, queue depth at entry), the WDRR
 * queue wait, and each decode stage (primer filter, clustering,
 * consensus, per-unit RS decode). The run prints one trace in the
 * deterministic text form, follows a histogram exemplar from the
 * queue-latency metric back to its trace, and writes all kept traces
 * as Chrome trace-event JSON — load the file in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing to see the timeline.
 */

#include <cstdio>
#include <optional>

#include "core/storage_frontend.h"
#include "corpus/text.h"
#include "telemetry/trace.h"

using namespace dnastore;

int
main()
{
    std::printf("=== request-scoped tracing ===\n\n");

    core::PoolManagerParams pool_params;
    pool_params.reads_per_block_access = 1000;
    core::PoolManager pool(pool_params);
    core::Bytes source = corpus::generateBytes(
        4 * pool_params.config.block_data_bytes, 99);
    uint32_t file_id = pool.storeFile(source);
    std::printf("stored file %u: %zu bytes\n\n", file_id,
                source.size());

    // Sampling knobs: keep every trace (sample_every = 1), plus the
    // tail triggers — errors/Throttled/Overloaded and anything
    // slower than 50 ms — which hold even when head sampling is
    // dialed down in production (e.g. sample_every = 1000).
    telemetry::TraceCollectorConfig trace_config;
    trace_config.sample_every = 1;
    trace_config.slow_threshold_us = 50'000;
    telemetry::TraceCollector collector(trace_config);

    telemetry::MetricsRegistry registry;
    core::DecodeServiceParams service_params;
    service_params.metrics = &registry;
    service_params.tracer = &collector;
    core::DecodeService service(service_params);

    core::StorageFrontendParams frontend_params;
    frontend_params.metrics = &registry;
    frontend_params.tracer = &collector;
    core::StorageFrontend frontend(service, frontend_params);

    std::optional<core::Bytes> content =
        frontend.readFile(pool, file_id);
    const bool exact = content && *content == source;
    std::printf("traced read: %s\n\n", exact ? "exact" : "MISMATCH");

    // Every kept trace, as the deterministic indented text export —
    // the same form the tests golden-pin.
    std::printf("--- trace text export ---\n%s\n",
                collector.exportText().c_str());

    // Histogram exemplars link a fat latency bucket straight to a
    // trace: each bucket remembers the last sampled TraceId that
    // landed in it.
    telemetry::MetricsSnapshot snap = registry.snapshot();
    const telemetry::HistogramSnapshot &queue_latency =
        snap.histograms.at("decode_service.queue_latency_us");
    uint64_t exemplar = 0;
    for (uint64_t id : queue_latency.exemplars)
        if (id != 0)
            exemplar = id;
    std::printf("queue-latency exemplar -> trace %llu: %s\n",
                static_cast<unsigned long long>(exemplar),
                collector.findTrace(exemplar) ? "resolved"
                                              : "NOT FOUND");

    // Chrome trace-event JSON: one complete ("ph": "X") event per
    // span, pid = tenant, tid = trace id.
    const std::string json = collector.exportChromeJson();
    const char *path = "request_tracing.trace.json";
    if (std::FILE *out = std::fopen(path, "wb")) {
        std::fwrite(json.data(), 1, json.size(), out);
        std::fclose(out);
        std::printf("wrote %s (%zu bytes) — open it in Perfetto\n",
                    path, json.size());
    }

    const bool resolved = collector.findTrace(exemplar).has_value();
    std::printf("\n%s\n", exact && resolved ? "trace demo complete"
                                            : "TRACE DEMO FAILED");
    return exact && resolved ? 0 : 1;
}
