/**
 * @file
 * Workload-simulator demo: replay a seeded two-class tenant mix
 * against a DecodeService under the virtual clock and print the
 * per-tenant SLO report. Run it twice to see byte-reproducibility —
 * the report fingerprint is identical on every run, on every machine
 * speed, because both token buckets and latency stamps read the
 * simulator's virtual clock.
 */

#include <cstdio>

#include "core/decoder.h"
#include "core/partition.h"
#include "dna/sequence.h"
#include "workload/generator.h"
#include "workload/simulator.h"

using namespace dnastore;

int
main()
{
    // Workload: 2 premium tenants (4x weight, 200 req/s Poisson) and
    // 6 standard tenants (token-bucket limited, bursty on-off
    // arrivals) over a zipfian object space, for half a second.
    workload::WorkloadParams wp;
    wp.seed = 42;
    wp.duration_us = 500'000;
    wp.objects = 128;

    workload::TenantClass premium;
    premium.name = "premium";
    premium.count = 2;
    premium.arrivals.rate_per_sec = 200.0;
    premium.admission.weight = 4;
    wp.classes.push_back(premium);

    workload::TenantClass standard;
    standard.name = "standard";
    standard.count = 6;
    standard.arrivals.kind = workload::ArrivalProcess::Kind::OnOff;
    standard.arrivals.rate_per_sec = 300.0;
    standard.arrivals.mean_on_us = 40'000;
    standard.arrivals.mean_off_us = 80'000;
    standard.admission.rate = 100.0;
    standard.admission.burst = 15.0;
    wp.classes.push_back(standard);

    // The service needs a live decoder even though virtual-mode
    // requests carry empty read sets.
    core::PartitionConfig config;
    core::Partition partition(
        config, dna::Sequence("ACTGAGGTCTGCCTGAAGTC"),
        dna::Sequence("TGAACGCGGTATTGCAGACC"), 13);
    core::DecoderParams decoder_params;
    decoder_params.threads = 1;
    core::Decoder decoder(partition, decoder_params);

    workload::SimulatorParams sp;
    sp.clock = workload::SimulatorParams::Clock::Virtual;
    sp.decoder = &decoder;
    sp.virtual_service_time_us = 800;  // decode cost per request

    workload::SimResult result = workload::runSimulation(wp, sp);
    std::printf("replayed %zu ops across %zu tenants "
                "(virtual end time %llu us)\n\n",
                result.ops_submitted, result.report.tenants.size(),
                static_cast<unsigned long long>(result.end_clock_us));
    std::printf("%s\n", result.report.formatTable().c_str());
    std::printf("report fingerprint: %llx (stable across runs)\n",
                static_cast<unsigned long long>(
                    result.report_fingerprint));

    workload::SimResult again = workload::runSimulation(wp, sp);
    if (again.report_fingerprint != result.report_fingerprint) {
        std::fprintf(stderr, "determinism break: fingerprints "
                             "differ between identical runs\n");
        return 1;
    }
    std::printf("second run matched: byte-reproducible\n");
    return 0;
}
