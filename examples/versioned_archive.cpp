/**
 * @file
 * A write-heavy versioned archive: many successive updates to the
 * same blocks, exercising the inline version slots AND the overflow
 * log with pointer chains (Figure 8's "common update log").
 *
 * Models the use case of Section 5: a mutable dataset (here a
 * key-value-ish configuration store) living in DNA, where every save
 * is a cheap incremental patch instead of a re-synthesis, and a
 * block's full history is replayed at decode time.
 */

#include <cstdio>
#include <string>

#include "core/block_device.h"

int
main()
{
    using namespace dnastore;

    std::printf("=== Versioned archive with overflow log ===\n\n");

    core::BlockDeviceParams params;
    core::BlockDevice device(
        params, dna::Sequence("ACGTACGTACGTACGTACGT"),
        dna::Sequence("TGCATGCATGCATGCATGCA"));

    // Eight records, one block each.
    core::Bytes archive(8 * 256, ' ');
    for (int record = 0; record < 8; ++record) {
        std::string value =
            "record-" + std::to_string(record) + " rev0";
        std::copy(value.begin(), value.end(),
                  archive.begin() + record * 256);
    }
    device.writeFile(archive);
    std::printf("archive: %llu records\n\n",
                static_cast<unsigned long long>(device.blockCount()));

    // Seven revisions of record 2: revisions 1-2 fit in the inline
    // version slots; 3-7 spill into the overflow log.
    for (int revision = 1; revision <= 7; ++revision) {
        std::string value =
            "record-2 rev" + std::to_string(revision);
        core::Bytes fresh(256, ' ');
        std::copy(value.begin(), value.end(), fresh.begin());
        device.replaceBlock(2, fresh);
        std::printf("saved revision %d (%s)\n", revision,
                    revision <= 2 ? "inline slot" : "overflow log");
    }
    std::printf("\nupdates logged for record 2: %u\n",
                device.updateCount(2));
    std::printf("molecules synthesized in total: %zu (vs %zu for one "
                "naive re-synthesis per revision)\n\n",
                device.costs().moleculesSynthesized(),
                static_cast<size_t>(8 * 15 + 7 * 8 * 15));

    // Reading replays the chain: extra round trips only for the
    // overflow hops.
    size_t trips_before = device.costs().roundTrips();
    auto record2 = device.readBlock(2);
    if (!record2) {
        std::printf("record 2 failed to decode\n");
        return 1;
    }
    std::string text(record2->begin(), record2->begin() + 14);
    std::printf("record 2 decodes to: \"%s\" (expected rev7)\n",
                text.c_str());
    std::printf("round trips for the read: %zu (1 + overflow hops)\n",
                device.costs().roundTrips() - trips_before);

    // An un-updated record still costs a single round trip.
    trips_before = device.costs().roundTrips();
    auto record5 = device.readBlock(5);
    if (!record5) {
        std::printf("record 5 failed to decode\n");
        return 1;
    }
    std::printf("record 5 decodes in %zu round trip(s)\n",
                device.costs().roundTrips() - trips_before);
    return 0;
}
