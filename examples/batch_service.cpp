/**
 * @file
 * Batch decoding through the DecodeService.
 *
 * Serves the multi-partition read path the way a storage frontend
 * would: three partitions are encoded (in parallel) and synthesized,
 * their sequencing runs land as read sets, and one DecodeService
 * batch decodes them all — per-partition jobs sharded across a shared
 * thread pool, futures resolved in submission order. The decoded
 * bytes are compared against the source files, and the service is
 * deterministic: the batch output is byte-identical to what a
 * sequential Decoder::decodeAll of each read set would produce.
 */

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "core/decode_service.h"
#include "corpus/text.h"
#include "sim/synthesis.h"

using namespace dnastore;

namespace {

struct PrimerPair
{
    const char *fwd;
    const char *rev;
};

constexpr PrimerPair kPrimerPairs[] = {
    {"ACTGAGGTCTGCCTGAAGTC", "TGAACGCGGTATTGCAGACC"},
    {"ACGTACGTACGTACGTACGT", "TGCATGCATGCATGCATGCA"},
    {"GATTACAGTCCAGGCATGCA", "CCATGGTTAACGTCAGTGGA"},
};

} // namespace

int
main()
{
    constexpr size_t kPartitions = 3;
    constexpr size_t kBlocks = 6;
    constexpr size_t kCoverage = 25;

    std::printf("=== DecodeService batch decode ===\n\n");

    // Encode one file per partition (per-block encoding fans out over
    // EncodeParams::threads workers) and sequence each pool.
    std::vector<std::unique_ptr<core::Partition>> partitions;
    std::vector<std::unique_ptr<core::Decoder>> decoders;
    std::vector<core::Bytes> files;
    std::vector<std::vector<sim::Read>> read_sets;
    for (size_t p = 0; p < kPartitions; ++p) {
        core::PartitionConfig config;
        config.index_seed += 17 * p;
        config.scramble_seed += 29 * p;
        partitions.push_back(std::make_unique<core::Partition>(
            config, dna::Sequence(kPrimerPairs[p].fwd),
            dna::Sequence(kPrimerPairs[p].rev),
            static_cast<uint32_t>(13 + p)));
        files.push_back(corpus::generateBytes(
            kBlocks * config.block_data_bytes, 77 + p));

        core::EncodeParams encode;  // threads = 0: all cores
        sim::SynthesisParams synthesis;
        synthesis.seed = 1 + p;
        sim::Pool pool = sim::synthesize(
            partitions[p]->encodeFile(files[p], encode), synthesis);

        sim::SequencerParams sequencer;
        sequencer.sub_rate = 0.01;
        sequencer.ins_rate = 0.002;
        sequencer.del_rate = 0.002;
        sequencer.seed = 3 + 131 * p;
        read_sets.push_back(sim::sequencePool(
            pool, kBlocks * config.rs_n * kCoverage, sequencer));

        decoders.push_back(std::make_unique<core::Decoder>(
            *partitions[p], core::DecoderParams{}));
        std::printf("partition %zu: %zu blocks encoded, %zu reads\n",
                    p, kBlocks, read_sets[p].size());
    }

    // One batch, one shared pool, futures in submission order.
    core::DecodeService service;  // threads = 0: all cores
    std::vector<core::DecodeRequest> batch(kPartitions);
    for (size_t p = 0; p < kPartitions; ++p) {
        batch[p].decoder = decoders[p].get();
        batch[p].reads = read_sets[p];
    }
    std::vector<std::future<core::DecodeOutcome>> futures =
        service.submitBatch(std::move(batch));

    bool all_exact = true;
    for (size_t p = 0; p < kPartitions; ++p) {
        core::DecodeOutcome outcome = futures[p].get();
        size_t exact = 0;
        for (uint64_t block = 0; block < kBlocks; ++block) {
            auto it = outcome.units.find(block);
            if (it == outcome.units.end())
                continue;
            auto version = it->second.versions.find(0);
            if (version == it->second.versions.end())
                continue;
            core::Bytes recovered = version->second;
            size_t block_bytes =
                partitions[p]->config().block_data_bytes;
            recovered.resize(block_bytes);
            core::Bytes expected(
                files[p].begin() +
                    static_cast<ptrdiff_t>(block * block_bytes),
                files[p].begin() +
                    static_cast<ptrdiff_t>((block + 1) * block_bytes));
            if (recovered == expected)
                ++exact;
        }
        std::printf("partition %zu: %zu/%zu units decoded, %zu/%zu "
                    "blocks exact\n",
                    p, outcome.stats.units_decoded, kBlocks, exact,
                    kBlocks);
        all_exact = all_exact && exact == kBlocks;
    }

    std::printf("\n%s\n", all_exact
                              ? "all partitions recovered exactly"
                              : "RECOVERY INCOMPLETE");
    return all_exact ? 0 : 1;
}
