/**
 * @file
 * The paper's flagship scenario end-to-end: a 150 KB book stored as
 * 587 paragraph-blocks, precise retrieval of single paragraphs,
 * edits to several paragraphs, and retrieval of edited paragraphs in
 * one round trip — while 12 unrelated files sit in the same pool.
 *
 * This is the "digital library" workload the paper's introduction
 * motivates: random access to a small object inside a large archive
 * without sequencing the archive.
 */

#include <cstdio>
#include <string>

#include "core/block_device.h"
#include "corpus/text.h"

namespace {

std::string
snippet(const dnastore::core::Bytes &bytes, size_t length = 48)
{
    std::string text(bytes.begin(),
                     bytes.begin() +
                         static_cast<ptrdiff_t>(
                             std::min(length, bytes.size())));
    for (char &c : text) {
        if (c == '\n')
            c = ' ';
    }
    return text;
}

} // namespace

int
main()
{
    using namespace dnastore;

    std::printf("=== Alice's Adventures in DNA ===\n\n");

    core::BlockDeviceParams params;
    params.reads_per_block_access = 1500;
    params.coverage = 40.0;  // headroom for the range read
    core::BlockDevice device(
        params, dna::Sequence("ACGTACGTACGTACGTACGT"),
        dna::Sequence("TGCATGCATGCATGCATGCA"));

    // The book: 587 paragraphs of 256 bytes (150 KB).
    core::Bytes book = corpus::generateBytes(587 * 256, 2023);
    device.writeFile(book);
    std::printf("stored the book: %llu paragraph-blocks, %zu "
                "molecules\n\n",
                static_cast<unsigned long long>(device.blockCount()),
                device.pool().speciesCount());

    // --- Read one paragraph precisely. ------------------------------
    auto paragraph = device.readBlock(531);
    if (!paragraph) {
        std::printf("paragraph 531 failed to decode\n");
        return 1;
    }
    std::printf("paragraph 531: \"%s...\"\n",
                snippet(*paragraph).c_str());
    std::printf("  (%zu reads sequenced instead of the whole "
                "book)\n\n",
                params.reads_per_block_access);

    // --- Edit three paragraphs (the wetlab updated six). -------------
    for (uint64_t block : {144u, 307u, 531u}) {
        core::UpdateOp op;
        op.delete_pos = 0;
        op.delete_len = 5;
        op.insert_pos = 0;
        std::string patch = "EDIT" + std::to_string(block) + " ";
        op.insert_bytes.assign(patch.begin(), patch.end());
        device.updateBlock(block, op);
        std::printf("logged an edit for paragraph %llu (15 new "
                    "molecules)\n",
                    static_cast<unsigned long long>(block));
    }

    // --- One round trip retrieves paragraph + its edit. --------------
    std::printf("\n");
    for (uint64_t block : {144u, 307u, 531u}) {
        auto updated = device.readBlock(block);
        if (!updated) {
            std::printf("paragraph %llu failed to decode\n",
                        static_cast<unsigned long long>(block));
            return 1;
        }
        std::printf("paragraph %llu after edit: \"%s...\"\n",
                    static_cast<unsigned long long>(block),
                    snippet(*updated).c_str());
    }

    // --- Sequential access: a chapter is a contiguous range. ---------
    auto chapter = device.readRange(100, 115);
    size_t decoded = 0;
    for (const auto &block : chapter)
        decoded += block.has_value() ? 1 : 0;
    std::printf("\nsequential read of paragraphs 100-115: %zu/16 "
                "decoded in one multiplex PCR\n",
                decoded);

    std::printf("\nledger: %zu molecules synthesized, %zu reads, "
                "%zu round trips\n",
                device.costs().moleculesSynthesized(),
                device.costs().readsSequenced(),
                device.costs().roundTrips());
    return 0;
}
