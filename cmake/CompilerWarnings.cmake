# Defines the dnastore_warnings INTERFACE target that every library,
# test, bench, and example links. Warnings are never suppressed
# globally; DNASTORE_WERROR=ON (used in CI) promotes them to errors.

add_library(dnastore_warnings INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(dnastore_warnings INTERFACE -Wall -Wextra)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    # Static thread-safety proof: the capability annotations in
    # common/sync.h (GUARDED_BY / REQUIRES / ACQUIRE / RELEASE) are
    # checked here. gcc ignores the attributes, so only the clang CI
    # legs carry the proof — with DNASTORE_WERROR any violation is a
    # build break.
    target_compile_options(dnastore_warnings INTERFACE -Wthread-safety)
  endif()
  if(DNASTORE_WERROR)
    target_compile_options(dnastore_warnings INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(dnastore_warnings INTERFACE /W4)
  if(DNASTORE_WERROR)
    target_compile_options(dnastore_warnings INTERFACE /WX)
  endif()
endif()
