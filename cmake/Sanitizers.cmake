# Optional sanitizer instrumentation, applied build-wide:
#   -DDNASTORE_SANITIZE=address;undefined   (any combination of
#   address, undefined, thread, leak; address+thread are incompatible)

set(DNASTORE_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to enable (address;undefined;thread;leak)")

if(DNASTORE_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "DNASTORE_SANITIZE requires gcc or clang")
  endif()
  list(JOIN DNASTORE_SANITIZE "," _dnastore_san_list)
  add_compile_options(-fsanitize=${_dnastore_san_list} -fno-omit-frame-pointer)
  add_link_options(-fsanitize=${_dnastore_san_list})
  message(STATUS "Sanitizers enabled: ${_dnastore_san_list}")
endif()
