/**
 * @file
 * Reproduces Section 8: decoding the target block from a tiny read
 * budget after precise PCR.
 *
 * The paper recovers block 531 (original + one update, 30 strands)
 * from just 225 sequenced reads, reconstructing the 31 largest
 * clusters; the baseline needs ~50000 reads at 0.34% useful.
 * This bench sweeps the read budget and reports the smallest budget
 * at which the decoder recovers the updated block exactly.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "alice_experiment.h"
#include "core/decoder.h"
#include "sim/sequencer.h"

namespace {

using namespace dnastore;

/** Parse an optional `--threads N` flag (0 = hardware concurrency). */
size_t
parseThreads(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0)
            return static_cast<size_t>(std::strtoul(argv[i + 1],
                                                    nullptr, 10));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t threads = parseThreads(argc, argv);
    std::printf("=== Section 8: decoding block 531 from few reads "
                "===\n\n");
    std::printf("decode threads: %zu%s\n\n", threads,
                threads == 0 ? " (hardware concurrency)" : "");
    bench::AliceExperiment experiment = bench::makeAliceExperiment();
    const uint64_t target = 531;

    // Expected final contents: original paragraph + the update patch.
    core::Bytes original(
        experiment.alice_bytes.begin() + target * 256,
        experiment.alice_bytes.begin() + (target + 1) * 256);
    core::UpdateRecord record = bench::makeUpdateRecord(target);
    core::Bytes expected = record.op.apply(original, 256);

    sim::Pool partition_pool =
        bench::amplifyAlicePartition(experiment, experiment.mixed_pool);
    sim::Pool accessed =
        bench::blockAccessPcr(experiment, partition_pool, {target});

    core::DecoderParams params;
    params.threads = threads;
    core::Decoder decoder(*experiment.alice, params);

    std::printf("%8s  %8s  %9s  %9s  %8s  %7s\n", "reads", "clusters",
                "recovered", "units ok", "correct", "updated");
    size_t first_success = 0;
    for (size_t budget :
         {100u, 150u, 225u, 400u, 800u, 1600u, 3200u}) {
        sim::SequencerParams sequencer;
        sequencer.seed = 7 + budget;
        std::vector<sim::Read> reads =
            sim::sequencePool(accessed, budget, sequencer);

        core::DecodeStats stats;
        auto units = decoder.decodeAll(reads, &stats);

        bool has_target = units.count(target) &&
                          units[target].versions.count(0);
        bool has_update = units.count(target) &&
                          units[target].versions.count(1);
        bool correct = false;
        if (has_target) {
            core::Bytes base = units[target].versions[0];
            base.resize(256);
            core::Bytes final_bytes =
                decoder.applyUpdateChain(base, units[target]);
            correct = final_bytes == expected;
        }
        std::printf("%8zu  %8zu  %9zu  %9zu  %8s  %7s\n", budget,
                    stats.clusters_total, stats.strands_recovered,
                    stats.units_decoded, correct ? "yes" : "no",
                    has_update ? "yes" : "no");
        if (correct && first_success == 0)
            first_success = budget;
    }

    std::printf("\nSmallest budget that decoded the updated block: "
                "%zu reads (paper: 225)\n",
                first_success);

    // Baseline comparison: reads needed without precise PCR.
    double baseline_useful_fraction =
        30.0 / static_cast<double>(experiment.alice_data_strands +
                                   experiment.twist_update_strands +
                                   experiment.idt_update_strands);
    std::printf("Baseline (whole-partition access): %.2f%% useful "
                "reads -> ~%.0f reads for the same 30-strand "
                "coverage (paper: ~50000)\n",
                100.0 * baseline_useful_fraction,
                static_cast<double>(first_success ? first_success : 225) /
                    baseline_useful_fraction);
    return 0;
}
