/**
 * @file
 * Reproduces the Section 7.7.4 argument: lazy, on-demand elongated
 * primer synthesis amortizes under Zipfian block popularity, and a
 * bounded per-partition cache keeps the primer inventory small.
 *
 * Sweeps the cache capacity and reports hit rate, total elongation
 * bases synthesized, and inventory size for a Zipf(1.0) trace over
 * the wetlab's 1024-block partition, against the two strawmen the
 * paper rejects: synthesize-upfront (all blocks) and no-cache
 * (resynthesize per request).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/primer_cache.h"
#include "index/sparse_index.h"

namespace {

/** Zipf(s=1) sampler over [0, n) via rejection-free inversion. */
uint64_t
zipfDraw(dnastore::Rng &rng, const std::vector<double> &cdf)
{
    double u = rng.nextDouble();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<uint64_t>(it - cdf.begin());
}

} // namespace

int
main()
{
    using namespace dnastore;

    std::printf("=== Section 7.7.4: management of elongated primers "
                "===\n\n");

    const uint64_t kBlocks = 1024;
    const size_t kRequests = 100000;
    index::SparseIndexTree tree(0x1dc0ffee, 5);

    std::vector<double> cdf(kBlocks);
    double mass = 0.0;
    for (uint64_t b = 0; b < kBlocks; ++b) {
        mass += 1.0 / static_cast<double>(b + 1);
        cdf[b] = mass;
    }
    for (double &value : cdf)
        value /= mass;

    const size_t index_bases = tree.physicalLength();
    std::printf("Zipf(1.0) trace, %zu requests over %lu blocks, "
                "%zu-base elongations:\n\n",
                kRequests, static_cast<unsigned long>(kBlocks),
                index_bases);
    std::printf("%-26s %10s %14s %12s\n", "policy", "hit rate",
                "bases synth.", "inventory");
    std::printf("%-26s %10s %14zu %12lu\n", "upfront (all blocks)",
                "-", kBlocks * index_bases,
                static_cast<unsigned long>(kBlocks));
    std::printf("%-26s %10s %14zu %12s\n", "no cache", "0%",
                kRequests * index_bases, "0");

    for (size_t capacity : {8u, 32u, 128u, 512u}) {
        core::PrimerCache cache(capacity);
        Rng rng(7 + capacity);
        for (size_t r = 0; r < kRequests; ++r) {
            uint64_t block = zipfDraw(rng, cdf);
            cache.request(block, tree.leafIndex(block));
        }
        char label[32];
        std::snprintf(label, sizeof(label), "LRU cache, N=%zu",
                      capacity);
        char rate[16];
        std::snprintf(rate, sizeof(rate), "%.1f%%",
                      100.0 * cache.stats().hitRate());
        std::printf("%-26s %10s %14zu %12zu\n", label, rate,
                    cache.stats().bases_synthesized, cache.size());
    }

    std::printf("\nExpected shape: a small cache (N << 1024) already "
                "absorbs most requests under Zipf popularity — "
                "frequently accessed blocks pay the elongation once "
                "and amortize it (Section 7.7.4) — while synthesizing "
                "upfront wastes inventory on blocks that are never "
                "read.\n");
    return 0;
}
