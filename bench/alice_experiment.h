/**
 * @file
 * Shared setup for the wetlab-reproduction benches: the paper's
 * Section 6 experiment.
 *
 * 13 files are stored in one DNA pool. Files 1-12 are unrelated
 * background partitions with their own primer pairs. File 13 is
 * "Alice's Adventures in Wonderland" (150 KB stand-in), split into
 * 587 blocks of 256 bytes, encoded into a 1024-leaf PCR-navigable
 * partition: 8805 data strands.
 *
 * Six blocks receive one update patch each:
 *  - blocks 144, 307, 531 were synthesized by Twist together with
 *    the data (45 extra strands in the same pool);
 *  - blocks 243, 374, 556 were synthesized by IDT as a separate,
 *    50000x more concentrated pool of 45 strands, to be mixed in by
 *    one of the Section 6.4.2 protocols.
 */

#ifndef DNASTORE_BENCH_ALICE_EXPERIMENT_H
#define DNASTORE_BENCH_ALICE_EXPERIMENT_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/partition.h"
#include "core/update.h"
#include "corpus/text.h"
#include "primer/library.h"
#include "sim/mixing.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"

namespace dnastore::bench {

/** Blocks updated in the Twist order (synthesized with the data). */
inline constexpr std::array<uint64_t, 3> kTwistUpdatedBlocks = {
    144, 307, 531};

/** Blocks updated in the separate IDT order. */
inline constexpr std::array<uint64_t, 3> kIdtUpdatedBlocks = {
    243, 374, 556};

/** The assembled experiment. */
struct AliceExperiment
{
    core::PartitionConfig config;
    std::unique_ptr<core::Partition> alice;

    /** Twist pool: 12 background files + Alice data + 3 updates. */
    sim::Pool twist_pool;

    /** IDT pool: 3 updates, 45 strands, 50000x concentrated. */
    sim::Pool idt_pool;

    /** Twist pool plus concentration-matched IDT updates. */
    sim::Pool mixed_pool;

    /** The Alice file bytes. */
    core::Bytes alice_bytes;

    /** Number of Alice blocks (587). */
    uint64_t alice_blocks = 0;

    /** Strand counts for cost accounting. */
    size_t alice_data_strands = 0;   // 8805
    size_t twist_update_strands = 0; // 45
    size_t idt_update_strands = 0;   // 45

    /** Update records indexed by block. */
    std::vector<std::pair<uint64_t, core::UpdateRecord>> updates;

    /** Default PCR parameter set used by the experiments. */
    sim::PcrParams pcr;
};

/** The update patch applied to every updated block. */
inline core::UpdateRecord
makeUpdateRecord(uint64_t block)
{
    core::UpdateRecord record;
    record.kind = core::UpdateRecord::Kind::kInline;
    record.op.delete_pos = static_cast<uint8_t>(block % 64);
    record.op.delete_len = 11;
    record.op.insert_pos = static_cast<uint8_t>(block % 64);
    std::string patch = "[updated p" + std::to_string(block) + "]";
    record.op.insert_bytes.assign(patch.begin(), patch.end());
    return record;
}

/**
 * Build the full experiment.
 *
 * @param background_blocks blocks per background file (the paper
 *        doesn't size files 1-12; they only provide primer
 *        diversity, so benches can keep them small for speed)
 */
inline AliceExperiment
makeAliceExperiment(size_t background_blocks = 24, uint64_t seed = 2023)
{
    AliceExperiment experiment;

    // --- Primers: 13 compatible pairs from the library generator.
    primer::Constraints constraints;
    primer::LibraryGenerator library_gen(20, constraints, seed);
    primer::LibraryResult library = library_gen.generate(300000, 26);
    if (library.primers.size() < 26)
        fatal("primer library too small for 13 files");

    // --- Alice partition (file 13).
    experiment.config = core::PartitionConfig();
    experiment.config.index_seed = seed ^ 0xa11ce;
    experiment.config.scramble_seed = seed ^ 0x5c4a;
    experiment.alice = std::make_unique<core::Partition>(
        experiment.config, library.primers[24], library.primers[25],
        13);

    experiment.alice_bytes = corpus::generateBytes(587 * 256, seed);
    experiment.alice_blocks = 587;

    std::vector<sim::DesignedMolecule> twist_order =
        experiment.alice->encodeFile(experiment.alice_bytes);
    experiment.alice_data_strands = twist_order.size();

    // --- Background files 1-12 share the Twist pool.
    for (uint32_t file = 1; file <= 12; ++file) {
        core::PartitionConfig config = experiment.config;
        config.index_seed = seed + file * 7919;
        config.scramble_seed = seed + file * 104729;
        core::Partition background(
            config, library.primers[2 * (file - 1)],
            library.primers[2 * (file - 1) + 1], file);
        core::Bytes data = corpus::generateBytes(
            background_blocks * 256, seed + file);
        auto order = background.encodeFile(data);
        twist_order.insert(twist_order.end(), order.begin(),
                           order.end());
    }

    // --- Twist updates for blocks 144, 307, 531 (same pool).
    for (uint64_t block : kTwistUpdatedBlocks) {
        core::UpdateRecord record = makeUpdateRecord(block);
        auto patch = experiment.alice->encodePatch(block, record, 1);
        experiment.twist_update_strands += patch.size();
        twist_order.insert(twist_order.end(), patch.begin(),
                           patch.end());
        experiment.updates.emplace_back(block, std::move(record));
    }

    sim::SynthesisParams twist_params;
    twist_params.scale = 1e6;
    twist_params.sigma = 0.15;
    twist_params.seed = seed ^ 0x7157;
    experiment.twist_pool = sim::synthesize(twist_order, twist_params);

    // --- IDT updates for blocks 243, 374, 556: separate pool,
    //     50000x more concentrated (Section 6.4.1).
    std::vector<sim::DesignedMolecule> idt_order;
    for (uint64_t block : kIdtUpdatedBlocks) {
        core::UpdateRecord record = makeUpdateRecord(block);
        auto patch = experiment.alice->encodePatch(block, record, 1);
        experiment.idt_update_strands += patch.size();
        idt_order.insert(idt_order.end(), patch.begin(), patch.end());
        experiment.updates.emplace_back(block, std::move(record));
    }
    sim::SynthesisParams idt_params;
    idt_params.scale = 5e10;
    idt_params.sigma = 0.20;
    idt_params.seed = seed ^ 0x1d7;
    experiment.idt_pool = sim::synthesize(idt_order, idt_params);

    // --- Mix the IDT updates into the Twist pool at matched
    //     concentration (Amplify-then-Measure would also work; the
    //     dedicated mixing bench evaluates both protocols).
    experiment.mixed_pool = experiment.twist_pool;
    double per_twist = experiment.twist_pool.totalMass() /
                       static_cast<double>(
                           experiment.twist_pool.speciesCount());
    double per_idt =
        experiment.idt_pool.totalMass() /
        static_cast<double>(experiment.idt_pool.speciesCount());
    experiment.mixed_pool.mixIn(experiment.idt_pool,
                                per_twist / per_idt);

    // --- PCR defaults shared by the experiments.
    experiment.pcr = sim::PcrParams();
    return experiment;
}

/** Amplify the Alice partition with its main primers (15 cycles). */
inline sim::Pool
amplifyAlicePartition(const AliceExperiment &experiment,
                      const sim::Pool &pool)
{
    sim::PcrParams params = experiment.pcr;
    params.cycles = 15;
    return sim::runPcr(
        pool,
        {sim::PcrPrimer{experiment.alice->forwardPrimer(), 1.0}},
        experiment.alice->reversePrimer(), params);
}

/**
 * Elongated-primer block access (Section 6.5): touchdown PCR with
 * the 31-base primer, with leftover main primers from the previous
 * amplification present at low concentration.
 */
inline sim::Pool
blockAccessPcr(const AliceExperiment &experiment, const sim::Pool &pool,
               const std::vector<uint64_t> &blocks,
               double leftover_concentration = 0.55)
{
    sim::PcrParams params = experiment.pcr;
    params.cycles = 28;
    params.stringency = sim::touchdownSchedule(10, params.cycles, 3.0);

    std::vector<sim::PcrPrimer> primers;
    double share = 1.0 / static_cast<double>(blocks.size());
    for (uint64_t block : blocks) {
        primers.push_back(sim::PcrPrimer{
            experiment.alice->blockPrimer(block), share});
    }
    if (leftover_concentration > 0.0) {
        primers.push_back(sim::PcrPrimer{
            experiment.alice->forwardPrimer(), leftover_concentration});
    }
    return sim::runPcr(pool, primers,
                       experiment.alice->reversePrimer(), params);
}

} // namespace dnastore::bench

#endif // DNASTORE_BENCH_ALICE_EXPERIMENT_H
