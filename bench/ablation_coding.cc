/**
 * @file
 * Ablation of the coding choice (paper Section 2.1.1): constrained
 * rotation coding vs unconstrained 2-bit coding + scrambler.
 *
 * The paper adopts unconstrained coding for its higher density,
 * relying on the scrambler for statistical composition and on the
 * outer RS code for errors. This bench quantifies both sides on the
 * same payloads: information density, worst-case homopolymer runs,
 * and GC spread across strands.
 */

#include <algorithm>
#include <cstdio>

#include "codec/base_codec.h"
#include "codec/constrained.h"
#include "codec/scrambler.h"
#include "corpus/text.h"
#include "dna/analysis.h"

int
main()
{
    using namespace dnastore;

    std::printf("=== Ablation: constrained vs unconstrained payload "
                "coding (Section 2.1.1) ===\n\n");

    const size_t kStrandPayloadBytes = 24;
    const size_t kStrands = 2000;
    codec::Scrambler scrambler(0x5eed);

    double unc_gc_min = 1.0, unc_gc_max = 0.0;
    size_t unc_homo_worst = 0;
    double con_gc_min = 1.0, con_gc_max = 0.0;
    size_t con_homo_worst = 0;

    std::vector<uint8_t> text =
        corpus::generateBytes(kStrands * kStrandPayloadBytes, 99);
    for (size_t s = 0; s < kStrands; ++s) {
        std::vector<uint8_t> payload(
            text.begin() + s * kStrandPayloadBytes,
            text.begin() + (s + 1) * kStrandPayloadBytes);

        // Unconstrained: scramble, then 2 bits/base.
        std::vector<uint8_t> scrambled =
            scrambler.applied(payload, s);
        dna::Sequence unconstrained = codec::bytesToBases(scrambled);
        unc_gc_min = std::min(unc_gc_min, dna::gcContent(unconstrained));
        unc_gc_max = std::max(unc_gc_max, dna::gcContent(unconstrained));
        unc_homo_worst = std::max(
            unc_homo_worst, dna::maxHomopolymerRun(unconstrained));

        // Constrained rotation coding on the raw payload.
        dna::Sequence constrained = codec::RotationCodec::encode(payload);
        con_gc_min = std::min(con_gc_min, dna::gcContent(constrained));
        con_gc_max = std::max(con_gc_max, dna::gcContent(constrained));
        con_homo_worst = std::max(
            con_homo_worst, dna::maxHomopolymerRun(constrained));
    }

    size_t unc_bases = kStrandPayloadBytes * 4;
    size_t con_bases =
        codec::RotationCodec::encodedLength(kStrandPayloadBytes);
    std::printf("%-26s %14s %14s\n", "", "unconstrained",
                "constrained");
    std::printf("%-26s %14zu %14zu\n", "bases per 24B payload",
                unc_bases, con_bases);
    std::printf("%-26s %14.3f %14.3f\n", "bits per base",
                8.0 * 24.0 / static_cast<double>(unc_bases),
                8.0 * 24.0 / static_cast<double>(con_bases));
    std::printf("%-26s %14zu %14zu\n", "worst homopolymer run",
                unc_homo_worst, con_homo_worst);
    std::printf("%-26s %7.2f-%6.2f %7.2f-%6.2f\n", "GC range",
                unc_gc_min, unc_gc_max, con_gc_min, con_gc_max);

    double density_gain =
        static_cast<double>(con_bases) / static_cast<double>(unc_bases);
    std::printf("\nUnconstrained coding stores the same payload in "
                "%.0f%% of the bases (a %.2fx density advantage); "
                "its worst homopolymer run over %zu text strands "
                "stays short thanks to scrambling, which is why the "
                "paper pairs it with outer RS instead of paying the "
                "constrained-coding tax (Section 2.1.1, [39]).\n",
                100.0 / density_gain, density_gain, kStrands);
    return 0;
}
