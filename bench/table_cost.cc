/**
 * @file
 * Reproduces the cost arithmetic of Sections 7.1, 7.3 and 7.5:
 *
 *  - baseline random access wastes ~293x (0.34% useful reads);
 *  - elongated-primer access cuts sequencing cost ~141x;
 *  - versioned updates cut update-synthesis cost ~580x and
 *    updated-block sequencing cost ~146x vs the naive baseline.
 *
 * The percentages are measured from the simulator (same reactions as
 * the Figure 9 bench); the ratios follow the paper's own formulas.
 */

#include <cstdio>

#include "alice_experiment.h"
#include "dna/distance.h"
#include "sim/sequencer.h"

namespace {

using namespace dnastore;

} // namespace

int
main()
{
    std::printf("=== Cost table (Sections 7.1, 7.3, 7.5) ===\n\n");
    bench::AliceExperiment experiment = bench::makeAliceExperiment();
    const uint64_t target = 531;
    const size_t kReads = 50000;
    sim::SequencerParams sequencer;

    // --- Baseline: whole-partition access (Section 7.1). ------------
    sim::Pool partition_pool =
        bench::amplifyAlicePartition(experiment, experiment.mixed_pool);
    std::vector<sim::Read> baseline_reads =
        sim::sequencePool(partition_pool, kReads, sequencer);
    size_t baseline_useful = 0;
    for (const sim::Read &read : baseline_reads) {
        const sim::Species &species =
            partition_pool.species()[read.species_index];
        if (species.info.file_id == 13 && species.info.block == target &&
            !species.info.misprimed) {
            ++baseline_useful;
        }
    }
    double baseline_fraction =
        static_cast<double>(baseline_useful) /
        static_cast<double>(kReads);
    double baseline_waste = (1.0 - baseline_fraction) / baseline_fraction;
    std::printf("Baseline random access for block %lu:\n",
                static_cast<unsigned long>(target));
    std::printf("  useful reads: %.3f%% (paper: 0.34%%)\n",
                100.0 * baseline_fraction);
    std::printf("  unwanted data sequenced per useful byte: %.0fx "
                "(paper: 293x)\n\n",
                baseline_waste);

    // --- Ours: elongated-primer access (Section 7.3). ----------------
    sim::Pool accessed =
        bench::blockAccessPcr(experiment, partition_pool, {target});
    std::vector<sim::Read> precise_reads =
        sim::sequencePool(accessed, kReads, sequencer);
    size_t precise_useful = 0;
    for (const sim::Read &read : precise_reads) {
        const sim::Species &species =
            accessed.species()[read.species_index];
        if (species.info.file_id == 13 && species.info.block == target &&
            !species.info.misprimed) {
            ++precise_useful;
        }
    }
    double precise_fraction = static_cast<double>(precise_useful) /
                              static_cast<double>(kReads);
    double precise_waste = (1.0 - precise_fraction) / precise_fraction;
    double cost_reduction =
        (baseline_waste + 1.0) / (precise_waste + 1.0);
    std::printf("Elongated-primer access for block %lu:\n",
                static_cast<unsigned long>(target));
    std::printf("  useful reads: %.1f%% (paper: 48%%)\n",
                100.0 * precise_fraction);
    std::printf("  unwanted data per useful byte: %.2fx (paper: "
                "1.08x)\n",
                precise_waste);
    std::printf("  sequencing cost reduction: (%.0f+1)/(%.2f+1) = "
                "%.0fx (paper: 141x)\n",
                baseline_waste, precise_waste, cost_reduction);
    std::printf("  sequencing latency reduction (Nanopore, or NGS "
                "runs for large partitions): same %.0fx\n\n",
                cost_reduction);

    // --- Update costs (Section 7.5). ---------------------------------
    size_t partition_strands = experiment.alice_data_strands +
                               experiment.twist_update_strands;
    std::printf("Update costs for block %lu:\n",
                static_cast<unsigned long>(target));
    std::printf("  naive baseline: re-synthesize the whole partition "
                "= %zu molecules + a fresh primer pair\n",
                partition_strands);
    std::printf("  versioned update: synthesize one patch unit = 15 "
                "molecules\n");
    std::printf("  synthesis cost reduction: %zu / 15 = %.0fx "
                "(paper: ~580x)\n",
                partition_strands,
                static_cast<double>(partition_strands) / 15.0);

    // Reading the updated block: the naive system reads the whole new
    // partition; ours reads the precise scope (data + update = 30
    // molecules) at the measured purity.
    double updated_read_reduction =
        precise_fraction *
        (static_cast<double>(partition_strands) / 30.0);
    std::printf("  updated-block sequencing reduction: %.2f * "
                "(%zu/30) = %.0fx (paper: ~146x)\n",
                precise_fraction, partition_strands,
                updated_read_reduction);
    std::printf("\nHidden baseline costs eliminated (Section 7.5.1): "
                "storage density halved by dead copies, one primer "
                "pair burned per update, and user-visible renaming "
                "of the object.\n");
    return 0;
}
