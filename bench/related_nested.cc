/**
 * @file
 * Reproduces the Section 9 quantitative comparison with nested
 * primers [37] and related addressing schemes.
 *
 * Claims checked (all per 150-base strands, 20-base main primers):
 *  - one nesting level costs 20 extra bases vs 5 (dense-equivalent)
 *    for our sparse index: 4x synthesis overhead;
 *  - our 10 added bases create a six-level hierarchy (1024
 *    addresses); matching that depth with nested primers costs 6
 *    front primers = 120 bases, >= 10x density loss at strand
 *    length 150;
 *  - elongation yields more addresses per added base (2^10 = 1024
 *    from 10 bases vs one 20-base nesting level), but each address
 *    maps fixed-size blocks whereas nesting hosts arbitrary sizes.
 */

#include <cstdio>

#include "core/capacity.h"

namespace {

/** Payload bases left on a 150-base strand after addressing. */
double
densityBitsPerBase(size_t address_bases)
{
    const double strand = 150.0;
    const double primers = 40.0;
    const double sync = 1.0;
    double payload =
        strand - primers - sync - static_cast<double>(address_bases);
    if (payload < 0.0)
        payload = 0.0;
    return 2.0 * payload / strand;
}

} // namespace

int
main()
{
    std::printf("=== Section 9: elongation vs nested primers ===\n\n");

    struct Row
    {
        const char *scheme;
        size_t extra_bases;
        double addresses;
        const char *unit;
        bool multiplex;
    };
    const Row rows[] = {
        {"baseline [23] (no blocks)", 0, 1.0, "object", true},
        {"ours: sparse elongation x10", 10, 1024.0, "block", true},
        {"nested PCR [37], 1 level", 20, 1.0, "partition", false},
        {"nested PCR [37], 6 levels", 120, 1.0, "partition", false},
    };

    std::printf("%-28s %12s %12s %12s %10s %10s\n", "scheme",
                "extra bases", "addresses", "bits/base",
                "unit", "multiplex");
    double ours_density = 0.0;
    double nested6_density = 0.0;
    for (const Row &row : rows) {
        double density = densityBitsPerBase(row.extra_bases);
        if (row.extra_bases == 10)
            ours_density = density;
        if (row.extra_bases == 120)
            nested6_density = density;
        std::printf("%-28s %12zu %12.0f %12.3f %10s %10s\n",
                    row.scheme, row.extra_bases, row.addresses,
                    density, row.unit, row.multiplex ? "yes" : "no");
    }

    std::printf("\nClaims:\n");
    std::printf("  per hierarchy level: nested needs 20 bases, ours "
                "needs 2 sparse bases over the dense 1 -> the "
                "paper's '5 extra bases vs 20' for the full index: "
                "%.0fx overhead ratio\n",
                20.0 / 5.0);
    if (nested6_density > 0.0) {
        std::printf("  six-level hierarchy: our density %.3f vs "
                    "nested %.3f bits/base -> %.1fx density "
                    "advantage (paper: 'at least 10x')\n",
                    ours_density, nested6_density,
                    ours_density / nested6_density);
    } else {
        std::printf("  six-level hierarchy: our density %.3f "
                    "bits/base; six nested front primers exhaust the "
                    "150-base strand entirely (paper: 'at least 10x' "
                    "density loss)\n",
                    ours_density);
    }
    std::printf("  addresses per added base: 10 elongation bases -> "
                "1024 blocks; one 20-base nesting level -> 1 extra "
                "scope (library-limited)\n");
    std::printf("  nested/combinatorial primers keep arbitrary unit "
                "sizes and pre-synthesizable primer libraries; use "
                "nesting for partitions, elongation for blocks "
                "(Section 9's conclusion).\n");
    return 0;
}
