/**
 * @file
 * Ablation of Section 7.7.1: one-sided vs two-sided primer
 * elongation.
 *
 * Two-sided extension splits the sparse index between the forward
 * and reverse primers. The paper argues it (a) squares the number of
 * addressable blocks (1024^2 with 10+10 bases) and (b) improves
 * specificity because each primer is shorter and both ends must
 * match. This bench builds both layouts over the same 1024 blocks
 * and measures target purity after precise PCR.
 */

#include <cstdio>
#include <vector>

#include "index/sparse_index.h"
#include "primer/library.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"

namespace {

using namespace dnastore;

struct Layout
{
    const char *name;
    size_t front_depth;  // tree levels encoded after the fwd primer
    size_t back_depth;   // tree levels encoded before the rev site
};

double
evaluate(const Layout &layout, const dna::Sequence &fwd,
         const dna::Sequence &rev)
{
    index::SparseIndexTree front_tree(0xf407, layout.front_depth);
    index::SparseIndexTree back_tree(0xbac8, std::max<size_t>(
                                                 layout.back_depth, 1));
    const uint64_t blocks =
        uint64_t{1} << (2 * (layout.front_depth + layout.back_depth));

    dna::Sequence rev_site = rev.reverseComplement();
    std::vector<sim::DesignedMolecule> order;
    for (uint64_t block = 0; block < blocks; ++block) {
        uint64_t front_part = block >> (2 * layout.back_depth);
        uint64_t back_part =
            block & ((uint64_t{1} << (2 * layout.back_depth)) - 1);
        dna::Sequence payload;
        uint64_t value = block * 2654435761u + 17;
        for (int k = 0; k < 36; ++k) {
            payload.push_back(
                static_cast<dna::Base>((value >> (k % 32)) & 3));
        }
        sim::DesignedMolecule molecule;
        molecule.seq = fwd + dna::Sequence(1, dna::Base::A) +
                       front_tree.leafIndex(front_part) + payload;
        if (layout.back_depth > 0) {
            // Back index sits just before the reverse-primer site,
            // reverse-complemented so the elongated reverse primer
            // reads it 5'->3' on the antisense strand.
            molecule.seq +=
                back_tree.leafIndex(back_part).reverseComplement();
        }
        molecule.seq += rev_site;
        molecule.info.block = block;
        order.push_back(std::move(molecule));
    }

    sim::SynthesisParams synthesis;
    sim::Pool pool = sim::synthesize(order, synthesis);

    double purity_total = 0.0;
    const std::vector<uint64_t> targets = {1, 144, 531, blocks - 2};
    for (uint64_t target : targets) {
        uint64_t front_part = target >> (2 * layout.back_depth);
        uint64_t back_part =
            target & ((uint64_t{1} << (2 * layout.back_depth)) - 1);
        dna::Sequence fwd_primer = fwd + dna::Sequence(1, dna::Base::A) +
                                   front_tree.leafIndex(front_part);
        dna::Sequence rev_primer = rev;
        if (layout.back_depth > 0)
            rev_primer = rev + back_tree.leafIndex(back_part);

        sim::PcrParams params;
        params.cycles = 28;
        params.stringency = sim::touchdownSchedule(10, 28, 3.0);
        sim::Pool out =
            sim::runPcr(pool, {{fwd_primer, 1.0}}, rev_primer, params);
        purity_total += out.massFraction([&](const sim::Species &s) {
            return s.info.block == target;
        });
    }
    return purity_total / static_cast<double>(targets.size());
}

} // namespace

int
main()
{
    std::printf("=== Ablation: one-sided vs two-sided elongation "
                "(Section 7.7.1) ===\n\n");

    primer::Constraints constraints;
    primer::LibraryGenerator library(20, constraints, 99);
    auto primers = library.generate(100000, 2).primers;

    // Same 1024-block address space, three splits of the 5 levels.
    const Layout layouts[] = {
        {"one-sided (10+0)", 5, 0},
        {"two-sided (6+4) ", 3, 2},
        {"two-sided (4+6) ", 2, 3},
    };

    std::printf("%-18s %14s %16s\n", "layout", "target purity",
                "primer lengths");
    for (const Layout &layout : layouts) {
        double purity = evaluate(layout, primers[0], primers[1]);
        std::printf("%-18s %13.1f%%  fwd %zu / rev %zu\n", layout.name,
                    100.0 * purity,
                    21 + 2 * layout.front_depth,
                    20 + 2 * layout.back_depth);
    }

    std::printf("\nExpected shape: splitting the index across both "
                "primers keeps or improves purity with shorter, "
                "better-melting primers, and the same total index "
                "bases address the same 1024 blocks — extending both "
                "sides by 10 would address 1024^2 blocks "
                "(Section 7.7.1).\n");
    return 0;
}
