/**
 * @file
 * google-benchmark microbenchmarks for the hot paths of the
 * pipeline: outer-code encode/decode, sparse-index generation and
 * decoding, clustering, trace reconstruction, and a PCR cycle.
 */

#include <cstdlib>
#include <cstring>

#include <benchmark/benchmark.h>

#include "cluster/clusterer.h"
#include "common/arena.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "dna/distance.h"
#include "consensus/bma.h"
#include "ecc/encoding_unit.h"
#include "ecc/reed_solomon.h"
#include "index/sparse_index.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"

namespace {

using namespace dnastore;

/** Pool size for the *Parallel benchmarks; set by --threads
 *  (0 = hardware concurrency). */
size_t g_threads = 0;

dna::Sequence
randomSeq(Rng &rng, size_t len)
{
    std::vector<dna::Base> bases(len);
    for (dna::Base &base : bases)
        base = static_cast<dna::Base>(rng.nextBelow(4));
    return dna::Sequence(bases);
}

void
BM_RsEncode(benchmark::State &state)
{
    ecc::ReedSolomon rs(15, 11);
    Rng rng(1);
    std::vector<uint8_t> data(11);
    for (uint8_t &symbol : data)
        symbol = static_cast<uint8_t>(rng.nextBelow(16));
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.encode(data));
}
BENCHMARK(BM_RsEncode);

void
BM_RsDecodeTwoErrors(benchmark::State &state)
{
    ecc::ReedSolomon rs(15, 11);
    Rng rng(2);
    std::vector<uint8_t> data(11);
    for (uint8_t &symbol : data)
        symbol = static_cast<uint8_t>(rng.nextBelow(16));
    std::vector<uint8_t> codeword = rs.encode(data);
    codeword[2] ^= 0x5;
    codeword[9] ^= 0xa;
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.decode(codeword));
}
BENCHMARK(BM_RsDecodeTwoErrors);

void
BM_UnitEncode(benchmark::State &state)
{
    ecc::EncodingUnitCodec codec(15, 11, 24);
    Rng rng(3);
    ecc::Bytes unit(264);
    for (uint8_t &byte : unit)
        byte = static_cast<uint8_t>(rng.nextBelow(256));
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.encode(unit));
}
BENCHMARK(BM_UnitEncode);

void
BM_UnitDecodeWithErasures(benchmark::State &state)
{
    ecc::EncodingUnitCodec codec(15, 11, 24);
    Rng rng(4);
    ecc::Bytes unit(264);
    for (uint8_t &byte : unit)
        byte = static_cast<uint8_t>(rng.nextBelow(256));
    std::vector<ecc::Bytes> columns = codec.encode(unit);
    std::vector<std::optional<ecc::Bytes>> received(columns.begin(),
                                                    columns.end());
    received[3].reset();
    received[8].reset();
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.decode(received));
}
BENCHMARK(BM_UnitDecodeWithErasures);

void
BM_BandedLevenshtein(benchmark::State &state)
{
    // Read-vs-read distance at clustering's operating point: 150-base
    // reads a few edits apart, band 8 — one edit_row kernel call per
    // DP row.
    Rng rng(8);
    dna::Sequence a = randomSeq(rng, 150);
    std::string mutated = a.str();
    mutated[31] = mutated[31] == 'A' ? 'C' : 'A';
    mutated.erase(77, 1);
    mutated.insert(120, 1, 'G');
    dna::Sequence b{std::string(mutated)};
    for (auto _ : state)
        benchmark::DoNotOptimize(dna::bandedLevenshtein(a, b, 8));
}
BENCHMARK(BM_BandedLevenshtein);

void
BM_AlignPrimerToPrefix(benchmark::State &state)
{
    Rng rng(9);
    dna::Sequence primer = randomSeq(rng, 20);
    dna::Sequence read = primer + randomSeq(rng, 130);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dna::alignPrimerToPrefix(primer, read, 6));
    }
}
BENCHMARK(BM_AlignPrimerToPrefix);

void
BM_SparseLeafIndex(benchmark::State &state)
{
    index::SparseIndexTree tree(42, 5);
    uint64_t block = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.leafIndex(block));
        block = (block + 1) & 1023;
    }
}
BENCHMARK(BM_SparseLeafIndex);

void
BM_SparseDecodeNearest(benchmark::State &state)
{
    index::SparseIndexTree tree(42, 5);
    dna::Sequence index = tree.leafIndex(531);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.decodeNearest(index));
}
BENCHMARK(BM_SparseDecodeNearest);

void
BM_ClusterReads(benchmark::State &state)
{
    Rng rng(5);
    std::vector<dna::Sequence> reads;
    for (int origin = 0; origin < 50; ++origin) {
        dna::Sequence center = randomSeq(rng, 150);
        for (int copy = 0; copy < 20; ++copy)
            reads.push_back(center);
    }
    cluster::ClustererParams params;
    for (auto _ : state)
        benchmark::DoNotOptimize(cluster::clusterReads(reads, params));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(reads.size()));
}
BENCHMARK(BM_ClusterReads);

void
BM_ClusterReadsParallel(benchmark::State &state)
{
    Rng rng(5);
    std::vector<dna::Sequence> reads;
    for (int origin = 0; origin < 50; ++origin) {
        dna::Sequence center = randomSeq(rng, 150);
        for (int copy = 0; copy < 20; ++copy)
            reads.push_back(center);
    }
    cluster::ClustererParams params;
    ThreadPool pool(g_threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cluster::clusterReads(reads, params, &pool));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(reads.size()));
    state.counters["threads"] =
        static_cast<double>(pool.threadCount());
}
BENCHMARK(BM_ClusterReadsParallel);

void
BM_BmaDoubleSided(benchmark::State &state)
{
    Rng rng(6);
    dna::Sequence original = randomSeq(rng, 150);
    std::vector<dna::Sequence> reads(10, original);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            consensus::bmaDoubleSided(reads, 150));
}
BENCHMARK(BM_BmaDoubleSided);

void
BM_BmaBatchParallel(benchmark::State &state)
{
    Rng rng(6);
    std::vector<dna::Sequence> reads;
    std::vector<std::vector<size_t>> clusters;
    for (size_t c = 0; c < 64; ++c) {
        dna::Sequence original = randomSeq(rng, 150);
        std::vector<size_t> members;
        for (size_t copy = 0; copy < 10; ++copy) {
            members.push_back(reads.size());
            reads.push_back(original);
        }
        clusters.push_back(std::move(members));
    }
    ThreadPool pool(g_threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(consensus::bmaDoubleSidedBatch(
            reads, clusters, 150, {}, &pool));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(clusters.size()));
    state.counters["threads"] =
        static_cast<double>(pool.threadCount());
}
BENCHMARK(BM_BmaBatchParallel);

void
BM_PcrReaction(benchmark::State &state)
{
    Rng rng(7);
    dna::Sequence fwd = randomSeq(rng, 20);
    dna::Sequence rev = randomSeq(rng, 20);
    dna::Sequence rev_site = rev.reverseComplement();
    std::vector<sim::DesignedMolecule> order;
    for (int i = 0; i < 512; ++i) {
        sim::DesignedMolecule molecule;
        molecule.seq = fwd + randomSeq(rng, 110) + rev_site;
        molecule.info.block = static_cast<uint64_t>(i);
        order.push_back(std::move(molecule));
    }
    sim::SynthesisParams synthesis;
    sim::Pool pool = sim::synthesize(order, synthesis);
    sim::PcrParams params;
    params.cycles = 15;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::runPcr(pool, {{fwd, 1.0}}, rev, params));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            512);
}
BENCHMARK(BM_PcrReaction);

} // namespace

int
main(int argc, char **argv)
{
    // Strip a leading `--threads N` (ours) before handing the rest of
    // the command line to google-benchmark.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            g_threads = static_cast<size_t>(
                std::strtoul(argv[i + 1], nullptr, 10));
            ++i;
            continue;
        }
        argv[kept++] = argv[i];
    }
    argc = kept;
    benchmark::Initialize(&argc, argv);
    // Stamp the run with the active kernel ISA so captures from
    // different instruction sets are never silently compared.
    benchmark::AddCustomContext(
        "isa", simd::isaName(simd::activeIsa()));
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
