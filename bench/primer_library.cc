/**
 * @file
 * Reproduces the Section 1 primer-scaling observation: the number of
 * mutually compatible primers grows only ~linearly with primer
 * length, so longer primers cannot rescue the object-store design.
 *
 * The paper reports ~1000-3000 compatible primers at length 20
 * (threshold-dependent) and only ~10K at length 30. This bench runs
 * the same constraint-filtered search at both lengths and several
 * distance thresholds and reports accepted counts under a fixed
 * candidate budget, plus the implied random-access granularity for
 * a 1TB pool.
 */

#include <cstdio>

#include "primer/library.h"

int
main()
{
    using namespace dnastore;

    std::printf("=== Primer-library scaling (Section 1) ===\n\n");
    const uint64_t kCandidates = 25000;

    std::printf("%8s  %10s  %10s  %12s  %12s\n", "length",
                "min dist", "accepted", "rej(comp)", "rej(dist)");
    for (size_t length : {size_t{20}, size_t{30}}) {
        for (size_t min_hamming : {size_t{6}, size_t{8}, size_t{10}}) {
            primer::Constraints constraints;
            constraints.min_pairwise_hamming = min_hamming;
            primer::LibraryGenerator generator(length, constraints,
                                               0xbeef + length);
            primer::LibraryResult result =
                generator.generate(kCandidates);
            std::printf("%8zu  %10zu  %10zu  %12lu  %12lu\n", length,
                        min_hamming, result.primers.size(),
                        static_cast<unsigned long>(
                            result.rejected_composition),
                        static_cast<unsigned long>(
                            result.rejected_distance));
        }
    }

    // The implication the paper draws: with ~1000 primer pairs, a
    // 1TB pool has ~1GB random-access units.
    primer::Constraints constraints;
    primer::LibraryGenerator generator(20, constraints, 0xbeef + 20);
    size_t usable = generator.generate(kCandidates).primers.size() / 2;
    double unit_gb = 1024.0 / static_cast<double>(usable);
    std::printf("\nWith %zu usable primer pairs, the random-access "
                "unit of a 1TB pool is ~%.2f GB (paper: ~1GB for "
                "~1000 pairs); retrieving 1MB wastes ~%.1f%% of "
                "sequencing.\n",
                usable, unit_gb,
                100.0 * (1.0 - 0.001 / unit_gb));
    std::printf("Our architecture instead divides EACH primer pair "
                "into 1024 blocks (1M with two-sided elongation, "
                "Section 7.7.1).\n");
    return 0;
}
