#!/usr/bin/env python3
"""Negative tests for compare_bench.py's workload SLO arm and the
tracing-overhead gate.

Each case clones a baseline (the committed BENCH_workload.json, or a
synthetic decode run for the trace-overhead arm), injects one
regression, and asserts the gate actually fails — a gate that passes
everything is worse than no gate. Run directly or via ctest
(compare_bench_selftest); stdlib only.
"""

import copy
import json
import pathlib
import subprocess
import sys
import tempfile

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO = BENCH_DIR.parent
GATE = BENCH_DIR / "compare_bench.py"
BASELINE = REPO / "BENCH_workload.json"


def run_gate(tmp, baseline, fresh, extra=()):
    base_path = tmp / "base.json"
    fresh_path = tmp / "fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    proc = subprocess.run(
        [sys.executable, str(GATE),
         "--workload-baseline", str(base_path),
         "--workload-fresh", str(fresh_path), *extra],
        capture_output=True, text=True)
    return proc


def run_decode_gate(tmp, baseline, fresh, extra=()):
    base_path = tmp / "decode_base.json"
    fresh_path = tmp / "decode_fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    proc = subprocess.run(
        [sys.executable, str(GATE), str(base_path), str(fresh_path),
         *extra],
        capture_output=True, text=True)
    return proc


# Synthetic decode run for the trace-overhead arm: hardware-agnostic
# threads=1 rows only, with tracing declared off in timed sections.
DECODE_DOC = {
    "bench": "decode_scaling",
    "tracing_enabled_in_timed_sections": False,
    "hardware_concurrency": 4,
    "identical_across_threads": True,
    "batch_identical_across_threads": True,
    "streaming_identical_across_threads": True,
    "results": [{"threads": 1, "seconds": 1.0}],
    "batch_results": [{"threads": 1, "blocks_per_sec": 100.0}],
    "streaming_results": [{"threads": 1, "seconds": 1.0}],
}


def expect(name, proc, want_exit, want_substr=None):
    ok = proc.returncode == want_exit
    if ok and want_substr is not None:
        ok = want_substr in proc.stdout + proc.stderr
    print(f"{'PASS' if ok else 'FAIL'}: {name}")
    if not ok:
        print(f"  exit {proc.returncode} (wanted {want_exit})")
        print("  stdout:", proc.stdout[-2000:])
        print("  stderr:", proc.stderr[-2000:])
    return ok


def main():
    doc = json.loads(BASELINE.read_text())
    results = []
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = pathlib.Path(tmpdir)

        # Identical runs pass.
        results.append(expect(
            "identical runs pass",
            run_gate(tmp, doc, copy.deepcopy(doc)), 0))

        # A determinism break is fatal.
        broken = copy.deepcopy(doc)
        broken["virtual"]["deterministic"] = False
        results.append(expect(
            "determinism break fails",
            run_gate(tmp, doc, broken), 1, "deterministic"))

        # p99 growth beyond tolerance fails; within tolerance passes.
        slow = copy.deepcopy(doc)
        for row in slow["virtual"]["classes"]:
            if isinstance(row.get("p99_us"), int):
                row["p99_us"] *= 2
        results.append(expect(
            "p99 doubling fails",
            run_gate(tmp, doc, slow), 1, "p99"))
        results.append(expect(
            "p99 doubling passes under a loose tolerance",
            run_gate(tmp, doc, slow, ["--p99-tolerance", "1.5"]), 0))

        # Goodput drop beyond the absolute tolerance fails.
        shed = copy.deepcopy(doc)
        shed["virtual"]["classes"][0]["goodput"] -= 0.2
        results.append(expect(
            "class goodput drop fails",
            run_gate(tmp, doc, shed), 1, "goodput"))

        # WDRR dispatch-ratio drift fails (fairness regression).
        unfair = copy.deepcopy(doc)
        unfair["saturation"]["dispatch_ratio"] += 0.5
        results.append(expect(
            "saturation ratio drift fails",
            run_gate(tmp, doc, unfair), 1, "dispatch ratio"))

        # Saturation goodput drop fails.
        starved = copy.deepcopy(doc)
        starved["saturation"]["light_goodput"] -= 0.3
        results.append(expect(
            "saturation goodput drop fails",
            run_gate(tmp, doc, starved), 1, "light_goodput"))

        # A missing class in the fresh run fails.
        gone = copy.deepcopy(doc)
        gone["virtual"]["classes"] = gone["virtual"]["classes"][1:]
        results.append(expect(
            "missing class fails",
            run_gate(tmp, doc, gone), 1, "missing"))

        # --- ISA comparability -----------------------------------------
        # Captures from different kernel ISAs are refused outright;
        # captures predating the field still compare.
        base_isa = copy.deepcopy(DECODE_DOC)
        base_isa["isa"] = "scalar"
        fresh_isa = copy.deepcopy(DECODE_DOC)
        fresh_isa["isa"] = "avx2"
        results.append(expect(
            "mismatched-ISA captures are refused",
            run_decode_gate(tmp, base_isa, fresh_isa), 1,
            "ISA mismatch"))
        results.append(expect(
            "same-ISA captures compare",
            run_decode_gate(tmp, fresh_isa,
                            copy.deepcopy(fresh_isa)), 0))
        results.append(expect(
            "captures without the isa field still compare",
            run_decode_gate(tmp, DECODE_DOC, fresh_isa), 0))

        # --- trace-overhead gate ---------------------------------------
        gate_flag = ["--trace-overhead-gate"]

        # Identical sampling-off runs pass the overhead gate.
        results.append(expect(
            "trace-overhead gate passes on identical runs",
            run_decode_gate(tmp, DECODE_DOC,
                            copy.deepcopy(DECODE_DOC), gate_flag), 0,
            "trace-ovh"))

        # A fresh run that timed its sections with sampling ON (or
        # never declared) cannot certify the overhead.
        sampled = copy.deepcopy(DECODE_DOC)
        sampled["tracing_enabled_in_timed_sections"] = True
        results.append(expect(
            "trace-overhead gate rejects sampling-on runs",
            run_decode_gate(tmp, DECODE_DOC, sampled, gate_flag), 1,
            "trace-overhead-gate"))
        undeclared = copy.deepcopy(DECODE_DOC)
        del undeclared["tracing_enabled_in_timed_sections"]
        results.append(expect(
            "trace-overhead gate rejects undeclared runs",
            run_decode_gate(tmp, DECODE_DOC, undeclared, gate_flag),
            1, "trace-overhead-gate"))

        # A grown threads=1 decode row fails the overhead gate even
        # when different core counts keep the full-curve arm out.
        slow_hot = copy.deepcopy(DECODE_DOC)
        slow_hot["hardware_concurrency"] = 8
        slow_hot["results"][0]["seconds"] = 2.0
        slow_hot["streaming_results"][0]["seconds"] = 2.0
        slow_hot["batch_results"][0]["blocks_per_sec"] = 50.0
        results.append(expect(
            "trace-overhead gate catches a slower hot path",
            run_decode_gate(tmp, DECODE_DOC, slow_hot, gate_flag), 1,
            "trace-ovh"))

    # No inputs at all is a usage error, not a silent pass.
    proc = subprocess.run([sys.executable, str(GATE)],
                          capture_output=True, text=True)
    ok = proc.returncode != 0
    print(f"{'PASS' if ok else 'FAIL'}: no inputs is an error")
    results.append(ok)

    if not all(results):
        return 1
    print(f"\nall {len(results)} selftests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
