#!/usr/bin/env python3
"""Negative tests for compare_bench.py's workload SLO arm.

Each case clones the committed BENCH_workload.json, injects one
regression, and asserts the gate actually fails — a gate that passes
everything is worse than no gate. Run directly or via ctest
(compare_bench_selftest); stdlib only.
"""

import copy
import json
import pathlib
import subprocess
import sys
import tempfile

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO = BENCH_DIR.parent
GATE = BENCH_DIR / "compare_bench.py"
BASELINE = REPO / "BENCH_workload.json"


def run_gate(tmp, baseline, fresh, extra=()):
    base_path = tmp / "base.json"
    fresh_path = tmp / "fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    proc = subprocess.run(
        [sys.executable, str(GATE),
         "--workload-baseline", str(base_path),
         "--workload-fresh", str(fresh_path), *extra],
        capture_output=True, text=True)
    return proc


def expect(name, proc, want_exit, want_substr=None):
    ok = proc.returncode == want_exit
    if ok and want_substr is not None:
        ok = want_substr in proc.stdout + proc.stderr
    print(f"{'PASS' if ok else 'FAIL'}: {name}")
    if not ok:
        print(f"  exit {proc.returncode} (wanted {want_exit})")
        print("  stdout:", proc.stdout[-2000:])
        print("  stderr:", proc.stderr[-2000:])
    return ok


def main():
    doc = json.loads(BASELINE.read_text())
    results = []
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = pathlib.Path(tmpdir)

        # Identical runs pass.
        results.append(expect(
            "identical runs pass",
            run_gate(tmp, doc, copy.deepcopy(doc)), 0))

        # A determinism break is fatal.
        broken = copy.deepcopy(doc)
        broken["virtual"]["deterministic"] = False
        results.append(expect(
            "determinism break fails",
            run_gate(tmp, doc, broken), 1, "deterministic"))

        # p99 growth beyond tolerance fails; within tolerance passes.
        slow = copy.deepcopy(doc)
        for row in slow["virtual"]["classes"]:
            if isinstance(row.get("p99_us"), int):
                row["p99_us"] *= 2
        results.append(expect(
            "p99 doubling fails",
            run_gate(tmp, doc, slow), 1, "p99"))
        results.append(expect(
            "p99 doubling passes under a loose tolerance",
            run_gate(tmp, doc, slow, ["--p99-tolerance", "1.5"]), 0))

        # Goodput drop beyond the absolute tolerance fails.
        shed = copy.deepcopy(doc)
        shed["virtual"]["classes"][0]["goodput"] -= 0.2
        results.append(expect(
            "class goodput drop fails",
            run_gate(tmp, doc, shed), 1, "goodput"))

        # WDRR dispatch-ratio drift fails (fairness regression).
        unfair = copy.deepcopy(doc)
        unfair["saturation"]["dispatch_ratio"] += 0.5
        results.append(expect(
            "saturation ratio drift fails",
            run_gate(tmp, doc, unfair), 1, "dispatch ratio"))

        # Saturation goodput drop fails.
        starved = copy.deepcopy(doc)
        starved["saturation"]["light_goodput"] -= 0.3
        results.append(expect(
            "saturation goodput drop fails",
            run_gate(tmp, doc, starved), 1, "light_goodput"))

        # A missing class in the fresh run fails.
        gone = copy.deepcopy(doc)
        gone["virtual"]["classes"] = gone["virtual"]["classes"][1:]
        results.append(expect(
            "missing class fails",
            run_gate(tmp, doc, gone), 1, "missing"))

    # No inputs at all is a usage error, not a silent pass.
    proc = subprocess.run([sys.executable, str(GATE)],
                          capture_output=True, text=True)
    ok = proc.returncode != 0
    print(f"{'PASS' if ok else 'FAIL'}: no inputs is an error")
    results.append(ok)

    if not all(results):
        return 1
    print(f"\nall {len(results)} selftests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
