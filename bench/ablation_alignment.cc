/**
 * @file
 * Ablation of file-to-tree alignment (paper Section 3.1: aligning
 * files to prefix-tree nodes, left as future work there and
 * implemented here as ExtentAllocator).
 *
 * Stores a synthetic file set three ways and reports how many
 * elongated primers a whole-file sequential read needs, plus the
 * space overhead:
 *   naive    — files packed back to back at arbitrary offsets;
 *   aligned  — buddy-allocated, minimal set of aligned extents;
 *   subtree  — one covering subtree per file (1 primer, padding).
 */

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/extent_allocator.h"
#include "index/prefix_tree.h"

int
main()
{
    using namespace dnastore;
    using core::Extent;
    using core::ExtentAllocator;

    std::printf("=== Ablation: file alignment to tree nodes "
                "(Section 3.1) ===\n\n");

    const size_t kDepth = 7;  // 16384 blocks
    Rng rng(4242);
    std::vector<uint64_t> file_sizes;
    uint64_t total_blocks = 0;
    for (int f = 0; f < 40; ++f) {
        // File sizes from 1 block to ~400 blocks, skewed small.
        uint64_t blocks = 1 + rng.nextBelow(20) * rng.nextBelow(20);
        file_sizes.push_back(blocks);
        total_blocks += blocks;
    }

    // --- Naive packing: consecutive placement. ------------------------
    size_t naive_primers = 0;
    uint64_t cursor = 0;
    for (uint64_t blocks : file_sizes) {
        naive_primers +=
            index::coverRange(cursor, cursor + blocks - 1, kDepth)
                .size();
        cursor += blocks;
    }

    // --- Aligned multi-extent. ----------------------------------------
    ExtentAllocator aligned(kDepth);
    size_t aligned_primers = 0;
    for (uint64_t blocks : file_sizes) {
        auto extents = aligned.allocate(
            blocks, ExtentAllocator::Policy::kMultiExtent);
        if (!extents) {
            std::printf("aligned allocator ran out of space\n");
            return 1;
        }
        aligned_primers += extents->size();
    }

    // --- Single covering subtree. --------------------------------------
    ExtentAllocator subtree(kDepth);
    size_t subtree_primers = 0;
    uint64_t subtree_reserved = 0;
    for (uint64_t blocks : file_sizes) {
        auto extents = subtree.allocate(
            blocks, ExtentAllocator::Policy::kSingleSubtree);
        if (!extents) {
            std::printf("subtree allocator ran out of space\n");
            return 1;
        }
        subtree_primers += extents->size();
        subtree_reserved += (*extents)[0].size;
    }

    auto avg = [&](size_t primers) {
        return static_cast<double>(primers) /
               static_cast<double>(file_sizes.size());
    };
    std::printf("40 files, %lu blocks total, %lu-block space:\n\n",
                static_cast<unsigned long>(total_blocks),
                static_cast<unsigned long>(uint64_t{1} << (2 * kDepth)));
    std::printf("%-22s %16s %18s\n", "placement",
                "primers per file", "space overhead");
    std::printf("%-22s %16.2f %17.1f%%\n", "naive packing",
                avg(naive_primers), 0.0);
    std::printf("%-22s %16.2f %17.1f%%\n", "aligned multi-extent",
                avg(aligned_primers), 0.0);
    std::printf("%-22s %16.2f %17.1f%%\n", "single subtree",
                avg(subtree_primers),
                100.0 * (static_cast<double>(subtree_reserved) /
                             static_cast<double>(total_blocks) -
                         1.0));

    std::printf("\nExpected shape: naive packing needs several "
                "primers per sequential file read; aligned extents "
                "cut that substantially at zero space cost; single "
                "subtrees reach the 1-primer ideal by paying "
                "internal fragmentation (up to 4x per file).\n");
    return 0;
}
