#!/usr/bin/env python3
"""Bench regression gate for BENCH_decode.json.

Diffs a freshly captured decode_scaling run against the committed
baseline and fails when batch decode throughput regresses beyond a
tolerance. Two kinds of checks:

 * correctness flags (`identical_across_threads`,
   `batch_identical_across_threads`) must be true in the fresh run —
   a determinism break is always fatal, whatever the hardware;
 * per-thread-count batch throughput (`batch_results[].blocks_per_sec`)
   and per-call decode time (`results[].seconds`) are compared only
   when both runs report the same `hardware_concurrency` — the
   committed baseline may come from a different machine class (the
   seed baseline was captured on a 1-core container), and comparing
   absolute numbers across machines would only produce noise.

Exit status: 0 = pass (or skipped perf diff), 1 = regression/failure.

Usage: compare_bench.py BASELINE FRESH [--tolerance 0.25]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot load {path}: {err}")
        sys.exit(1)


def by_threads(rows):
    return {row["threads"]: row
            for row in rows if isinstance(row.get("threads"), int)}


def metric(row, key):
    """A row's metric as a positive number, or ValueError — a zero or
    malformed baseline must read as a clean gate failure, not a
    traceback."""
    value = row.get(key)
    if not isinstance(value, (int, float)) or value <= 0:
        raise ValueError(f"{key} = {value!r}")
    return value


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_decode.json runs; fail on regression.")
    parser.add_argument("baseline", help="committed BENCH_decode.json")
    parser.add_argument("fresh", help="freshly captured run")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression (default 0.25 = 25%%)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    failures = []

    # Determinism flags: non-negotiable.
    for flag in ("identical_across_threads",
                 "batch_identical_across_threads"):
        if not fresh.get(flag, False):
            failures.append(f"fresh run reports {flag} = false")

    base_hw = baseline.get("hardware_concurrency")
    fresh_hw = fresh.get("hardware_concurrency")
    if base_hw != fresh_hw:
        print(f"note: hardware_concurrency differs "
              f"(baseline {base_hw}, fresh {fresh_hw}); "
              f"skipping throughput comparison")
    else:
        base_batch = by_threads(baseline.get("batch_results", []))
        fresh_batch = by_threads(fresh.get("batch_results", []))
        for threads, base_row in sorted(base_batch.items()):
            fresh_row = fresh_batch.get(threads)
            if fresh_row is None:
                failures.append(
                    f"batch_results missing threads={threads}")
                continue
            try:
                base_tp = metric(base_row, "blocks_per_sec")
                fresh_tp = metric(fresh_row, "blocks_per_sec")
            except ValueError as err:
                failures.append(
                    f"batch_results threads={threads}: bad row ({err})")
                continue
            change = fresh_tp / base_tp - 1.0
            status = "ok"
            if change < -args.tolerance:
                status = "REGRESSION"
                failures.append(
                    f"batch throughput at {threads} threads: "
                    f"{base_tp:.1f} -> {fresh_tp:.1f} blocks/s "
                    f"({change:+.1%}, tolerance -{args.tolerance:.0%})")
            print(f"batch  threads={threads}: {base_tp:8.1f} -> "
                  f"{fresh_tp:8.1f} blocks/s  {change:+7.1%}  {status}")

        base_call = by_threads(baseline.get("results", []))
        fresh_call = by_threads(fresh.get("results", []))
        for threads, base_row in sorted(base_call.items()):
            fresh_row = fresh_call.get(threads)
            if fresh_row is None:
                failures.append(f"results missing threads={threads}")
                continue
            try:
                base_secs = metric(base_row, "seconds")
                fresh_secs = metric(fresh_row, "seconds")
            except ValueError as err:
                failures.append(
                    f"results threads={threads}: bad row ({err})")
                continue
            # seconds: lower is better.
            change = fresh_secs / base_secs - 1.0
            status = "ok"
            if change > args.tolerance:
                status = "REGRESSION"
                failures.append(
                    f"per-call decode at {threads} threads: "
                    f"{base_secs:.3f}s -> {fresh_secs:.3f}s "
                    f"({change:+.1%})")
            print(f"call   threads={threads}: "
                  f"{base_secs:8.3f} -> {fresh_secs:8.3f} s        "
                  f"{change:+7.1%}  {status}")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
