#!/usr/bin/env python3
"""Bench regression gate for BENCH_decode.json.

Diffs a freshly captured decode_scaling run against the committed
baseline and fails when batch decode throughput regresses beyond a
tolerance. Three kinds of checks:

 * correctness flags (`identical_across_threads`,
   `batch_identical_across_threads`,
   `streaming_identical_across_threads`) must be true in the fresh
   run — a determinism break is always fatal, whatever the hardware;
 * per-thread-count batch throughput (`batch_results[].blocks_per_sec`),
   per-call decode time (`results[].seconds`) and streaming session
   time (`streaming_results[].seconds`) are compared at every thread
   count when both runs report the same `hardware_concurrency` — the
   committed baseline may come from a different machine class, and
   comparing scaling curves across machines would only produce noise;
 * the threads=1 rows of those tables are compared REGARDLESS of
   hardware_concurrency, under the (wider) --single-thread-tolerance.
   Single-thread time doesn't depend on core count, so this arm always
   fires — including on the 1-core container the committed baseline
   was captured on, where the multi-core arm never engages;
 * --min-scaling FLOOR (off by default) gates the FRESH run against
   itself: batch throughput at the highest measured thread count that
   fits the runner's cores must be >= FLOOR x the threads=1 row. This
   arm needs no comparable baseline at all, so it is the one check of
   the scaling curve that engages when the committed baseline came
   from a 1-core container and the CI runner is multi-core.

Exit status: 0 = pass (or skipped perf diff), 1 = regression/failure.

Usage: compare_bench.py BASELINE FRESH [--tolerance 0.25]
                        [--single-thread-tolerance 0.30]
                        [--min-scaling 1.3]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot load {path}: {err}")
        sys.exit(1)


def by_threads(rows):
    return {row["threads"]: row
            for row in rows if isinstance(row.get("threads"), int)}


def metric(row, key):
    """A row's metric as a positive number, or ValueError — a zero or
    malformed baseline must read as a clean gate failure, not a
    traceback."""
    value = row.get(key)
    if not isinstance(value, (int, float)) or value <= 0:
        raise ValueError(f"{key} = {value!r}")
    return value


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_decode.json runs; fail on regression.")
    parser.add_argument("baseline", help="committed BENCH_decode.json")
    parser.add_argument("fresh", help="freshly captured run")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression (default 0.25 = 25%%)")
    parser.add_argument(
        "--single-thread-tolerance", type=float, default=0.30,
        help="tolerance for the always-on threads=1 arm "
             "(default 0.30 = 30%%)")
    parser.add_argument(
        "--min-scaling", type=float, default=0.0,
        help="required batch speedup of the FRESH run's best "
             "in-core-budget thread count over its threads=1 row; "
             "0 (default) disables the arm. Skipped (with a note) on "
             "runners with fewer than 2 cores.")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    failures = []

    # Determinism flags: non-negotiable.
    for flag in ("identical_across_threads",
                 "batch_identical_across_threads",
                 "streaming_identical_across_threads"):
        if not fresh.get(flag, False):
            failures.append(f"fresh run reports {flag} = false")

    def compare_rows(label, rows_key, metric_key, lower_better,
                     only_threads, tolerance):
        base_rows = by_threads(baseline.get(rows_key, []))
        fresh_rows = by_threads(fresh.get(rows_key, []))
        for threads, base_row in sorted(base_rows.items()):
            if only_threads is not None and threads != only_threads:
                continue
            fresh_row = fresh_rows.get(threads)
            if fresh_row is None:
                failures.append(
                    f"{rows_key} missing threads={threads}")
                continue
            try:
                base_value = metric(base_row, metric_key)
                fresh_value = metric(fresh_row, metric_key)
            except ValueError as err:
                failures.append(
                    f"{rows_key} threads={threads}: bad row ({err})")
                continue
            change = fresh_value / base_value - 1.0
            regressed = (change > tolerance if lower_better
                         else change < -tolerance)
            status = "REGRESSION" if regressed else "ok"
            if regressed:
                failures.append(
                    f"{label} at {threads} threads: "
                    f"{base_value:.3f} -> {fresh_value:.3f} "
                    f"{metric_key} ({change:+.1%}, "
                    f"tolerance {tolerance:.0%})")
            print(f"{label:9s} threads={threads}: {base_value:10.3f}"
                  f" -> {fresh_value:10.3f} {metric_key:14s}"
                  f" {change:+7.1%}  {status}")

    # When both runs report the same core count the whole scaling
    # curve is comparable; otherwise only the threads=1 rows are
    # (single-thread time doesn't depend on core count), under the
    # wider single-thread tolerance. Either way the gate always
    # engages — including on the 1-core container the committed
    # baseline was captured on, where a multi-core-only arm would
    # never fire.
    base_hw = baseline.get("hardware_concurrency")
    fresh_hw = fresh.get("hardware_concurrency")
    if base_hw == fresh_hw:
        only, tolerance = None, args.tolerance
    else:
        print(f"note: hardware_concurrency differs "
              f"(baseline {base_hw}, fresh {fresh_hw}); "
              f"comparing only the threads=1 rows")
        only, tolerance = 1, args.single_thread_tolerance
    compare_rows("batch", "batch_results", "blocks_per_sec", False,
                 only, tolerance)
    compare_rows("call", "results", "seconds", True, only, tolerance)
    if baseline.get("streaming_results") is not None:
        compare_rows("streaming", "streaming_results", "seconds",
                     True, only, tolerance)

    # Self-contained scaling floor: judge the fresh run's own curve,
    # so the arm engages even when the committed baseline came from a
    # different machine class (e.g. the original 1-core capture).
    if args.min_scaling > 0:
        fresh_batch = by_threads(fresh.get("batch_results", []))
        eligible = [t for t in fresh_batch
                    if isinstance(fresh_hw, int) and 1 < t <= fresh_hw]
        if not isinstance(fresh_hw, int) or fresh_hw < 2:
            print(f"note: --min-scaling skipped "
                  f"(hardware_concurrency {fresh_hw!r} < 2)")
        elif 1 not in fresh_batch or not eligible:
            failures.append(
                "--min-scaling set but fresh batch_results lack a "
                "threads=1 row or any in-core-budget multi-thread row")
        else:
            best = max(eligible)
            try:
                speedup = (metric(fresh_batch[best], "blocks_per_sec")
                           / metric(fresh_batch[1], "blocks_per_sec"))
            except ValueError as err:
                failures.append(f"--min-scaling: bad row ({err})")
            else:
                status = ("ok" if speedup >= args.min_scaling
                          else "REGRESSION")
                print(f"scaling   threads={best} vs 1: "
                      f"{speedup:.2f}x (floor "
                      f"{args.min_scaling:.2f}x)  {status}")
                if speedup < args.min_scaling:
                    failures.append(
                        f"batch speedup at {best} threads is "
                        f"{speedup:.2f}x < required "
                        f"{args.min_scaling:.2f}x")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
