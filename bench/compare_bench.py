#!/usr/bin/env python3
"""Bench regression gate for BENCH_decode.json.

Diffs a freshly captured decode_scaling run against the committed
baseline and fails when batch decode throughput regresses beyond a
tolerance. Three kinds of checks:

 * correctness flags (`identical_across_threads`,
   `batch_identical_across_threads`,
   `streaming_identical_across_threads`) must be true in the fresh
   run — a determinism break is always fatal, whatever the hardware;
 * per-thread-count batch throughput (`batch_results[].blocks_per_sec`),
   per-call decode time (`results[].seconds`) and streaming session
   time (`streaming_results[].seconds`) are compared at every thread
   count when both runs report the same `hardware_concurrency` — the
   committed baseline may come from a different machine class, and
   comparing scaling curves across machines would only produce noise;
 * the threads=1 rows of those tables are compared REGARDLESS of
   hardware_concurrency, under the (wider) --single-thread-tolerance.
   Single-thread time doesn't depend on core count, so this arm always
   fires — including on the 1-core container the committed baseline
   was captured on, where the multi-core arm never engages;
 * --min-scaling FLOOR (off by default) gates the FRESH run against
   itself: batch throughput at the highest measured thread count that
   fits the runner's cores must be >= FLOOR x the threads=1 row. This
   arm needs no comparable baseline at all, so it is the one check of
   the scaling curve that engages when the committed baseline came
   from a 1-core container and the CI runner is multi-core;
 * --trace-overhead-gate (off by default) pins the cost of the
   compiled-in-but-sampling-off tracing hooks: the fresh run must
   declare `tracing_enabled_in_timed_sections: false` (a run timed
   with sampling ON would measure the wrong thing), and its threads=1
   decode row is re-compared against the baseline under
   --single-thread-tolerance even when the full-curve arm already ran
   — a hot path that grew beyond that tolerance with sampling off
   means the one-branch contract broke.

A second, independent arm gates BENCH_workload.json (the trace-driven
workload SLO bench) via --workload-baseline/--workload-fresh:

 * the fresh run's `virtual.deterministic` flag must be true — the
   virtual-clock replay diverging between identical runs is fatal,
   whatever the hardware;
 * per-class p99 queue latency may not regress (grow) beyond
   --p99-tolerance, and per-class goodput may not drop by more than
   --goodput-tolerance (absolute). Virtual-clock numbers don't depend
   on machine speed, so this arm engages on every runner;
 * the scripted-saturation `dispatch_ratio` must stay within
   --ratio-tolerance of the baseline's, and the saturation goodputs
   within --goodput-tolerance — a WDRR fairness drift fails the gate
   even when latency looks fine.

Either arm (decode positionals, workload flags) may be used alone;
passing neither is an error.

Exit status: 0 = pass (or skipped perf diff), 1 = regression/failure.

Usage: compare_bench.py [BASELINE FRESH] [--tolerance 0.25]
                        [--single-thread-tolerance 0.30]
                        [--min-scaling 1.3] [--trace-overhead-gate]
                        [--workload-baseline BENCH_workload.json
                         --workload-fresh BENCH_workload.fresh.json]
                        [--p99-tolerance 0.25]
                        [--goodput-tolerance 0.05]
                        [--ratio-tolerance 0.05]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot load {path}: {err}")
        sys.exit(1)


def by_threads(rows):
    return {row["threads"]: row
            for row in rows if isinstance(row.get("threads"), int)}


def metric(row, key):
    """A row's metric as a positive number, or ValueError — a zero or
    malformed baseline must read as a clean gate failure, not a
    traceback."""
    value = row.get(key)
    if not isinstance(value, (int, float)) or value <= 0:
        raise ValueError(f"{key} = {value!r}")
    return value


def compare_workload(baseline, fresh, args, failures):
    """The BENCH_workload.json SLO arm (see module docstring)."""
    if not fresh.get("virtual", {}).get("deterministic", False):
        failures.append(
            "fresh workload run reports virtual.deterministic = false")

    base_classes = {row.get("name"): row
                    for row in baseline.get("virtual", {})
                    .get("classes", [])}
    fresh_classes = {row.get("name"): row
                     for row in fresh.get("virtual", {})
                     .get("classes", [])}
    for name, base_row in sorted(base_classes.items()):
        fresh_row = fresh_classes.get(name)
        if fresh_row is None:
            failures.append(f"workload class {name!r} missing from "
                            f"fresh run")
            continue
        # p99 queue latency: growth beyond tolerance is a regression;
        # a null p99 (no admitted requests) on either side skips the
        # latency check but still gates goodput.
        base_p99 = base_row.get("p99_us")
        fresh_p99 = fresh_row.get("p99_us")
        if isinstance(base_p99, (int, float)) and base_p99 > 0 \
                and isinstance(fresh_p99, (int, float)):
            change = fresh_p99 / base_p99 - 1.0
            regressed = change > args.p99_tolerance
            status = "REGRESSION" if regressed else "ok"
            if regressed:
                failures.append(
                    f"workload class {name}: p99 {base_p99} -> "
                    f"{fresh_p99} us ({change:+.1%}, tolerance "
                    f"{args.p99_tolerance:.0%})")
            print(f"slo:p99   {name:9s}: {base_p99:10.0f} -> "
                  f"{fresh_p99:10.0f} us             "
                  f"{change:+7.1%}  {status}")
        try:
            base_goodput = metric(base_row, "goodput")
            fresh_goodput = metric(fresh_row, "goodput")
        except ValueError as err:
            failures.append(f"workload class {name}: bad row ({err})")
            continue
        drop = base_goodput - fresh_goodput
        regressed = drop > args.goodput_tolerance
        status = "REGRESSION" if regressed else "ok"
        if regressed:
            failures.append(
                f"workload class {name}: goodput {base_goodput:.3f} "
                f"-> {fresh_goodput:.3f} (drop {drop:.3f} > "
                f"{args.goodput_tolerance:.3f})")
        print(f"slo:good  {name:9s}: {base_goodput:10.3f} -> "
              f"{fresh_goodput:10.3f}                {-drop:+7.3f}"
              f"  {status}")

    base_sat = baseline.get("saturation") or {}
    fresh_sat = fresh.get("saturation") or {}
    if base_sat:
        try:
            base_ratio = metric(base_sat, "dispatch_ratio")
            fresh_ratio = metric(fresh_sat, "dispatch_ratio")
        except ValueError as err:
            failures.append(f"saturation: bad dispatch_ratio ({err})")
        else:
            drift = abs(fresh_ratio - base_ratio)
            regressed = drift > args.ratio_tolerance
            status = "REGRESSION" if regressed else "ok"
            if regressed:
                failures.append(
                    f"saturation dispatch ratio {base_ratio:.3f} -> "
                    f"{fresh_ratio:.3f} (drift {drift:.3f} > "
                    f"{args.ratio_tolerance:.3f})")
            print(f"slo:ratio saturation: {base_ratio:10.3f} -> "
                  f"{fresh_ratio:10.3f}                         "
                  f"{status}")
        for key in ("heavy_goodput", "light_goodput",
                    "throttled_goodput"):
            base_value = base_sat.get(key)
            fresh_value = fresh_sat.get(key)
            if not isinstance(base_value, (int, float)):
                continue
            if not isinstance(fresh_value, (int, float)):
                failures.append(f"saturation missing {key}")
                continue
            drop = base_value - fresh_value
            if drop > args.goodput_tolerance:
                failures.append(
                    f"saturation {key} {base_value:.3f} -> "
                    f"{fresh_value:.3f} (drop {drop:.3f} > "
                    f"{args.goodput_tolerance:.3f})")


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_decode.json runs; fail on regression.")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="committed BENCH_decode.json")
    parser.add_argument("fresh", nargs="?", default=None,
                        help="freshly captured run")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression (default 0.25 = 25%%)")
    parser.add_argument(
        "--single-thread-tolerance", type=float, default=0.30,
        help="tolerance for the always-on threads=1 arm "
             "(default 0.30 = 30%%)")
    parser.add_argument(
        "--min-scaling", type=float, default=0.0,
        help="required batch speedup of the FRESH run's best "
             "in-core-budget thread count over its threads=1 row; "
             "0 (default) disables the arm. Skipped (with a note) on "
             "runners with fewer than 2 cores.")
    parser.add_argument(
        "--trace-overhead-gate", action="store_true",
        help="require the fresh decode run to have been timed with "
             "tracing sampling off, and gate its threads=1 decode "
             "row under --single-thread-tolerance (the cost of the "
             "compiled-in tracing hooks)")
    parser.add_argument(
        "--workload-baseline", default=None,
        help="committed BENCH_workload.json (enables the SLO arm)")
    parser.add_argument(
        "--workload-fresh", default=None,
        help="freshly captured BENCH_workload.json")
    parser.add_argument(
        "--p99-tolerance", type=float, default=0.25,
        help="allowed fractional p99 latency growth per class "
             "(default 0.25 = 25%%)")
    parser.add_argument(
        "--goodput-tolerance", type=float, default=0.05,
        help="allowed absolute goodput drop per class / saturation "
             "tenant (default 0.05)")
    parser.add_argument(
        "--ratio-tolerance", type=float, default=0.05,
        help="allowed absolute drift of the scripted-saturation "
             "WDRR dispatch ratio (default 0.05)")
    args = parser.parse_args()

    decode_arm = args.baseline is not None and args.fresh is not None
    workload_arm = (args.workload_baseline is not None
                    and args.workload_fresh is not None)
    if not decode_arm and not workload_arm:
        parser.error("pass BASELINE FRESH and/or "
                     "--workload-baseline/--workload-fresh")

    failures = []
    if workload_arm:
        compare_workload(load(args.workload_baseline),
                         load(args.workload_fresh), args, failures)
    if not decode_arm:
        if failures:
            print("\nFAIL:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nPASS")
        return 0

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    # Kernel ISA: timings from different instruction sets measure
    # different code and are never comparable — refuse outright when
    # both runs declare an ISA and they differ. Captures predating the
    # field keep comparing (they were all scalar-equivalent builds).
    base_isa = baseline.get("isa")
    fresh_isa = fresh.get("isa")
    if (isinstance(base_isa, str) and isinstance(fresh_isa, str)
            and base_isa != fresh_isa):
        print(f"FAIL: kernel ISA mismatch (baseline {base_isa!r}, "
              f"fresh {fresh_isa!r}); capture both runs with the same "
              f"DNASTORE_FORCE_ISA before comparing")
        return 1

    # Determinism flags: non-negotiable.
    for flag in ("identical_across_threads",
                 "batch_identical_across_threads",
                 "streaming_identical_across_threads"):
        if not fresh.get(flag, False):
            failures.append(f"fresh run reports {flag} = false")

    def compare_rows(label, rows_key, metric_key, lower_better,
                     only_threads, tolerance):
        base_rows = by_threads(baseline.get(rows_key, []))
        fresh_rows = by_threads(fresh.get(rows_key, []))
        for threads, base_row in sorted(base_rows.items()):
            if only_threads is not None and threads != only_threads:
                continue
            fresh_row = fresh_rows.get(threads)
            if fresh_row is None:
                failures.append(
                    f"{rows_key} missing threads={threads}")
                continue
            try:
                base_value = metric(base_row, metric_key)
                fresh_value = metric(fresh_row, metric_key)
            except ValueError as err:
                failures.append(
                    f"{rows_key} threads={threads}: bad row ({err})")
                continue
            change = fresh_value / base_value - 1.0
            regressed = (change > tolerance if lower_better
                         else change < -tolerance)
            status = "REGRESSION" if regressed else "ok"
            if regressed:
                failures.append(
                    f"{label} at {threads} threads: "
                    f"{base_value:.3f} -> {fresh_value:.3f} "
                    f"{metric_key} ({change:+.1%}, "
                    f"tolerance {tolerance:.0%})")
            print(f"{label:9s} threads={threads}: {base_value:10.3f}"
                  f" -> {fresh_value:10.3f} {metric_key:14s}"
                  f" {change:+7.1%}  {status}")

    # When both runs report the same core count the whole scaling
    # curve is comparable; otherwise only the threads=1 rows are
    # (single-thread time doesn't depend on core count), under the
    # wider single-thread tolerance. Either way the gate always
    # engages — including on the 1-core container the committed
    # baseline was captured on, where a multi-core-only arm would
    # never fire.
    base_hw = baseline.get("hardware_concurrency")
    fresh_hw = fresh.get("hardware_concurrency")
    if base_hw == fresh_hw:
        only, tolerance = None, args.tolerance
    else:
        print(f"note: hardware_concurrency differs "
              f"(baseline {base_hw}, fresh {fresh_hw}); "
              f"comparing only the threads=1 rows")
        only, tolerance = 1, args.single_thread_tolerance
    compare_rows("batch", "batch_results", "blocks_per_sec", False,
                 only, tolerance)
    compare_rows("call", "results", "seconds", True, only, tolerance)
    if baseline.get("streaming_results") is not None:
        compare_rows("streaming", "streaming_results", "seconds",
                     True, only, tolerance)

    # Tracing-overhead gate: the decode hot path must cost one branch
    # with the collector compiled in but sampling off. The fresh run
    # has to declare its timed sections ran sampling-off, and the
    # threads=1 decode row must hold within the single-thread
    # tolerance (it is hardware-independent, so this arm always
    # engages).
    if args.trace_overhead_gate:
        declared = fresh.get("tracing_enabled_in_timed_sections")
        if declared is not False:
            failures.append(
                "--trace-overhead-gate: fresh run does not declare "
                "tracing_enabled_in_timed_sections = false "
                f"(got {declared!r}); timed sections must run with "
                "sampling off")
        else:
            compare_rows("trace-ovh", "results", "seconds", True, 1,
                         args.single_thread_tolerance)

    # Self-contained scaling floor: judge the fresh run's own curve,
    # so the arm engages even when the committed baseline came from a
    # different machine class (e.g. the original 1-core capture).
    if args.min_scaling > 0:
        fresh_batch = by_threads(fresh.get("batch_results", []))
        eligible = [t for t in fresh_batch
                    if isinstance(fresh_hw, int) and 1 < t <= fresh_hw]
        if not isinstance(fresh_hw, int) or fresh_hw < 2:
            print(f"note: --min-scaling skipped "
                  f"(hardware_concurrency {fresh_hw!r} < 2)")
        elif 1 not in fresh_batch or not eligible:
            failures.append(
                "--min-scaling set but fresh batch_results lack a "
                "threads=1 row or any in-core-budget multi-thread row")
        else:
            best = max(eligible)
            try:
                speedup = (metric(fresh_batch[best], "blocks_per_sec")
                           / metric(fresh_batch[1], "blocks_per_sec"))
            except ValueError as err:
                failures.append(f"--min-scaling: bad row ({err})")
            else:
                status = ("ok" if speedup >= args.min_scaling
                          else "REGRESSION")
                print(f"scaling   threads={best} vs 1: "
                      f"{speedup:.2f}x (floor "
                      f"{args.min_scaling:.2f}x)  {status}")
                if speedup < args.min_scaling:
                    failures.append(
                        f"batch speedup at {best} threads is "
                        f"{speedup:.2f}x < required "
                        f"{args.min_scaling:.2f}x")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
