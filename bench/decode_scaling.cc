/**
 * @file
 * Decode-pipeline thread-scaling benchmark.
 *
 * Times Decoder::decodeAll on a seeded noisy-read corpus at 1, 2, 4
 * and 8 threads, verifies the outputs are byte-identical across
 * thread counts (the pipeline's determinism contract), and writes the
 * measurements to BENCH_decode.json so the perf trajectory of the
 * decode hot loop is tracked from PR to PR.
 *
 * Usage: decode_scaling [--out PATH] [--blocks N] [--coverage N]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/decoder.h"
#include "corpus/text.h"
#include "sim/synthesis.h"

namespace {

using namespace dnastore;
using Clock = std::chrono::steady_clock;

double
bestOfThree(const std::function<void()> &fn)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        auto start = Clock::now();
        fn();
        std::chrono::duration<double> elapsed = Clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_decode.json";
    size_t blocks = 24;
    size_t coverage = 25;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0)
            out_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--blocks") == 0)
            blocks = std::strtoul(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--coverage") == 0)
            coverage = std::strtoul(argv[i + 1], nullptr, 10);
    }

    std::printf("=== decode pipeline thread scaling ===\n\n");
    core::PartitionConfig config;
    core::Partition partition(
        config, dna::Sequence("ACTGAGGTCTGCCTGAAGTC"),
        dna::Sequence("TGAACGCGGTATTGCAGACC"), 13);
    core::Bytes data =
        corpus::generateBytes(blocks * config.block_data_bytes, 77);
    sim::SynthesisParams synthesis;
    sim::Pool pool =
        sim::synthesize(partition.encodeFile(data), synthesis);

    sim::SequencerParams sequencer;
    sequencer.sub_rate = 0.01;
    sequencer.ins_rate = 0.002;
    sequencer.del_rate = 0.002;
    sequencer.seed = 3;
    const size_t budget = blocks * config.rs_n * coverage;
    std::vector<sim::Read> reads =
        sim::sequencePool(pool, budget, sequencer);
    std::printf("corpus: %zu blocks, %zu noisy reads\n\n", blocks,
                reads.size());

    const size_t thread_counts[] = {1, 2, 4, 8};
    std::map<uint64_t, core::BlockVersions> baseline_units;
    core::DecodeStats baseline_stats;
    std::vector<double> seconds;
    bool identical = true;

    std::printf("%8s  %10s  %8s  %9s\n", "threads", "seconds",
                "speedup", "identical");
    for (size_t threads : thread_counts) {
        core::DecoderParams params;
        params.threads = threads;
        core::Decoder decoder(partition, params);

        std::map<uint64_t, core::BlockVersions> units;
        core::DecodeStats stats;
        double secs = bestOfThree([&] {
            stats = core::DecodeStats{};
            units = decoder.decodeAll(reads, &stats);
        });
        seconds.push_back(secs);

        bool same = true;
        if (threads == 1) {
            baseline_units = units;
            baseline_stats = stats;
        } else {
            same = units == baseline_units &&
                   stats == baseline_stats;
            identical = identical && same;
        }
        std::printf("%8zu  %10.3f  %7.2fx  %9s\n", threads, secs,
                    seconds.front() / secs, same ? "yes" : "NO");
    }
    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: decode output changed with thread "
                     "count\n");
        return 1;
    }
    std::printf("\nunits decoded: %zu/%zu, hardware concurrency: "
                "%u\n",
                baseline_stats.units_decoded, blocks,
                std::thread::hardware_concurrency());

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"decode_scaling\",\n");
    std::fprintf(out, "  \"corpus_blocks\": %zu,\n", blocks);
    std::fprintf(out, "  \"reads\": %zu,\n", reads.size());
    std::fprintf(out, "  \"units_decoded\": %zu,\n",
                 baseline_stats.units_decoded);
    std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"identical_across_threads\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(out, "  \"results\": [\n");
    for (size_t i = 0; i < seconds.size(); ++i) {
        std::fprintf(out,
                     "    {\"threads\": %zu, \"seconds\": %.4f, "
                     "\"speedup\": %.3f}%s\n",
                     thread_counts[i], seconds[i],
                     seconds.front() / seconds[i],
                     i + 1 < seconds.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
