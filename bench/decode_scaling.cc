/**
 * @file
 * Decode-pipeline thread-scaling benchmark.
 *
 * Part 1 times Decoder::decodeAll on a seeded noisy-read corpus at 1,
 * 2, 4 and 8 threads. Part 2 times DecodeService batch submission:
 * several partitions' read sets decoded as one batch, sharded across
 * the service's shared pool. Part 3 saturates a two-tenant service
 * (WDRR weights 3:1) with a scripted backlog and measures both the
 * drain throughput and the achieved dispatch ratio in the contended
 * prefix — fairness drift is treated like a determinism break. Part 4
 * streams the part-1 corpus through a StreamingDecoder in fixed-size
 * chunks with every (block, 0) unit expected, measuring wall time and
 * the fraction of the read budget consumed before early termination.
 * All parts verify outputs are byte-identical across thread counts
 * (the determinism contract) and write measurements to
 * BENCH_decode.json so the perf trajectory of the decode hot loop is
 * tracked from PR to PR. CI records this on a multi-core runner and
 * uploads the JSON as an artifact.
 *
 * Every timed section runs with tracing compiled in but sampling off
 * (inactive TraceContexts — the documented one-branch hot path), and
 * the JSON records that as `tracing_enabled_in_timed_sections` so
 * compare_bench.py's --trace-overhead-gate can pin the overhead via
 * the threads=1 rows. With --trace-out PATH an extra UNTIMED batch
 * submission runs with every request traced and exports the spans as
 * Chrome trace-event JSON (Perfetto / chrome://tracing).
 *
 * Usage: decode_scaling [--out PATH] [--blocks N] [--coverage N]
 *                       [--parts N] [--tenants B] [--trace-out PATH]
 *        (B = batches per tenant in the fairness section; 0 skips it)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/simd.h"
#include "core/decode_service.h"
#include "core/decoder.h"
#include "corpus/text.h"
#include "sim/synthesis.h"
#include "telemetry/trace.h"

namespace {

using namespace dnastore;
using Clock = std::chrono::steady_clock;

double
bestOfThree(const std::function<void()> &fn)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        auto start = Clock::now();
        fn();
        std::chrono::duration<double> elapsed = Clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

} // namespace

/** Primer pairs for the batch-submission partitions. */
struct PrimerPair
{
    const char *fwd;
    const char *rev;
};

constexpr PrimerPair kPrimerPairs[] = {
    {"ACTGAGGTCTGCCTGAAGTC", "TGAACGCGGTATTGCAGACC"},
    {"ACGTACGTACGTACGTACGT", "TGCATGCATGCATGCATGCA"},
    {"GATTACAGTCCAGGCATGCA", "CCATGGTTAACGTCAGTGGA"},
    {"TTGCACCGTAGATCCGATAC", "GGTACTTCGAACGGACTTGA"},
};

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_decode.json";
    std::string trace_out;
    size_t blocks = 24;
    size_t coverage = 25;
    size_t parts = 4;
    size_t tenant_batches = 12;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0)
            out_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--blocks") == 0)
            blocks = std::strtoul(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--coverage") == 0)
            coverage = std::strtoul(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--parts") == 0)
            parts = std::strtoul(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--tenants") == 0)
            tenant_batches = std::strtoul(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--trace-out") == 0)
            trace_out = argv[i + 1];
    }
    parts = std::clamp<size_t>(parts, 1, std::size(kPrimerPairs));

    std::printf("=== decode pipeline thread scaling (isa: %s) ===\n\n",
                simd::isaName(simd::activeIsa()));
    core::PartitionConfig config;
    core::Partition partition(
        config, dna::Sequence("ACTGAGGTCTGCCTGAAGTC"),
        dna::Sequence("TGAACGCGGTATTGCAGACC"), 13);
    core::Bytes data =
        corpus::generateBytes(blocks * config.block_data_bytes, 77);
    sim::SynthesisParams synthesis;
    sim::Pool pool =
        sim::synthesize(partition.encodeFile(data), synthesis);

    sim::SequencerParams sequencer;
    sequencer.sub_rate = 0.01;
    sequencer.ins_rate = 0.002;
    sequencer.del_rate = 0.002;
    sequencer.seed = 3;
    const size_t budget = blocks * config.rs_n * coverage;
    std::vector<sim::Read> reads =
        sim::sequencePool(pool, budget, sequencer);
    std::printf("corpus: %zu blocks, %zu noisy reads\n\n", blocks,
                reads.size());

    const size_t thread_counts[] = {1, 2, 4, 8};
    std::map<uint64_t, core::BlockVersions> baseline_units;
    core::DecodeStats baseline_stats;
    std::vector<double> seconds;
    bool identical = true;

    std::printf("%8s  %10s  %8s  %9s\n", "threads", "seconds",
                "speedup", "identical");
    for (size_t threads : thread_counts) {
        core::DecoderParams params;
        params.threads = threads;
        core::Decoder decoder(partition, params);

        std::map<uint64_t, core::BlockVersions> units;
        core::DecodeStats stats;
        double secs = bestOfThree([&] {
            stats = core::DecodeStats{};
            units = decoder.decodeAll(reads, &stats);
        });
        seconds.push_back(secs);

        bool same = true;
        if (threads == 1) {
            baseline_units = units;
            baseline_stats = stats;
        } else {
            same = units == baseline_units &&
                   stats == baseline_stats;
            identical = identical && same;
        }
        std::printf("%8zu  %10.3f  %7.2fx  %9s\n", threads, secs,
                    seconds.front() / secs, same ? "yes" : "NO");
    }
    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: decode output changed with thread "
                     "count\n");
        return 1;
    }
    std::printf("\nunits decoded: %zu/%zu, hardware concurrency: "
                "%u\n",
                baseline_stats.units_decoded, blocks,
                std::thread::hardware_concurrency());

    // Part 2: batch submission — `parts` partitions' read sets
    // decoded as one DecodeService batch sharded over a shared pool.
    std::printf("\n=== DecodeService batch submission "
                "(%zu partitions) ===\n\n",
                parts);
    const size_t part_blocks = std::max<size_t>(1, blocks / parts);
    std::vector<std::unique_ptr<core::Partition>> partitions;
    std::vector<std::unique_ptr<core::Decoder>> decoders;
    std::vector<std::vector<sim::Read>> part_reads;
    for (size_t p = 0; p < parts; ++p) {
        core::PartitionConfig part_config;
        part_config.index_seed += 17 * p;
        part_config.scramble_seed += 29 * p;
        partitions.push_back(std::make_unique<core::Partition>(
            part_config, dna::Sequence(kPrimerPairs[p].fwd),
            dna::Sequence(kPrimerPairs[p].rev),
            static_cast<uint32_t>(13 + p)));
        core::Bytes part_data = corpus::generateBytes(
            part_blocks * part_config.block_data_bytes, 77 + p);
        sim::SynthesisParams part_synthesis;
        part_synthesis.seed = 1 + p;
        sim::Pool part_pool = sim::synthesize(
            partitions[p]->encodeFile(part_data), part_synthesis);
        sim::SequencerParams part_sequencer = sequencer;
        part_sequencer.seed = 3 + 131 * p;
        part_reads.push_back(sim::sequencePool(
            part_pool, part_blocks * part_config.rs_n * coverage,
            part_sequencer));
        core::DecoderParams decoder_params;
        decoder_params.threads = 1;
        decoders.push_back(std::make_unique<core::Decoder>(
            *partitions[p], decoder_params));
    }

    std::vector<double> batch_seconds;
    std::vector<core::DecodeOutcome> batch_baseline;
    bool batch_identical = true;
    std::printf("%8s  %10s  %8s  %10s  %9s\n", "threads", "seconds",
                "speedup", "blocks/s", "identical");
    for (size_t threads : thread_counts) {
        core::DecodeServiceParams service_params;
        service_params.threads = threads;
        core::DecodeService service(service_params);

        std::vector<core::DecodeOutcome> outcomes;
        double secs = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            // Build the request batch (read-set copies) outside the
            // timed region: the measurement is the service, not the
            // caller's memcpy.
            std::vector<core::DecodeRequest> batch(parts);
            for (size_t p = 0; p < parts; ++p) {
                batch[p].decoder = decoders[p].get();
                batch[p].reads = part_reads[p];
            }
            auto start = Clock::now();
            std::vector<std::future<core::DecodeOutcome>> futures =
                service.submitBatch(std::move(batch));
            outcomes.clear();
            for (std::future<core::DecodeOutcome> &future : futures)
                outcomes.push_back(future.get());
            std::chrono::duration<double> elapsed =
                Clock::now() - start;
            secs = std::min(secs, elapsed.count());
        }
        batch_seconds.push_back(secs);

        bool same = true;
        if (threads == 1)
            batch_baseline = outcomes;
        else
            same = outcomes == batch_baseline;
        batch_identical = batch_identical && same;
        std::printf("%8zu  %10.3f  %7.2fx  %10.1f  %9s\n", threads,
                    secs, batch_seconds.front() / secs,
                    static_cast<double>(parts * part_blocks) / secs,
                    same ? "yes" : "NO");
    }
    if (!batch_identical) {
        std::fprintf(stderr, "FAIL: batch decode output changed with "
                             "thread count\n");
        return 1;
    }

    // Part 3: two-tenant fairness under saturation. A heavy tenant
    // (WDRR weight 3) and a light tenant (weight 1) each enqueue
    // `tenant_batches` single-partition batches against a paused
    // dispatcher, so the whole backlog contends; the dispatch
    // observer then yields the exact interleaving. While the heavy
    // tenant is backlogged, dispatches must split 3:1 (±1 light
    // batch) — drift is treated like a determinism break.
    double tenant_seconds = 0.0;
    double tenant_ratio = 0.0;
    size_t contended_heavy = 0;
    size_t contended_light = 0;
    bool tenant_fair = true;
    if (tenant_batches > 0) {
        std::printf("\n=== two-tenant fairness (weights 3:1, %zu "
                    "batches each) ===\n\n",
                    tenant_batches);
        core::DecodeServiceParams service_params;
        service_params.threads = 4;
        service_params.tenants[1].weight = 3;
        service_params.tenants[2].weight = 1;
        service_params.start_paused = true;
        std::mutex dispatch_mutex;
        std::vector<core::TenantId> dispatch_order;
        service_params.on_dispatch =
            [&dispatch_mutex, &dispatch_order](core::TenantId tenant,
                                               size_t) {
                std::lock_guard<std::mutex> lock(dispatch_mutex);
                dispatch_order.push_back(tenant);
            };
        core::DecodeService service(service_params);

        std::vector<std::future<core::DecodeOutcome>> futures;
        for (core::TenantId tenant : {core::TenantId{1},
                                      core::TenantId{2}}) {
            for (size_t b = 0; b < tenant_batches; ++b) {
                futures.push_back(service.submit(
                    *decoders[b % parts], part_reads[b % parts],
                    tenant));
            }
        }

        auto start = Clock::now();
        service.resumeDispatch();
        for (std::future<core::DecodeOutcome> &future : futures) {
            if (future.get().status != core::DecodeStatus::Ok) {
                std::fprintf(stderr, "FAIL: tenant batch not Ok\n");
                return 1;
            }
        }
        std::chrono::duration<double> elapsed = Clock::now() - start;
        tenant_seconds = elapsed.count();

        // Contended prefix: through the heavy tenant's last dispatch
        // both queues were non-empty, and the light dispatch that
        // closes that WDRR round was earned under contention too —
        // cutting before it would skew a perfect 3:1 split to 4:1.
        std::lock_guard<std::mutex> lock(dispatch_mutex);
        size_t last_heavy = 0;
        for (size_t i = 0; i < dispatch_order.size(); ++i) {
            if (dispatch_order[i] == 1)
                last_heavy = i;
        }
        if (last_heavy + 1 < dispatch_order.size() &&
            dispatch_order[last_heavy + 1] == 2)
            ++last_heavy;
        for (size_t i = 0; i <= last_heavy; ++i) {
            contended_heavy += dispatch_order[i] == 1 ? 1 : 0;
            contended_light += dispatch_order[i] == 2 ? 1 : 0;
        }
        tenant_ratio =
            contended_light > 0
                ? static_cast<double>(contended_heavy) /
                      static_cast<double>(contended_light)
                : 0.0;
        tenant_fair =
            std::abs(static_cast<double>(contended_heavy) -
                     3.0 * static_cast<double>(contended_light)) <=
            3.0;
        std::printf("contended dispatches: heavy %zu, light %zu "
                    "(ratio %.2f, target 3.00)\n",
                    contended_heavy, contended_light, tenant_ratio);
        std::printf("drain: %.3f s, %.1f blocks/s, fair: %s\n",
                    tenant_seconds,
                    static_cast<double>(2 * tenant_batches *
                                        part_blocks) /
                        tenant_seconds,
                    tenant_fair ? "yes" : "NO");
        if (!tenant_fair) {
            std::fprintf(stderr,
                         "FAIL: 3:1 tenant weights dispatched %zu:%zu "
                         "under saturation\n",
                         contended_heavy, contended_light);
            return 1;
        }
    }

    // Part 4: streaming incremental decode with early termination on
    // the part-1 corpus. Reads arrive in fixed chunks; every
    // (block, 0) unit is expected, so the session stops consuming the
    // moment the whole file is recoverable. Identity is checked per
    // emitted unit against the one-shot baseline, and the JSON
    // records how much of the read budget the session consumed.
    constexpr size_t kStreamChunk = 500;
    std::printf("\n=== streaming incremental decode (chunks of %zu "
                "reads) ===\n\n",
                kStreamChunk);
    std::vector<double> stream_seconds;
    size_t stream_consumed = 0;
    size_t stream_skipped = 0;
    size_t stream_early = 0;
    bool stream_identical = true;
    std::printf("%8s  %10s  %12s  %10s  %9s\n", "threads", "seconds",
                "vs one-shot", "consumed", "identical");
    for (size_t t = 0; t < std::size(thread_counts); ++t) {
        const size_t threads = thread_counts[t];
        core::DecoderParams params;
        params.threads = threads;
        core::StreamingParams streaming;
        for (uint64_t block = 0; block < blocks; ++block)
            streaming.expected_units.push_back(
                {block, 0u});

        core::DecodeStats stats;
        std::map<uint64_t, core::BlockVersions> units;
        double secs = bestOfThree([&] {
            core::StreamingDecoder session(partition, params,
                                           streaming);
            for (size_t i = 0;
                 i < reads.size() && !session.complete();
                 i += kStreamChunk) {
                std::vector<sim::Read> chunk(
                    reads.begin() + i,
                    reads.begin() +
                        std::min(reads.size(), i + kStreamChunk));
                session.feed(chunk);
            }
            stats = core::DecodeStats{};
            units = session.finish(&stats);
        });
        stream_seconds.push_back(secs);

        bool same = true;
        for (const auto &[block, baseline_versions] : baseline_units) {
            auto it = units.find(block);
            auto base_zero = baseline_versions.versions.find(0);
            if (base_zero == baseline_versions.versions.end())
                continue;
            if (it == units.end() ||
                !it->second.versions.count(0) ||
                it->second.versions.at(0) != base_zero->second) {
                same = false;
                break;
            }
        }
        if (t == 0) {
            stream_consumed = stats.reads_consumed;
            stream_skipped = stats.reads_skipped;
            stream_early = stats.units_emitted_early;
        } else {
            // Reads-consumed-at-completion is part of the
            // determinism contract, not just the payload bytes.
            same = same && stats.reads_consumed == stream_consumed;
        }
        stream_identical = stream_identical && same;
        std::printf("%8zu  %10.3f  %11.2fx  %10zu  %9s\n", threads,
                    secs, seconds[t] / secs, stats.reads_consumed,
                    same ? "yes" : "NO");
    }
    const double consumed_fraction =
        reads.empty() ? 0.0
                      : static_cast<double>(stream_consumed) /
                            static_cast<double>(reads.size());
    std::printf("\nearly units: %zu/%zu, consumed %zu/%zu reads "
                "(%.0f%%)\n",
                stream_early, blocks, stream_consumed, reads.size(),
                100.0 * consumed_fraction);
    if (!stream_identical) {
        std::fprintf(stderr, "FAIL: streaming decode diverged from "
                             "the one-shot baseline\n");
        return 1;
    }

    // Untimed traced run: every request sampled, spans exported as
    // Chrome trace-event JSON. Kept out of every timed loop so the
    // recorded numbers always describe the sampling-off hot path.
    if (!trace_out.empty()) {
        telemetry::TraceCollectorConfig trace_config;
        trace_config.sample_every = 1;
        telemetry::TraceCollector collector(trace_config);
        core::DecodeServiceParams service_params;
        service_params.threads = 4;
        service_params.tracer = &collector;
        {
            core::DecodeService service(service_params);
            std::vector<core::DecodeRequest> batch(parts);
            for (size_t p = 0; p < parts; ++p) {
                batch[p].decoder = decoders[p].get();
                batch[p].reads = part_reads[p];
            }
            std::vector<std::future<core::DecodeOutcome>> futures =
                service.submitBatch(std::move(batch));
            for (std::future<core::DecodeOutcome> &future : futures)
                (void)future.get();
        }
        std::FILE *trace_file = std::fopen(trace_out.c_str(), "w");
        if (!trace_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         trace_out.c_str());
            return 1;
        }
        const std::string chrome = collector.exportChromeJson();
        std::fwrite(chrome.data(), 1, chrome.size(), trace_file);
        std::fclose(trace_file);
        std::printf("\nwrote %s (%zu traces)\n", trace_out.c_str(),
                    collector.traceCount());
    }

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    // Arena high-water marks across the whole process: how much
    // scratch the per-read kernels ever reserved, and proof the
    // steady-state loops stopped growing it.
    const ArenaGlobalStats arena_stats = Arena::globalStats();
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"decode_scaling\",\n");
    std::fprintf(out, "  \"isa\": \"%s\",\n",
                 simd::isaName(simd::activeIsa()));
    std::fprintf(out, "  \"arena_chunks_allocated\": %llu,\n",
                 static_cast<unsigned long long>(
                     arena_stats.chunks_allocated));
    std::fprintf(out, "  \"arena_bytes_reserved\": %llu,\n",
                 static_cast<unsigned long long>(
                     arena_stats.bytes_reserved));
    std::fprintf(out,
                 "  \"tracing_enabled_in_timed_sections\": false,\n");
    std::fprintf(out, "  \"corpus_blocks\": %zu,\n", blocks);
    std::fprintf(out, "  \"reads\": %zu,\n", reads.size());
    std::fprintf(out, "  \"units_decoded\": %zu,\n",
                 baseline_stats.units_decoded);
    std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"identical_across_threads\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(out, "  \"results\": [\n");
    for (size_t i = 0; i < seconds.size(); ++i) {
        std::fprintf(out,
                     "    {\"threads\": %zu, \"seconds\": %.4f, "
                     "\"speedup\": %.3f}%s\n",
                     thread_counts[i], seconds[i],
                     seconds.front() / seconds[i],
                     i + 1 < seconds.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"batch_partitions\": %zu,\n", parts);
    std::fprintf(out, "  \"batch_blocks_per_partition\": %zu,\n",
                 part_blocks);
    std::fprintf(out, "  \"batch_identical_across_threads\": %s,\n",
                 batch_identical ? "true" : "false");
    std::fprintf(out, "  \"batch_results\": [\n");
    for (size_t i = 0; i < batch_seconds.size(); ++i) {
        std::fprintf(out,
                     "    {\"threads\": %zu, \"seconds\": %.4f, "
                     "\"speedup\": %.3f, \"blocks_per_sec\": %.1f}%s\n",
                     thread_counts[i], batch_seconds[i],
                     batch_seconds.front() / batch_seconds[i],
                     static_cast<double>(parts * part_blocks) /
                         batch_seconds[i],
                     i + 1 < batch_seconds.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"streaming_chunk_reads\": %zu,\n",
                 kStreamChunk);
    std::fprintf(out, "  \"streaming_reads_consumed\": %zu,\n",
                 stream_consumed);
    std::fprintf(out, "  \"streaming_reads_skipped\": %zu,\n",
                 stream_skipped);
    std::fprintf(out, "  \"streaming_units_early\": %zu,\n",
                 stream_early);
    std::fprintf(out, "  \"streaming_consumed_fraction\": %.3f,\n",
                 consumed_fraction);
    std::fprintf(out,
                 "  \"streaming_identical_across_threads\": %s,\n",
                 stream_identical ? "true" : "false");
    std::fprintf(out, "  \"streaming_results\": [\n");
    for (size_t i = 0; i < stream_seconds.size(); ++i) {
        std::fprintf(
            out,
            "    {\"threads\": %zu, \"seconds\": %.4f, "
            "\"speedup_vs_oneshot\": %.3f}%s\n",
            thread_counts[i], stream_seconds[i],
            seconds[i] / stream_seconds[i],
            i + 1 < stream_seconds.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"tenant_batches_per_tenant\": %zu,\n",
                 tenant_batches);
    if (tenant_batches > 0) {
        std::fprintf(out, "  \"tenant_weights\": [3, 1],\n");
        std::fprintf(out,
                     "  \"tenant_contended_dispatches\": [%zu, %zu],\n",
                     contended_heavy, contended_light);
        std::fprintf(out, "  \"tenant_dispatch_ratio\": %.3f,\n",
                     tenant_ratio);
        std::fprintf(out, "  \"tenant_fair_within_one\": %s,\n",
                     tenant_fair ? "true" : "false");
        std::fprintf(out,
                     "  \"tenant_results\": {\"threads\": 4, "
                     "\"seconds\": %.4f, \"blocks_per_sec\": %.1f}\n",
                     tenant_seconds,
                     static_cast<double>(2 * tenant_batches *
                                         part_blocks) /
                         tenant_seconds);
    } else {
        std::fprintf(out, "  \"tenant_results\": null\n");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
