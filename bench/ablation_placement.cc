/**
 * @file
 * Ablation of Section 5.3 (Figures 6-8): where should updates live
 * in the address space?
 *
 *   Fig 6 — dedicated update partition: reading one updated block
 *           costs one precise PCR on the data partition PLUS reading
 *           the entire shared update log (all updates of all files).
 *   Fig 7 — updates share the data partition's address space (two
 *           stacks): one PCR retrieves data+updates, but the scope
 *           is the whole partition.
 *   Fig 8 — interleaved version slots (ours): one precise PCR
 *           retrieves exactly the block and its updates.
 *
 * The bench measures, for each placement, the fraction of sequencing
 * output that is useful when reading one updated block, and the
 * number of PCR round trips.
 */

#include <cstdio>

#include "alice_experiment.h"
#include "sim/sequencer.h"

namespace {

using namespace dnastore;

} // namespace

int
main()
{
    std::printf("=== Ablation: update placement (Figures 6-8) ===\n\n");
    bench::AliceExperiment experiment = bench::makeAliceExperiment();
    const uint64_t target = 531;
    const double total_updates_in_pool = 90.0;  // 6 blocks x 15, ours

    // Useful molecules for an updated-block read: 15 data + 15 update.
    const double useful = 30.0;
    const double partition_molecules =
        static_cast<double>(experiment.alice_data_strands +
                            experiment.twist_update_strands +
                            experiment.idt_update_strands);

    // --- Fig 6: dedicated update partition. --------------------------
    // Precise PCR gets the data block (measured purity below), but
    // the updates must be fetched by reading the whole update
    // partition, which holds updates from EVERY file. Model a pool
    // where 13 files each logged as many updates as Alice did.
    double update_log_molecules = total_updates_in_pool * 13.0;
    double fig6_output = useful / 2.0 / 0.48       // precise data read
                         + update_log_molecules;   // whole update log
    double fig6_useful_fraction = useful / fig6_output;

    // --- Fig 7: shared address space (two stacks). --------------------
    // One PCR with the main primers retrieves everything under the
    // pair: all data + this partition's updates.
    double fig7_output = partition_molecules;
    double fig7_useful_fraction = useful / fig7_output;

    // --- Fig 8: interleaved version slots (ours, measured). -----------
    sim::Pool partition_pool =
        bench::amplifyAlicePartition(experiment, experiment.mixed_pool);
    sim::Pool accessed =
        bench::blockAccessPcr(experiment, partition_pool, {target});
    sim::SequencerParams sequencer;
    std::vector<sim::Read> reads =
        sim::sequencePool(accessed, 50000, sequencer);
    size_t useful_reads = 0;
    for (const sim::Read &read : reads) {
        const sim::Species &species =
            accessed.species()[read.species_index];
        if (species.info.file_id == 13 &&
            species.info.block == target && !species.info.misprimed) {
            ++useful_reads;
        }
    }
    double fig8_useful_fraction =
        static_cast<double>(useful_reads) / 50000.0;

    std::printf("%-34s %14s %12s %12s\n", "placement", "useful reads",
                "waste", "round trips");
    std::printf("%-34s %13.2f%% %11.0fx %12s\n",
                "Fig 6: dedicated update partition",
                100.0 * fig6_useful_fraction,
                1.0 / fig6_useful_fraction - 1.0, "2");
    std::printf("%-34s %13.2f%% %11.0fx %12s\n",
                "Fig 7: shared space (two stacks)",
                100.0 * fig7_useful_fraction,
                1.0 / fig7_useful_fraction - 1.0, "1");
    std::printf("%-34s %13.2f%% %11.2fx %12s\n",
                "Fig 8: interleaved slots (ours)",
                100.0 * fig8_useful_fraction,
                1.0 / fig8_useful_fraction - 1.0, "1");

    std::printf("\nExpected shape: Fig 6 reads every update ever "
                "logged anywhere; Fig 7 reads the whole partition; "
                "Fig 8 reads ~2 blocks' worth and keeps the 4x bound "
                "on per-block concentration imbalance "
                "(Section 5.3).\n");
    return 0;
}
