/**
 * @file
 * Reproduces Figure 3: storage capacity (log2 bytes) and information
 * density (bits/base) of a single partition as a function of index
 * length, for 20- and 30-base primers on 150-base strands.
 *
 * Expected shape: capacity climbs monotonically to 2^217 bytes at
 * L = 110 (presence encoding), crossing the world's data (~2^77 B)
 * before L = 40; density starts at ~1.47 bits/base and decays
 * linearly; 30-base primers are strictly worse on both axes.
 */

#include <cstdio>

#include "core/capacity.h"

int
main()
{
    using dnastore::core::CapacityPoint;
    using dnastore::core::capacityCurve;

    std::printf("=== Figure 3: partition capacity & density vs index "
                "length (150-base strands) ===\n\n");
    std::printf("%5s  %18s  %14s  %18s  %14s\n", "L",
                "cap log2(B) p=20", "bits/base p=20",
                "cap log2(B) p=30", "bits/base p=30");

    auto curve20 = capacityCurve(150, 20);
    auto curve30 = capacityCurve(150, 30);
    for (size_t L = 0; L <= 110; L += 5) {
        const CapacityPoint &p20 = curve20[L];
        std::printf("%5zu  %18.2f  %14.4f", L, p20.capacity_bytes_log2,
                    p20.bits_per_base);
        if (L < curve30.size()) {
            const CapacityPoint &p30 = curve30[L];
            std::printf("  %18.2f  %14.4f\n", p30.capacity_bytes_log2,
                        p30.bits_per_base);
        } else {
            std::printf("  %18s  %14s\n", "-", "-");
        }
    }

    // Headline checkpoints called out in the paper text.
    std::printf("\nCheckpoints:\n");
    std::printf("  max capacity (L=110, p=20): 2^%.0f bytes "
                "(paper: 2^217)\n",
                curve20[110].capacity_bytes_log2);
    std::printf("  max density  (L=0,  p=20): %.3f bits/base\n",
                curve20[0].bits_per_base);
    size_t crossing = 0;
    for (const CapacityPoint &point : curve20) {
        if (point.capacity_bytes_log2 > 77.0) {
            crossing = point.index_length;
            break;
        }
    }
    std::printf("  world's-data (2^77 B) crossing at L=%zu\n", crossing);
    std::printf("  density loss of 10-base sparse index vs 5-base "
                "dense: %.1f%% (paper: ~3%% of total)\n",
                100.0 * (1.0 - curve20[10].bits_per_base /
                                   curve20[5].bits_per_base));
    return 0;
}
