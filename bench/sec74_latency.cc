/**
 * @file
 * Reproduces the Section 7.4 latency analysis: how block-precise
 * access translates into retrieval-latency reduction on fixed-run
 * NGS machines vs streaming Nanopore devices.
 *
 * Expected shape:
 *  - NGS, partition fits in one run: no latency reduction (a run is
 *    a run);
 *  - NGS, large partitions: runs scale with partition size for the
 *    baseline but stay ~1 for block access -> linear reduction (the
 *    paper's 1TB example needs ~1000 MiSeq runs);
 *  - Nanopore: latency is read-count-proportional at every scale ->
 *    always the full ~141x reduction.
 */

#include <cstdio>
#include <initializer_list>

#include "core/latency.h"

int
main()
{
    using namespace dnastore::core;

    std::printf("=== Section 7.4: sequencing latency ===\n\n");

    // Measured access quality (Figure 9 bench): baseline retrieves
    // the whole partition; block access has ~48%% useful output.
    const double coverage = 30.0;
    const double block_molecules = 30.0;  // data + update
    const double useful_fraction = 0.48;

    NgsModel miseq;
    miseq.reads_per_run = 25e6;
    miseq.hours_per_run = 24.0;
    NanoporeModel nanopore;
    nanopore.reads_per_hour = 2e6;

    std::printf("%14s %12s %12s %9s %12s %12s %9s\n",
                "partition", "NGS base(h)", "NGS block(h)", "NGS x",
                "ONT base(h)", "ONT block(h)", "ONT x");
    // Partition sizes in molecules, from the wetlab's 8850 up to a
    // 1TB-scale partition (~4e10 molecules at 24B/molecule).
    for (double molecules :
         {8.85e3, 1e6, 1e8, 1e9, 4.2e10}) {
        double base_reads = molecules * coverage;
        double block_reads =
            readsNeeded(block_molecules, coverage, useful_fraction);

        double ngs_base = miseq.latencyHours(base_reads);
        double ngs_block = miseq.latencyHours(block_reads);
        double ont_base = nanopore.latencyHours(base_reads);
        double ont_block = nanopore.latencyHours(block_reads);
        std::printf("%14.3g %12.1f %12.1f %9.1f %12.3g %12.3g %9.0f\n",
                    molecules, ngs_base, ngs_block,
                    ngs_base / ngs_block, ont_base, ont_block,
                    ont_base / ont_block);
    }

    std::printf("\nExpected shape: the NGS column shows no reduction "
                "until the partition outgrows one run, then scales "
                "to ~%.0fx (the paper's 1TB example: ~1000 runs -> "
                "1); Nanopore shows the full reduction at every "
                "size because sequencing stops once the block "
                "decodes (~141x at wetlab scale).\n",
                miseq.latencyHours(4.2e10 * coverage) /
                    miseq.latencyHours(readsNeeded(
                        block_molecules, coverage, useful_fraction)));
    return 0;
}
