/**
 * @file
 * Trace-driven workload SLO benchmark.
 *
 * Part 1 replays a seeded three-class workload (heavy / standard /
 * bursty tenants, zipfian objects, Poisson + on-off arrivals) against
 * a DecodeService under the virtual clock — twice — and records the
 * per-class SLO aggregates (offered/admitted/goodput, p50/p99/p999
 * queue latency) plus a `deterministic` flag: both runs must produce
 * identical report fingerprints and dispatch sequences. A determinism
 * break here is treated like a correctness failure, the same way
 * decode_scaling treats cross-thread divergence.
 *
 * Part 2 scripts a saturated two-tenant backlog (WDRR weights 3:1,
 * every op at t = 0) plus a token-bucket-throttled third tenant, and
 * records the exact dispatch ratio and goodputs. Under the virtual
 * clock these are integers-in, integers-out: the ratio must be
 * exactly weights-shaped and the throttled goodput exactly
 * burst/offered.
 *
 * Output: BENCH_workload.json, gated by compare_bench.py's
 * --workload-baseline/--workload-fresh arm (p99 ratio + goodput
 * deltas + saturation ratio). The virtual clock makes every recorded
 * number independent of machine speed; only libm rounding in the
 * arrival-time exponentials can differ across toolchains, which the
 * gate's tolerances absorb.
 *
 * With --trace-out PATH the replay also samples every request into a
 * TraceCollector driven by the simulation clock and writes the kept
 * traces as Chrome trace-event JSON (open in Perfetto or
 * chrome://tracing); the SLO tables then carry each tenant's slowest
 * sampled trace. Tracing rides the same virtual clock, so the
 * deterministic flag is unaffected.
 *
 * Usage: workload_slo [--out PATH] [--duration-us N] [--seed N]
 *                     [--trace-out PATH]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/decoder.h"
#include "core/partition.h"
#include "dna/sequence.h"
#include "workload/generator.h"
#include "workload/simulator.h"
#include "workload/slo_report.h"

namespace {

using namespace dnastore;

/** The benchmark's tenant mix: 4 heavy, 12 standard, 6 bursty. */
workload::WorkloadParams
benchWorkload(uint64_t seed, uint64_t duration_us)
{
    workload::WorkloadParams wp;
    wp.seed = seed;
    wp.duration_us = duration_us;
    wp.objects = 512;
    wp.zipf_s = 0.99;

    workload::TenantClass heavy;
    heavy.name = "heavy";
    heavy.count = 4;
    heavy.arrivals.rate_per_sec = 300.0;
    heavy.mix = {0.9, 0.08, 0.02};
    heavy.admission.weight = 4;
    wp.classes.push_back(heavy);

    workload::TenantClass standard;
    standard.name = "standard";
    standard.count = 12;
    standard.arrivals.rate_per_sec = 100.0;
    standard.mix = {0.8, 0.15, 0.05};
    wp.classes.push_back(standard);

    workload::TenantClass bursty;
    bursty.name = "bursty";
    bursty.count = 6;
    bursty.arrivals.kind = workload::ArrivalProcess::Kind::OnOff;
    bursty.arrivals.rate_per_sec = 400.0;
    bursty.arrivals.mean_on_us = 30'000;
    bursty.arrivals.mean_off_us = 90'000;
    bursty.admission.rate = 120.0;
    bursty.admission.burst = 20.0;
    wp.classes.push_back(bursty);
    return wp;
}

void
printOptionalUs(std::FILE *out, const char *key,
                const std::optional<uint64_t> &value, const char *tail)
{
    if (value)
        std::fprintf(out, "\"%s\": %llu%s", key,
                     static_cast<unsigned long long>(*value), tail);
    else
        std::fprintf(out, "\"%s\": null%s", key, tail);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_workload.json";
    std::string trace_out;
    uint64_t duration_us = 1'000'000;
    uint64_t seed = 20260808;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0)
            out_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--duration-us") == 0)
            duration_us = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--trace-out") == 0)
            trace_out = argv[i + 1];
    }

    // A minimal real decoder: the virtual-mode simulator submits
    // empty read sets, so geometry is irrelevant, but DecodeService
    // requires a live Decoder per request.
    core::PartitionConfig config;
    core::Partition partition(
        config, dna::Sequence("ACTGAGGTCTGCCTGAAGTC"),
        dna::Sequence("TGAACGCGGTATTGCAGACC"), 13);
    core::DecoderParams decoder_params;
    decoder_params.threads = 1;
    core::Decoder decoder(partition, decoder_params);

    workload::SimulatorParams sp;
    sp.clock = workload::SimulatorParams::Clock::Virtual;
    sp.decoder = &decoder;
    sp.virtual_service_time_us = 400;
    sp.record_dispatches = true;
    if (!trace_out.empty())
        sp.trace_sample_every = 1;

    // --- Part 1: seeded mixed workload, run twice ---------------------
    std::printf("=== workload SLO (virtual clock) ===\n\n");
    const workload::WorkloadParams wp = benchWorkload(seed, duration_us);
    workload::SimResult first = workload::runSimulation(wp, sp);
    workload::SimResult second = workload::runSimulation(wp, sp);
    const bool deterministic =
        first.trace_fingerprint == second.trace_fingerprint &&
        first.report_fingerprint == second.report_fingerprint &&
        first.dispatches == second.dispatches;
    std::printf("ops=%zu tenants=%zu deterministic=%s\n",
                first.ops_submitted, first.report.tenants.size(),
                deterministic ? "yes" : "NO");
    if (!deterministic)
        std::fprintf(stderr, "FAIL: virtual replay diverged between "
                             "identical runs\n");
    std::printf("%s\n", first.report.formatTable().c_str());

    struct ClassRow
    {
        std::string name;
        size_t tenants;
        workload::TenantSlo slo;
    };
    std::vector<ClassRow> classes;
    for (size_t c = 0; c < wp.classes.size(); ++c) {
        const auto ids = workload::classTenantIds(wp, c);
        classes.push_back(
            {wp.classes[c].name, ids.size(),
             workload::aggregateSlo(first.metrics, ids,
                                    static_cast<core::TenantId>(c))});
    }

    // --- Part 2: scripted saturation, exact WDRR ratio ----------------
    std::printf("=== scripted saturation (weights 3:1) ===\n\n");
    workload::Trace sat;
    for (uint64_t i = 0; i < 300; ++i)
        sat.push_back({0, 1, 0, workload::OpType::Read, i});
    for (uint64_t i = 0; i < 100; ++i)
        sat.push_back({0, 2, 0, workload::OpType::Read, i});
    for (uint64_t i = 0; i < 100; ++i)
        sat.push_back({0, 3, 0, workload::OpType::Read, i});
    std::map<core::TenantId, core::TenantParams> admission;
    admission[1].weight = 3;
    admission[2].weight = 1;
    admission[3].weight = 1;
    admission[3].burst = 25.0;  // rate 0: admits exactly 25 of 100
    workload::SimResult sat_result =
        workload::replayTrace(sat, admission, {1, 2, 3}, sp);

    const workload::TenantSlo &sat_heavy = sat_result.report.tenants[0];
    const workload::TenantSlo &sat_light = sat_result.report.tenants[1];
    const workload::TenantSlo &sat_throttled =
        sat_result.report.tenants[2];
    const double dispatch_ratio =
        sat_light.dispatched == 0
            ? 0.0
            : static_cast<double>(sat_heavy.dispatched) /
                  static_cast<double>(sat_light.dispatched);
    std::printf("dispatch ratio %.3f  goodputs %.3f / %.3f / %.3f\n",
                dispatch_ratio, sat_heavy.goodput(),
                sat_light.goodput(), sat_throttled.goodput());
    std::printf("%s\n", sat_result.report.formatTable().c_str());

    // --- Chrome trace export ------------------------------------------
    if (!trace_out.empty()) {
        std::FILE *trace_file = std::fopen(trace_out.c_str(), "w");
        if (!trace_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         trace_out.c_str());
            return 1;
        }
        const std::string chrome =
            first.traces ? first.traces->exportChromeJson() : "";
        std::fwrite(chrome.data(), 1, chrome.size(), trace_file);
        std::fclose(trace_file);
        std::printf("wrote %s (%zu traces)\n", trace_out.c_str(),
                    first.traces ? first.traces->traceCount()
                                 : size_t{0});
    }

    // --- JSON ---------------------------------------------------------
    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"workload_slo\",\n");
    std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"tracing_enabled\": %s,\n",
                 trace_out.empty() ? "false" : "true");
    std::fprintf(out, "  \"virtual\": {\n");
    std::fprintf(out, "    \"seed\": %llu,\n",
                 static_cast<unsigned long long>(wp.seed));
    std::fprintf(out, "    \"duration_us\": %llu,\n",
                 static_cast<unsigned long long>(wp.duration_us));
    std::fprintf(out, "    \"service_time_us\": %llu,\n",
                 static_cast<unsigned long long>(
                     sp.virtual_service_time_us));
    std::fprintf(out, "    \"ops\": %zu,\n", first.ops_submitted);
    std::fprintf(out, "    \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(out, "    \"trace_fingerprint\": \"%llx\",\n",
                 static_cast<unsigned long long>(
                     first.trace_fingerprint));
    std::fprintf(out, "    \"report_fingerprint\": \"%llx\",\n",
                 static_cast<unsigned long long>(
                     first.report_fingerprint));
    std::fprintf(out, "    \"classes\": [\n");
    for (size_t c = 0; c < classes.size(); ++c) {
        const ClassRow &row = classes[c];
        std::fprintf(out,
                     "      {\"name\": \"%s\", \"tenants\": %zu, "
                     "\"offered\": %llu, \"admitted\": %llu, "
                     "\"throttled\": %llu, \"rejected\": %llu, "
                     "\"goodput\": %.4f, ",
                     row.name.c_str(), row.tenants,
                     static_cast<unsigned long long>(row.slo.offered),
                     static_cast<unsigned long long>(row.slo.admitted),
                     static_cast<unsigned long long>(row.slo.throttled),
                     static_cast<unsigned long long>(row.slo.rejected),
                     row.slo.goodput());
        printOptionalUs(out, "p50_us", row.slo.p50_us, ", ");
        printOptionalUs(out, "p99_us", row.slo.p99_us, ", ");
        printOptionalUs(out, "p999_us", row.slo.p999_us,
                        c + 1 < classes.size() ? "},\n" : "}\n");
    }
    std::fprintf(out, "    ]\n");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"saturation\": {\n");
    std::fprintf(out, "    \"weights\": [3, 1],\n");
    std::fprintf(out, "    \"dispatch_ratio\": %.4f,\n",
                 dispatch_ratio);
    std::fprintf(out, "    \"heavy_goodput\": %.4f,\n",
                 sat_heavy.goodput());
    std::fprintf(out, "    \"light_goodput\": %.4f,\n",
                 sat_light.goodput());
    std::fprintf(out, "    \"throttled_goodput\": %.4f,\n",
                 sat_throttled.goodput());
    std::fprintf(out, "    ");
    printOptionalUs(out, "heavy_p99_us", sat_heavy.p99_us, "\n");
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
    return deterministic ? 0 : 1;
}
