/**
 * @file
 * Ablation of the Section 4.3 index construction: what does each
 * ingredient of the PCR-navigable tree buy?
 *
 * Compares three indexing schemes for a 1024-block partition:
 *   dense      — base-4 digits mapped straight to bases (prior work)
 *   sparse     — randomized edges + GC-complementary spacers (ours)
 *
 * Reported per scheme:
 *   - PCR-viability of the elongated primers (GC balance of every
 *     elongation, homopolymer runs) — the paper's hard requirement;
 *   - minimum/average pairwise Hamming distance between indexes;
 *   - measured mispriming: mass fraction of wrong-block amplicons
 *     after elongated-primer PCR for sample targets.
 */

#include <cstdio>
#include <vector>

#include "codec/base4.h"
#include "dna/analysis.h"
#include "dna/distance.h"
#include "index/sparse_index.h"
#include "primer/elongation.h"
#include "primer/library.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"

namespace {

using namespace dnastore;

constexpr size_t kDepth = 5;
constexpr uint64_t kBlocks = 587;

/** Dense physical index: digits straight to bases (5 bases). */
dna::Sequence
denseIndex(uint64_t block)
{
    codec::Digits digits = codec::toBase4(block, kDepth);
    std::vector<dna::Base> bases;
    for (uint8_t digit : digits)
        bases.push_back(static_cast<dna::Base>(digit));
    return dna::Sequence(bases);
}

struct SchemeReport
{
    double viable_fraction = 0.0;
    double min_distance = 0.0;
    double avg_distance = 0.0;
    double misprime_fraction = 0.0;
};

SchemeReport
evaluate(const std::vector<dna::Sequence> &indexes,
         const dna::Sequence &fwd, const dna::Sequence &rev)
{
    SchemeReport report;
    primer::ElongationBuilder builder(fwd, dna::Base::A);

    // Primer viability of every elongation.
    size_t viable = 0;
    for (const dna::Sequence &index : indexes) {
        primer::ElongationReport elongation =
            primer::validateElongations(builder, index);
        if (elongation.worst_gc_deviation <= 1.0 &&
            elongation.worst_homopolymer <= 3) {
            ++viable;
        }
    }
    report.viable_fraction =
        static_cast<double>(viable) / static_cast<double>(indexes.size());

    // Pairwise distances (sampled).
    size_t min_dist = SIZE_MAX;
    double total = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i < indexes.size(); i += 7) {
        for (size_t j = i + 1; j < indexes.size(); j += 11) {
            size_t d = dna::hammingDistance(indexes[i], indexes[j]);
            min_dist = std::min(min_dist, d);
            total += static_cast<double>(d);
            ++pairs;
        }
    }
    report.min_distance = static_cast<double>(min_dist);
    report.avg_distance = total / static_cast<double>(pairs);

    // Mispriming: synthesize one strand per block (index + filler
    // payload), run elongated PCR for sample targets, and measure
    // how much amplified mass belongs to other blocks.
    std::vector<sim::DesignedMolecule> order;
    dna::Sequence rev_site = rev.reverseComplement();
    for (uint64_t block = 0; block < indexes.size(); ++block) {
        sim::DesignedMolecule molecule;
        dna::Sequence payload;
        uint64_t value = block * 2654435761u;
        for (int k = 0; k < 40; ++k) {
            payload.push_back(
                static_cast<dna::Base>((value >> (k % 32)) & 3));
        }
        molecule.seq =
            fwd + dna::Sequence(1, dna::Base::A) + indexes[block] +
            payload + rev_site;
        molecule.info.block = block;
        order.push_back(std::move(molecule));
    }
    sim::SynthesisParams synthesis;
    sim::Pool pool = sim::synthesize(order, synthesis);

    double misprime_total = 0.0;
    const std::vector<uint64_t> targets = {3, 144, 307, 531, 580};
    for (uint64_t target : targets) {
        dna::Sequence primer =
            fwd + dna::Sequence(1, dna::Base::A) + indexes[target];
        sim::PcrParams params;
        params.cycles = 28;
        params.stringency = sim::touchdownSchedule(10, 28, 3.0);
        sim::Pool out =
            sim::runPcr(pool, {{primer, 1.0}}, rev, params);
        double wrong = out.massFraction([&](const sim::Species &s) {
            return s.info.block != target;
        });
        misprime_total += wrong;
    }
    report.misprime_fraction =
        misprime_total / static_cast<double>(targets.size());
    return report;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: dense vs PCR-navigable sparse indexes "
                "(Section 4.3) ===\n\n");

    primer::Constraints constraints;
    primer::LibraryGenerator library(20, constraints, 77);
    auto primers = library.generate(100000, 2).primers;
    dna::Sequence fwd = primers[0];
    dna::Sequence rev = primers[1];

    std::vector<dna::Sequence> dense, sparse;
    index::SparseIndexTree tree(0x1dc0ffee, kDepth);
    for (uint64_t block = 0; block < kBlocks; ++block) {
        dense.push_back(denseIndex(block));
        sparse.push_back(tree.leafIndex(block));
    }

    std::printf("%-8s %10s %10s %10s %12s\n", "scheme", "viable%",
                "min dist", "avg dist", "misprime%");
    for (auto &[name, indexes] :
         std::vector<std::pair<const char *,
                               std::vector<dna::Sequence> *>>{
             {"dense", &dense}, {"sparse", &sparse}}) {
        SchemeReport report = evaluate(*indexes, fwd, rev);
        std::printf("%-8s %9.1f%% %10.0f %10.2f %11.1f%%\n", name,
                    100.0 * report.viable_fraction, report.min_distance,
                    report.avg_distance,
                    100.0 * report.misprime_fraction);
    }

    std::printf("\nExpected shape: dense indexes are mostly not even "
                "viable as primers (GC/homopolymer violations), sit "
                "at minimum distance 1, and misprime heavily; the "
                "sparse tree is ~100%% viable, doubles the average "
                "distance, and cuts mispriming to a small fraction "
                "(paper Section 4.3).\n");
    return 0;
}
