/**
 * @file
 * Reproduces Figure 9: the distribution of sequencing reads across
 * blocks after three kinds of PCR random access on the Alice pool.
 *
 *  (a) main-partition primers: all 587 blocks uniformly represented
 *      (within ~2x); updated blocks 144/307/531 stand out at ~2x
 *      because data + update were synthesized together; the target
 *      block 531 holds only ~0.34% of reads.
 *  (b) elongated primer for block 531: ~18% of reads from leftover
 *      main primers, and of the rest, the majority are true copies
 *      of block 531 (~48% of all reads in the paper).
 *  (c) same for block 144.
 *
 * Also runs the multiplexed reaction with all three primers at once
 * (Section 6.5): all three targets must dominate together.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "alice_experiment.h"
#include "dna/distance.h"
#include "sim/sequencer.h"

namespace {

using namespace dnastore;
using bench::AliceExperiment;

struct AccessBreakdown
{
    size_t reads = 0;
    size_t leftover = 0;        // no elongated prefix
    size_t with_prefix = 0;     // carries the target prefix
    size_t target_true = 0;     // provenance == target block
    size_t target_updates = 0;  // provenance == target's update
    std::map<uint64_t, size_t> per_block;
};

/** Classify reads the way Section 7.2 does. */
AccessBreakdown
classify(const AliceExperiment &experiment,
         const std::vector<sim::Read> &reads, const sim::Pool &pool,
         uint64_t target)
{
    AccessBreakdown result;
    result.reads = reads.size();
    dna::Sequence elongated = experiment.alice->blockPrimer(target);
    for (const sim::Read &read : reads) {
        const sim::Species &species = pool.species()[read.species_index];
        if (species.info.file_id == 13)
            ++result.per_block[species.info.block];

        // A read "has the target prefix" when its leading window is
        // within sequencing noise of the elongated primer (the
        // paper's 82%/18% split of Section 7.2).
        dna::Sequence window = read.seq.substr(0, elongated.size());
        if (dna::bandedLevenshtein(window, elongated, 2) ==
            dna::kDistanceInfinity) {
            ++result.leftover;
            continue;
        }
        ++result.with_prefix;
        if (species.info.block == target &&
            species.info.file_id == 13 && !species.info.misprimed) {
            if (species.info.version == 0)
                ++result.target_true;
            else
                ++result.target_updates;
        }
    }
    return result;
}

void
printDistribution(const char *title, const AccessBreakdown &breakdown,
                  uint64_t target)
{
    std::printf("%s\n", title);
    if (breakdown.per_block.empty()) {
        std::printf("  (no partition reads)\n");
        return;
    }
    std::vector<std::pair<uint64_t, size_t>> blocks(
        breakdown.per_block.begin(), breakdown.per_block.end());
    std::sort(blocks.begin(), blocks.end(),
              [](auto &a, auto &b) { return a.second > b.second; });

    size_t partition_reads = 0;
    for (auto &[block, count] : blocks)
        partition_reads += count;
    std::printf("  reads mapping to the Alice partition: %zu\n",
                partition_reads);
    std::printf("  top blocks by read count:\n");
    for (size_t i = 0; i < std::min<size_t>(8, blocks.size()); ++i) {
        std::printf("    block %4lu : %6zu reads (%.2f%%)%s\n",
                    static_cast<unsigned long>(blocks[i].first),
                    blocks[i].second,
                    100.0 * static_cast<double>(blocks[i].second) /
                        static_cast<double>(breakdown.reads),
                    blocks[i].first == target ? "   <-- target" : "");
    }
}

} // namespace

int
main()
{
    std::printf("=== Figure 9: read distribution after PCR random "
                "access ===\n\n");
    std::printf("Building the Section 6 experiment (13 files, Alice = "
                "587 blocks, 6 updates)...\n");
    AliceExperiment experiment = bench::makeAliceExperiment();
    std::printf("  Twist pool: %zu species;  IDT pool: %zu species\n\n",
                experiment.twist_pool.speciesCount(),
                experiment.idt_pool.speciesCount());

    sim::SequencerParams sequencer;
    const size_t kReads = 50000;

    // ---------- (a) whole-partition random access -------------------
    sim::Pool partition_pool =
        bench::amplifyAlicePartition(experiment, experiment.mixed_pool);
    std::vector<sim::Read> reads_a =
        sim::sequencePool(partition_pool, kReads, sequencer);

    std::map<uint64_t, size_t> hist;
    size_t alice_reads = 0;
    for (const sim::Read &read : reads_a) {
        const sim::Species &species =
            partition_pool.species()[read.species_index];
        if (species.info.file_id == 13) {
            ++hist[species.info.block];
            ++alice_reads;
        }
    }
    size_t updated_reads = 0, min_count = SIZE_MAX, max_count = 0;
    double plain_mean = 0.0;
    size_t plain_blocks = 0;
    for (auto &[block, count] : hist) {
        bool updated =
            std::count(bench::kTwistUpdatedBlocks.begin(),
                       bench::kTwistUpdatedBlocks.end(), block) ||
            std::count(bench::kIdtUpdatedBlocks.begin(),
                       bench::kIdtUpdatedBlocks.end(), block);
        if (updated) {
            updated_reads += count;
        } else {
            plain_mean += static_cast<double>(count);
            ++plain_blocks;
            min_count = std::min(min_count, count);
            max_count = std::max(max_count, count);
        }
    }
    plain_mean /= static_cast<double>(plain_blocks);
    double updated_mean =
        static_cast<double>(updated_reads) / 6.0;

    std::printf("--- Fig 9a: access with main partition primers ---\n");
    std::printf("  Alice reads: %zu / %zu (background files excluded "
                "by the primers)\n",
                alice_reads, kReads);
    std::printf("  blocks observed: %zu / 587\n", hist.size());
    std::printf("  plain blocks: mean %.1f reads, min %zu, max %zu "
                "(max/min = %.2fx; paper: within ~2x)\n",
                plain_mean, min_count, max_count,
                static_cast<double>(max_count) /
                    static_cast<double>(min_count));
    std::printf("  updated blocks (144/307/531/243/374/556): mean "
                "%.1f reads = %.2fx plain (paper: ~2x, data+update)\n",
                updated_mean, updated_mean / plain_mean);
    double target_fraction =
        static_cast<double>(hist[531]) / static_cast<double>(kReads);
    std::printf("  block 531 share: %.3f%% of all reads (paper: "
                "0.34%%) -> baseline wastes %.0fx\n\n",
                100.0 * target_fraction,
                (1.0 - target_fraction) / target_fraction);

    // ---------- (b)/(c) elongated-primer access ----------------------
    for (uint64_t target : {uint64_t{531}, uint64_t{144}}) {
        sim::Pool accessed = bench::blockAccessPcr(
            experiment, partition_pool, {target});
        std::vector<sim::Read> reads =
            sim::sequencePool(accessed, kReads, sequencer);
        AccessBreakdown breakdown =
            classify(experiment, reads, accessed, target);

        char title[96];
        std::snprintf(title, sizeof(title),
                      "--- Fig 9%c: elongated primer for block %lu ---",
                      target == 531 ? 'b' : 'c',
                      static_cast<unsigned long>(target));
        printDistribution(title, breakdown, target);

        double leftover_pct = 100.0 *
                              static_cast<double>(breakdown.leftover) /
                              static_cast<double>(breakdown.reads);
        double prefix_pct = 100.0 *
                            static_cast<double>(breakdown.with_prefix) /
                            static_cast<double>(breakdown.reads);
        size_t target_total =
            breakdown.target_true + breakdown.target_updates;
        double target_of_prefix =
            breakdown.with_prefix
                ? 100.0 * static_cast<double>(target_total) /
                      static_cast<double>(breakdown.with_prefix)
                : 0.0;
        double target_of_all = 100.0 *
                               static_cast<double>(target_total) /
                               static_cast<double>(breakdown.reads);
        std::printf("  leftover-main-primer reads: %.1f%% (paper: "
                    "~18%%)\n",
                    leftover_pct);
        std::printf("  reads with target prefix:   %.1f%% (paper: "
                    "~82%%)\n",
                    prefix_pct);
        std::printf("  of those, true block %lu:   %.1f%% (paper: "
                    "~59%%; rest is mispriming)\n",
                    static_cast<unsigned long>(target),
                    target_of_prefix);
        std::printf("  total useful reads:         %.1f%% (paper: "
                    "~48%%)\n\n",
                    target_of_all);
    }

    // ---------- multiplexed access (Section 6.5) ---------------------
    sim::Pool multiplexed = bench::blockAccessPcr(
        experiment, partition_pool, {144, 307, 531});
    std::vector<sim::Read> reads_m =
        sim::sequencePool(multiplexed, kReads, sequencer);
    std::map<uint64_t, size_t> m_hist;
    for (const sim::Read &read : reads_m) {
        const sim::Species &species =
            multiplexed.species()[read.species_index];
        if (species.info.file_id == 13 && !species.info.misprimed)
            ++m_hist[species.info.block];
    }
    std::printf("--- Multiplexed access for blocks 144+307+531 ---\n");
    size_t triple = m_hist[144] + m_hist[307] + m_hist[531];
    std::printf("  reads from the three targets: %.1f%% of output\n",
                100.0 * static_cast<double>(triple) /
                    static_cast<double>(kReads));
    for (uint64_t block : {144u, 307u, 531u}) {
        std::printf("    block %lu: %zu reads\n",
                    static_cast<unsigned long>(block), m_hist[block]);
    }
    return 0;
}
