/**
 * @file
 * Reproduces Figure 10 and Section 7.6: the number of original and
 * update molecules observed for paragraphs 243, 374 and 556 after
 * mixing the 50000x-concentrated IDT update pool with the original
 * Twist pool, using both protocols of Section 6.4.2.
 *
 * Expected shape: original and update read counts per paragraph are
 * comparable (within ~2x) despite the enormous initial concentration
 * mismatch.
 */

#include <cstdio>
#include <map>

#include "alice_experiment.h"
#include "sim/sequencer.h"

namespace {

using namespace dnastore;

void
reportMix(const char *name, const bench::AliceExperiment &experiment,
          const sim::MixResult &mix)
{
    std::printf("--- %s ---\n", name);
    std::printf("  update-pool dilution applied: %.3g\n", mix.dilution);
    std::printf("  per-molecule update/data concentration ratio: %.2f "
                "(ideal 1.0)\n",
                mix.achieved_ratio);

    sim::SequencerParams sequencer;
    const size_t kReads = 150000;
    std::vector<sim::Read> reads =
        sim::sequencePool(mix.mixed, kReads, sequencer);

    std::map<uint64_t, std::pair<size_t, size_t>> counts;
    for (const sim::Read &read : reads) {
        const sim::Species &species =
            mix.mixed.species()[read.species_index];
        if (species.info.file_id != 13 || species.info.misprimed)
            continue;
        for (uint64_t block : bench::kIdtUpdatedBlocks) {
            if (species.info.block == block) {
                if (species.info.version == 0)
                    ++counts[block].first;
                else
                    ++counts[block].second;
            }
        }
    }
    std::printf("  %10s  %10s  %10s  %8s\n", "paragraph", "original",
                "update", "ratio");
    for (uint64_t block : bench::kIdtUpdatedBlocks) {
        auto [original, update] = counts[block];
        std::printf("  %10lu  %10zu  %10zu  %8.2f\n",
                    static_cast<unsigned long>(block), original, update,
                    original ? static_cast<double>(update) /
                                   static_cast<double>(original)
                             : 0.0);
    }
    std::printf("\n");
    (void)experiment;
}

} // namespace

int
main()
{
    std::printf("=== Figure 10: mixing data and updates at matched "
                "concentrations ===\n\n");
    bench::AliceExperiment experiment = bench::makeAliceExperiment();
    std::printf("Initial concentration mismatch: IDT pool is %.0fx "
                "more concentrated per molecule (paper: 50000x)\n\n",
                (experiment.idt_pool.totalMass() /
                 static_cast<double>(
                     experiment.idt_pool.speciesCount())) /
                    (experiment.twist_pool.totalMass() /
                     static_cast<double>(
                         experiment.twist_pool.speciesCount())));

    std::vector<sim::PcrPrimer> main_primers = {
        sim::PcrPrimer{experiment.alice->forwardPrimer(), 1.0}};
    sim::MixingParams mixing;

    sim::MixResult mta = sim::measureThenAmplify(
        experiment.twist_pool, experiment.idt_pool, main_primers,
        experiment.alice->reversePrimer(), experiment.pcr, mixing);
    reportMix("Measure-then-Amplify", experiment, mta);

    sim::MixResult atm = sim::amplifyThenMeasure(
        experiment.twist_pool, experiment.idt_pool, main_primers,
        experiment.alice->reversePrimer(), experiment.pcr, mixing);
    reportMix("Amplify-then-Measure (Figure 10)", experiment, atm);
    return 0;
}
