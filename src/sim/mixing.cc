#include "sim/mixing.h"

#include "common/error.h"
#include "common/rng.h"

namespace dnastore::sim {

namespace {

/** Simulated concentration measurement with relative error. */
double
measureMass(const Pool &pool, double relative_error, Rng &rng)
{
    double noise = 1.0 + relative_error * rng.nextGaussian();
    return pool.totalMass() * std::max(noise, 0.01);
}

/** Count unique molecules by provenance class. */
size_t
uniqueCount(const Pool &pool)
{
    return pool.speciesCount();
}

} // namespace

double
perMoleculeRatio(const Pool &pool)
{
    double data_mass = 0.0;
    double update_mass = 0.0;
    size_t data_unique = 0;
    size_t update_unique = 0;
    for (const Species &s : pool.species()) {
        if (s.info.version > 0) {
            update_mass += s.mass;
            ++update_unique;
        } else {
            data_mass += s.mass;
            ++data_unique;
        }
    }
    if (data_unique == 0 || update_unique == 0 || data_mass <= 0.0)
        return 0.0;
    double per_data = data_mass / static_cast<double>(data_unique);
    double per_update =
        update_mass / static_cast<double>(update_unique);
    return per_update / per_data;
}

MixResult
measureThenAmplify(const Pool &data_pool, const Pool &update_pool,
                   const std::vector<PcrPrimer> &main_primers,
                   const dna::Sequence &reverse, const PcrParams &pcr,
                   const MixingParams &params)
{
    Rng rng = Rng::deriveStream(params.seed, "mixing-mta");

    double data_mass =
        measureMass(data_pool, params.measurement_error, rng);
    double update_mass =
        measureMass(update_pool, params.measurement_error, rng);
    double per_data =
        data_mass / static_cast<double>(uniqueCount(data_pool));
    double per_update =
        update_mass / static_cast<double>(uniqueCount(update_pool));
    fatalIf(per_update <= 0.0, "update pool is empty");

    MixResult result;
    result.dilution = per_data / per_update;

    Pool mix = data_pool;
    mix.mixIn(update_pool, result.dilution);

    PcrParams amplify = pcr;
    amplify.cycles = params.pcr_cycles;
    result.mixed = runPcr(mix, main_primers, reverse, amplify);
    result.achieved_ratio = perMoleculeRatio(result.mixed);
    return result;
}

MixResult
amplifyThenMeasure(const Pool &data_pool, const Pool &update_pool,
                   const std::vector<PcrPrimer> &main_primers,
                   const dna::Sequence &reverse, const PcrParams &pcr,
                   const MixingParams &params)
{
    Rng rng = Rng::deriveStream(params.seed, "mixing-atm");

    PcrParams amplify = pcr;
    amplify.cycles = params.pcr_cycles;
    Pool data_amplified =
        runPcr(data_pool, main_primers, reverse, amplify);
    Pool update_amplified =
        runPcr(update_pool, main_primers, reverse, amplify);

    // PCR cleanup: drop trace species left from the input pools.
    data_amplified.dropBelow(1e-9 * data_amplified.totalMass());
    update_amplified.dropBelow(1e-9 * update_amplified.totalMass());

    double data_mass =
        measureMass(data_amplified, params.measurement_error, rng);
    double update_mass =
        measureMass(update_amplified, params.measurement_error, rng);
    double per_data =
        data_mass / static_cast<double>(uniqueCount(data_amplified));
    double per_update =
        update_mass /
        static_cast<double>(uniqueCount(update_amplified));
    fatalIf(per_update <= 0.0, "update pool is empty");

    MixResult result;
    result.dilution = per_data / per_update;
    result.mixed = data_amplified;
    result.mixed.mixIn(update_amplified, result.dilution);
    result.achieved_ratio = perMoleculeRatio(result.mixed);
    return result;
}

} // namespace dnastore::sim
