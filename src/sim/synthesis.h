/**
 * @file
 * DNA synthesis model.
 *
 * Commercial synthesis produces millions of copies of every designed
 * molecule, with a vendor- and molecule-dependent yield. Figure 9a of
 * the paper shows the resulting representation is uniform within
 * roughly 2x; we model per-molecule copy counts as
 * scale * LogNormal(0, sigma). Vendor pools can differ hugely in
 * overall concentration (the paper's IDT update pool was 50000x more
 * concentrated than the Twist data pool), which is expressed through
 * the scale parameter.
 */

#ifndef DNASTORE_SIM_SYNTHESIS_H
#define DNASTORE_SIM_SYNTHESIS_H

#include <cstdint>
#include <vector>

#include "sim/pool.h"

namespace dnastore::sim {

/** A molecule design submitted for synthesis. */
struct DesignedMolecule
{
    dna::Sequence seq;
    SpeciesInfo info;
};

/** Parameters of one synthesis vendor/order. */
struct SynthesisParams
{
    /** Mean copies per designed molecule. */
    double scale = 1e6;

    /** Log-space sigma of the per-molecule yield (0.15 keeps the
     *  spread within the ~2x band of Figure 9a). */
    double sigma = 0.15;

    /** Fraction of molecules that fail synthesis entirely. */
    double dropout_rate = 0.0;

    /** Mass fraction of each design produced as erroneous variant
     *  species (single-base synthesis defects). Real oligo pools
     *  carry a tail of such byproducts; they stress the clustering
     *  and consensus stages. 0 disables. */
    double byproduct_fraction = 0.0;

    /** Distinct variant species per design when byproducts are on. */
    unsigned byproduct_variants = 2;

    uint64_t seed = 1;
};

/** Synthesize an order into a pool. */
Pool synthesize(const std::vector<DesignedMolecule> &order,
                const SynthesisParams &params);

} // namespace dnastore::sim

#endif // DNASTORE_SIM_SYNTHESIS_H
