/**
 * @file
 * PCR reaction model (paper Sections 2.1.4, 4, 6.5).
 *
 * Each cycle, a forward primer anneals to the 5' prefix of template
 * strands and copies them. Annealing efficiency decays exponentially
 * with the (3'-end-weighted) edit distance between the primer and the
 * template prefix, which reproduces the experimentally observed
 * *mispriming*: templates whose index is 2-3 edit distance from an
 * elongated primer amplify promiscuously, and the resulting amplicon
 * carries the primer's sequence — the template's index is
 * *overwritten* while its payload is retained (Section 8.1).
 *
 * Touchdown PCR (Section 6.5) is modelled as a per-cycle stringency
 * schedule: early (hot) cycles multiply the mismatch penalty, later
 * cycles run at baseline stringency.
 *
 * Leftover primers from a previous reaction (the 18% of reads in
 * Figure 9b) are modelled by simply adding the old primer to the
 * reaction with a small relative concentration.
 */

#ifndef DNASTORE_SIM_PCR_H
#define DNASTORE_SIM_PCR_H

#include <cstdint>
#include <vector>

#include "dna/sequence.h"
#include "sim/pool.h"

namespace dnastore::sim {

/** One forward primer participating in a (possibly multiplex) PCR. */
struct PcrPrimer
{
    dna::Sequence fwd;

    /** Relative primer concentration; scales annealing efficiency.
     *  Use < 1 for leftover primers carried over from a previous
     *  reaction or for diluted multiplex components. */
    double relative_concentration = 1.0;
};

/** Reaction parameters. */
struct PcrParams
{
    unsigned cycles = 28;

    /** Per-cycle duplication efficiency for a perfect match. */
    double efficiency_max = 0.95;

    /** Annealing efficiency decays as
     *  exp(-penalty * stringency * w^exponent) in the weighted
     *  mismatch w. The super-linear exponent makes the curve steep:
     *  one or two well-placed mismatches still prime appreciably
     *  (the paper's "handful" of promiscuous blocks at edit distance
     *  2-3, Section 8.1) while anything further is effectively
     *  inert — which matters because a misprimed amplicon carries
     *  the primer's exact sequence and amplifies at full speed from
     *  then on. */
    double mismatch_penalty = 0.15;
    double mismatch_exponent = 2.0;

    /** Weight multiplier for mismatches in the primer's 3' window
     *  (extension is far more sensitive there). */
    double three_prime_factor = 6.0;

    /** Cost multiplier for bulged bases relative to substitutions
     *  (duplex bulges destabilize annealing more than internal
     *  mismatches). */
    double gap_factor = 2.5;

    /** Primer-template alignments beyond this edit distance do not
     *  anneal at all. */
    size_t max_align_dist = 6;

    /** Size of the critical 3' window. */
    size_t three_prime_window = 3;

    /** Per-cycle multipliers on mismatch_penalty; empty = all 1.0.
     *  Longer schedules than `cycles` are truncated. */
    std::vector<double> stringency;

    /** Efficiencies below this are treated as zero (no annealing). */
    double min_efficiency = 1e-4;
};

/**
 * Touchdown schedule: the first @p touchdown_cycles cycles ramp the
 * stringency multiplier linearly from @p start_multiplier down to
 * 1.0; remaining cycles run at 1.0 (paper Section 6.5: 10 touchdown
 * cycles from 65C, then 18 cycles at 55C).
 */
std::vector<double> touchdownSchedule(unsigned touchdown_cycles,
                                      unsigned total_cycles,
                                      double start_multiplier = 3.0);

/** Per-species result bookkeeping from one reaction. */
struct PcrStats
{
    /** Species present after the reaction. */
    size_t species_out = 0;

    /** Newly created misprimed species (prefix overwritten). */
    size_t misprimed_species = 0;

    /** Total mass amplification factor of the pool. */
    double gain = 0.0;
};

/**
 * Run a PCR reaction.
 *
 * @param input        the template pool (left unmodified)
 * @param primers      forward primers (1 = simple, >1 = multiplex)
 * @param reverse      the reverse primer; molecules must end with its
 *                     reverse complement to amplify (empty = skip)
 * @param params       reaction parameters
 * @param stats        optional out-param for accounting
 */
Pool runPcr(const Pool &input, const std::vector<PcrPrimer> &primers,
            const dna::Sequence &reverse, const PcrParams &params,
            PcrStats *stats = nullptr);

} // namespace dnastore::sim

#endif // DNASTORE_SIM_PCR_H
