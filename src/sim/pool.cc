#include "sim/pool.h"

#include <algorithm>

#include "common/error.h"

namespace dnastore::sim {

void
Pool::add(dna::Sequence seq, const SpeciesInfo &info, double mass)
{
    panicIf(mass < 0.0, "Pool::add: negative mass");
    auto it = by_sequence_.find(seq.str());
    if (it != by_sequence_.end()) {
        species_[it->second].mass += mass;
        return;
    }
    by_sequence_.emplace(seq.str(), species_.size());
    species_.push_back(Species{std::move(seq), info, mass});
}

double
Pool::totalMass() const
{
    double total = 0.0;
    for (const Species &s : species_)
        total += s.mass;
    return total;
}

void
Pool::scale(double factor)
{
    fatalIf(factor < 0.0, "Pool::scale: negative factor");
    for (Species &s : species_)
        s.mass *= factor;
}

void
Pool::normalizeTo(double target)
{
    double total = totalMass();
    fatalIf(total <= 0.0, "Pool::normalizeTo: empty pool");
    scale(target / total);
}

void
Pool::mixIn(const Pool &other, double factor)
{
    for (const Species &s : other.species())
        add(s.seq, s.info, s.mass * factor);
}

void
Pool::dropBelow(double min_mass)
{
    std::vector<Species> kept;
    kept.reserve(species_.size());
    for (Species &s : species_) {
        if (s.mass >= min_mass)
            kept.push_back(std::move(s));
    }
    species_ = std::move(kept);
    by_sequence_.clear();
    for (size_t i = 0; i < species_.size(); ++i)
        by_sequence_.emplace(species_[i].seq.str(), i);
}

} // namespace dnastore::sim
