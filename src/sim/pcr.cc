#include "sim/pcr.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.h"
#include "dna/distance.h"

namespace dnastore::sim {

std::vector<double>
touchdownSchedule(unsigned touchdown_cycles, unsigned total_cycles,
                  double start_multiplier)
{
    fatalIf(touchdown_cycles > total_cycles,
            "touchdown cycles exceed total cycles");
    std::vector<double> schedule(total_cycles, 1.0);
    for (unsigned c = 0; c < touchdown_cycles; ++c) {
        double t = touchdown_cycles <= 1
                       ? 1.0
                       : static_cast<double>(c) /
                             static_cast<double>(touchdown_cycles - 1);
        schedule[c] = start_multiplier + t * (1.0 - start_multiplier);
    }
    return schedule;
}

namespace {

/** Working copy of a species during the cycle loop. */
struct Strand
{
    dna::Sequence seq;
    SpeciesInfo info;
    double mass = 0.0;

    /** Per-primer annealing: weighted mismatch and amplicon target. */
    struct Binding
    {
        bool anneals = false;
        double weighted_mismatch = 0.0;
        size_t amplicon = SIZE_MAX;  // index into the strand table
    };
    std::vector<Binding> bindings;
};

} // namespace

Pool
runPcr(const Pool &input, const std::vector<PcrPrimer> &primers,
       const dna::Sequence &reverse, const PcrParams &params,
       PcrStats *stats)
{
    fatalIf(primers.empty(), "runPcr: no forward primers");

    const dna::Sequence reverse_site =
        reverse.empty() ? dna::Sequence() : reverse.reverseComplement();

    std::vector<Strand> strands;
    strands.reserve(input.speciesCount() * 2);
    std::unordered_map<std::string, size_t> by_seq;

    auto internStrand = [&](dna::Sequence seq, const SpeciesInfo &info,
                            double mass) -> size_t {
        auto it = by_seq.find(seq.str());
        if (it != by_seq.end()) {
            strands[it->second].mass += mass;
            return it->second;
        }
        size_t idx = strands.size();
        by_seq.emplace(seq.str(), idx);
        strands.push_back(Strand{std::move(seq), info, mass, {}});
        return idx;
    };

    for (const Species &s : input.species())
        internStrand(s.seq, s.info, s.mass);

    size_t misprimed_created = 0;

    // Compute (lazily, since amplicons create new strands) how each
    // primer binds a strand and which amplicon species it produces.
    auto ensureBindings = [&](size_t idx) {
        if (!strands[idx].bindings.empty())
            return;
        // Work on a local copy: creating amplicon strands below may
        // reallocate the strand table.
        dna::Sequence seq = strands[idx].seq;
        SpeciesInfo info = strands[idx].info;
        std::vector<Strand::Binding> bindings(primers.size());

        // Reverse primer binding (shared by all forward primers):
        // the reverse primer anneals to the 3' end of the sense
        // strand, i.e. to the prefix of the reverse complement. A
        // plain 20-base reverse primer binds its site exactly; an
        // *elongated* reverse primer (Section 7.7.1, two-sided
        // extension) accrues the same mismatch penalties as the
        // forward one.
        double reverse_weight = 0.0;
        size_t reverse_consumed = 0;
        bool reverse_ok = true;
        if (!reverse.empty()) {
            dna::Sequence antisense = seq.reverseComplement();
            dna::WeightedAlignment rev_align = dna::alignPrimerWeighted(
                reverse, antisense, params.max_align_dist,
                params.three_prime_window, params.three_prime_factor,
                params.gap_factor);
            if (rev_align.cost >= dna::kWeightInfinity) {
                reverse_ok = false;
            } else {
                reverse_weight = rev_align.cost;
                reverse_consumed = rev_align.template_consumed;
            }
        }

        for (size_t p = 0; p < primers.size() && reverse_ok; ++p) {
            const dna::Sequence &fwd = primers[p].fwd;
            dna::WeightedAlignment align = dna::alignPrimerWeighted(
                fwd, seq, params.max_align_dist,
                params.three_prime_window, params.three_prime_factor,
                params.gap_factor);
            if (align.cost >= dna::kWeightInfinity)
                continue;
            if (align.template_consumed + reverse_consumed >
                seq.size()) {
                continue;  // primers would overlap
            }
            double weighted = align.cost + reverse_weight;

            // Do not materialize amplicons that could never convert
            // measurable mass: without this gate a multiplex
            // reaction chains amplicons of amplicons into an
            // exponential species explosion.
            double best_efficiency =
                params.efficiency_max *
                primers[p].relative_concentration *
                std::exp(-params.mismatch_penalty *
                         std::pow(weighted,
                                  params.mismatch_exponent));
            if (best_efficiency < params.min_efficiency)
                continue;
            Strand::Binding binding;
            binding.anneals = true;
            binding.weighted_mismatch = weighted;

            // The amplicon is delimited and overwritten by the two
            // primers: mismatches under either primer are replaced
            // by the primer's own sequence (paper Section 8.1).
            dna::Sequence amplicon_seq =
                fwd +
                seq.substr(align.template_consumed,
                           seq.size() - align.template_consumed -
                               reverse_consumed) +
                reverse_site;
            if (amplicon_seq == seq) {
                binding.amplicon = idx;
            } else {
                SpeciesInfo amplicon_info = info;
                amplicon_info.misprimed = true;
                size_t a =
                    internStrand(amplicon_seq, amplicon_info, 0.0);
                binding.amplicon = a;
                ++misprimed_created;
            }
            bindings[p] = binding;
        }
        strands[idx].bindings = std::move(bindings);
    };

    const double input_mass = input.totalMass();

    for (unsigned cycle = 0; cycle < params.cycles; ++cycle) {
        double stringency = 1.0;
        if (cycle < params.stringency.size())
            stringency = params.stringency[cycle];

        // Bindings for every strand alive at the start of the cycle;
        // amplicons created here first amplify next cycle.
        size_t alive = strands.size();
        for (size_t i = 0; i < alive; ++i)
            ensureBindings(i);

        std::vector<double> delta(strands.size(), 0.0);
        std::vector<double> efficiencies(primers.size(), 0.0);
        for (size_t i = 0; i < alive; ++i) {
            const Strand &strand = strands[i];
            if (strand.mass <= 0.0)
                continue;
            // Primers compete for the same template: a molecule can
            // be copied at most once per cycle, so the per-primer
            // efficiencies are rescaled if they sum beyond the
            // single-copy maximum.
            double total = 0.0;
            for (size_t p = 0; p < strand.bindings.size(); ++p) {
                const Strand::Binding &binding = strand.bindings[p];
                efficiencies[p] = 0.0;
                if (!binding.anneals)
                    continue;
                double efficiency =
                    params.efficiency_max *
                    primers[p].relative_concentration *
                    std::exp(-params.mismatch_penalty * stringency *
                             std::pow(binding.weighted_mismatch,
                                      params.mismatch_exponent));
                if (efficiency < params.min_efficiency)
                    continue;
                efficiencies[p] = std::min(efficiency, 1.0);
                total += efficiencies[p];
            }
            double scale =
                total > params.efficiency_max
                    ? params.efficiency_max / total
                    : 1.0;
            for (size_t p = 0; p < strand.bindings.size(); ++p) {
                if (efficiencies[p] <= 0.0)
                    continue;
                const Strand::Binding &binding = strand.bindings[p];
                if (binding.amplicon < delta.size())
                    delta[binding.amplicon] +=
                        strand.mass * efficiencies[p] * scale;
            }
        }
        for (size_t i = 0; i < delta.size(); ++i)
            strands[i].mass += delta[i];
    }

    Pool output;
    for (Strand &strand : strands) {
        if (strand.mass > 0.0)
            output.add(std::move(strand.seq), strand.info, strand.mass);
    }
    if (stats) {
        stats->species_out = output.speciesCount();
        stats->misprimed_species = misprimed_created;
        stats->gain =
            input_mass > 0.0 ? output.totalMass() / input_mass : 0.0;
    }
    return output;
}

} // namespace dnastore::sim
