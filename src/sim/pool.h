/**
 * @file
 * DNA pool model: a multiset of molecule species with continuous
 * per-species mass (copy counts).
 *
 * The simulator tracks concentrations as doubles because synthesis
 * yields millions of physical copies per designed molecule and PCR
 * multiplies them exponentially; reads are later *sampled* from the
 * mass distribution by the Sequencer. Every species carries its
 * ground-truth provenance (file, block, version, column) so that
 * experiments can classify reads the way the paper's figures do
 * (e.g., Figure 9b: which block does each read actually come from).
 */

#ifndef DNASTORE_SIM_POOL_H
#define DNASTORE_SIM_POOL_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dna/sequence.h"

namespace dnastore::sim {

/** Ground-truth provenance of a species (never visible to decoding). */
struct SpeciesInfo
{
    /** File/partition the payload belongs to (paper stores 13). */
    uint32_t file_id = 0;

    /** Logical block (encoding unit) the payload belongs to. */
    uint64_t block = 0;

    /** Version slot: 0 = original data, 1..3 = update patches. */
    uint8_t version = 0;

    /** Column (molecule index) within the encoding-unit matrix. */
    uint8_t column = 0;

    /** True if this species was created by mispriming: its prefix
     *  was overwritten by a primer during PCR (paper Section 8.1). */
    bool misprimed = false;

    bool operator==(const SpeciesInfo &) const = default;
};

/** One species: a distinct sequence with its mass. */
struct Species
{
    dna::Sequence seq;
    SpeciesInfo info;
    double mass = 0.0;
};

/**
 * A pool of DNA, e.g. a synthesis order, a test tube, or the product
 * of a PCR reaction.
 */
class Pool
{
  public:
    Pool() = default;

    /** Add mass of a species, merging with an identical sequence. */
    void add(dna::Sequence seq, const SpeciesInfo &info, double mass);

    const std::vector<Species> &species() const { return species_; }
    size_t speciesCount() const { return species_.size(); }

    /** Sum of all species masses ("nanodrop measurement"). */
    double totalMass() const;

    /** Multiply every mass by a dilution/concentration factor. */
    void scale(double factor);

    /** Rescale so totalMass() == target. */
    void normalizeTo(double target);

    /** Pour @p other into this pool (optionally pre-scaled). */
    void mixIn(const Pool &other, double factor = 1.0);

    /** Drop species below a mass floor (cleanup step). */
    void dropBelow(double min_mass);

    /** Mass-weighted fraction of species matching a predicate. */
    template <typename Pred>
    double
    massFraction(Pred pred) const
    {
        double total = 0.0;
        double matched = 0.0;
        for (const Species &s : species_) {
            total += s.mass;
            if (pred(s))
                matched += s.mass;
        }
        return total > 0.0 ? matched / total : 0.0;
    }

  private:
    std::vector<Species> species_;
    std::unordered_map<std::string, size_t> by_sequence_;
};

} // namespace dnastore::sim

#endif // DNASTORE_SIM_POOL_H
