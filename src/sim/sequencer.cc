#include "sim/sequencer.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace dnastore::sim {

namespace {

dna::Base
randomBase(Rng &rng)
{
    return static_cast<dna::Base>(rng.nextBelow(4));
}

dna::Base
randomOtherBase(Rng &rng, dna::Base original)
{
    auto offset = static_cast<uint8_t>(1 + rng.nextBelow(3));
    return static_cast<dna::Base>(
        (static_cast<uint8_t>(original) + offset) % 4);
}

dna::Sequence
applyIdsNoise(const dna::Sequence &seq, const SequencerParams &params,
              Rng &rng)
{
    std::vector<dna::Base> out;
    out.reserve(seq.size() + 4);
    for (size_t i = 0; i < seq.size(); ++i) {
        while (params.ins_rate > 0.0 && rng.nextBool(params.ins_rate))
            out.push_back(randomBase(rng));
        if (params.del_rate > 0.0 && rng.nextBool(params.del_rate))
            continue;
        dna::Base base = seq.baseAt(i);
        if (params.sub_rate > 0.0 && rng.nextBool(params.sub_rate))
            base = randomOtherBase(rng, base);
        out.push_back(base);
    }
    while (params.ins_rate > 0.0 && rng.nextBool(params.ins_rate))
        out.push_back(randomBase(rng));
    return dna::Sequence(out);
}

} // namespace

std::vector<Read>
sequencePool(const Pool &pool, size_t num_reads,
             const SequencerParams &params)
{
    fatalIf(pool.speciesCount() == 0, "sequencePool: empty pool");
    Rng rng = Rng::deriveStream(params.seed, "sequencer");

    // Cumulative mass distribution for multinomial sampling.
    std::vector<double> cumulative;
    cumulative.reserve(pool.speciesCount());
    double total = 0.0;
    for (const Species &s : pool.species()) {
        total += s.mass;
        cumulative.push_back(total);
    }
    fatalIf(total <= 0.0, "sequencePool: pool has zero mass");

    std::vector<Read> reads;
    reads.reserve(num_reads);
    for (size_t r = 0; r < num_reads; ++r) {
        double u = rng.nextDouble() * total;
        size_t idx = static_cast<size_t>(
            std::lower_bound(cumulative.begin(), cumulative.end(), u) -
            cumulative.begin());
        idx = std::min(idx, pool.speciesCount() - 1);
        const Species &s = pool.species()[idx];
        reads.push_back(Read{applyIdsNoise(s.seq, params, rng), idx});
    }
    return reads;
}

} // namespace dnastore::sim
