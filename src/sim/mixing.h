/**
 * @file
 * Protocols for mixing a data pool with an update pool at matched
 * per-molecule concentrations (paper Sections 5.5 and 6.4.2).
 *
 * Updated data is cheap to sequence only if update molecules are
 * represented about as often as data molecules; the paper's IDT
 * update pool arrived 50000x more concentrated than the Twist data
 * pool and still mixed to near parity using basic tools. Two
 * protocols are modelled:
 *
 *  - Measure-then-Amplify: measure both raw pools, dilute the update
 *    pool so that mass-per-unique-molecule matches, mix, then PCR the
 *    mix with the main partition primers.
 *  - Amplify-then-Measure: PCR each pool separately with the main
 *    primers (for when the original synthesis pools are no longer
 *    available), clean up, measure, then mix proportionally to the
 *    unique-molecule counts.
 */

#ifndef DNASTORE_SIM_MIXING_H
#define DNASTORE_SIM_MIXING_H

#include <cstdint>

#include "sim/pcr.h"
#include "sim/pool.h"

namespace dnastore::sim {

/** Protocol knobs. */
struct MixingParams
{
    /** Relative error of each concentration measurement (nanodrop). */
    double measurement_error = 0.03;

    /** PCR cycles used by the protocol (paper uses 15). */
    unsigned pcr_cycles = 15;

    uint64_t seed = 11;
};

/** Outcome of a mixing protocol. */
struct MixResult
{
    Pool mixed;

    /** Achieved per-unique-molecule mass ratio update/data; the goal
     *  is 1.0. */
    double achieved_ratio = 0.0;

    /** Dilution factor applied to the update pool. */
    double dilution = 0.0;
};

/** Per-unique-molecule mass ratio update(version>0) / data. */
double perMoleculeRatio(const Pool &pool);

/** Measure-then-Amplify protocol (Section 6.4.2, first approach). */
MixResult measureThenAmplify(const Pool &data_pool,
                             const Pool &update_pool,
                             const std::vector<PcrPrimer> &main_primers,
                             const dna::Sequence &reverse,
                             const PcrParams &pcr,
                             const MixingParams &params);

/** Amplify-then-Measure protocol (Section 6.4.2, second approach). */
MixResult amplifyThenMeasure(const Pool &data_pool,
                             const Pool &update_pool,
                             const std::vector<PcrPrimer> &main_primers,
                             const dna::Sequence &reverse,
                             const PcrParams &pcr,
                             const MixingParams &params);

} // namespace dnastore::sim

#endif // DNASTORE_SIM_MIXING_H
