/**
 * @file
 * Sequencing model: sample reads from a pool through an IDS noise
 * channel.
 *
 * The number of reads is the unit of sequencing cost in the paper
 * ("the sequencing cost is always proportional to the size of the
 * sequencing output", Section 7.3), so experiments choose read
 * budgets and this model answers what those reads contain. Reads are
 * drawn proportionally to species mass and corrupted with
 * substitution/insertion/deletion errors at Illumina-like rates.
 */

#ifndef DNASTORE_SIM_SEQUENCER_H
#define DNASTORE_SIM_SEQUENCER_H

#include <cstdint>
#include <vector>

#include "dna/sequence.h"
#include "sim/pool.h"

namespace dnastore::sim {

/** One sequencing read with its ground-truth origin. */
struct Read
{
    dna::Sequence seq;

    /** Index into the pool's species() vector (ground truth only;
     *  decoders must not use it). */
    size_t species_index = 0;
};

/** Error-channel and sampling parameters. */
struct SequencerParams
{
    double sub_rate = 0.003;
    double ins_rate = 0.0007;
    double del_rate = 0.0007;
    uint64_t seed = 7;
};

/** Draw @p num_reads noisy reads from the pool. */
std::vector<Read> sequencePool(const Pool &pool, size_t num_reads,
                               const SequencerParams &params);

} // namespace dnastore::sim

#endif // DNASTORE_SIM_SEQUENCER_H
