#include "sim/synthesis.h"

#include "common/rng.h"

namespace dnastore::sim {

namespace {

/** A single-base synthesis defect: substitution, insertion, or
 *  truncating deletion at a random position. */
dna::Sequence
makeByproduct(const dna::Sequence &seq, Rng &rng)
{
    if (seq.empty())
        return seq;
    std::string s = seq.str();
    size_t pos = rng.nextBelow(s.size());
    switch (rng.nextBelow(3)) {
      case 0: {  // substitution
        char original = s[pos];
        do {
            s[pos] = dna::baseToChar(
                static_cast<dna::Base>(rng.nextBelow(4)));
        } while (s[pos] == original);
        break;
      }
      case 1:  // insertion
        s.insert(pos, 1,
                 dna::baseToChar(
                     static_cast<dna::Base>(rng.nextBelow(4))));
        break;
      default:  // deletion
        s.erase(pos, 1);
        break;
    }
    return dna::Sequence(std::move(s));
}

} // namespace

Pool
synthesize(const std::vector<DesignedMolecule> &order,
           const SynthesisParams &params)
{
    Rng rng = Rng::deriveStream(params.seed, "synthesis");
    Pool pool;
    for (const DesignedMolecule &molecule : order) {
        if (params.dropout_rate > 0.0 &&
            rng.nextBool(params.dropout_rate)) {
            continue;
        }
        double yield =
            params.scale * rng.nextLogNormal(0.0, params.sigma);
        double clean = yield;
        if (params.byproduct_fraction > 0.0 &&
            params.byproduct_variants > 0) {
            double defect_mass = yield * params.byproduct_fraction;
            clean = yield - defect_mass;
            for (unsigned v = 0; v < params.byproduct_variants; ++v) {
                pool.add(makeByproduct(molecule.seq, rng),
                         molecule.info,
                         defect_mass /
                             static_cast<double>(
                                 params.byproduct_variants));
            }
        }
        pool.add(molecule.seq, molecule.info, clean);
    }
    return pool;
}

} // namespace dnastore::sim
