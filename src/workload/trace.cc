#include "workload/trace.h"

namespace dnastore::workload {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void
mix(uint64_t &hash, uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8) {
        hash ^= (value >> shift) & 0xffU;
        hash *= kFnvPrime;
    }
}

} // namespace

uint64_t
traceFingerprint(const Trace &trace)
{
    uint64_t hash = kFnvOffset;
    mix(hash, trace.size());
    for (const TraceOp &op : trace) {
        mix(hash, op.arrival_us);
        mix(hash, op.tenant);
        mix(hash, op.object);
        mix(hash, static_cast<uint64_t>(op.type));
        mix(hash, op.seq);
    }
    return hash;
}

} // namespace dnastore::workload
