/**
 * @file
 * Trace replay against a DecodeService: the measurement substrate for
 * multi-tenant SLO claims.
 *
 * Two drive modes:
 *
 *  - **Virtual clock** (default): submissions happen only while the
 *    dispatcher is paused; the clock jumps to each arrival, and every
 *    dispatched request advances it by a fixed virtual service time
 *    (from the dispatcher thread, which is serialized with the batch
 *    it dispatches — race-free by construction). Queue-latency
 *    histograms then measure deterministic sojourn times shaped by
 *    the WDRR scheduler and admission control: the same seed gives a
 *    byte-identical SLO report on every machine and thread count.
 *    Requests carry empty read sets (decode instantly) unless
 *    `reads_for` supplies real ones — admission/scheduling fidelity
 *    at thousands-of-tenants scale is the point, not decode cost.
 *
 *  - **Real clock**: open-loop replay paced by steady_clock —
 *    arrivals are submitted at their trace times regardless of
 *    completion, `reads_for` typically supplies pre-sequenced reads,
 *    and latencies are wall-clock (end-to-end fidelity, statistical
 *    not reproducible). replayOnFleet() additionally drives a fleet
 *    of StorageFrontends — one per tenant, each bound to its own
 *    BlockDevice — through the synchronous read/update paths, for
 *    moderate fleet sizes (one worker thread per tenant).
 *
 * Backpressure semantics under the virtual clock: a backlogged epoch
 * advances the clock past later arrivals, which then submit "late"
 * (at the current clock) — exactly how an open-loop client would
 * observe an overloaded service. OverflowPolicy::Block combined with
 * any queue-depth bound is refused in virtual mode: a parked
 * submitter would deadlock against the paused dispatcher.
 */

#ifndef DNASTORE_WORKLOAD_SIMULATOR_H
#define DNASTORE_WORKLOAD_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/decode_service.h"
#include "core/storage_frontend.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workload/generator.h"
#include "workload/slo_report.h"
#include "workload/trace.h"
#include "workload/virtual_clock.h"

namespace dnastore::workload {

/** One dispatched batch, as seen by the service's observer. */
struct DispatchRecord
{
    core::TenantId tenant = core::kDefaultTenant;
    size_t requests = 0;

    bool operator==(const DispatchRecord &) const = default;
};

/** How a replay drives the service. */
struct SimulatorParams
{
    enum class Clock : uint8_t
    {
        Virtual = 0,
        Real = 1,
    };

    Clock clock = Clock::Virtual;

    /** DecodeService worker threads. Irrelevant to virtual-mode
     *  results (pinned by test): the report depends only on the
     *  scripted schedule. */
    size_t service_threads = 1;

    /** Service-wide queue bound (0 = unbounded). */
    size_t max_queue_depth = 0;

    /** Reject is the open-loop default; Block with any queue bound is
     *  refused in virtual mode (would deadlock a paused dispatcher). */
    core::OverflowPolicy overflow = core::OverflowPolicy::Reject;

    /** Virtual clock: microseconds each dispatched request advances
     *  the clock by — the modeled per-request service time. */
    uint64_t virtual_service_time_us = 1'000;

    /** Virtual clock: arrivals are submitted and drained in epochs of
     *  this length, so backlog inside an epoch shapes queue latency
     *  while the trace still replays open-loop across epochs. */
    uint64_t epoch_us = 50'000;

    /** Latency histogram bounds; empty = fineLatencyBoundsUs(). */
    std::vector<uint64_t> latency_bounds_us;

    /** Decoder every request is submitted against (replayTrace /
     *  runSimulation; fleet mode uses the devices' own partitions).
     *  Must outlive the call. */
    const core::Decoder *decoder = nullptr;

    /** Optional read-set supplier (e.g. device.sequenceRange of the
     *  op's object); empty reads decode instantly when unset. */
    std::function<std::vector<sim::Read>(const TraceOp &)> reads_for;

    /** Record the exact dispatch order into SimResult::dispatches
     *  (off by default: a long run records millions of entries). */
    bool record_dispatches = false;

    /** Trace sampling: keep every Nth request trace per tenant.
     *  0 (the default) together with trace_slow_threshold_us == 0
     *  disables tracing entirely — no collector is created and every
     *  span hook in the service costs one branch. Virtual-mode
     *  collectors read the simulation clock, so kept traces export
     *  byte-identically across runs and thread counts. */
    uint64_t trace_sample_every = 0;

    /** Tail trigger: keep traces whose request root span lasts at
     *  least this long (0 = off). Error/Throttled/Overloaded traces
     *  are always kept once tracing is on. */
    uint64_t trace_slow_threshold_us = 0;

    /** Trace ring capacity (oldest evicted when full). */
    size_t trace_capacity = 256;
};

/** Everything a replay produced. */
struct SimResult
{
    SloReport report;
    telemetry::MetricsSnapshot metrics;
    std::vector<DispatchRecord> dispatches;

    /** Kept traces; null when tracing was off. The report's rows are
     *  annotated with each tenant's slowest kept trace (root-span
     *  duration + trace id — resolve it here or in an exported
     *  Chrome trace). */
    std::shared_ptr<telemetry::TraceCollector> traces;

    uint64_t trace_fingerprint = 0;

    /** == report.fingerprint(); duplicated so bench JSON needs no
     *  recomputation. */
    uint64_t report_fingerprint = 0;

    /** Final simulation clock (virtual mode; 0 in real mode). */
    uint64_t end_clock_us = 0;

    uint64_t ops_submitted = 0;
};

/** Replay @p trace against a fresh service configured with
 *  @p admission; the report covers @p tenants in the given order. */
SimResult replayTrace(const Trace &trace,
                      const std::map<core::TenantId, core::TenantParams>
                          &admission,
                      const std::vector<core::TenantId> &tenants,
                      const SimulatorParams &params);

/** generateTrace + replayTrace in one call. */
SimResult runSimulation(const WorkloadParams &workload,
                        const SimulatorParams &params);

/** One tenant's storage in a closed-loop fleet replay. */
struct FleetDevice
{
    /** Written (writeFile) device; not thread-safe, so each tenant
     *  needs its own. Must outlive the call. */
    core::BlockDevice *device = nullptr;
};

/**
 * Closed-loop real-clock replay: one StorageFrontend and one worker
 * thread per tenant, all sharing one DecodeService. Reads go through
 * StorageFrontend::readBlock, writes through replaceBlock, updates
 * through updateBlock; op.object maps onto the device's blocks by
 * modulo. Arrival times pace each tenant's worker (best effort — a
 * slow op delays that tenant's later ops, which is what closed-loop
 * means). Shed requests (OverloadedError/ThrottledError) are counted
 * by the service's own metrics and the worker moves on.
 */
SimResult replayOnFleet(const Trace &trace,
                        const std::map<core::TenantId,
                                       core::TenantParams> &admission,
                        const std::vector<core::TenantId> &tenants,
                        const std::map<core::TenantId, FleetDevice>
                            &fleet,
                        const SimulatorParams &params);

} // namespace dnastore::workload

#endif // DNASTORE_WORKLOAD_SIMULATOR_H
