#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dnastore::workload {

namespace {

/** Exponential variate with the given mean, in microseconds. The
 *  (1 - u) flip keeps log's argument in (0, 1]. */
double
nextExponentialUs(Rng &rng, double mean_us)
{
    return -mean_us * std::log(1.0 - rng.nextDouble());
}

OpType
sampleOpType(Rng &rng, const OpMix &mix)
{
    const double total = mix.read + mix.write + mix.update;
    if (total <= 0.0)
        return OpType::Read;
    const double u = rng.nextDouble() * total;
    if (u < mix.read)
        return OpType::Read;
    if (u < mix.read + mix.write)
        return OpType::Write;
    return OpType::Update;
}

/** Append one tenant's arrivals in [0, duration_us). */
void
generateTenant(const WorkloadParams &params, const TenantClass &cls,
               core::TenantId tenant, const ZipfianSampler &zipf,
               Trace &out)
{
    Rng rng(Rng::deriveSeed(params.seed, tenant));
    const ArrivalProcess &arrivals = cls.arrivals;
    if (arrivals.rate_per_sec <= 0.0)
        return;
    const double mean_gap_us = 1e6 / arrivals.rate_per_sec;

    const bool bursty = arrivals.kind == ArrivalProcess::Kind::OnOff;

    // The arrival process runs in cumulative ON time (Poisson at
    // rate_per_sec); wall time additionally accumulates OFF gaps
    // whenever an inter-arrival interval spans the rest of an ON
    // period. Exact by the exponential's memorylessness — the
    // long-run wall-clock rate is rate · on/(on+off) with no edge
    // artifacts. A pure Poisson source is the same walk with one
    // infinite ON period.
    uint64_t seq = 0;
    double wall_us = 0.0;
    double on_left_us =
        bursty ? nextExponentialUs(
                     rng, static_cast<double>(arrivals.mean_on_us))
               : 0.0;  // unused for Poisson

    while (true) {
        double gap_us = nextExponentialUs(rng, mean_gap_us);
        if (bursty) {
            while (gap_us >= on_left_us) {
                gap_us -= on_left_us;
                wall_us +=
                    on_left_us +
                    nextExponentialUs(
                        rng, static_cast<double>(arrivals.mean_off_us));
                on_left_us = nextExponentialUs(
                    rng, static_cast<double>(arrivals.mean_on_us));
            }
            on_left_us -= gap_us;
        }
        wall_us += gap_us;
        if (wall_us >= static_cast<double>(params.duration_us))
            return;
        TraceOp op;
        op.arrival_us = static_cast<uint64_t>(wall_us);
        op.tenant = tenant;
        op.object = zipf.sample(rng);
        op.type = sampleOpType(rng, cls.mix);
        op.seq = seq++;
        out.push_back(op);
    }
}

} // namespace

ZipfianSampler::ZipfianSampler(uint64_t n, double s)
{
    fatalIf(n == 0, "ZipfianSampler: empty object space");
    fatalIf(s < 0.0, "ZipfianSampler: negative exponent ", s);
    cdf_.resize(n);
    double total = 0.0;
    for (uint64_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = total;
    }
    for (double &c : cdf_)
        c /= total;
    cdf_.back() = 1.0;  // guard the last bucket against rounding
}

uint64_t
ZipfianSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<uint64_t>(it - cdf_.begin());
}

double
ZipfianSampler::pmf(uint64_t k) const
{
    fatalIf(k >= cdf_.size(), "ZipfianSampler::pmf: rank ", k,
            " out of range");
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

Trace
generateTrace(const WorkloadParams &params)
{
    const ZipfianSampler zipf(params.objects, params.zipf_s);
    Trace trace;
    core::TenantId next = 1;
    for (const TenantClass &cls : params.classes)
        for (size_t i = 0; i < cls.count; ++i)
            generateTenant(params, cls, next++, zipf, trace);
    // Total order: arrival time, then tenant, then per-tenant seq.
    // stable_sort is belt-and-braces — the key is already unique per
    // op (one tenant's seqs are distinct), so plain sort would do,
    // but stability costs nothing here and removes any doubt.
    std::stable_sort(trace.begin(), trace.end(),
                     [](const TraceOp &a, const TraceOp &b) {
                         if (a.arrival_us != b.arrival_us)
                             return a.arrival_us < b.arrival_us;
                         if (a.tenant != b.tenant)
                             return a.tenant < b.tenant;
                         return a.seq < b.seq;
                     });
    if (params.max_ops > 0 && trace.size() > params.max_ops)
        trace.resize(params.max_ops);
    return trace;
}

std::map<core::TenantId, core::TenantParams>
tenantAdmission(const WorkloadParams &params)
{
    std::map<core::TenantId, core::TenantParams> admission;
    core::TenantId next = 1;
    for (const TenantClass &cls : params.classes)
        for (size_t i = 0; i < cls.count; ++i)
            admission.emplace(next++, cls.admission);
    return admission;
}

std::vector<core::TenantId>
tenantIds(const WorkloadParams &params)
{
    std::vector<core::TenantId> ids;
    core::TenantId next = 1;
    for (const TenantClass &cls : params.classes)
        for (size_t i = 0; i < cls.count; ++i)
            ids.push_back(next++);
    return ids;
}

std::vector<core::TenantId>
classTenantIds(const WorkloadParams &params, size_t class_index)
{
    fatalIf(class_index >= params.classes.size(),
            "classTenantIds: class ", class_index, " out of range");
    core::TenantId next = 1;
    for (size_t c = 0; c < class_index; ++c)
        next += static_cast<core::TenantId>(params.classes[c].count);
    std::vector<core::TenantId> ids;
    for (size_t i = 0; i < params.classes[class_index].count; ++i)
        ids.push_back(next++);
    return ids;
}

} // namespace dnastore::workload
