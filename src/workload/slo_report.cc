#include "workload/slo_report.h"

#include <cstdio>

#include "common/error.h"

namespace dnastore::workload {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void
mix(uint64_t &hash, uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8) {
        hash ^= (value >> shift) & 0xffU;
        hash *= kFnvPrime;
    }
}

void
mixOptional(uint64_t &hash, const std::optional<uint64_t> &value)
{
    mix(hash, value.has_value() ? 1 : 0);
    mix(hash, value.value_or(0));
}

uint64_t
counterValue(const telemetry::MetricsSnapshot &snapshot,
             const std::string &name)
{
    auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
}

std::string
tenantPrefix(core::TenantId tenant)
{
    return "decode_service.tenant." + std::to_string(tenant) + ".";
}

void
fillQuantiles(TenantSlo &slo, const telemetry::HistogramSnapshot &hist)
{
    slo.latency_count = hist.count;
    slo.p50_us = hist.quantile(0.50);
    slo.p99_us = hist.quantile(0.99);
    slo.p999_us = hist.quantile(0.999);
}

std::string
formatQuantile(const std::optional<uint64_t> &q)
{
    if (!q)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(*q));
    return buf;
}

} // namespace

double
TenantSlo::goodput() const
{
    if (offered == 0)
        return 1.0;
    return static_cast<double>(admitted) /
           static_cast<double>(offered);
}

uint64_t
SloReport::fingerprint() const
{
    uint64_t hash = kFnvOffset;
    mix(hash, tenants.size());
    for (const TenantSlo &slo : tenants) {
        mix(hash, slo.tenant);
        mix(hash, slo.offered);
        mix(hash, slo.admitted);
        mix(hash, slo.throttled);
        mix(hash, slo.rejected);
        mix(hash, slo.dispatched);
        mix(hash, slo.latency_count);
        mixOptional(hash, slo.p50_us);
        mixOptional(hash, slo.p99_us);
        mixOptional(hash, slo.p999_us);
    }
    return hash;
}

std::string
SloReport::formatTable() const
{
    bool traced = false;
    for (const TenantSlo &slo : tenants)
        traced = traced || slo.slowest_trace_id != 0;
    std::string out =
        "tenant   offered  admitted throttled  rejected   goodput"
        "    p50_us    p99_us   p999_us";
    if (traced)
        out += " slowest_us      trace";
    out += "\n";
    for (const TenantSlo &slo : tenants) {
        char line[224];
        std::snprintf(
            line, sizeof line,
            "%6u %9llu %9llu %9llu %9llu %9.3f %9s %9s %9s",
            slo.tenant,
            static_cast<unsigned long long>(slo.offered),
            static_cast<unsigned long long>(slo.admitted),
            static_cast<unsigned long long>(slo.throttled),
            static_cast<unsigned long long>(slo.rejected),
            slo.goodput(), formatQuantile(slo.p50_us).c_str(),
            formatQuantile(slo.p99_us).c_str(),
            formatQuantile(slo.p999_us).c_str());
        out += line;
        if (traced) {
            char trace_cols[64];
            if (slo.slowest_trace_id != 0) {
                std::snprintf(trace_cols, sizeof trace_cols,
                              " %10llu %10llu",
                              static_cast<unsigned long long>(
                                  slo.slowest_trace_us),
                              static_cast<unsigned long long>(
                                  slo.slowest_trace_id));
            } else {
                std::snprintf(trace_cols, sizeof trace_cols,
                              " %10s %10s", "-", "-");
            }
            out += trace_cols;
        }
        out += "\n";
    }
    return out;
}

TenantSlo
buildTenantSlo(const telemetry::MetricsSnapshot &snapshot,
               core::TenantId tenant)
{
    const std::string prefix = tenantPrefix(tenant);
    TenantSlo slo;
    slo.tenant = tenant;
    slo.admitted = counterValue(snapshot, prefix + "requests_admitted");
    slo.throttled =
        counterValue(snapshot, prefix + "requests_throttled");
    slo.rejected = counterValue(snapshot, prefix + "requests_rejected");
    slo.dispatched =
        counterValue(snapshot, prefix + "batches_dispatched");
    slo.offered = slo.admitted + slo.throttled + slo.rejected;
    auto hist = snapshot.histograms.find(prefix + "queue_latency_us");
    if (hist != snapshot.histograms.end())
        fillQuantiles(slo, hist->second);
    return slo;
}

SloReport
buildSloReport(const telemetry::MetricsSnapshot &snapshot,
               const std::vector<core::TenantId> &tenants)
{
    SloReport report;
    report.tenants.reserve(tenants.size());
    for (core::TenantId tenant : tenants)
        report.tenants.push_back(buildTenantSlo(snapshot, tenant));
    return report;
}

TenantSlo
aggregateSlo(const telemetry::MetricsSnapshot &snapshot,
             const std::vector<core::TenantId> &tenants,
             core::TenantId label)
{
    TenantSlo total;
    total.tenant = label;
    telemetry::HistogramSnapshot merged;
    for (core::TenantId tenant : tenants) {
        TenantSlo slo = buildTenantSlo(snapshot, tenant);
        total.offered += slo.offered;
        total.admitted += slo.admitted;
        total.throttled += slo.throttled;
        total.rejected += slo.rejected;
        total.dispatched += slo.dispatched;
        auto hist = snapshot.histograms.find(
            tenantPrefix(tenant) + "queue_latency_us");
        if (hist == snapshot.histograms.end())
            continue;
        if (merged.bounds.empty()) {
            merged = hist->second;
            continue;
        }
        fatalIf(merged.bounds != hist->second.bounds,
                "aggregateSlo: tenant ", tenant,
                " has different latency bounds than its class "
                "(all tenants of one service share one bounds "
                "vector)");
        for (size_t i = 0; i < merged.buckets.size(); ++i)
            merged.buckets[i] += hist->second.buckets[i];
        merged.count += hist->second.count;
        merged.sum += hist->second.sum;
    }
    if (!merged.bounds.empty())
        fillQuantiles(total, merged);
    return total;
}

void
annotateSlowestTraces(SloReport &report,
                      const std::vector<telemetry::FinishedTrace>
                          &traces)
{
    // tenant -> (root duration, trace id); longest root wins, lower
    // id on ties so virtual-clock replays annotate the same trace.
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> slowest;
    for (const telemetry::FinishedTrace &trace : traces) {
        for (const telemetry::Span &span : trace.spans) {
            if (span.parent != telemetry::kNoSpan)
                continue;
            const uint64_t dur = span.end_us - span.start_us;
            auto it = slowest.find(trace.tenant);
            if (it == slowest.end()) {
                slowest.emplace(trace.tenant,
                                std::make_pair(dur, trace.id));
            } else if (dur > it->second.first ||
                       (dur == it->second.first &&
                        trace.id < it->second.second)) {
                it->second = {dur, trace.id};
            }
        }
    }
    for (TenantSlo &slo : report.tenants) {
        auto it = slowest.find(slo.tenant);
        if (it == slowest.end())
            continue;
        slo.slowest_trace_us = it->second.first;
        slo.slowest_trace_id = it->second.second;
    }
}

} // namespace dnastore::workload
