/**
 * @file
 * Per-tenant SLO report, assembled from a MetricsSnapshot.
 *
 * The report reads exactly the metric names the DecodeService already
 * exports (`decode_service.tenant.<id>.*`) — it adds no new
 * instrumentation and works on any snapshot, live or archived. Under
 * a virtual clock the snapshot is byte-reproducible, so the report's
 * integer fingerprint pins a whole run's admission/scheduling/latency
 * behavior as one number.
 *
 * Fields per tenant: offered load, admission split (admitted /
 * throttled / rejected), goodput (admitted ÷ offered), dispatch
 * count, and queue-latency quantiles (p50/p99/p999, each with the
 * bucket-resolution error documented on HistogramSnapshot::quantile).
 */

#ifndef DNASTORE_WORKLOAD_SLO_REPORT_H
#define DNASTORE_WORKLOAD_SLO_REPORT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/tenant.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dnastore::workload {

/** One tenant's (or one aggregated class's) SLO numbers. */
struct TenantSlo
{
    core::TenantId tenant = core::kDefaultTenant;

    /** Requests the tenant presented: admitted + throttled + rejected. */
    uint64_t offered = 0;

    uint64_t admitted = 0;
    uint64_t throttled = 0;
    uint64_t rejected = 0;

    /** Batches the WDRR dispatcher ran for this tenant. */
    uint64_t dispatched = 0;

    /** Samples in the queue-latency histogram. */
    uint64_t latency_count = 0;

    /** Queue-latency quantiles; nullopt when the histogram is empty
     *  or the rank fell in the overflow bucket. */
    std::optional<uint64_t> p50_us;
    std::optional<uint64_t> p99_us;
    std::optional<uint64_t> p999_us;

    /** Slowest kept trace for this tenant (annotateSlowestTraces):
     *  the root-span duration and the trace id to look up in the
     *  collector or a Chrome-trace export. 0/0 when no trace was
     *  kept. Annotations, not SLO behavior — which traces the
     *  sampler keeps depends on the tracing config, so these fields
     *  are excluded from SloReport::fingerprint(). */
    uint64_t slowest_trace_id = 0;
    uint64_t slowest_trace_us = 0;

    /** admitted ÷ offered; 1.0 when the tenant offered nothing. */
    double goodput() const;

    bool operator==(const TenantSlo &) const = default;
};

/** The whole run's report, one row per tenant, ascending id. */
struct SloReport
{
    std::vector<TenantSlo> tenants;

    /** FNV over every integer SLO field of every row (goodput is
     *  derived from integer fields, so it is covered implicitly).
     *  Equal reports ⇒ equal fingerprints. The slowest-trace
     *  annotations are excluded: they reflect sampling configuration,
     *  not admission/scheduling behavior, and tracing on/off must not
     *  move a pinned fingerprint. */
    uint64_t fingerprint() const;

    /** Human-readable fixed-width table (for examples and bench
     *  stdout; not part of any pinned format). */
    std::string formatTable() const;
};

/** Build one tenant's row from `decode_service.tenant.<id>.*`. */
TenantSlo buildTenantSlo(const telemetry::MetricsSnapshot &snapshot,
                         core::TenantId tenant);

/** Build the report for @p tenants (ascending order preserved). */
SloReport buildSloReport(const telemetry::MetricsSnapshot &snapshot,
                         const std::vector<core::TenantId> &tenants);

/**
 * Aggregate many tenants into one row (per-class reporting): counters
 * sum; latency histograms merge bucket-wise (all tenants of a service
 * share one bounds vector, so the merge is exact) and the quantiles
 * are extracted from the merged histogram. @p label names the row —
 * aggregate rows conventionally reuse the class index.
 */
TenantSlo aggregateSlo(const telemetry::MetricsSnapshot &snapshot,
                       const std::vector<core::TenantId> &tenants,
                       core::TenantId label);

/**
 * Annotate each report row with the tenant's slowest kept trace: the
 * trace whose root span (parent == kNoSpan) lasted longest, ties
 * broken toward the lower trace id so virtual-clock replays annotate
 * deterministically. Rows are matched by tenant id; rows whose
 * tenant kept no trace stay 0/0.
 */
void annotateSlowestTraces(
    SloReport &report,
    const std::vector<telemetry::FinishedTrace> &traces);

} // namespace dnastore::workload

#endif // DNASTORE_WORKLOAD_SLO_REPORT_H
