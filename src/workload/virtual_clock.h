/**
 * @file
 * Deterministic microsecond clock shared by the workload simulator
 * and the scheduler test harness.
 *
 * DecodeServiceParams::clock_us reads this instead of steady_clock, so
 * token-bucket refills and queue/decode latency stamps become pure
 * functions of the script that advances the clock — a seeded
 * simulation replays byte-identically on any machine.
 */

#ifndef DNASTORE_WORKLOAD_VIRTUAL_CLOCK_H
#define DNASTORE_WORKLOAD_VIRTUAL_CLOCK_H

#include <atomic>
#include <cstdint>
#include <functional>

namespace dnastore::workload {

/** Deterministic microsecond clock; starts at 0, only moves forward. */
class VirtualClock
{
  public:
    uint64_t
    nowUs() const
    {
        return now_us_.load(std::memory_order_relaxed);
    }

    void
    advanceUs(uint64_t us)
    {
        now_us_.fetch_add(us, std::memory_order_relaxed);
    }

    /** Advance to @p target_us if it is ahead; a target already in
     *  the past is a no-op (the clock never moves backward, so a
     *  backlogged simulation simply submits late arrivals "now"). */
    void
    advanceToUs(uint64_t target_us)
    {
        uint64_t current = now_us_.load(std::memory_order_relaxed);
        while (current < target_us &&
               !now_us_.compare_exchange_weak(current, target_us,
                                              std::memory_order_relaxed))
            ;
    }

    /** Plug into DecodeServiceParams::clock_us. The clock must
     *  outlive the service. */
    std::function<uint64_t()>
    source()
    {
        return [this] { return nowUs(); };
    }

  private:
    std::atomic<uint64_t> now_us_{0};
};

} // namespace dnastore::workload

#endif // DNASTORE_WORKLOAD_VIRTUAL_CLOCK_H
