/**
 * @file
 * The workload trace schema: one flat, time-ordered list of operations
 * that a simulator run replays against a DecodeService.
 *
 * A trace is plain data — integer fields only, no pointers, no
 * floating point — so equality and the FNV fingerprint are exact and
 * portable: two runs of the seeded generator either produce the same
 * fingerprint or they diverged, with no tolerance band. Tests and the
 * bench gate pin fingerprints of in-process runs against each other
 * (never against literals, which would couple them to libm).
 */

#ifndef DNASTORE_WORKLOAD_TRACE_H
#define DNASTORE_WORKLOAD_TRACE_H

#include <cstdint>
#include <vector>

#include "core/tenant.h"

namespace dnastore::workload {

/** What one trace operation asks of the store. */
enum class OpType : uint8_t
{
    Read = 0,    ///< decode one object
    Write = 1,   ///< replace one object's content
    Update = 2,  ///< in-place edit of one object
};

/** One operation of the workload. */
struct TraceOp
{
    /** Arrival time on the simulation clock (open-loop: arrivals do
     *  not wait for earlier operations to finish). */
    uint64_t arrival_us = 0;

    core::TenantId tenant = core::kDefaultTenant;

    /** Object the operation targets, in [0, WorkloadParams::objects);
     *  drawn from the zipfian popularity distribution. */
    uint64_t object = 0;

    OpType type = OpType::Read;

    /** Per-tenant sequence number; breaks arrival-time ties so the
     *  merged trace order is total and reproducible. */
    uint64_t seq = 0;

    bool operator==(const TraceOp &) const = default;
};

using Trace = std::vector<TraceOp>;

/** FNV-1a over every integer field of every op, in trace order.
 *  Equal traces ⇒ equal fingerprints; used to pin byte-reproducibility
 *  without hauling whole traces into bench JSON. */
uint64_t traceFingerprint(const Trace &trace);

} // namespace dnastore::workload

#endif // DNASTORE_WORKLOAD_TRACE_H
