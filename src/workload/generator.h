/**
 * @file
 * Seeded workload generation: tenant classes, arrival processes,
 * zipfian object popularity, and read/write/update blends.
 *
 * The generator is a pure function of WorkloadParams: each tenant
 * draws from its own Rng sub-stream (Rng::deriveSeed(seed, tenant)),
 * so adding a tenant class never perturbs the streams of existing
 * tenants, and the merged trace is sorted by a total order
 * (arrival_us, tenant, seq) — same params ⇒ byte-identical Trace on
 * every platform the integer Rng is deterministic on (all of them).
 *
 * Scaling knob: classes carry a `count`, so "hundreds to thousands of
 * tenants" is a one-line change — tenant ids are assigned 1..N
 * consecutively across classes in declaration order (id 0, the
 * default tenant, is never generated: it carries no per-tenant
 * instruments and would hide in the SLO report).
 */

#ifndef DNASTORE_WORKLOAD_GENERATOR_H
#define DNASTORE_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/tenant.h"
#include "workload/trace.h"

namespace dnastore::workload {

/** Open-loop arrival process of one tenant. */
struct ArrivalProcess
{
    enum class Kind : uint8_t
    {
        /** Memoryless arrivals at rate_per_sec (exponential
         *  inter-arrival times). */
        Poisson = 0,

        /** Bursty on/off source: exponentially distributed ON and OFF
         *  periods (means mean_on_us / mean_off_us); arrivals are
         *  Poisson at rate_per_sec during ON, silent during OFF, so
         *  the long-run rate is rate_per_sec · on/(on+off). */
        OnOff = 1,
    };

    Kind kind = Kind::Poisson;
    double rate_per_sec = 100.0;
    uint64_t mean_on_us = 100'000;
    uint64_t mean_off_us = 400'000;
};

/** Read/write/update blend; weights need not sum to 1 (normalized). */
struct OpMix
{
    double read = 1.0;
    double write = 0.0;
    double update = 0.0;
};

/** A group of identically-configured tenants. */
struct TenantClass
{
    /** Label used in per-class SLO aggregation and bench output. */
    std::string name = "default";

    /** Tenants in this class (each gets its own Rng stream and its
     *  own TenantId). */
    size_t count = 1;

    ArrivalProcess arrivals;
    OpMix mix;

    /** Admission contract applied to EACH tenant of the class
     *  (weight, token bucket, queue cap — see core/tenant.h). */
    core::TenantParams admission;
};

/** Everything the generator needs; a pure value. */
struct WorkloadParams
{
    uint64_t seed = 1;

    /** Trace horizon: arrivals are generated in [0, duration_us). */
    uint64_t duration_us = 1'000'000;

    /** Object id space per tenant; popularity is zipfian over it. */
    uint64_t objects = 1'000;

    /** Zipf exponent s (0 = uniform; 0.99 ≈ classic YCSB skew). */
    double zipf_s = 0.99;

    std::vector<TenantClass> classes;

    /** Safety cap on total generated ops (0 = uncapped). The trace is
     *  truncated after time-sorting, so a cap keeps the earliest ops
     *  of every tenant rather than whole tenants. */
    size_t max_ops = 0;
};

/**
 * Zipfian sampler over [0, n): P(k) ∝ 1/(k+1)^s, via a precomputed
 * CDF and binary search. Deterministic given the Rng stream.
 */
class ZipfianSampler
{
  public:
    ZipfianSampler(uint64_t n, double s);

    uint64_t sample(Rng &rng) const;

    /** Theoretical probability of rank @p k (tests pin empirical
     *  frequencies against this within tolerance). */
    double pmf(uint64_t k) const;

  private:
    std::vector<double> cdf_;
};

/** Generate the full merged trace for @p params. */
Trace generateTrace(const WorkloadParams &params);

/** The DecodeServiceParams::tenants map implied by the classes. */
std::map<core::TenantId, core::TenantParams> tenantAdmission(
    const WorkloadParams &params);

/** All generated tenant ids, ascending (1..N across classes). */
std::vector<core::TenantId> tenantIds(const WorkloadParams &params);

/** The tenant ids of class @p class_index, ascending. */
std::vector<core::TenantId> classTenantIds(const WorkloadParams &params,
                                           size_t class_index);

} // namespace dnastore::workload

#endif // DNASTORE_WORKLOAD_GENERATOR_H
