#include "workload/simulator.h"

#include <chrono>
#include <future>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/sync.h"

namespace dnastore::workload {

namespace {

/** Thread-safe dispatch recorder behind the service's on_dispatch
 *  observer. Its mutex is a leaf: the observer runs on the dispatcher
 *  thread with no service lock held. */
class DispatchRecorder
{
  public:
    void
    record(core::TenantId tenant, size_t requests)
    {
        sync::MutexLock lock(m_);
        records_.push_back(DispatchRecord{tenant, requests});
    }

    std::vector<DispatchRecord>
    take()
    {
        sync::MutexLock lock(m_);
        return std::move(records_);
    }

  private:
    sync::Mutex m_{sync::Rank::kLeaf, "dispatch_recorder"};
    std::vector<DispatchRecord> records_ DNASTORE_GUARDED_BY(m_);
};

core::DecodeServiceParams
serviceParams(const std::map<core::TenantId, core::TenantParams>
                  &admission,
              const SimulatorParams &params,
              telemetry::MetricsRegistry &registry)
{
    core::DecodeServiceParams sp;
    sp.threads = params.service_threads;
    sp.max_queue_depth = params.max_queue_depth;
    sp.overflow = params.overflow;
    sp.tenants = admission;
    sp.metrics = &registry;
    sp.latency_bounds_us = params.latency_bounds_us.empty()
                               ? telemetry::fineLatencyBoundsUs()
                               : params.latency_bounds_us;
    return sp;
}

std::vector<sim::Read>
readsFor(const SimulatorParams &params, const TraceOp &op)
{
    if (params.reads_for)
        return params.reads_for(op);
    return {};
}

/** Build the replay's collector, or null when tracing is off.
 *  @p clock_us is the simulation clock in virtual mode (empty =
 *  steady_clock) so kept traces replay byte-identically. */
std::shared_ptr<telemetry::TraceCollector>
makeCollector(const SimulatorParams &params,
              std::function<uint64_t()> clock_us)
{
    if (params.trace_sample_every == 0 &&
        params.trace_slow_threshold_us == 0)
        return nullptr;
    telemetry::TraceCollectorConfig config;
    config.sample_every = params.trace_sample_every;
    config.slow_threshold_us = params.trace_slow_threshold_us;
    config.capacity = params.trace_capacity;
    config.clock_us = std::move(clock_us);
    return std::make_shared<telemetry::TraceCollector>(
        std::move(config));
}

void
finishResult(SimResult &result, const Trace &trace,
             telemetry::MetricsRegistry &registry,
             const std::vector<core::TenantId> &tenants,
             DispatchRecorder &recorder, bool record_dispatches,
             std::shared_ptr<telemetry::TraceCollector> collector)
{
    result.metrics = registry.snapshot();
    result.report = buildSloReport(result.metrics, tenants);
    result.report_fingerprint = result.report.fingerprint();
    result.trace_fingerprint = traceFingerprint(trace);
    if (record_dispatches)
        result.dispatches = recorder.take();
    if (collector) {
        annotateSlowestTraces(result.report, collector->traces());
        result.traces = std::move(collector);
    }
}

SimResult
replayVirtual(const Trace &trace,
              const std::map<core::TenantId, core::TenantParams>
                  &admission,
              const std::vector<core::TenantId> &tenants,
              const SimulatorParams &params)
{
    fatalIf(params.decoder == nullptr,
            "replayTrace: SimulatorParams::decoder is required");
    fatalIf(params.virtual_service_time_us == 0,
            "replayTrace: virtual_service_time_us must be > 0 (a "
            "zero-cost service shapes no queueing at all)");
    fatalIf(params.epoch_us == 0, "replayTrace: epoch_us must be > 0");
    if (params.overflow == core::OverflowPolicy::Block) {
        bool bounded = params.max_queue_depth > 0;
        for (const auto &[tenant, tp] : admission)
            bounded = bounded || tp.max_queue_depth > 0;
        fatalIf(bounded,
                "replayTrace: OverflowPolicy::Block with a queue-depth "
                "bound would park submitters against a paused "
                "dispatcher; use Reject (or drop the bounds)");
    }

    VirtualClock clock;
    telemetry::MetricsRegistry registry;
    DispatchRecorder recorder;
    std::shared_ptr<telemetry::TraceCollector> collector =
        makeCollector(params, clock.source());

    core::DecodeServiceParams sp =
        serviceParams(admission, params, registry);
    sp.clock_us = clock.source();
    sp.start_paused = true;
    sp.tracer = collector.get();
    const uint64_t service_time_us = params.virtual_service_time_us;
    const bool record = params.record_dispatches;
    sp.on_dispatch = [&clock, &recorder, service_time_us,
                      record](core::TenantId tenant, size_t requests) {
        // Dispatcher thread, serialized with the batch it is about to
        // run: the advance is observed by that batch's own latency
        // stamps, so every dispatched request "costs" virtual time.
        clock.advanceUs(service_time_us * requests);
        if (record)
            recorder.record(tenant, requests);
    };

    SimResult result;
    {
        core::DecodeService service(std::move(sp));
        std::vector<std::future<core::DecodeOutcome>> epoch_futures;
        size_t next = 0;
        uint64_t epoch_end_us = params.epoch_us;
        while (next < trace.size()) {
            // Script the epoch's arrivals with dispatch held, so the
            // WDRR dispatcher sees the whole contended backlog at
            // once — the schedule is a pure function of the trace.
            while (next < trace.size() &&
                   trace[next].arrival_us < epoch_end_us) {
                const TraceOp &op = trace[next];
                clock.advanceToUs(op.arrival_us);
                epoch_futures.push_back(service.submit(
                    *params.decoder, readsFor(params, op), op.tenant));
                ++result.ops_submitted;
                ++next;
            }
            service.resumeDispatch();
            for (auto &future : epoch_futures)
                (void)future.get();
            epoch_futures.clear();
            service.pauseDispatch();
            epoch_end_us += params.epoch_us;
        }
        service.shutdown();
        result.end_clock_us = clock.nowUs();
    }
    finishResult(result, trace, registry, tenants, recorder,
                 params.record_dispatches, std::move(collector));
    return result;
}

SimResult
replayReal(const Trace &trace,
           const std::map<core::TenantId, core::TenantParams>
               &admission,
           const std::vector<core::TenantId> &tenants,
           const SimulatorParams &params)
{
    fatalIf(params.decoder == nullptr,
            "replayTrace: SimulatorParams::decoder is required");

    telemetry::MetricsRegistry registry;
    DispatchRecorder recorder;
    std::shared_ptr<telemetry::TraceCollector> collector =
        makeCollector(params, {});
    core::DecodeServiceParams sp =
        serviceParams(admission, params, registry);
    sp.tracer = collector.get();
    const bool record = params.record_dispatches;
    if (record) {
        sp.on_dispatch = [&recorder](core::TenantId tenant,
                                     size_t requests) {
            recorder.record(tenant, requests);
        };
    }

    SimResult result;
    {
        core::DecodeService service(std::move(sp));
        std::vector<std::future<core::DecodeOutcome>> futures;
        futures.reserve(trace.size());
        const auto start = std::chrono::steady_clock::now();
        for (const TraceOp &op : trace) {
            std::this_thread::sleep_until(
                start + std::chrono::microseconds(op.arrival_us));
            futures.push_back(service.submit(
                *params.decoder, readsFor(params, op), op.tenant));
            ++result.ops_submitted;
        }
        for (auto &future : futures)
            (void)future.get();
        service.shutdown();
    }
    finishResult(result, trace, registry, tenants, recorder,
                 params.record_dispatches, std::move(collector));
    return result;
}

} // namespace

SimResult
replayTrace(const Trace &trace,
            const std::map<core::TenantId, core::TenantParams>
                &admission,
            const std::vector<core::TenantId> &tenants,
            const SimulatorParams &params)
{
    if (params.clock == SimulatorParams::Clock::Virtual)
        return replayVirtual(trace, admission, tenants, params);
    return replayReal(trace, admission, tenants, params);
}

SimResult
runSimulation(const WorkloadParams &workload,
              const SimulatorParams &params)
{
    return replayTrace(generateTrace(workload),
                       tenantAdmission(workload), tenantIds(workload),
                       params);
}

SimResult
replayOnFleet(const Trace &trace,
              const std::map<core::TenantId, core::TenantParams>
                  &admission,
              const std::vector<core::TenantId> &tenants,
              const std::map<core::TenantId, FleetDevice> &fleet,
              const SimulatorParams &params)
{
    fatalIf(params.clock != SimulatorParams::Clock::Real,
            "replayOnFleet: fleet replay is wall-clock only (virtual "
            "mode measures scheduling, not synchronous frontends)");
    for (core::TenantId tenant : tenants) {
        auto it = fleet.find(tenant);
        fatalIf(it == fleet.end() || it->second.device == nullptr ||
                    it->second.device->blockCount() == 0,
                "replayOnFleet: tenant ", tenant,
                " needs a written FleetDevice");
    }

    telemetry::MetricsRegistry registry;
    DispatchRecorder recorder;
    std::shared_ptr<telemetry::TraceCollector> collector =
        makeCollector(params, {});
    core::DecodeServiceParams sp =
        serviceParams(admission, params, registry);
    const bool record = params.record_dispatches;
    if (record) {
        sp.on_dispatch = [&recorder](core::TenantId tenant,
                                     size_t requests) {
            recorder.record(tenant, requests);
        };
    }

    SimResult result;
    {
        core::DecodeService service(std::move(sp));

        // One frontend per tenant (frontends are cheap; the binding
        // carries the tenant id) and one worker per tenant: devices
        // are not thread-safe, so a tenant's ops run strictly in
        // trace order — the closed loop. Frontends root the traces
        // (frontend.* spans); the service does not get its own
        // tracer, so every routed decode joins the frontend trace
        // instead of rooting a second one.
        std::map<core::TenantId,
                 std::unique_ptr<core::StorageFrontend>>
            frontends;
        for (core::TenantId tenant : tenants) {
            core::StorageFrontendParams fp;
            fp.metrics = &registry;
            fp.tenant = tenant;
            fp.tracer = collector.get();
            frontends.emplace(tenant,
                              std::make_unique<core::StorageFrontend>(
                                  service, fp));
        }

        std::map<core::TenantId, std::vector<const TraceOp *>> per;
        for (const TraceOp &op : trace)
            per[op.tenant].push_back(&op);

        std::atomic<uint64_t> submitted{0};
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::thread> workers;
        workers.reserve(tenants.size());
        for (core::TenantId tenant : tenants) {
            core::StorageFrontend *frontend =
                frontends.at(tenant).get();
            core::BlockDevice *device = fleet.at(tenant).device;
            const std::vector<const TraceOp *> &ops = per[tenant];
            workers.emplace_back([frontend, device, &ops, start,
                                  &submitted] {
                for (const TraceOp *op : ops) {
                    std::this_thread::sleep_until(
                        start +
                        std::chrono::microseconds(op->arrival_us));
                    const uint64_t block =
                        op->object % device->blockCount();
                    try {
                        switch (op->type) {
                        case OpType::Read:
                            (void)frontend->readBlock(*device, block);
                            break;
                        case OpType::Write: {
                            core::Bytes content(
                                device->partition()
                                    .config()
                                    .block_data_bytes,
                                static_cast<uint8_t>(op->seq));
                            device->replaceBlock(block, content);
                            break;
                        }
                        case OpType::Update: {
                            core::UpdateOp edit;
                            edit.delete_pos = 0;
                            edit.delete_len = 1;
                            edit.insert_pos = 0;
                            edit.insert_bytes = {
                                static_cast<uint8_t>(op->seq)};
                            device->updateBlock(block, edit);
                            break;
                        }
                        }
                    } catch (const core::OverloadedError &) {
                        // Shed (Overloaded or Throttled): already
                        // counted by the service's per-tenant
                        // instruments; the closed loop moves on.
                    }
                    submitted.fetch_add(1,
                                        std::memory_order_relaxed);
                }
            });
        }
        for (std::thread &worker : workers)
            worker.join();
        result.ops_submitted =
            submitted.load(std::memory_order_relaxed);
        service.shutdown();
    }
    finishResult(result, trace, registry, tenants, recorder,
                 params.record_dispatches, std::move(collector));
    return result;
}

} // namespace dnastore::workload
