#include "core/block_device.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "core/decode_service.h"

namespace dnastore::core {

BlockDevice::BlockDevice(BlockDeviceParams params, dna::Sequence forward,
                         dna::Sequence reverse, uint32_t file_id)
    : params_(params),
      partition_(params.config, std::move(forward), std::move(reverse),
                 file_id),
      decoder_(partition_, params.decoder), costs_(params.costs),
      next_overflow_(partition_.tree().leafCount() - 1)
{}

void
BlockDevice::writeFile(const Bytes &data)
{
    std::vector<sim::DesignedMolecule> order =
        partition_.encodeFile(data, params_.encode);
    data_blocks_ = partition_.blocksFor(data.size());
    update_counts_.clear();
    overflow_chain_.clear();
    next_overflow_ = partition_.tree().leafCount() - 1;

    pool_ = sim::Pool();
    sim::SynthesisParams synthesis = params_.synthesis;
    pool_ = sim::synthesize(order, synthesis);
    costs_.recordSynthesis(order.size(), params_.config.strand_length);
}

void
BlockDevice::synthesizeAndMix(
    const std::vector<sim::DesignedMolecule> &order)
{
    sim::SynthesisParams synthesis = params_.synthesis;
    // A patch is a separate synthesis order: use a fresh seed stream.
    synthesis.seed =
        Rng::deriveSeed(params_.synthesis.seed,
                        0x9000 + costs_.moleculesSynthesized());
    sim::Pool patch = sim::synthesize(order, synthesis);
    costs_.recordSynthesis(order.size(), params_.config.strand_length);

    if (pool_.speciesCount() == 0) {
        pool_ = std::move(patch);
        return;
    }
    // Concentration-matched mixing (Section 5.5): equalize the
    // per-unique-molecule mass of the patch with the existing pool.
    double pool_per_molecule =
        pool_.totalMass() / static_cast<double>(pool_.speciesCount());
    double patch_per_molecule =
        patch.totalMass() / static_cast<double>(patch.speciesCount());
    pool_.mixIn(patch, pool_per_molecule / patch_per_molecule);
}

void
BlockDevice::writeRecord(uint64_t container, unsigned slot,
                         const UpdateRecord &record)
{
    panicIf(container == 0 && slot == 0 && data_blocks_ > 0,
            "attempt to overwrite original data slot");
    Bytes payload =
        record.serialize(params_.config.unitDataBytes());
    synthesizeAndMix(partition_.encodeBlock(container, payload, slot));
}

void
BlockDevice::appendUpdate(uint64_t block, UpdateRecord record)
{
    fatalIf(block >= data_blocks_, "update to unwritten block ", block);
    unsigned n = 0;
    auto it = update_counts_.find(block);
    if (it != update_counts_.end())
        n = it->second;

    constexpr unsigned kInlineSlots =
        index::SparseIndexTree::kVersionSlots - 2;  // versions 1, 2
    constexpr unsigned kContainerSlots =
        index::SparseIndexTree::kVersionSlots - 1;  // slots 0..2

    if (n < kInlineSlots) {
        writeRecord(block, n + 1, record);
    } else {
        unsigned chain_index = (n - kInlineSlots) / kContainerSlots;
        unsigned slot = (n - kInlineSlots) % kContainerSlots;
        std::vector<uint64_t> &chain = overflow_chain_[block];
        if (slot == 0) {
            fatalIf(next_overflow_ <= data_blocks_,
                    "address space exhausted by the overflow log");
            uint64_t container = next_overflow_--;
            uint64_t prev =
                chain.empty() ? block : chain.back();
            UpdateRecord pointer;
            pointer.kind = UpdateRecord::Kind::kOverflowPointer;
            pointer.overflow_block = container;
            writeRecord(prev,
                        index::SparseIndexTree::kVersionSlots - 1,
                        pointer);
            chain.push_back(container);
        }
        writeRecord(chain[chain_index], slot, record);
    }
    update_counts_[block] = n + 1;
}

void
BlockDevice::updateBlock(uint64_t block, const UpdateOp &op)
{
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kInline;
    record.op = op;
    appendUpdate(block, std::move(record));
}

void
BlockDevice::replaceBlock(uint64_t block, const Bytes &content)
{
    fatalIf(content.size() > params_.config.block_data_bytes,
            "replacement larger than a block");
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kReplace;
    record.replacement = content;
    appendUpdate(block, std::move(record));
}

unsigned
BlockDevice::updateCount(uint64_t block) const
{
    auto it = update_counts_.find(block);
    return it == update_counts_.end() ? 0 : it->second;
}

std::vector<sim::Read>
BlockDevice::roundTrip(const std::vector<sim::PcrPrimer> &primers,
                       size_t reads)
{
    fatalIf(pool_.speciesCount() == 0, "device has no data");
    sim::PcrParams pcr = params_.pcr;
    pcr.cycles = params_.block_access_cycles;
    pcr.stringency = sim::touchdownSchedule(
        params_.touchdown_cycles, params_.block_access_cycles);

    std::vector<sim::PcrPrimer> all = primers;
    if (params_.leftover_primer_concentration > 0.0) {
        all.push_back(
            sim::PcrPrimer{partition_.forwardPrimer(),
                           params_.leftover_primer_concentration});
    }
    sim::Pool product =
        sim::runPcr(pool_, all, partition_.reversePrimer(), pcr);

    sim::SequencerParams sequencer = params_.sequencer;
    sequencer.seed =
        Rng::deriveSeed(params_.sequencer.seed, costs_.readsSequenced());
    costs_.recordSequencing(reads);
    costs_.recordRoundTrip();
    return sim::sequencePool(product, reads, sequencer);
}

std::map<uint64_t, BlockVersions>
BlockDevice::decodeReads(std::vector<sim::Read> reads,
                         DecodeStats *stats, DecodeService *service,
                         TenantId tenant,
                         const telemetry::TraceContext &trace)
{
    if (!service)
        return decoder_.decodeAll(reads, stats, trace);
    DecodeOutcome outcome =
        service->submit(decoder_, std::move(reads), tenant, trace)
            .get();
    if (outcome.status == DecodeStatus::Throttled)
        throw ThrottledError("BlockDevice read shed by the tenant's "
                             "token bucket");
    if (outcome.status == DecodeStatus::Overloaded)
        throw OverloadedError("BlockDevice read shed by the decode "
                              "service");
    if (stats)
        *stats = outcome.stats;
    return std::move(outcome.units);
}

std::optional<Bytes>
BlockDevice::resolveBlock(
    uint64_t block, const std::map<uint64_t, BlockVersions> &units,
    DecodeService *service, TenantId tenant,
    const telemetry::TraceContext &trace)
{
    auto it = units.find(block);
    if (it == units.end())
        return std::nullopt;
    auto base_it = it->second.versions.find(0);
    if (base_it == it->second.versions.end())
        return std::nullopt;
    Bytes base = base_it->second;
    base.resize(params_.config.block_data_bytes);

    std::optional<uint64_t> overflow;
    Bytes current =
        decoder_.applyUpdateChain(base, it->second, &overflow);

    std::map<uint64_t, BlockVersions> extra = units;
    while (overflow) {
        uint64_t container = *overflow;
        overflow.reset();
        auto container_it = extra.find(container);
        if (container_it == extra.end()) {
            // Overflow hop: one more targeted round trip.
            std::vector<sim::Read> reads = roundTrip(
                {sim::PcrPrimer{partition_.blockPrimer(container),
                                1.0}},
                params_.reads_per_block_access);
            DecodeStats stats;
            auto fetched = decodeReads(std::move(reads), &stats,
                                       service, tenant, trace);
            for (auto &entry : fetched)
                extra.insert(entry);
            container_it = extra.find(container);
            if (container_it == extra.end())
                return std::nullopt;  // overflow data unrecoverable
        }
        // Containers hold records in every slot (0..2, 3 = pointer).
        for (unsigned v = 0; v < index::SparseIndexTree::kVersionSlots;
             ++v) {
            auto slot = container_it->second.versions.find(v);
            if (slot == container_it->second.versions.end())
                break;
            std::optional<UpdateRecord> record =
                UpdateRecord::deserialize(slot->second);
            if (!record)
                break;
            if (record->kind == UpdateRecord::Kind::kInline) {
                current = record->op.apply(
                    current, params_.config.block_data_bytes);
            } else if (record->kind == UpdateRecord::Kind::kReplace) {
                current = record->replacement;
                current.resize(params_.config.block_data_bytes, 0);
            } else {
                overflow = record->overflow_block;
                break;
            }
        }
    }
    return current;
}

std::optional<Bytes>
BlockDevice::readBlock(uint64_t block, DecodeService *service,
                       TenantId tenant,
                       const telemetry::TraceContext &trace)
{
    fatalIf(block >= data_blocks_, "block ", block, " was never written");
    std::vector<sim::Read> reads = roundTrip(
        {sim::PcrPrimer{partition_.blockPrimer(block), 1.0}},
        params_.reads_per_block_access);
    last_stats_ = DecodeStats();
    auto units = decodeReads(std::move(reads), &last_stats_, service,
                             tenant, trace);
    return resolveBlock(block, units, service, tenant, trace);
}

std::vector<sim::Read>
BlockDevice::sequenceRange(uint64_t lo, uint64_t hi)
{
    fatalIf(lo > hi || hi >= data_blocks_, "invalid block range");
    std::vector<dna::Sequence> primer_seqs =
        partition_.rangePrimers(lo, hi);
    std::vector<sim::PcrPrimer> primers;
    primers.reserve(primer_seqs.size());
    double share = 1.0 / static_cast<double>(primer_seqs.size());
    for (dna::Sequence &seq : primer_seqs)
        primers.push_back(sim::PcrPrimer{std::move(seq), share});

    size_t budget = static_cast<size_t>(
        params_.coverage *
        static_cast<double>((hi - lo + 1) * params_.config.rs_n) * 4.0);
    return roundTrip(primers, budget);
}

std::vector<sim::Read>
BlockDevice::sequenceAll()
{
    fatalIf(data_blocks_ == 0, "device has no data");
    size_t budget = static_cast<size_t>(
        params_.coverage * static_cast<double>(pool_.speciesCount()));
    sim::PcrParams pcr = params_.pcr;
    pcr.cycles = 15;  // plain amplification, no touchdown

    sim::Pool product = sim::runPcr(
        pool_, {sim::PcrPrimer{partition_.forwardPrimer(), 1.0}},
        partition_.reversePrimer(), pcr);
    sim::SequencerParams sequencer = params_.sequencer;
    sequencer.seed =
        Rng::deriveSeed(params_.sequencer.seed, costs_.readsSequenced());
    costs_.recordSequencing(budget);
    costs_.recordRoundTrip();
    return sim::sequencePool(product, budget, sequencer);
}

std::vector<std::optional<Bytes>>
BlockDevice::assembleRange(
    uint64_t lo, uint64_t hi,
    const std::map<uint64_t, BlockVersions> &units,
    DecodeService *service, TenantId tenant,
    const telemetry::TraceContext &trace)
{
    fatalIf(lo > hi || hi >= data_blocks_, "invalid block range");
    std::vector<std::optional<Bytes>> result;
    result.reserve(hi - lo + 1);
    for (uint64_t block = lo; block <= hi; ++block)
        result.push_back(
            resolveBlock(block, units, service, tenant, trace));
    return result;
}

std::vector<std::optional<Bytes>>
BlockDevice::readRange(uint64_t lo, uint64_t hi,
                       DecodeService *service, TenantId tenant,
                       const telemetry::TraceContext &trace)
{
    std::vector<sim::Read> reads = sequenceRange(lo, hi);
    last_stats_ = DecodeStats();
    auto units = decodeReads(std::move(reads), &last_stats_, service,
                             tenant, trace);
    return assembleRange(lo, hi, units, service, tenant, trace);
}

std::vector<std::optional<Bytes>>
BlockDevice::readAll(DecodeService *service, TenantId tenant,
                     const telemetry::TraceContext &trace)
{
    std::vector<sim::Read> reads = sequenceAll();
    last_stats_ = DecodeStats();
    auto units = decodeReads(std::move(reads), &last_stats_, service,
                             tenant, trace);
    return assembleRange(0, data_blocks_ - 1, units, service, tenant,
                         trace);
}

} // namespace dnastore::core
