#include "core/storage_frontend.h"

#include <chrono>
#include <utility>

#include "common/error.h"

namespace dnastore::core {

StorageFrontend::StorageFrontend(DecodeService &service,
                                 StorageFrontendParams params)
    : service_(service), tenant_(params.tenant),
      tracer_(params.tracer)
{
    if (params.metrics) {
        telemetry::MetricsRegistry &registry = *params.metrics;
        block_reads_ = &registry.counter("frontend.block_reads");
        range_reads_ = &registry.counter("frontend.range_reads");
        full_reads_ = &registry.counter("frontend.full_reads");
        file_reads_ = &registry.counter("frontend.file_reads");
        batch_reads_ = &registry.counter("frontend.batch_reads");
        blocks_returned_ =
            &registry.counter("frontend.blocks_returned");
        blocks_missing_ = &registry.counter("frontend.blocks_missing");
        overloaded_ = &registry.counter("frontend.overloaded");
        throttled_ = &registry.counter("frontend.throttled");
        read_latency_us_ =
            &registry.histogram("frontend.read_latency_us");
    }
}

template <typename Fn>
auto
StorageFrontend::instrumented(telemetry::Counter *calls,
                              std::string_view span_name, Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    Clock::time_point start = Clock::now();
    telemetry::SpanHandle root;
    if (tracer_)
        root = tracer_->startTrace(span_name, tenant_);
    root.attrU64("tenant", tenant_);
    telemetry::TraceContext ctx = root.context();
    try {
        auto result = fn(ctx);
        if (calls)
            calls->increment();
        if (read_latency_us_) {
            auto us = std::chrono::duration_cast<
                std::chrono::microseconds>(Clock::now() - start);
            read_latency_us_->observe(
                us.count() < 0 ? 0
                               : static_cast<uint64_t>(us.count()),
                ctx.traceId());
        }
        if (root.active()) {
            root.attr("outcome", "ok");
            root.end();
        }
        return result;
    } catch (const ThrottledError &) {
        if (throttled_)
            throttled_->increment();
        if (root.active()) {
            root.attr("outcome", "throttled");
            ctx.keep();
            root.end();
        }
        throw;
    } catch (const OverloadedError &) {
        if (overloaded_)
            overloaded_->increment();
        if (root.active()) {
            root.attr("outcome", "overloaded");
            ctx.keep();
            root.end();
        }
        throw;
    } catch (...) {
        if (root.active()) {
            root.attr("outcome", "error");
            ctx.keep();
            root.end();
        }
        throw;
    }
}

void
StorageFrontend::recordBlocks(
    const std::vector<std::optional<Bytes>> &blocks)
{
    if (!blocks_returned_)
        return;
    size_t returned = 0;
    for (const std::optional<Bytes> &block : blocks)
        returned += block.has_value() ? 1 : 0;
    blocks_returned_->increment(returned);
    blocks_missing_->increment(blocks.size() - returned);
}

std::optional<Bytes>
StorageFrontend::readBlock(BlockDevice &device, uint64_t block)
{
    return instrumented(block_reads_, "frontend.read_block",
                        [&](const telemetry::TraceContext &ctx) {
        std::optional<Bytes> content =
            device.readBlock(block, &service_, tenant_, ctx);
        if (blocks_returned_) {
            (content ? blocks_returned_ : blocks_missing_)
                ->increment();
        }
        return content;
    });
}

std::vector<std::optional<Bytes>>
StorageFrontend::readBlocks(BlockDevice &device, uint64_t lo,
                            uint64_t hi)
{
    return instrumented(range_reads_, "frontend.read_blocks",
                        [&](const telemetry::TraceContext &ctx) {
        std::vector<std::optional<Bytes>> blocks =
            device.readRange(lo, hi, &service_, tenant_, ctx);
        recordBlocks(blocks);
        return blocks;
    });
}

std::vector<std::optional<Bytes>>
StorageFrontend::readAll(BlockDevice &device)
{
    return instrumented(full_reads_, "frontend.read_all",
                        [&](const telemetry::TraceContext &ctx) {
        std::vector<std::optional<Bytes>> blocks =
            device.readAll(&service_, tenant_, ctx);
        recordBlocks(blocks);
        return blocks;
    });
}

std::optional<Bytes>
StorageFrontend::readFile(PoolManager &pool, uint32_t file_id)
{
    return instrumented(file_reads_, "frontend.read_file",
                        [&](const telemetry::TraceContext &ctx) {
        return pool.readFile(file_id, &service_, tenant_, ctx);
    });
}

std::vector<std::vector<std::optional<Bytes>>>
StorageFrontend::readBlocksBatch(const std::vector<RangeRead> &ranges)
{
    return instrumented(batch_reads_, "frontend.read_blocks_batch",
                        [&](const telemetry::TraceContext &ctx) {
        // Wetlab stage stays sequential: each device owns its cost
        // and RNG state, and the sequencing order is part of the
        // byte-identical contract with per-call readBlocks.
        std::vector<DecodeRequest> batch(ranges.size());
        for (size_t i = 0; i < ranges.size(); ++i) {
            fatalIf(ranges[i].device == nullptr,
                    "readBlocksBatch: null device");
            batch[i].decoder = &ranges[i].device->decoder();
            batch[i].reads = ranges[i].device->sequenceRange(
                ranges[i].lo, ranges[i].hi);
            batch[i].tenant = tenant_;
            batch[i].trace = ctx;
        }

        // One submission: the ranges' decodes shard across the
        // service pool and run concurrently.
        std::vector<std::future<DecodeOutcome>> futures =
            service_.submitBatch(std::move(batch));

        std::vector<std::vector<std::optional<Bytes>>> results;
        results.reserve(ranges.size());
        for (size_t i = 0; i < ranges.size(); ++i) {
            DecodeOutcome outcome = futures[i].get();
            if (outcome.status == DecodeStatus::Throttled)
                throw ThrottledError(
                    "readBlocksBatch shed by the tenant's token "
                    "bucket");
            if (outcome.status == DecodeStatus::Overloaded)
                throw OverloadedError(
                    "readBlocksBatch shed by the decode service");
            results.push_back(ranges[i].device->assembleRange(
                ranges[i].lo, ranges[i].hi, outcome.units,
                &service_, tenant_, ctx));
            recordBlocks(results.back());
        }
        return results;
    });
}

std::vector<std::optional<Bytes>>
StorageFrontend::readFiles(PoolManager &pool,
                           const std::vector<uint32_t> &file_ids)
{
    return instrumented(batch_reads_, "frontend.read_files",
                        [&](const telemetry::TraceContext &ctx) {
        std::vector<DecodeRequest> batch(file_ids.size());
        for (size_t i = 0; i < file_ids.size(); ++i) {
            batch[i].decoder = &pool.decoderOf(file_ids[i]);
            batch[i].reads = pool.sequenceFile(file_ids[i]);
            batch[i].tenant = tenant_;
            batch[i].trace = ctx;
        }

        std::vector<std::future<DecodeOutcome>> futures =
            service_.submitBatch(std::move(batch));

        std::vector<std::optional<Bytes>> files;
        files.reserve(file_ids.size());
        for (size_t i = 0; i < file_ids.size(); ++i) {
            DecodeOutcome outcome = futures[i].get();
            if (outcome.status == DecodeStatus::Throttled)
                throw ThrottledError(
                    "readFiles shed by the tenant's token bucket");
            if (outcome.status == DecodeStatus::Overloaded)
                throw OverloadedError(
                    "readFiles shed by the decode service");
            files.push_back(
                pool.assembleFile(file_ids[i], outcome.units));
        }
        return files;
    });
}

} // namespace dnastore::core
