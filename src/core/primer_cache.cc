#include "core/primer_cache.h"

#include "common/error.h"

namespace dnastore::core {

PrimerCache::PrimerCache(size_t capacity) : capacity_(capacity)
{
    fatalIf(capacity == 0, "PrimerCache needs capacity >= 1");
}

bool
PrimerCache::request(uint64_t block, const dna::Sequence &physical_index)
{
    auto it = entries_.find(block);
    if (it != entries_.end()) {
        ++stats_.hits;
        order_.splice(order_.begin(), order_, it->second);
        return true;
    }

    ++stats_.misses;
    stats_.bases_synthesized += physical_index.size();
    if (entries_.size() >= capacity_) {
        uint64_t victim = order_.back();
        order_.pop_back();
        entries_.erase(victim);
        ++stats_.evictions;
    }
    order_.push_front(block);
    entries_.emplace(block, order_.begin());
    return false;
}

bool
PrimerCache::contains(uint64_t block) const
{
    return entries_.find(block) != entries_.end();
}

} // namespace dnastore::core
