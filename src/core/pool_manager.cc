#include "core/pool_manager.h"

#include <utility>

#include "common/rng.h"
#include "core/decode_service.h"
#include "primer/library.h"

namespace dnastore::core {

PoolManager::PoolManager(PoolManagerParams params)
    : params_(std::move(params)), costs_(params_.costs)
{
    primer::LibraryGenerator generator(params_.config.primer_length,
                                       params_.primer_constraints,
                                       params_.seed);
    primer_library_ =
        generator
            .generate(params_.primer_search_budget,
                      2 * params_.max_primer_pairs)
            .primers;
    fatalIf(primer_library_.size() < 2,
            "primer library search found no usable pair");
}

size_t
PoolManager::primerPairsAvailable() const
{
    return (primer_library_.size() - next_primer_) / 2;
}

PoolManager::FileState &
PoolManager::stateOf(uint32_t file_id)
{
    auto it = files_.find(file_id);
    fatalIf(it == files_.end(), "unknown file id ", file_id);
    return it->second;
}

const PoolManager::FileState &
PoolManager::stateOf(uint32_t file_id) const
{
    auto it = files_.find(file_id);
    fatalIf(it == files_.end(), "unknown file id ", file_id);
    return it->second;
}

const Partition &
PoolManager::partition(uint32_t file_id) const
{
    return *stateOf(file_id).partition;
}

uint64_t
PoolManager::blockCount(uint32_t file_id) const
{
    return stateOf(file_id).blocks;
}

void
PoolManager::synthesizeAndMix(
    const std::vector<sim::DesignedMolecule> &order)
{
    sim::SynthesisParams synthesis = params_.synthesis;
    synthesis.seed = Rng::deriveSeed(
        params_.synthesis.seed, 0x6000 + costs_.moleculesSynthesized());
    sim::Pool fresh = sim::synthesize(order, synthesis);
    costs_.recordSynthesis(order.size(), params_.config.strand_length);
    if (pool_.speciesCount() == 0) {
        pool_ = std::move(fresh);
        return;
    }
    double pool_per = pool_.totalMass() /
                      static_cast<double>(pool_.speciesCount());
    double fresh_per = fresh.totalMass() /
                       static_cast<double>(fresh.speciesCount());
    pool_.mixIn(fresh, pool_per / fresh_per);
}

uint32_t
PoolManager::storeFile(const Bytes &data)
{
    fatalIf(next_primer_ + 2 > primer_library_.size(),
            "primer library exhausted: cannot address another file");
    uint32_t file_id = next_file_id_++;

    // Every partition gets distinct seeds so trees and scramblers
    // differ across partitions (Section 4.4).
    PartitionConfig config = params_.config;
    config.index_seed =
        Rng::deriveSeed(params_.seed, 0x77ee00 + file_id);
    config.scramble_seed =
        Rng::deriveSeed(params_.seed, 0x5c4a00 + file_id);

    FileState state;
    state.partition = std::make_unique<Partition>(
        config, primer_library_[next_primer_],
        primer_library_[next_primer_ + 1], file_id);
    next_primer_ += 2;
    state.decoder =
        std::make_unique<Decoder>(*state.partition, params_.decoder);
    state.blocks = state.partition->blocksFor(data.size());
    state.file_size = data.size();

    synthesizeAndMix(state.partition->encodeFile(data));
    files_.emplace(file_id, std::move(state));
    return file_id;
}

std::map<uint64_t, BlockVersions>
PoolManager::decodeReads(const FileState &state,
                         std::vector<sim::Read> reads,
                         DecodeStats *stats, DecodeService *service,
                         TenantId tenant,
                         const telemetry::TraceContext &trace) const
{
    if (!service)
        return state.decoder->decodeAll(reads, stats, trace);
    DecodeOutcome outcome =
        service
            ->submit(*state.decoder, std::move(reads), tenant, trace)
            .get();
    if (outcome.status == DecodeStatus::Throttled)
        throw ThrottledError("PoolManager read shed by the tenant's "
                             "token bucket");
    if (outcome.status == DecodeStatus::Overloaded)
        throw OverloadedError("PoolManager read shed by the decode "
                              "service");
    if (stats)
        *stats = outcome.stats;
    return std::move(outcome.units);
}

std::optional<Bytes>
PoolManager::readBlock(uint32_t file_id, uint64_t block,
                       DecodeService *service, TenantId tenant)
{
    FileState &state = stateOf(file_id);
    fatalIf(block >= state.blocks, "block out of range");

    // Stage 1 (Section 7.7.3): isolate the partition with its main
    // primers so indexes of unrelated partitions cannot misprime.
    sim::PcrParams stage1 = params_.pcr;
    stage1.cycles = params_.stage1_cycles;
    sim::Pool isolated = sim::runPcr(
        pool_,
        {sim::PcrPrimer{state.partition->forwardPrimer(), 1.0}},
        state.partition->reversePrimer(), stage1);

    // Stage 2: elongated primer narrows the scope to the block.
    sim::PcrParams stage2 = params_.pcr;
    stage2.cycles = params_.stage2_cycles;
    stage2.stringency = sim::touchdownSchedule(
        params_.stage2_touchdown, params_.stage2_cycles, 3.0);
    sim::Pool accessed = sim::runPcr(
        isolated,
        {sim::PcrPrimer{state.partition->blockPrimer(block), 1.0}},
        state.partition->reversePrimer(), stage2);

    sim::SequencerParams sequencer = params_.sequencer;
    sequencer.seed =
        Rng::deriveSeed(params_.sequencer.seed, costs_.readsSequenced());
    costs_.recordSequencing(params_.reads_per_block_access);
    costs_.recordRoundTrip();
    std::vector<sim::Read> reads = sim::sequencePool(
        accessed, params_.reads_per_block_access, sequencer);

    DecodeStats stats;
    auto units =
        decodeReads(state, std::move(reads), &stats, service, tenant);
    auto it = units.find(block);
    if (it == units.end() || !it->second.versions.count(0))
        return std::nullopt;
    Bytes base = it->second.versions.at(0);
    base.resize(params_.config.block_data_bytes);
    return state.decoder->applyUpdateChain(base, it->second);
}

std::vector<sim::Read>
PoolManager::sequenceFile(uint32_t file_id)
{
    FileState &state = stateOf(file_id);
    sim::PcrParams stage1 = params_.pcr;
    stage1.cycles = params_.stage1_cycles;
    sim::Pool isolated = sim::runPcr(
        pool_,
        {sim::PcrPrimer{state.partition->forwardPrimer(), 1.0}},
        state.partition->reversePrimer(), stage1);

    size_t budget = static_cast<size_t>(
        20.0 * static_cast<double>(state.blocks *
                                   params_.config.rs_n));
    sim::SequencerParams sequencer = params_.sequencer;
    sequencer.seed =
        Rng::deriveSeed(params_.sequencer.seed, costs_.readsSequenced());
    costs_.recordSequencing(budget);
    costs_.recordRoundTrip();
    return sim::sequencePool(isolated, budget, sequencer);
}

const Decoder &
PoolManager::decoderOf(uint32_t file_id) const
{
    return *stateOf(file_id).decoder;
}

std::optional<Bytes>
PoolManager::assembleFile(
    uint32_t file_id,
    const std::map<uint64_t, BlockVersions> &units) const
{
    const FileState &state = stateOf(file_id);
    Bytes result;
    result.reserve(state.blocks * params_.config.block_data_bytes);
    for (uint64_t block = 0; block < state.blocks; ++block) {
        auto it = units.find(block);
        if (it == units.end() || !it->second.versions.count(0))
            return std::nullopt;
        Bytes base = it->second.versions.at(0);
        base.resize(params_.config.block_data_bytes);
        Bytes content =
            state.decoder->applyUpdateChain(base, it->second);
        result.insert(result.end(), content.begin(), content.end());
    }
    result.resize(state.file_size);
    return result;
}

std::optional<Bytes>
PoolManager::readFile(uint32_t file_id, DecodeService *service,
                      TenantId tenant,
                      const telemetry::TraceContext &trace)
{
    std::vector<sim::Read> reads = sequenceFile(file_id);
    auto units = decodeReads(stateOf(file_id), std::move(reads),
                             nullptr, service, tenant, trace);
    return assembleFile(file_id, units);
}

void
PoolManager::updateBlock(uint32_t file_id, uint64_t block,
                         const UpdateOp &op)
{
    FileState &state = stateOf(file_id);
    fatalIf(block >= state.blocks, "block out of range");
    unsigned &count = state.update_counts[block];
    fatalIf(count + 1 >= index::SparseIndexTree::kVersionSlots,
            "inline version slots exhausted; use BlockDevice for "
            "overflow-log support");
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kInline;
    record.op = op;
    synthesizeAndMix(
        state.partition->encodePatch(block, record, count + 1));
    ++count;
}

} // namespace dnastore::core
