#include "core/partition.h"

#include <optional>

#include "codec/base_codec.h"
#include "common/thread_pool.h"
#include "core/layout.h"

namespace dnastore::core {

Partition::Partition(PartitionConfig config, dna::Sequence forward,
                     dna::Sequence reverse, uint32_t file_id)
    : config_(config), forward_(std::move(forward)),
      reverse_(std::move(reverse)), file_id_(file_id),
      tree_(config.index_seed, config.tree_depth),
      codec_(config.rs_n, config.rs_k, config.columnBytes()),
      scrambler_(config.scramble_seed),
      elongation_(forward_, config.sync_base)
{
    config_.validate();
    fatalIf(forward_.size() != config_.primer_length,
            "forward primer must be ", config_.primer_length, " bases");
    fatalIf(reverse_.size() != config_.primer_length,
            "reverse primer must be ", config_.primer_length, " bases");
}

uint64_t
Partition::blocksFor(size_t data_size) const
{
    return (data_size + config_.block_data_bytes - 1) /
           config_.block_data_bytes;
}

std::vector<sim::DesignedMolecule>
Partition::encodeFile(const Bytes &data, const EncodeParams &params,
                      ThreadPool *pool) const
{
    uint64_t blocks = blocksFor(data.size());
    fatalIf(blocks > tree_.leafCount(),
            "file needs ", blocks, " blocks but the partition has ",
            tree_.leafCount());

    // Blocks are independent (the scrambler, outer codec and index
    // tree are all stateless per call), so per-block encoding fans
    // out; the slots are concatenated in block order below, keeping
    // the molecule stream byte-identical to the sequential path.
    std::optional<ThreadPool> local;
    if (!pool && blocks > 1) {
        size_t want =
            std::min(ThreadPool::resolveThreadCount(params.threads),
                     static_cast<size_t>(blocks));
        if (want > 1)
            pool = &local.emplace(want);
    }
    std::vector<std::vector<sim::DesignedMolecule>> per_block(blocks);
    parallelFor(pool, blocks, [&](size_t block) {
        size_t offset = block * config_.block_data_bytes;
        size_t len =
            std::min(config_.block_data_bytes, data.size() - offset);
        Bytes payload(data.begin() + static_cast<ptrdiff_t>(offset),
                      data.begin() + static_cast<ptrdiff_t>(offset + len));
        per_block[block] = encodeBlock(block, payload, 0);
    });

    std::vector<sim::DesignedMolecule> molecules;
    molecules.reserve(blocks * config_.rs_n);
    for (std::vector<sim::DesignedMolecule> &block_molecules : per_block) {
        for (sim::DesignedMolecule &molecule : block_molecules)
            molecules.push_back(std::move(molecule));
    }
    return molecules;
}

uint64_t
Partition::streamId(uint64_t block, unsigned version) const
{
    return block * index::SparseIndexTree::kVersionSlots + version;
}

std::vector<sim::DesignedMolecule>
Partition::encodeBlock(uint64_t block, const Bytes &payload,
                       unsigned version) const
{
    fatalIf(payload.size() > config_.unitDataBytes(),
            "block payload of ", payload.size(), "B exceeds the ",
            config_.unitDataBytes(), "B unit");
    fatalIf(block >= tree_.leafCount(), "block id out of range");

    // Pad to the unit size; the scrambler randomizes the padding.
    Bytes unit = payload;
    unit.resize(config_.unitDataBytes(), 0);
    scrambler_.apply(unit, streamId(block, version));

    std::vector<Bytes> columns = codec_.encode(unit);
    dna::Sequence sparse_index = tree_.leafIndex(block);
    dna::Base version_base = tree_.versionBase(block, version);

    std::vector<sim::DesignedMolecule> molecules;
    molecules.reserve(columns.size());
    for (unsigned c = 0; c < columns.size(); ++c) {
        sim::DesignedMolecule molecule;
        molecule.seq = buildStrand(
            config_, forward_, reverse_, sparse_index, version_base, c,
            codec::bytesToBases(columns[c]));
        molecule.info.file_id = file_id_;
        molecule.info.block = block;
        molecule.info.version = static_cast<uint8_t>(version);
        molecule.info.column = static_cast<uint8_t>(c);
        molecules.push_back(std::move(molecule));
    }
    return molecules;
}

std::vector<sim::DesignedMolecule>
Partition::encodePatch(uint64_t block, const UpdateRecord &record,
                       unsigned version) const
{
    fatalIf(version == 0, "version 0 is reserved for original data");
    Bytes payload = record.serialize(config_.unitDataBytes());
    return encodeBlock(block, payload, version);
}

Bytes
Partition::unscrambleUnit(const Bytes &unit, uint64_t block,
                          unsigned version) const
{
    Bytes data = unscrambleUnitRaw(unit, block, version);
    data.resize(config_.block_data_bytes);
    return data;
}

Bytes
Partition::unscrambleUnitRaw(const Bytes &unit, uint64_t block,
                             unsigned version) const
{
    fatalIf(unit.size() != config_.unitDataBytes(),
            "unit size mismatch");
    return scrambler_.applied(unit, streamId(block, version));
}

dna::Sequence
Partition::blockPrimer(uint64_t block) const
{
    return elongation_.build(tree_.leafIndex(block));
}

std::vector<dna::Sequence>
Partition::rangePrimers(uint64_t lo, uint64_t hi) const
{
    std::vector<index::PhysicalPrefix> cover =
        index::physicalCover(tree_, lo, hi);
    std::vector<dna::Sequence> primers;
    primers.reserve(cover.size());
    for (const index::PhysicalPrefix &prefix : cover)
        primers.push_back(elongation_.build(prefix.physical));
    return primers;
}

} // namespace dnastore::core
