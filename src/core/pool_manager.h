/**
 * @file
 * Multi-partition pool management (paper Sections 6.1 and 7.7.3).
 *
 * A physical DNA pool holds many partitions (the wetlab stores 13
 * files). The PoolManager owns the shared pool, assigns mutually
 * compatible primer pairs from a generated library, gives every
 * partition distinct index/scrambler seeds (Section 4.4), and
 * implements the two-stage PCR protocol of Section 7.7.3 for block
 * reads: stage one isolates the target partition with its main
 * primers; stage two applies the elongated primer, avoiding
 * cross-partition index collisions.
 */

#ifndef DNASTORE_CORE_POOL_MANAGER_H
#define DNASTORE_CORE_POOL_MANAGER_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/cost.h"
#include "core/decoder.h"
#include "core/partition.h"
#include "core/tenant.h"
#include "primer/constraints.h"
#include "sim/pcr.h"
#include "sim/sequencer.h"
#include "sim/synthesis.h"

namespace dnastore::core {

class DecodeService;

/** Knobs for the manager and its simulated wetlab. */
struct PoolManagerParams
{
    PartitionConfig config;
    sim::SynthesisParams synthesis;
    sim::PcrParams pcr;
    sim::SequencerParams sequencer;
    DecoderParams decoder;
    CostParams costs;

    /** Primer library search parameters. */
    primer::Constraints primer_constraints;
    uint64_t primer_search_budget = 300000;

    /** Primer pairs to find upfront (the search stops early once
     *  this many are available; raise it for pools with many
     *  files). */
    size_t max_primer_pairs = 32;

    uint64_t seed = 0x9001;

    /** Stage-1 (partition isolation) PCR cycles. */
    unsigned stage1_cycles = 12;

    /** Stage-2 (block isolation) PCR cycles and touchdown. */
    unsigned stage2_cycles = 24;
    unsigned stage2_touchdown = 8;

    /** Reads sequenced per block access. */
    size_t reads_per_block_access = 1200;
};

class PoolManager
{
  public:
    explicit PoolManager(PoolManagerParams params);

    /**
     * Store a file as a new partition; returns its file id. Primer
     * pairs are drawn from the library in order; throws FatalError
     * when the library is exhausted.
     */
    uint32_t storeFile(const Bytes &data);

    /** Number of partitions stored. */
    size_t fileCount() const { return files_.size(); }

    /** Blocks held by a file. */
    uint64_t blockCount(uint32_t file_id) const;

    /**
     * Read one block of one file with the two-stage protocol. When a
     * DecodeService is given, the decode is submitted to it instead
     * of running synchronously (byte-identical either way), billed
     * to @p tenant; a Reject-policy service that sheds the request
     * surfaces as OverloadedError in the caller's thread, a tenant
     * token bucket as ThrottledError.
     */
    std::optional<Bytes> readBlock(uint32_t file_id, uint64_t block,
                                   DecodeService *service = nullptr,
                                   TenantId tenant = kDefaultTenant);

    /** Read a whole file (stage-1 PCR only, full decode). Routes the
     *  decode through @p service when one is given, billed to
     *  @p tenant; @p trace parents the decode's spans under the
     *  caller's root span. */
    std::optional<Bytes> readFile(
        uint32_t file_id, DecodeService *service = nullptr,
        TenantId tenant = kDefaultTenant,
        const telemetry::TraceContext &trace = {});

    /**
     * The wetlab half of readFile(): stage-1 PCR isolation plus
     * sequencing, no decoding. Pair with decoderOf()/assembleFile() —
     * StorageFrontend uses the split to fan many files' decodes into
     * one DecodeService batch.
     */
    std::vector<sim::Read> sequenceFile(uint32_t file_id);

    /** Decoder bound to a file's partition. */
    const Decoder &decoderOf(uint32_t file_id) const;

    /** The assembly half of readFile(): stitch decoded units back
     *  into file bytes (nullopt when any block is missing). */
    std::optional<Bytes> assembleFile(
        uint32_t file_id,
        const std::map<uint64_t, BlockVersions> &units) const;

    /** Log an update patch against a file's block. */
    void updateBlock(uint32_t file_id, uint64_t block,
                     const UpdateOp &op);

    /** Primer pairs still available for new files. */
    size_t primerPairsAvailable() const;

    const sim::Pool &pool() const { return pool_; }
    const CostModel &costs() const { return costs_; }
    const Partition &partition(uint32_t file_id) const;

  private:
    PoolManagerParams params_;
    std::vector<dna::Sequence> primer_library_;
    size_t next_primer_ = 0;
    sim::Pool pool_;
    CostModel costs_;

    struct FileState
    {
        std::unique_ptr<Partition> partition;
        std::unique_ptr<Decoder> decoder;
        uint64_t blocks = 0;
        size_t file_size = 0;
        std::map<uint64_t, unsigned> update_counts;
    };
    std::map<uint32_t, FileState> files_;
    uint32_t next_file_id_ = 1;

    FileState &stateOf(uint32_t file_id);
    const FileState &stateOf(uint32_t file_id) const;

    /** Decode @p reads with a file's decoder, synchronously or via
     *  @p service billed to @p tenant (throws OverloadedError /
     *  ThrottledError if the service sheds it). */
    std::map<uint64_t, BlockVersions> decodeReads(
        const FileState &state, std::vector<sim::Read> reads,
        DecodeStats *stats, DecodeService *service, TenantId tenant,
        const telemetry::TraceContext &trace = {}) const;

    /** Mix a fresh synthesis order into the shared pool. */
    void synthesizeAndMix(const std::vector<sim::DesignedMolecule> &order);
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_POOL_MANAGER_H
