#include "core/decoder.h"

#include <algorithm>

#include "codec/base_codec.h"
#include "common/arena.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "core/layout.h"
#include "dna/distance.h"

namespace dnastore::core {

namespace {

/** Everything one unit decode produces, reduced in unit order. */
struct UnitOutcome
{
    bool ok = false;
    Bytes data;  // descrambled raw unit payload, when ok
    size_t candidate_retries = 0;
    size_t symbol_errors_corrected = 0;
    size_t erasures_filled = 0;
    size_t max_row_correction_load = 0;
};

/**
 * Decode one (block, version) unit from its per-column candidate
 * slots: primary candidates first; on failure, swap in alternates one
 * address at a time, then progressively erase the least-trustworthy
 * columns so the outer code can fill them (Section 8.1 fallback).
 * Shared by the one-shot pipeline and the streaming session's early
 * attempts — the fallback policy cannot drift between the two paths.
 */
UnitOutcome
decodeUnitWithFallback(
    const Partition &partition, uint64_t block, unsigned version,
    const std::map<unsigned, const RecoveredSlot *> &columns)
{
    const PartitionConfig &config = partition.config();
    UnitOutcome outcome;

    std::vector<std::optional<Bytes>> primary(config.rs_n);
    for (const auto &[column, slot] : columns)
        primary[column] = slot->candidates.front().payload;

    ecc::UnitDecodeResult decoded =
        partition.unitCodec().decode(primary);
    if (!decoded.ok()) {
        // One reusable trial vector: swap a single column in per
        // attempt and restore it afterwards, instead of deep-copying
        // all n columns for every alternate candidate.
        auto trial = primary;
        for (const auto &[column, slot] : columns) {
            if (decoded.ok())
                break;
            for (size_t alt = 1; alt < slot->candidates.size();
                 ++alt) {
                trial[column] = slot->candidates[alt].payload;
                ++outcome.candidate_retries;
                ecc::UnitDecodeResult attempt =
                    partition.unitCodec().decode(trial);
                if (attempt.ok()) {
                    decoded = std::move(attempt);
                    break;
                }
            }
            trial[column] = primary[column];
        }
    }
    if (!decoded.ok()) {
        // Erase suspect columns, worst first (most index mismatches,
        // fewest supporting reads).
        std::vector<unsigned> order;
        for (const auto &[column, slot] : columns)
            order.push_back(column);
        std::sort(order.begin(), order.end(),
                  [&](unsigned a, unsigned b) {
                      const StrandCandidate &ca =
                          columns.at(a)->candidates.front();
                      const StrandCandidate &cb =
                          columns.at(b)->candidates.front();
                      if (ca.index_mismatches != cb.index_mismatches)
                          return ca.index_mismatches >
                                 cb.index_mismatches;
                      return ca.cluster_size < cb.cluster_size;
                  });
        size_t max_erase = std::min<size_t>(
            order.size(), config.rs_n - config.rs_k);
        auto trial = primary;
        for (size_t e = 0; e < max_erase && !decoded.ok(); ++e) {
            trial[order[e]].reset();
            ++outcome.candidate_retries;
            ecc::UnitDecodeResult attempt =
                partition.unitCodec().decode(trial);
            if (attempt.ok())
                decoded = std::move(attempt);
        }
    }

    if (!decoded.ok())
        return outcome;
    outcome.ok = true;
    outcome.symbol_errors_corrected = decoded.symbol_errors_corrected;
    outcome.erasures_filled = decoded.erasures_filled;
    outcome.max_row_correction_load = decoded.max_row_correction_load;
    outcome.data =
        partition.unscrambleUnitRaw(*decoded.data, block, version);
    return outcome;
}

/** Best-first candidate order within a slot (Section 8.1 ranking). */
bool
candidateBefore(const StrandCandidate &a, const StrandCandidate &b)
{
    if (a.index_mismatches != b.index_mismatches)
        return a.index_mismatches < b.index_mismatches;
    return a.cluster_size > b.cluster_size;
}

} // namespace

Decoder::Decoder(const Partition &partition, DecoderParams params)
    : partition_(partition), params_(params)
{}

std::map<std::tuple<uint64_t, unsigned, unsigned>, RecoveredSlot>
Decoder::recoverStrands(const std::vector<sim::Read> &reads,
                        DecodeStats *stats, ThreadPool &pool,
                        const telemetry::TraceContext &trace) const
{
    const PartitionConfig &config = partition_.config();
    const dna::Sequence &stem = partition_.elongation().stem();

    // Step 1: primer filter. The per-read alignments fan out across
    // the pool; the keep/drop decision for a read depends only on
    // that read, and the matches are gathered in input order.
    telemetry::SpanHandle filter_span =
        trace.span("decode.primer_filter");
    // keep[] lives in the caller's arena for the duration of the
    // batch; workers only write their own slot.
    Arena &arena = Arena::scratch();
    ArenaScope keep_scope(arena);
    uint8_t *keep = arena.allocArray<uint8_t>(reads.size());
    pool.parallelFor(reads.size(), [&](size_t i) {
        dna::PrefixAlignment align = dna::alignPrimerToPrefix(
            stem, reads[i].seq, params_.primer_match_dist);
        keep[i] = align.distance != dna::kDistanceInfinity;
    });
    std::vector<dna::Sequence> filtered;
    filtered.reserve(reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        if (keep[i])
            filtered.push_back(reads[i].seq);
    }
    filter_span.attrU64("reads_in", reads.size());
    filter_span.attrU64("matched", filtered.size());
    filter_span.end();
    if (stats) {
        stats->reads_in = reads.size();
        // The one-shot pipeline ingests everything it is offered.
        stats->reads_consumed = reads.size();
        stats->reads_primer_matched = filtered.size();
    }

    std::map<std::tuple<uint64_t, unsigned, unsigned>, RecoveredSlot>
        recovered;
    if (filtered.empty())
        return recovered;

    // Step 2: cluster (clusters arrive sorted by decreasing size).
    telemetry::SpanHandle cluster_span = trace.span("decode.cluster");
    std::vector<cluster::Cluster> clusters =
        cluster::clusterReads(filtered, params_.cluster, &pool);
    cluster_span.attrU64("clusters", clusters.size());
    cluster_span.end();
    if (stats)
        stats->clusters_total = clusters.size();

    // Step 3: reconstruct per cluster. The clusters are sorted by
    // decreasing size, so the ones above the size cutoff form a
    // prefix; their BMA consensus runs are independent and fan out
    // across the pool, while parsing/ranking below consumes the
    // reconstructed strands in the original descending-size order.
    size_t used = 0;
    while (used < clusters.size() &&
           clusters[used].size() >= params_.min_cluster_size) {
        ++used;
    }
    telemetry::SpanHandle consensus_span =
        trace.span("decode.consensus");
    std::vector<std::vector<size_t>> memberships(used);
    for (size_t i = 0; i < used; ++i)
        memberships[i] = clusters[i].members;
    std::vector<dna::Sequence> strands = consensus::bmaDoubleSidedBatch(
        filtered, memberships, config.strand_length, params_.bma,
        &pool);

    for (size_t i = 0; i < used; ++i) {
        const cluster::Cluster &c = clusters[i];
        if (stats)
            ++stats->clusters_used;

        std::optional<StrandFields> fields =
            parseStrand(config, strands[i]);
        if (!fields)
            continue;

        index::IndexMatch match =
            partition_.tree().decodeNearest(fields->address);
        if (match.mismatches > params_.max_index_mismatches) {
            if (stats)
                ++stats->index_rejects;
            continue;
        }
        unsigned column = decodeIntra(config, fields->intra);
        if (column >= config.rs_n) {
            if (stats)
                ++stats->index_rejects;
            continue;
        }

        auto key = std::make_tuple(match.block, match.version, column);
        RecoveredSlot &slot = recovered[key];
        if (!slot.candidates.empty() && stats)
            ++stats->duplicate_addresses;
        if (slot.candidates.size() <
            params_.max_candidates_per_address) {
            StrandCandidate candidate;
            candidate.payload = codec::basesToBytes(fields->payload);
            candidate.cluster_size = c.size();
            candidate.index_mismatches = match.mismatches;
            slot.candidates.push_back(std::move(candidate));
            if (stats)
                ++stats->strands_recovered;
        }
    }

    // Rank candidates: exact-index reconstructions from big clusters
    // first; misprimed amplicons sink to the back (Section 8.1).
    for (auto &[key, slot] : recovered) {
        std::sort(slot.candidates.begin(), slot.candidates.end(),
                  candidateBefore);
    }
    consensus_span.attrU64("clusters_used", used);
    consensus_span.end();
    return recovered;
}

std::map<uint64_t, BlockVersions>
Decoder::decodeAll(const std::vector<sim::Read> &reads,
                   DecodeStats *stats,
                   const telemetry::TraceContext &trace) const
{
    // Clamp the pool to the workload: a decode of a handful of reads
    // must not spawn hardware_concurrency threads just to join them.
    ThreadPool pool(
        std::min(ThreadPool::resolveThreadCount(params_.threads),
                 std::max<size_t>(1, reads.size())));
    return decodeAll(reads, stats, pool, trace);
}

std::map<uint64_t, BlockVersions>
Decoder::decodeAll(const std::vector<sim::Read> &reads,
                   DecodeStats *stats, ThreadPool &pool,
                   const telemetry::TraceContext &trace) const
{
    auto recovered = recoverStrands(reads, stats, pool, trace);

    // Group addresses by (block, version).
    std::map<UnitKey, std::map<unsigned, const RecoveredSlot *>> units;
    for (const auto &[key, slot] : recovered) {
        auto [block, version, column] = key;
        units[{block, version}][column] = &slot;
    }

    // Step 4: units are independent (each reads only its own columns
    // of `recovered` and the const partition codecs), so the decodes
    // fan out across the pool; stats and results are merged
    // sequentially in unit-key order below.
    std::vector<std::pair<UnitKey,
                          const std::map<unsigned,
                                         const RecoveredSlot *> *>>
        unit_list;
    unit_list.reserve(units.size());
    for (const auto &[unit_key, columns] : units)
        unit_list.emplace_back(unit_key, &columns);

    std::vector<UnitOutcome> outcomes =
        pool.parallelMap<UnitOutcome>(unit_list.size(), [&](size_t u) {
            const auto &[unit_key, columns] = unit_list[u];
            telemetry::SpanHandle span = trace.span("decode.rs_unit");
            span.attrU64("block", unit_key.first);
            span.attrU64("version", unit_key.second);
            UnitOutcome outcome = decodeUnitWithFallback(
                partition_, unit_key.first, unit_key.second, *columns);
            span.attrU64("decoded", outcome.ok ? 1 : 0);
            span.end();
            return outcome;
        });

    std::map<uint64_t, BlockVersions> result;
    for (size_t u = 0; u < unit_list.size(); ++u) {
        auto [block, version] = unit_list[u].first;
        UnitOutcome &outcome = outcomes[u];
        if (stats) {
            ++stats->units_attempted;
            stats->candidate_retries += outcome.candidate_retries;
        }
        if (!outcome.ok) {
            if (stats)
                ++stats->units_failed;
            continue;
        }
        if (stats) {
            ++stats->units_decoded;
            stats->symbol_errors_corrected +=
                outcome.symbol_errors_corrected;
            stats->erasures_filled += outcome.erasures_filled;
        }
        result[block].versions[version] = std::move(outcome.data);
    }
    return result;
}

Bytes
Decoder::applyUpdateChain(const Bytes &base, const BlockVersions &chain,
                          std::optional<uint64_t> *overflow_block) const
{
    const PartitionConfig &config = partition_.config();
    Bytes current = base;
    current.resize(config.block_data_bytes);
    if (overflow_block)
        overflow_block->reset();

    for (unsigned version = 1;
         version < index::SparseIndexTree::kVersionSlots; ++version) {
        auto it = chain.versions.find(version);
        if (it == chain.versions.end())
            break;  // chain ends at the first missing slot
        std::optional<UpdateRecord> record =
            UpdateRecord::deserialize(it->second);
        if (!record)
            break;
        switch (record->kind) {
          case UpdateRecord::Kind::kInline:
            current = record->op.apply(current,
                                       config.block_data_bytes);
            break;
          case UpdateRecord::Kind::kReplace:
            current = record->replacement;
            current.resize(config.block_data_bytes, 0);
            break;
          case UpdateRecord::Kind::kOverflowPointer:
            if (overflow_block)
                *overflow_block = record->overflow_block;
            return current;
        }
    }
    return current;
}

std::optional<Bytes>
Decoder::decodeBlock(const std::vector<sim::Read> &reads, uint64_t block,
                     DecodeStats *stats,
                     std::optional<uint64_t> *overflow_block) const
{
    std::map<uint64_t, BlockVersions> all = decodeAll(reads, stats);
    auto it = all.find(block);
    if (it == all.end())
        return std::nullopt;
    auto base_it = it->second.versions.find(0);
    if (base_it == it->second.versions.end())
        return std::nullopt;

    Bytes base = base_it->second;
    base.resize(partition_.config().block_data_bytes);
    return applyUpdateChain(base, it->second, overflow_block);
}

// ---------------------------------------------------------------------------
// StreamingDecoder

StreamingDecoder::StreamingDecoder(const Partition &partition,
                                   DecoderParams params,
                                   StreamingParams streaming)
    : partition_(partition), params_(params),
      streaming_(std::move(streaming)), clusterer_(params_.cluster)
{
    eager_ = !streaming_.expected_units.empty();
    for (const UnitKey &unit : streaming_.expected_units)
        expected_remaining_.insert(unit);
}

StreamingDecoder::~StreamingDecoder() = default;

ThreadPool &
StreamingDecoder::resolvePool(ThreadPool *pool)
{
    if (pool)
        return *pool;
    if (!own_pool_) {
        own_pool_ = std::make_unique<ThreadPool>(
            ThreadPool::resolveThreadCount(params_.threads));
    }
    return *own_pool_;
}

size_t
StreamingDecoder::feed(const std::vector<sim::Read> &reads,
                       ThreadPool *pool,
                       const telemetry::TraceContext &trace)
{
    fatalIf(finished_, "StreamingDecoder::feed after finish()");
    stats_.reads_in += reads.size();
    if (complete_) {
        // Early termination: the session stops consuming; skipped
        // reads are counted, never processed (satellite: they must
        // not be misreported as consumed).
        stats_.reads_skipped += reads.size();
        return 0;
    }
    stats_.reads_consumed += reads.size();
    if (reads.empty())
        return 0;
    ThreadPool &p = resolvePool(pool);

    // Step 1: primer filter — the same per-read decision as the
    // one-shot pipeline, so the surviving stream is identical.
    telemetry::SpanHandle filter_span =
        trace.span("decode.primer_filter");
    const dna::Sequence &stem = partition_.elongation().stem();
    Arena &arena = Arena::scratch();
    ArenaScope keep_scope(arena);
    uint8_t *keep = arena.allocArray<uint8_t>(reads.size());
    p.parallelFor(reads.size(), [&](size_t i) {
        dna::PrefixAlignment align = dna::alignPrimerToPrefix(
            stem, reads[i].seq, params_.primer_match_dist);
        keep[i] = align.distance != dna::kDistanceInfinity;
    });
    std::vector<dna::Sequence> filtered;
    filtered.reserve(reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        if (keep[i])
            filtered.push_back(reads[i].seq);
    }
    filter_span.attrU64("reads_in", reads.size());
    filter_span.attrU64("matched", filtered.size());
    filter_span.end();
    stats_.reads_primer_matched += filtered.size();
    if (filtered.empty())
        return reads.size();

    // Step 2: online clustering — the chunk joins the running index.
    telemetry::SpanHandle cluster_span = trace.span("decode.cluster");
    std::vector<size_t> joined = clusterer_.assignBatch(filtered, &p);
    views_.resize(clusterer_.clusters().size());
    cluster_span.attrU64("clusters", clusterer_.clusters().size());
    cluster_span.end();

    if (!eager_)
        return reads.size();  // deferred: finish() runs steps 3-4

    // Step 3: refresh consensus for the clusters this chunk touched
    // (only those big enough to be used), then fire RS attempts for
    // any unit whose column map changed.
    std::sort(joined.begin(), joined.end());
    joined.erase(std::unique(joined.begin(), joined.end()),
                 joined.end());
    std::vector<size_t> usable;
    usable.reserve(joined.size());
    for (size_t c : joined) {
        if (clusterer_.clusters()[c].size() >=
            params_.min_cluster_size)
            usable.push_back(c);
    }
    if (usable.empty())
        return reads.size();

    std::set<UnitKey> changed = refreshClusters(usable, p, trace);
    const bool was_complete = complete_;
    attemptUnits(changed, p, trace);
    // The chunk that recovers the last expected unit flips the
    // session complete — the point every later read gets skipped.
    if (!was_complete && complete_)
        trace.event("decode.early_termination");
    return reads.size();
}

std::set<UnitKey>
StreamingDecoder::refreshClusters(const std::vector<size_t> &cluster_ids,
                                  ThreadPool &pool,
                                  const telemetry::TraceContext &trace)
{
    const PartitionConfig &config = partition_.config();
    telemetry::SpanHandle consensus_span =
        trace.span("decode.consensus");
    consensus_span.attrU64("clusters_used", cluster_ids.size());

    // Consensus per cluster depends only on (all reads so far, that
    // cluster's membership) — independent of chunking and of every
    // other cluster — so the runs fan out across the pool and the
    // views update sequentially in ascending cluster id.
    std::vector<std::vector<size_t>> memberships(cluster_ids.size());
    for (size_t i = 0; i < cluster_ids.size(); ++i)
        memberships[i] = clusterer_.clusters()[cluster_ids[i]].members;
    std::vector<dna::Sequence> strands = consensus::bmaDoubleSidedBatch(
        clusterer_.reads(), memberships, config.strand_length,
        params_.bma, &pool);

    std::set<UnitKey> changed;
    for (size_t i = 0; i < cluster_ids.size(); ++i) {
        size_t c = cluster_ids[i];
        ClusterView &view = views_[c];

        // Unmap the previous consensus of this cluster from its unit
        // before recording the new one.
        if (view.state == ClusterView::State::Mapped) {
            auto unit_it = pending_units_.find(view.unit);
            if (unit_it != pending_units_.end()) {
                auto col_it = unit_it->second.find(view.column);
                if (col_it != unit_it->second.end()) {
                    auto &ids = col_it->second;
                    ids.erase(std::remove(ids.begin(), ids.end(), c),
                              ids.end());
                    if (ids.empty())
                        unit_it->second.erase(col_it);
                    if (unit_it->second.empty())
                        pending_units_.erase(unit_it);
                    changed.insert(view.unit);
                }
            }
        }
        view.members_at_consensus = clusterer_.clusters()[c].size();
        view.state = ClusterView::State::Unparsed;

        std::optional<StrandFields> fields =
            parseStrand(config, strands[i]);
        if (!fields)
            continue;
        index::IndexMatch match =
            partition_.tree().decodeNearest(fields->address);
        if (match.mismatches > params_.max_index_mismatches) {
            view.state = ClusterView::State::IndexReject;
            continue;
        }
        unsigned column = decodeIntra(config, fields->intra);
        if (column >= config.rs_n) {
            view.state = ClusterView::State::IndexReject;
            continue;
        }

        view.state = ClusterView::State::Mapped;
        view.unit = {match.block, match.version};
        view.column = column;
        view.payload = codec::basesToBytes(fields->payload);
        view.index_mismatches = match.mismatches;
        if (!completed_.count(view.unit)) {
            pending_units_[view.unit][column].push_back(c);
            changed.insert(view.unit);
        }
    }
    consensus_span.end();
    return changed;
}

void
StreamingDecoder::attemptUnits(const std::set<UnitKey> &changed,
                               ThreadPool &pool,
                               const telemetry::TraceContext &trace)
{
    const PartitionConfig &config = partition_.config();
    // An accepted early decode must keep a reliability margin of at
    // least 3: with f erasures filled and e symbols corrected, a
    // wrong-but-"successful" decode needs >= d - f - 2e genuinely
    // wrong consensus columns at once (d = rs_n - rs_k + 1). At
    // exactly rs_k columns the margin is zero — errors-and-erasures
    // degenerates to interpolation and a single wrong column yields a
    // confidently wrong payload, which is how the original streaming
    // bug corrupted early emissions. The default attempt threshold
    // admits just enough missing columns that a clean decode can
    // still clear the margin, so a structurally thin column does not
    // block early termination forever.
    const size_t distance = config.rs_n - config.rs_k + 1;
    const size_t slack = distance > 3 ? distance - 3 : 0;
    const size_t threshold = streaming_.attempt_columns
                                 ? streaming_.attempt_columns
                                 : config.rs_n - slack;

    // std::set iteration gives ascending unit-key order — the
    // deterministic emission order within a chunk.
    std::vector<UnitKey> attempt;
    for (const UnitKey &unit : changed) {
        auto it = pending_units_.find(unit);
        if (it != pending_units_.end() &&
            it->second.size() >= threshold)
            attempt.push_back(unit);
    }
    if (attempt.empty())
        return;

    // Build candidate slots per unit: within a column, contributors
    // rank best-first (fewest index mismatches, most supporting
    // reads, then cluster id as a total tiebreak), capped at
    // max_candidates_per_address like the one-shot path.
    std::vector<std::map<unsigned, RecoveredSlot>> slots(
        attempt.size());
    for (size_t u = 0; u < attempt.size(); ++u) {
        for (const auto &[column, ids] :
             pending_units_.at(attempt[u])) {
            std::vector<size_t> ranked = ids;
            std::sort(
                ranked.begin(), ranked.end(),
                [&](size_t a, size_t b) {
                    const ClusterView &va = views_[a];
                    const ClusterView &vb = views_[b];
                    if (va.index_mismatches != vb.index_mismatches)
                        return va.index_mismatches <
                               vb.index_mismatches;
                    size_t sa = clusterer_.clusters()[a].size();
                    size_t sb = clusterer_.clusters()[b].size();
                    if (sa != sb)
                        return sa > sb;
                    return a < b;
                });
            RecoveredSlot &slot = slots[u][column];
            size_t take = std::min(
                ranked.size(), params_.max_candidates_per_address);
            for (size_t i = 0; i < take; ++i) {
                StrandCandidate candidate;
                candidate.payload = views_[ranked[i]].payload;
                candidate.cluster_size =
                    clusterer_.clusters()[ranked[i]].size();
                candidate.index_mismatches =
                    views_[ranked[i]].index_mismatches;
                slot.candidates.push_back(std::move(candidate));
            }
        }
    }

    // The attempts are independent; fan out, fold in key order. A
    // failed probe is not stats-visible — the unit re-attempts the
    // next time its column map changes, and only its terminal decode
    // counts (keeping eager stats comparable to one-shot stats).
    std::vector<std::map<unsigned, const RecoveredSlot *>> column_ptrs(
        attempt.size());
    for (size_t u = 0; u < attempt.size(); ++u) {
        for (const auto &[column, slot] : slots[u])
            column_ptrs[u][column] = &slot;
    }
    std::vector<UnitOutcome> outcomes =
        pool.parallelMap<UnitOutcome>(attempt.size(), [&](size_t u) {
            telemetry::SpanHandle span = trace.span("decode.rs_unit");
            span.attrU64("block", attempt[u].first);
            span.attrU64("version", attempt[u].second);
            UnitOutcome outcome =
                decodeUnitWithFallback(partition_, attempt[u].first,
                                       attempt[u].second,
                                       column_ptrs[u]);
            span.attrU64("decoded", outcome.ok ? 1 : 0);
            span.end();
            return outcome;
        });
    for (size_t u = 0; u < attempt.size(); ++u) {
        UnitOutcome &outcome = outcomes[u];
        if (!outcome.ok)
            continue;
        // An early emission freezes the payload, so it must be
        // trustworthy on partial evidence: enforce the reliability
        // margin described above on the unit's weakest codeword
        // (f + 2e <= d - 3 per row, so a wrong accept needs at least
        // 3 genuinely wrong symbols in one row at once). A decode
        // whose worst row burned more of the code's distance on
        // erasure fallback or corrections can be a confident
        // mis-correction while clusters are still small — defer it to
        // the next column-map change or to finish(), where the full
        // read set backs the consensus.
        if (outcome.max_row_correction_load > slack)
            continue;
        ++stats_.units_attempted;
        ++stats_.units_decoded;
        stats_.candidate_retries += outcome.candidate_retries;
        stats_.symbol_errors_corrected +=
            outcome.symbol_errors_corrected;
        stats_.erasures_filled += outcome.erasures_filled;
        emitUnit(attempt[u], std::move(outcome.data), true);
    }
}

void
StreamingDecoder::emitUnit(const UnitKey &unit, Bytes payload,
                           bool early)
{
    if (early) {
        ++stats_.units_emitted_early;
        pending_units_.erase(unit);
    }
    auto [it, inserted] = completed_.emplace(unit, std::move(payload));
    (void)inserted;
    emitted_.push_back({unit.first, unit.second, it->second});
    if (streaming_.on_unit)
        streaming_.on_unit(unit.first, unit.second, it->second);
    if (!expected_remaining_.empty()) {
        expected_remaining_.erase(unit);
        if (expected_remaining_.empty())
            complete_ = true;
    }
}

std::map<uint64_t, BlockVersions>
StreamingDecoder::finish(DecodeStats *stats, ThreadPool *pool,
                         const telemetry::TraceContext &trace)
{
    fatalIf(finished_, "StreamingDecoder::finish called twice");
    finished_ = true;
    ThreadPool &p = resolvePool(pool);

    // Bring consensus up to date for every usable cluster that grew
    // since its last refresh. Deferred mode: that is all of them, so
    // steps 3-4 below replay the one-shot pipeline over the full
    // accumulated state. Early-terminated sessions skip this — their
    // pending attempts are cancelled, not completed.
    views_.resize(clusterer_.clusters().size());
    if (!complete_) {
        std::vector<size_t> stale;
        for (size_t c = 0; c < views_.size(); ++c) {
            const cluster::Cluster &cl = clusterer_.clusters()[c];
            if (cl.size() >= params_.min_cluster_size &&
                views_[c].members_at_consensus != cl.size())
                stale.push_back(c);
        }
        if (!stale.empty())
            refreshClusters(stale, p, trace);
    }

    // Assemble per-address candidate slots in the exact order the
    // one-shot pipeline uses: clusters by decreasing size, size
    // cutoff as a prefix. This defines the cluster/strand accounting
    // in every mode; in non-complete sessions it also feeds the RS
    // sweep below, making deferred finish() ≡ decodeAll by
    // construction.
    std::vector<size_t> order(clusterer_.clusters().size());
    for (size_t c = 0; c < order.size(); ++c)
        order[c] = c;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return clusterer_.clusters()[a].size() >
               clusterer_.clusters()[b].size();
    });

    stats_.clusters_total = clusterer_.clusters().size();
    std::map<std::tuple<uint64_t, unsigned, unsigned>, RecoveredSlot>
        recovered;
    for (size_t c : order) {
        const cluster::Cluster &cl = clusterer_.clusters()[c];
        if (cl.size() < params_.min_cluster_size)
            break;  // sorted: the rest are below the cutoff too
        ++stats_.clusters_used;
        const ClusterView &view = views_[c];
        if (view.state == ClusterView::State::Unparsed)
            continue;
        if (view.state == ClusterView::State::IndexReject) {
            ++stats_.index_rejects;
            continue;
        }
        auto key = std::make_tuple(view.unit.first, view.unit.second,
                                   view.column);
        RecoveredSlot &slot = recovered[key];
        if (!slot.candidates.empty())
            ++stats_.duplicate_addresses;
        if (slot.candidates.size() <
            params_.max_candidates_per_address) {
            StrandCandidate candidate;
            candidate.payload = view.payload;
            candidate.cluster_size = cl.size();
            candidate.index_mismatches = view.index_mismatches;
            slot.candidates.push_back(std::move(candidate));
            ++stats_.strands_recovered;
        }
    }
    for (auto &[key, slot] : recovered) {
        std::sort(slot.candidates.begin(), slot.candidates.end(),
                  candidateBefore);
    }

    // Step 4: RS-decode every unit not already emitted. An
    // early-terminated session decodes nothing further.
    std::map<UnitKey, std::map<unsigned, const RecoveredSlot *>> units;
    if (!complete_) {
        for (const auto &[key, slot] : recovered) {
            auto [block, version, column] = key;
            UnitKey unit{block, version};
            if (completed_.count(unit))
                continue;
            units[unit][column] = &slot;
        }
    }
    std::vector<std::pair<UnitKey,
                          const std::map<unsigned,
                                         const RecoveredSlot *> *>>
        unit_list;
    unit_list.reserve(units.size());
    for (const auto &[unit, columns] : units)
        unit_list.emplace_back(unit, &columns);
    std::vector<UnitOutcome> outcomes =
        p.parallelMap<UnitOutcome>(unit_list.size(), [&](size_t u) {
            const auto &[unit, columns] = unit_list[u];
            telemetry::SpanHandle span = trace.span("decode.rs_unit");
            span.attrU64("block", unit.first);
            span.attrU64("version", unit.second);
            UnitOutcome outcome = decodeUnitWithFallback(
                partition_, unit.first, unit.second, *columns);
            span.attrU64("decoded", outcome.ok ? 1 : 0);
            span.end();
            return outcome;
        });
    for (size_t u = 0; u < unit_list.size(); ++u) {
        const UnitKey &unit = unit_list[u].first;
        UnitOutcome &outcome = outcomes[u];
        ++stats_.units_attempted;
        stats_.candidate_retries += outcome.candidate_retries;
        if (!outcome.ok) {
            ++stats_.units_failed;
            continue;
        }
        ++stats_.units_decoded;
        stats_.symbol_errors_corrected +=
            outcome.symbol_errors_corrected;
        stats_.erasures_filled += outcome.erasures_filled;
        emitUnit(unit, std::move(outcome.data), false);
    }

    std::map<uint64_t, BlockVersions> result;
    for (const auto &[unit, payload] : completed_)
        result[unit.first].versions[unit.second] = payload;
    if (stats)
        *stats = stats_;
    return result;
}

} // namespace dnastore::core
