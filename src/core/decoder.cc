#include "core/decoder.h"

#include <algorithm>

#include "codec/base_codec.h"
#include "core/layout.h"
#include "dna/distance.h"

namespace dnastore::core {

Decoder::Decoder(const Partition &partition, DecoderParams params)
    : partition_(partition), params_(params)
{}

std::map<std::tuple<uint64_t, unsigned, unsigned>, Decoder::Recovered>
Decoder::recoverStrands(const std::vector<sim::Read> &reads,
                        DecodeStats *stats) const
{
    const PartitionConfig &config = partition_.config();
    const dna::Sequence &stem = partition_.elongation().stem();

    // Step 1: primer filter.
    std::vector<dna::Sequence> filtered;
    filtered.reserve(reads.size());
    for (const sim::Read &read : reads) {
        dna::PrefixAlignment align = dna::alignPrimerToPrefix(
            stem, read.seq, params_.primer_match_dist);
        if (align.distance == dna::kDistanceInfinity)
            continue;
        filtered.push_back(read.seq);
    }
    if (stats) {
        stats->reads_in = reads.size();
        stats->reads_primer_matched = filtered.size();
    }

    std::map<std::tuple<uint64_t, unsigned, unsigned>, Recovered>
        recovered;
    if (filtered.empty())
        return recovered;

    // Step 2: cluster (clusters arrive sorted by decreasing size).
    std::vector<cluster::Cluster> clusters =
        cluster::clusterReads(filtered, params_.cluster);
    if (stats)
        stats->clusters_total = clusters.size();

    // Step 3: reconstruct in descending cluster-size order.
    for (const cluster::Cluster &c : clusters) {
        if (c.size() < params_.min_cluster_size)
            break;  // sorted: everything after is smaller
        std::vector<dna::Sequence> members;
        members.reserve(c.size());
        for (size_t idx : c.members)
            members.push_back(filtered[idx]);
        dna::Sequence strand = consensus::bmaDoubleSided(
            members, config.strand_length, params_.bma);
        if (stats)
            ++stats->clusters_used;

        std::optional<StrandFields> fields =
            parseStrand(config, strand);
        if (!fields)
            continue;

        index::IndexMatch match =
            partition_.tree().decodeNearest(fields->address);
        if (match.mismatches > params_.max_index_mismatches) {
            if (stats)
                ++stats->index_rejects;
            continue;
        }
        unsigned column = decodeIntra(config, fields->intra);
        if (column >= config.rs_n) {
            if (stats)
                ++stats->index_rejects;
            continue;
        }

        auto key = std::make_tuple(match.block, match.version, column);
        Recovered &slot = recovered[key];
        if (!slot.candidates.empty() && stats)
            ++stats->duplicate_addresses;
        if (slot.candidates.size() <
            params_.max_candidates_per_address) {
            Candidate candidate;
            candidate.payload = codec::basesToBytes(fields->payload);
            candidate.cluster_size = c.size();
            candidate.index_mismatches = match.mismatches;
            slot.candidates.push_back(std::move(candidate));
            if (stats)
                ++stats->strands_recovered;
        }
    }

    // Rank candidates: exact-index reconstructions from big clusters
    // first; misprimed amplicons sink to the back (Section 8.1).
    for (auto &[key, slot] : recovered) {
        std::sort(slot.candidates.begin(), slot.candidates.end(),
                  [](const Candidate &a, const Candidate &b) {
                      if (a.index_mismatches != b.index_mismatches)
                          return a.index_mismatches <
                                 b.index_mismatches;
                      return a.cluster_size > b.cluster_size;
                  });
    }
    return recovered;
}

std::map<uint64_t, BlockVersions>
Decoder::decodeAll(const std::vector<sim::Read> &reads,
                   DecodeStats *stats) const
{
    const PartitionConfig &config = partition_.config();
    auto recovered = recoverStrands(reads, stats);

    // Group addresses by (block, version).
    std::map<std::pair<uint64_t, unsigned>,
             std::map<unsigned, const Recovered *>>
        units;
    for (const auto &[key, slot] : recovered) {
        auto [block, version, column] = key;
        units[{block, version}][column] = &slot;
    }

    std::map<uint64_t, BlockVersions> result;
    for (const auto &[unit_key, columns] : units) {
        auto [block, version] = unit_key;
        if (stats)
            ++stats->units_attempted;

        // Try the primary candidates first; on failure, swap in
        // alternates one address at a time, then progressively erase
        // the least-trustworthy columns so the outer code can fill
        // them (Section 8.1 fallback).
        std::vector<std::optional<Bytes>> primary(config.rs_n);
        for (const auto &[column, slot] : columns)
            primary[column] = slot->candidates.front().payload;

        ecc::UnitDecodeResult decoded =
            partition_.unitCodec().decode(primary);
        if (!decoded.ok()) {
            for (const auto &[column, slot] : columns) {
                if (decoded.ok())
                    break;
                for (size_t alt = 1; alt < slot->candidates.size();
                     ++alt) {
                    auto trial = primary;
                    trial[column] = slot->candidates[alt].payload;
                    if (stats)
                        ++stats->candidate_retries;
                    ecc::UnitDecodeResult attempt =
                        partition_.unitCodec().decode(trial);
                    if (attempt.ok()) {
                        decoded = std::move(attempt);
                        break;
                    }
                }
            }
        }
        if (!decoded.ok()) {
            // Erase suspect columns, worst first (most index
            // mismatches, fewest supporting reads).
            std::vector<unsigned> order;
            for (const auto &[column, slot] : columns)
                order.push_back(column);
            std::sort(order.begin(), order.end(),
                      [&](unsigned a, unsigned b) {
                          const Candidate &ca =
                              columns.at(a)->candidates.front();
                          const Candidate &cb =
                              columns.at(b)->candidates.front();
                          if (ca.index_mismatches !=
                              cb.index_mismatches) {
                              return ca.index_mismatches >
                                     cb.index_mismatches;
                          }
                          return ca.cluster_size < cb.cluster_size;
                      });
            size_t max_erase = std::min<size_t>(
                order.size(), config.rs_n - config.rs_k);
            auto trial = primary;
            for (size_t e = 0; e < max_erase && !decoded.ok(); ++e) {
                trial[order[e]].reset();
                if (stats)
                    ++stats->candidate_retries;
                ecc::UnitDecodeResult attempt =
                    partition_.unitCodec().decode(trial);
                if (attempt.ok())
                    decoded = std::move(attempt);
            }
        }

        if (!decoded.ok()) {
            if (stats)
                ++stats->units_failed;
            continue;
        }
        if (stats) {
            ++stats->units_decoded;
            stats->symbol_errors_corrected +=
                decoded.symbol_errors_corrected;
            stats->erasures_filled += decoded.erasures_filled;
        }
        result[block].versions[version] =
            partition_.unscrambleUnitRaw(*decoded.data, block, version);
    }
    return result;
}

Bytes
Decoder::applyUpdateChain(const Bytes &base, const BlockVersions &chain,
                          std::optional<uint64_t> *overflow_block) const
{
    const PartitionConfig &config = partition_.config();
    Bytes current = base;
    current.resize(config.block_data_bytes);
    if (overflow_block)
        overflow_block->reset();

    for (unsigned version = 1;
         version < index::SparseIndexTree::kVersionSlots; ++version) {
        auto it = chain.versions.find(version);
        if (it == chain.versions.end())
            break;  // chain ends at the first missing slot
        std::optional<UpdateRecord> record =
            UpdateRecord::deserialize(it->second);
        if (!record)
            break;
        switch (record->kind) {
          case UpdateRecord::Kind::kInline:
            current = record->op.apply(current,
                                       config.block_data_bytes);
            break;
          case UpdateRecord::Kind::kReplace:
            current = record->replacement;
            current.resize(config.block_data_bytes, 0);
            break;
          case UpdateRecord::Kind::kOverflowPointer:
            if (overflow_block)
                *overflow_block = record->overflow_block;
            return current;
        }
    }
    return current;
}

std::optional<Bytes>
Decoder::decodeBlock(const std::vector<sim::Read> &reads, uint64_t block,
                     DecodeStats *stats,
                     std::optional<uint64_t> *overflow_block) const
{
    std::map<uint64_t, BlockVersions> all = decodeAll(reads, stats);
    auto it = all.find(block);
    if (it == all.end())
        return std::nullopt;
    auto base_it = it->second.versions.find(0);
    if (base_it == it->second.versions.end())
        return std::nullopt;

    Bytes base = base_it->second;
    base.resize(partition_.config().block_data_bytes);
    return applyUpdateChain(base, it->second, overflow_block);
}

} // namespace dnastore::core
