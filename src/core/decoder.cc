#include "core/decoder.h"

#include <algorithm>

#include "codec/base_codec.h"
#include "common/thread_pool.h"
#include "core/layout.h"
#include "dna/distance.h"

namespace dnastore::core {

Decoder::Decoder(const Partition &partition, DecoderParams params)
    : partition_(partition), params_(params)
{}

std::map<std::tuple<uint64_t, unsigned, unsigned>, Decoder::Recovered>
Decoder::recoverStrands(const std::vector<sim::Read> &reads,
                        DecodeStats *stats, ThreadPool &pool) const
{
    const PartitionConfig &config = partition_.config();
    const dna::Sequence &stem = partition_.elongation().stem();

    // Step 1: primer filter. The per-read alignments fan out across
    // the pool; the keep/drop decision for a read depends only on
    // that read, and the matches are gathered in input order.
    std::vector<uint8_t> keep(reads.size(), 0);
    pool.parallelFor(reads.size(), [&](size_t i) {
        dna::PrefixAlignment align = dna::alignPrimerToPrefix(
            stem, reads[i].seq, params_.primer_match_dist);
        keep[i] = align.distance != dna::kDistanceInfinity;
    });
    std::vector<dna::Sequence> filtered;
    filtered.reserve(reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        if (keep[i])
            filtered.push_back(reads[i].seq);
    }
    if (stats) {
        stats->reads_in = reads.size();
        stats->reads_primer_matched = filtered.size();
    }

    std::map<std::tuple<uint64_t, unsigned, unsigned>, Recovered>
        recovered;
    if (filtered.empty())
        return recovered;

    // Step 2: cluster (clusters arrive sorted by decreasing size).
    std::vector<cluster::Cluster> clusters =
        cluster::clusterReads(filtered, params_.cluster, &pool);
    if (stats)
        stats->clusters_total = clusters.size();

    // Step 3: reconstruct per cluster. The clusters are sorted by
    // decreasing size, so the ones above the size cutoff form a
    // prefix; their BMA consensus runs are independent and fan out
    // across the pool, while parsing/ranking below consumes the
    // reconstructed strands in the original descending-size order.
    size_t used = 0;
    while (used < clusters.size() &&
           clusters[used].size() >= params_.min_cluster_size) {
        ++used;
    }
    std::vector<std::vector<size_t>> memberships(used);
    for (size_t i = 0; i < used; ++i)
        memberships[i] = clusters[i].members;
    std::vector<dna::Sequence> strands = consensus::bmaDoubleSidedBatch(
        filtered, memberships, config.strand_length, params_.bma,
        &pool);

    for (size_t i = 0; i < used; ++i) {
        const cluster::Cluster &c = clusters[i];
        if (stats)
            ++stats->clusters_used;

        std::optional<StrandFields> fields =
            parseStrand(config, strands[i]);
        if (!fields)
            continue;

        index::IndexMatch match =
            partition_.tree().decodeNearest(fields->address);
        if (match.mismatches > params_.max_index_mismatches) {
            if (stats)
                ++stats->index_rejects;
            continue;
        }
        unsigned column = decodeIntra(config, fields->intra);
        if (column >= config.rs_n) {
            if (stats)
                ++stats->index_rejects;
            continue;
        }

        auto key = std::make_tuple(match.block, match.version, column);
        Recovered &slot = recovered[key];
        if (!slot.candidates.empty() && stats)
            ++stats->duplicate_addresses;
        if (slot.candidates.size() <
            params_.max_candidates_per_address) {
            Candidate candidate;
            candidate.payload = codec::basesToBytes(fields->payload);
            candidate.cluster_size = c.size();
            candidate.index_mismatches = match.mismatches;
            slot.candidates.push_back(std::move(candidate));
            if (stats)
                ++stats->strands_recovered;
        }
    }

    // Rank candidates: exact-index reconstructions from big clusters
    // first; misprimed amplicons sink to the back (Section 8.1).
    for (auto &[key, slot] : recovered) {
        std::sort(slot.candidates.begin(), slot.candidates.end(),
                  [](const Candidate &a, const Candidate &b) {
                      if (a.index_mismatches != b.index_mismatches)
                          return a.index_mismatches <
                                 b.index_mismatches;
                      return a.cluster_size > b.cluster_size;
                  });
    }
    return recovered;
}

namespace {

/** Everything one unit decode produces, reduced in unit order. */
struct UnitOutcome
{
    bool ok = false;
    Bytes data;  // descrambled raw unit payload, when ok
    size_t candidate_retries = 0;
    size_t symbol_errors_corrected = 0;
    size_t erasures_filled = 0;
};

} // namespace

std::map<uint64_t, BlockVersions>
Decoder::decodeAll(const std::vector<sim::Read> &reads,
                   DecodeStats *stats) const
{
    // Clamp the pool to the workload: a decode of a handful of reads
    // must not spawn hardware_concurrency threads just to join them.
    ThreadPool pool(
        std::min(ThreadPool::resolveThreadCount(params_.threads),
                 std::max<size_t>(1, reads.size())));
    return decodeAll(reads, stats, pool);
}

std::map<uint64_t, BlockVersions>
Decoder::decodeAll(const std::vector<sim::Read> &reads,
                   DecodeStats *stats, ThreadPool &pool) const
{
    const PartitionConfig &config = partition_.config();
    auto recovered = recoverStrands(reads, stats, pool);

    // Group addresses by (block, version).
    std::map<std::pair<uint64_t, unsigned>,
             std::map<unsigned, const Recovered *>>
        units;
    for (const auto &[key, slot] : recovered) {
        auto [block, version, column] = key;
        units[{block, version}][column] = &slot;
    }

    // Step 4: units are independent (each reads only its own columns
    // of `recovered` and the const partition codecs), so the decodes
    // fan out across the pool; stats and results are merged
    // sequentially in unit-key order below.
    std::vector<std::pair<std::pair<uint64_t, unsigned>,
                          const std::map<unsigned, const Recovered *> *>>
        unit_list;
    unit_list.reserve(units.size());
    for (const auto &[unit_key, columns] : units)
        unit_list.emplace_back(unit_key, &columns);

    std::vector<UnitOutcome> outcomes =
        pool.parallelMap<UnitOutcome>(unit_list.size(), [&](size_t u) {
            const auto &[unit_key, columns_ptr] = unit_list[u];
            const auto &columns = *columns_ptr;
            auto [block, version] = unit_key;
            UnitOutcome outcome;

            // Try the primary candidates first; on failure, swap in
            // alternates one address at a time, then progressively
            // erase the least-trustworthy columns so the outer code
            // can fill them (Section 8.1 fallback).
            std::vector<std::optional<Bytes>> primary(config.rs_n);
            for (const auto &[column, slot] : columns)
                primary[column] = slot->candidates.front().payload;

            ecc::UnitDecodeResult decoded =
                partition_.unitCodec().decode(primary);
            if (!decoded.ok()) {
                for (const auto &[column, slot] : columns) {
                    if (decoded.ok())
                        break;
                    for (size_t alt = 1;
                         alt < slot->candidates.size(); ++alt) {
                        auto trial = primary;
                        trial[column] = slot->candidates[alt].payload;
                        ++outcome.candidate_retries;
                        ecc::UnitDecodeResult attempt =
                            partition_.unitCodec().decode(trial);
                        if (attempt.ok()) {
                            decoded = std::move(attempt);
                            break;
                        }
                    }
                }
            }
            if (!decoded.ok()) {
                // Erase suspect columns, worst first (most index
                // mismatches, fewest supporting reads).
                std::vector<unsigned> order;
                for (const auto &[column, slot] : columns)
                    order.push_back(column);
                std::sort(order.begin(), order.end(),
                          [&](unsigned a, unsigned b) {
                              const Candidate &ca =
                                  columns.at(a)->candidates.front();
                              const Candidate &cb =
                                  columns.at(b)->candidates.front();
                              if (ca.index_mismatches !=
                                  cb.index_mismatches) {
                                  return ca.index_mismatches >
                                         cb.index_mismatches;
                              }
                              return ca.cluster_size <
                                     cb.cluster_size;
                          });
                size_t max_erase = std::min<size_t>(
                    order.size(), config.rs_n - config.rs_k);
                auto trial = primary;
                for (size_t e = 0; e < max_erase && !decoded.ok();
                     ++e) {
                    trial[order[e]].reset();
                    ++outcome.candidate_retries;
                    ecc::UnitDecodeResult attempt =
                        partition_.unitCodec().decode(trial);
                    if (attempt.ok())
                        decoded = std::move(attempt);
                }
            }

            if (!decoded.ok())
                return outcome;
            outcome.ok = true;
            outcome.symbol_errors_corrected =
                decoded.symbol_errors_corrected;
            outcome.erasures_filled = decoded.erasures_filled;
            outcome.data = partition_.unscrambleUnitRaw(
                *decoded.data, block, version);
            return outcome;
        });

    std::map<uint64_t, BlockVersions> result;
    for (size_t u = 0; u < unit_list.size(); ++u) {
        auto [block, version] = unit_list[u].first;
        UnitOutcome &outcome = outcomes[u];
        if (stats) {
            ++stats->units_attempted;
            stats->candidate_retries += outcome.candidate_retries;
        }
        if (!outcome.ok) {
            if (stats)
                ++stats->units_failed;
            continue;
        }
        if (stats) {
            ++stats->units_decoded;
            stats->symbol_errors_corrected +=
                outcome.symbol_errors_corrected;
            stats->erasures_filled += outcome.erasures_filled;
        }
        result[block].versions[version] = std::move(outcome.data);
    }
    return result;
}

Bytes
Decoder::applyUpdateChain(const Bytes &base, const BlockVersions &chain,
                          std::optional<uint64_t> *overflow_block) const
{
    const PartitionConfig &config = partition_.config();
    Bytes current = base;
    current.resize(config.block_data_bytes);
    if (overflow_block)
        overflow_block->reset();

    for (unsigned version = 1;
         version < index::SparseIndexTree::kVersionSlots; ++version) {
        auto it = chain.versions.find(version);
        if (it == chain.versions.end())
            break;  // chain ends at the first missing slot
        std::optional<UpdateRecord> record =
            UpdateRecord::deserialize(it->second);
        if (!record)
            break;
        switch (record->kind) {
          case UpdateRecord::Kind::kInline:
            current = record->op.apply(current,
                                       config.block_data_bytes);
            break;
          case UpdateRecord::Kind::kReplace:
            current = record->replacement;
            current.resize(config.block_data_bytes, 0);
            break;
          case UpdateRecord::Kind::kOverflowPointer:
            if (overflow_block)
                *overflow_block = record->overflow_block;
            return current;
        }
    }
    return current;
}

std::optional<Bytes>
Decoder::decodeBlock(const std::vector<sim::Read> &reads, uint64_t block,
                     DecodeStats *stats,
                     std::optional<uint64_t> *overflow_block) const
{
    std::map<uint64_t, BlockVersions> all = decodeAll(reads, stats);
    auto it = all.find(block);
    if (it == all.end())
        return std::nullopt;
    auto base_it = it->second.versions.find(0);
    if (base_it == it->second.versions.end())
        return std::nullopt;

    Bytes base = base_it->second;
    base.resize(partition_.config().block_data_bytes);
    return applyUpdateChain(base, it->second, overflow_block);
}

} // namespace dnastore::core
