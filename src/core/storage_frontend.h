/**
 * @file
 * StorageFrontend: the admission-controlled read frontend.
 *
 * One frontend (or many — the class is stateless apart from cached
 * telemetry instruments, so frontends are cheap and may share a
 * service) routes every device- and pool-level read through one
 * shared DecodeService: the service's pool is the single decode
 * resource, its max_queue_depth is the admission bound, and its
 * metrics registry sees every request. Two call shapes:
 *
 *  - pass-through reads (readBlock/readBlocks/readAll/readFile):
 *    one wetlab round trip, one service submission, identical bytes
 *    to the target's synchronous method for any service thread
 *    count, queue depth, and submission interleaving;
 *  - batched reads (readBlocksBatch/readFiles): sequence every
 *    target first (wetlab simulation stays sequential — each device
 *    owns its cost/RNG state), then fan one DecodeRequest per
 *    target partition into a single submitBatch, so N devices and M
 *    pool files decode concurrently on one pool.
 *
 * A Reject-policy service that sheds a routed request surfaces here
 * as OverloadedError, thrown in the caller's thread — the typed
 * Overloaded outcome never crosses threads as an exception. A tenant
 * token bucket that sheds one surfaces as ThrottledError (a subclass,
 * so saturation handlers keep working).
 *
 * Tenancy: each frontend is bound to one TenantId
 * (StorageFrontendParams::tenant, default kDefaultTenant) and bills
 * every routed request — pass-through, batched, and overflow-hop
 * decodes alike — to it, so two frontends on one service give two
 * callers independently metered, weighted-fair shares of the decode
 * pool. The binding never changes what bytes a read returns, only
 * when it is admitted and dispatched.
 *
 * The frontend borrows everything: the service, the registry, and
 * each call's target device/pool must outlive the call (the service
 * must outlive the frontend). Devices and pools are not themselves
 * thread-safe — concurrent frontend calls must target distinct
 * devices/pools, while the shared service serializes admission.
 */

#ifndef DNASTORE_CORE_STORAGE_FRONTEND_H
#define DNASTORE_CORE_STORAGE_FRONTEND_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/block_device.h"
#include "core/decode_service.h"
#include "core/pool_manager.h"
#include "telemetry/metrics.h"

namespace dnastore::core {

/** Frontend knobs. */
struct StorageFrontendParams
{
    /** Optional metrics sink; not owned, must outlive the frontend.
     *  Independent of the service's registry (point both at one
     *  registry for a single exportable snapshot). */
    telemetry::MetricsRegistry *metrics = nullptr;

    /** Tenant every read of this frontend is billed to; configure it
     *  in the service's DecodeServiceParams::tenants to give this
     *  frontend a rate contract, weight, or queue-depth cap. */
    TenantId tenant = kDefaultTenant;

    /** Optional trace collector; not owned, must outlive the
     *  frontend. When set, every frontend call roots its own trace
     *  (a frontend.* span) and the routed decode requests join it as
     *  children — point it at the service's collector so one trace
     *  covers frontend call → admission → dispatch → decode stages.
     *  nullptr (the default) leaves frontend calls untraced; the
     *  service may still root per-request traces of its own. */
    telemetry::TraceCollector *tracer = nullptr;
};

class StorageFrontend
{
  public:
    explicit StorageFrontend(DecodeService &service,
                             StorageFrontendParams params = {});

    StorageFrontend(const StorageFrontend &) = delete;
    StorageFrontend &operator=(const StorageFrontend &) = delete;

    /** One block of one device, updates applied. */
    std::optional<Bytes> readBlock(BlockDevice &device,
                                   uint64_t block);

    /** Blocks [lo, hi] of one device via one multiplex PCR. */
    std::vector<std::optional<Bytes>> readBlocks(BlockDevice &device,
                                                 uint64_t lo,
                                                 uint64_t hi);

    /** A device's whole partition (baseline random access). */
    std::vector<std::optional<Bytes>> readAll(BlockDevice &device);

    /** One whole file of a multi-partition pool. */
    std::optional<Bytes> readFile(PoolManager &pool,
                                  uint32_t file_id);

    /** One device's range within a batched read. */
    struct RangeRead
    {
        BlockDevice *device = nullptr;
        uint64_t lo = 0;
        uint64_t hi = 0;
    };

    /**
     * Read many devices' ranges as one service batch: every range is
     * sequenced, then all decodes are submitted together and fulfil
     * concurrently on the shared pool. results[i] corresponds to
     * ranges[i] and is byte-identical to readBlocks(ranges[i]).
     */
    std::vector<std::vector<std::optional<Bytes>>> readBlocksBatch(
        const std::vector<RangeRead> &ranges);

    /**
     * Read many files of one pool as one service batch; results[i]
     * corresponds to file_ids[i] and is byte-identical to
     * readFile(pool, file_ids[i]).
     */
    std::vector<std::optional<Bytes>> readFiles(
        PoolManager &pool, const std::vector<uint32_t> &file_ids);

    DecodeService &service() { return service_; }

    /** Tenant this frontend bills its reads to. */
    TenantId tenant() const { return tenant_; }

  private:
    /** Count returned/missing blocks and the end-to-end latency of
     *  one frontend call; rethrows OverloadedError/ThrottledError
     *  after counting. Roots a @p span_name trace when the frontend
     *  has a tracer and hands @p fn the child context to thread into
     *  the routed requests; the root ends — with an outcome
     *  attribute — before the call returns or rethrows. */
    template <typename Fn>
    auto instrumented(telemetry::Counter *calls,
                      std::string_view span_name, Fn &&fn);

    void recordBlocks(const std::vector<std::optional<Bytes>> &blocks);

    DecodeService &service_;
    TenantId tenant_ = kDefaultTenant;
    telemetry::TraceCollector *tracer_ = nullptr;

    // Cached instruments (null without a registry).
    telemetry::Counter *block_reads_ = nullptr;
    telemetry::Counter *range_reads_ = nullptr;
    telemetry::Counter *full_reads_ = nullptr;
    telemetry::Counter *file_reads_ = nullptr;
    telemetry::Counter *batch_reads_ = nullptr;
    telemetry::Counter *blocks_returned_ = nullptr;
    telemetry::Counter *blocks_missing_ = nullptr;
    telemetry::Counter *overloaded_ = nullptr;
    telemetry::Counter *throttled_ = nullptr;
    telemetry::Histogram *read_latency_us_ = nullptr;
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_STORAGE_FRONTEND_H
