/**
 * @file
 * BlockDevice: the end-to-end block-storage API over simulated DNA.
 *
 * This is the facade a storage user programs against. It owns one
 * partition and its simulated DNA pool, and implements:
 *
 *  - writeFile(): encode + synthesize the initial pool;
 *  - readBlock(): elongated-primer PCR, sequencing, full decode, and
 *    update-chain application (following overflow pointers across
 *    additional round trips, Figure 8);
 *  - readRange(): multiplex PCR with an exact prefix cover of the
 *    range (sequential access, Section 3.1);
 *  - readAll(): conventional whole-partition random access (the
 *    baseline behaviour of [23]);
 *  - updateBlock()/replaceBlock(): synthesize a patch and mix it
 *    into the pool at matched concentration (Sections 5 and 6.4).
 *
 * Synthesis and sequencing activity is metered by a CostModel.
 */

#ifndef DNASTORE_CORE_BLOCK_DEVICE_H
#define DNASTORE_CORE_BLOCK_DEVICE_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/cost.h"
#include "core/decoder.h"
#include "core/partition.h"
#include "core/tenant.h"
#include "sim/mixing.h"
#include "sim/pcr.h"
#include "sim/sequencer.h"
#include "sim/synthesis.h"

namespace dnastore::core {

class DecodeService;

/** Everything configurable about a device. */
struct BlockDeviceParams
{
    PartitionConfig config;
    sim::SynthesisParams synthesis;
    sim::PcrParams pcr;
    sim::SequencerParams sequencer;
    DecoderParams decoder;
    EncodeParams encode;
    CostParams costs;

    /** Reads sequenced for a single-block access. */
    size_t reads_per_block_access = 1200;

    /** Reads per molecule when sequencing larger scopes. */
    double coverage = 20.0;

    /** PCR cycles for a block access (touchdown + plateau). */
    unsigned block_access_cycles = 28;

    /** Touchdown cycles at elevated stringency (Section 6.5). */
    unsigned touchdown_cycles = 10;

    /** Relative concentration of leftover main primers carried into
     *  a block-access reaction (0 disables; the paper observed 18%
     *  of reads from this artifact). */
    double leftover_primer_concentration = 0.0;
};

class BlockDevice
{
  public:
    BlockDevice(BlockDeviceParams params, dna::Sequence forward,
                dna::Sequence reverse, uint32_t file_id = 13);

    /** Self-referential (decoder_ holds a reference to partition_):
     *  copying or moving would leave the decoder bound to the old
     *  object's partition. */
    BlockDevice(const BlockDevice &) = delete;
    BlockDevice &operator=(const BlockDevice &) = delete;

    /** Encode and synthesize the file; replaces any previous pool. */
    void writeFile(const Bytes &data);

    /** Number of data blocks stored by the last writeFile(). */
    uint64_t blockCount() const { return data_blocks_; }

    /**
     * Log an update patch for a block. The first two updates occupy
     * the block's inline version slots; later ones spill into the
     * overflow log with pointer records (Figure 8).
     */
    void updateBlock(uint64_t block, const UpdateOp &op);

    /** Log a whole-block replacement update. */
    void replaceBlock(uint64_t block, const Bytes &content);

    /**
     * Retrieve one block with all updates applied. Performs one PCR
     * + sequencing round trip, plus one more per overflow hop.
     *
     * Every read method takes an optional DecodeService: when one is
     * given, all decode traffic of the call — including overflow-hop
     * decodes — is submitted to it instead of running synchronously,
     * byte-identical to the synchronous path for any service thread
     * count. A Reject-policy service that sheds the request surfaces
     * as OverloadedError here (in the caller's thread); a tenant
     * token bucket that sheds it surfaces as ThrottledError. The
     * routed requests are billed to @p tenant (StorageFrontend
     * passes its per-frontend binding). @p trace parents the call's
     * decode spans — including overflow-hop decodes — under the
     * caller's root span (inactive by default, one branch).
     */
    std::optional<Bytes> readBlock(
        uint64_t block, DecodeService *service = nullptr,
        TenantId tenant = kDefaultTenant,
        const telemetry::TraceContext &trace = {});

    /** Retrieve blocks [lo, hi] via one multiplex PCR. */
    std::vector<std::optional<Bytes>> readRange(
        uint64_t lo, uint64_t hi, DecodeService *service = nullptr,
        TenantId tenant = kDefaultTenant,
        const telemetry::TraceContext &trace = {});

    /** Retrieve the whole partition (baseline random access). */
    std::vector<std::optional<Bytes>> readAll(
        DecodeService *service = nullptr,
        TenantId tenant = kDefaultTenant,
        const telemetry::TraceContext &trace = {});

    /**
     * The wetlab half of readRange(): multiplex PCR over an exact
     * prefix cover of [lo, hi] plus sequencing, no decoding. Pair
     * with assembleRange() — StorageFrontend uses the split to fan
     * many devices' decodes into one DecodeService batch.
     */
    std::vector<sim::Read> sequenceRange(uint64_t lo, uint64_t hi);

    /** The wetlab half of readAll(). */
    std::vector<sim::Read> sequenceAll();

    /**
     * The assembly half of readRange()/readAll(): resolve blocks
     * [lo, hi] from already-decoded units, following overflow hops
     * (extra round trips decode through @p service when given).
     */
    std::vector<std::optional<Bytes>> assembleRange(
        uint64_t lo, uint64_t hi,
        const std::map<uint64_t, BlockVersions> &units,
        DecodeService *service = nullptr,
        TenantId tenant = kDefaultTenant,
        const telemetry::TraceContext &trace = {});

    const sim::Pool &pool() const { return pool_; }
    const Partition &partition() const { return partition_; }
    const Decoder &decoder() const { return decoder_; }
    CostModel &costs() { return costs_; }
    const CostModel &costs() const { return costs_; }

    /** Stats of the most recent decode. */
    const DecodeStats &lastStats() const { return last_stats_; }

    /** Number of updates logged against a block. */
    unsigned updateCount(uint64_t block) const;

  private:
    BlockDeviceParams params_;
    Partition partition_;
    Decoder decoder_;
    sim::Pool pool_;
    CostModel costs_;
    DecodeStats last_stats_;

    uint64_t data_blocks_ = 0;

    /** Updates logged per block. */
    std::map<uint64_t, unsigned> update_counts_;

    /** Overflow containers allocated per block, oldest first. */
    std::map<uint64_t, std::vector<uint64_t>> overflow_chain_;

    /** Next overflow block, allocated from the top of the space. */
    uint64_t next_overflow_;

    /** Synthesize molecules and mix them in at matched concentration. */
    void synthesizeAndMix(const std::vector<sim::DesignedMolecule> &order);

    /** Write one update record into a (container, slot) address. */
    void writeRecord(uint64_t container, unsigned slot,
                     const UpdateRecord &record);

    /** Log an arbitrary record as the next update of @p block. */
    void appendUpdate(uint64_t block, UpdateRecord record);

    /** One PCR + sequencing round trip scoped to @p primers. */
    std::vector<sim::Read> roundTrip(
        const std::vector<sim::PcrPrimer> &primers, size_t reads);

    /** Decode @p reads synchronously, or through @p service when one
     *  is given, billed to @p tenant (throws OverloadedError /
     *  ThrottledError if the service sheds it). */
    std::map<uint64_t, BlockVersions> decodeReads(
        std::vector<sim::Read> reads, DecodeStats *stats,
        DecodeService *service, TenantId tenant,
        const telemetry::TraceContext &trace);

    /** Apply a block's updates, following overflow hops. */
    std::optional<Bytes> resolveBlock(
        uint64_t block, const std::map<uint64_t, BlockVersions> &units,
        DecodeService *service, TenantId tenant,
        const telemetry::TraceContext &trace);
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_BLOCK_DEVICE_H
