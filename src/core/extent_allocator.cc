#include "core/extent_allocator.h"

#include "common/error.h"

namespace dnastore::core {

namespace {

/** Smallest order k with 4^k >= blocks. */
size_t
orderFor(uint64_t blocks)
{
    size_t order = 0;
    uint64_t size = 1;
    while (size < blocks) {
        size <<= 2;
        ++order;
    }
    return order;
}

} // namespace

ExtentAllocator::ExtentAllocator(size_t depth)
    : depth_(depth), free_(depth + 1)
{
    fatalIf(depth == 0 || depth > 28,
            "ExtentAllocator depth must be in [1, 28]");
    free_[depth_].insert(0);  // the whole space is one free subtree
}

std::optional<uint64_t>
ExtentAllocator::allocateOrder(size_t order)
{
    // Find the smallest free extent of order >= requested.
    size_t have = order;
    while (have <= depth_ && free_[have].empty())
        ++have;
    if (have > depth_)
        return std::nullopt;

    uint64_t start = *free_[have].begin();
    free_[have].erase(free_[have].begin());
    // Split down to the requested order, keeping the three upper
    // buddies free at each level.
    while (have > order) {
        --have;
        uint64_t quarter = uint64_t{1} << (2 * have);
        free_[have].insert(start + quarter);
        free_[have].insert(start + 2 * quarter);
        free_[have].insert(start + 3 * quarter);
    }
    return start;
}

void
ExtentAllocator::freeOrder(uint64_t start, size_t order)
{
    // Coalesce complete buddy quartets.
    while (order < depth_) {
        uint64_t size = uint64_t{1} << (2 * order);
        uint64_t parent = start - start % (4 * size);
        bool all_free = true;
        for (uint64_t buddy = parent; buddy < parent + 4 * size;
             buddy += size) {
            if (buddy != start && !free_[order].count(buddy)) {
                all_free = false;
                break;
            }
        }
        if (!all_free)
            break;
        for (uint64_t buddy = parent; buddy < parent + 4 * size;
             buddy += size) {
            if (buddy != start)
                free_[order].erase(buddy);
        }
        start = parent;
        ++order;
    }
    free_[order].insert(start);
}

std::optional<std::vector<Extent>>
ExtentAllocator::allocate(uint64_t blocks, Policy policy)
{
    fatalIf(blocks == 0, "cannot allocate zero blocks");
    if (blocks > capacity())
        return std::nullopt;

    std::vector<Extent> extents;
    if (policy == Policy::kSingleSubtree) {
        size_t order = orderFor(blocks);
        std::optional<uint64_t> start = allocateOrder(order);
        if (!start)
            return std::nullopt;
        extents.push_back(Extent{*start, uint64_t{1} << (2 * order)});
    } else {
        // Base-4 decomposition, largest order first so big extents
        // are carved before the space fragments.
        uint64_t remaining = blocks;
        for (size_t order = depth_; remaining > 0;) {
            uint64_t size = uint64_t{1} << (2 * order);
            uint64_t count = remaining / size;
            for (uint64_t i = 0; i < count; ++i) {
                std::optional<uint64_t> start = allocateOrder(order);
                if (!start) {
                    // Roll back everything taken so far.
                    for (const Extent &extent : extents)
                        freeOrder(extent.start, orderFor(extent.size));
                    return std::nullopt;
                }
                extents.push_back(Extent{*start, size});
            }
            remaining -= count * size;
            if (order == 0)
                break;
            --order;
        }
    }

    uint64_t reserved = 0;
    for (const Extent &extent : extents)
        reserved += extent.size;
    blocks_allocated_ += blocks;
    blocks_reserved_ += reserved;
    return extents;
}

void
ExtentAllocator::free(const Extent &extent)
{
    fatalIf(extent.size == 0 || extent.start % extent.size != 0,
            "extent is not subtree-aligned");
    size_t order = orderFor(extent.size);
    fatalIf((uint64_t{1} << (2 * order)) != extent.size,
            "extent size is not a power of four");
    freeOrder(extent.start, order);
    blocks_reserved_ -= extent.size;
    blocks_allocated_ -=
        std::min(blocks_allocated_, extent.size);  // best effort
}

uint64_t
ExtentAllocator::largestFreeExtent() const
{
    for (size_t order = depth_ + 1; order-- > 0;) {
        if (!free_[order].empty())
            return uint64_t{1} << (2 * order);
    }
    return 0;
}

} // namespace dnastore::core
