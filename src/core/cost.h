/**
 * @file
 * Synthesis and sequencing cost accounting (paper Sections 7.3-7.5).
 *
 * The paper's cost arguments reduce to two drivers: synthesis cost is
 * proportional to the number of bases synthesized across unique
 * molecule designs, and sequencing cost is proportional to the number
 * of reads ("the sequencing cost is always proportional to the size
 * of the sequencing output, regardless of the sequencing
 * technology"). The model tracks both, plus round trips, so benches
 * can report the paper's ratios (293x waste, 141x/146x reduction,
 * 580x synthesis saving) directly.
 */

#ifndef DNASTORE_CORE_COST_H
#define DNASTORE_CORE_COST_H

#include <cstddef>

namespace dnastore::core {

/** Unit prices; defaults are representative commercial figures. */
struct CostParams
{
    /** Dollars per base of synthesized unique design (oligo pools). */
    double synthesis_per_base = 1e-4;

    /** Dollars per sequencing read (Illumina-class, 150bp). */
    double sequencing_per_read = 5e-6;
};

/** Accumulating cost ledger. */
class CostModel
{
  public:
    explicit CostModel(CostParams params = {}) : params_(params) {}

    void
    recordSynthesis(size_t molecules, size_t bases_each)
    {
        molecules_synthesized_ += molecules;
        bases_synthesized_ += molecules * bases_each;
    }

    void
    recordSequencing(size_t reads)
    {
        reads_sequenced_ += reads;
    }

    void recordRoundTrip() { ++round_trips_; }

    size_t moleculesSynthesized() const { return molecules_synthesized_; }
    size_t basesSynthesized() const { return bases_synthesized_; }
    size_t readsSequenced() const { return reads_sequenced_; }
    size_t roundTrips() const { return round_trips_; }

    double
    synthesisCost() const
    {
        return params_.synthesis_per_base *
               static_cast<double>(bases_synthesized_);
    }

    double
    sequencingCost() const
    {
        return params_.sequencing_per_read *
               static_cast<double>(reads_sequenced_);
    }

    double totalCost() const { return synthesisCost() + sequencingCost(); }

  private:
    CostParams params_;
    size_t molecules_synthesized_ = 0;
    size_t bases_synthesized_ = 0;
    size_t reads_sequenced_ = 0;
    size_t round_trips_ = 0;
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_COST_H
