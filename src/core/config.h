/**
 * @file
 * Partition configuration (paper Sections 6.2 and 6.3).
 *
 * The default values reproduce the wetlab setup exactly:
 *
 *   150-base strands =
 *     forward primer (20) | sync 'A' (1) | sparse unit index (10) |
 *     version base (1) | intra-matrix address (2) | payload (96) |
 *     reverse-primer site (20)
 *
 * 96 payload bases = 24 bytes per molecule; RS(15,11) gives an
 * encoding unit of 11 * 24 = 264 bytes, of which 256 are user data
 * and 8 are (scrambled) padding. The index tree has depth 5, i.e.
 * 1024 addressable blocks, of which the Alice experiment uses 587.
 */

#ifndef DNASTORE_CORE_CONFIG_H
#define DNASTORE_CORE_CONFIG_H

#include <cstdint>

#include "common/error.h"
#include "dna/sequence.h"

namespace dnastore::core {

/** Static geometry and seeds of one partition. */
struct PartitionConfig
{
    size_t strand_length = 150;
    size_t primer_length = 20;
    dna::Base sync_base = dna::Base::A;

    /** Logical index-tree depth L; blocks = 4^L. */
    size_t tree_depth = 5;

    /** Outer-code geometry. */
    unsigned rs_n = 15;
    unsigned rs_k = 11;

    /** User bytes per block; the rest of the unit is padding. */
    size_t block_data_bytes = 256;

    /** Seed for the PCR-navigable index tree (Section 4.4). */
    uint64_t index_seed = 0x1dc0ffee;

    /** Seed for the payload scrambler. */
    uint64_t scramble_seed = 0x5eedf00d;

    // ---- Derived geometry -------------------------------------------

    /** Physical bases of the sparse unit index (2 per level). */
    size_t sparseIndexLength() const { return 2 * tree_depth; }

    /** Version base supporting updates (Figure 8). */
    size_t versionBases() const { return 1; }

    /** Intra-unit (matrix column) address bases; 2 bases cover the
     *  15 molecules of a unit, addresses AA..GG (Section 6.3). */
    size_t intraIndexLength() const { return 2; }

    /** Payload bases per strand. */
    size_t
    payloadBases() const
    {
        size_t overhead = 2 * primer_length + 1 + sparseIndexLength() +
                          versionBases() + intraIndexLength();
        fatalIf(overhead >= strand_length,
                "strand too short for the configured layout");
        return strand_length - overhead;
    }

    /** Payload bytes per molecule (column of the unit matrix). */
    size_t columnBytes() const { return payloadBases() / 4; }

    /** Total bytes of one encoding unit (data columns only). */
    size_t unitDataBytes() const { return columnBytes() * rs_k; }

    /** Number of addressable blocks (leaves). */
    uint64_t blockCount() const { return uint64_t{1} << (2 * tree_depth); }

    /** Validate internal consistency; throws FatalError on problems. */
    void
    validate() const
    {
        fatalIf(payloadBases() % 4 != 0,
                "payload bases must be a multiple of 4");
        fatalIf(block_data_bytes > unitDataBytes(),
                "block data (", block_data_bytes,
                "B) exceeds unit capacity (", unitDataBytes(), "B)");
        fatalIf(rs_k >= rs_n, "rs_k must be < rs_n");
        fatalIf(rs_n > 15, "GF(16) limits rs_n to 15");
    }
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_CONFIG_H
