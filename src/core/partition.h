/**
 * @file
 * Partition: the paper's central abstraction (Section 3.1).
 *
 * A partition is the storage space defined by one pair of main PCR
 * primers. It owns a PCR-navigable sparse index tree, encodes files
 * into blocks of molecules, produces update patches, and builds the
 * elongated primers that retrieve individual blocks or ranges.
 */

#ifndef DNASTORE_CORE_PARTITION_H
#define DNASTORE_CORE_PARTITION_H

#include <cstdint>
#include <vector>

#include "codec/scrambler.h"
#include "core/config.h"
#include "core/update.h"
#include "ecc/encoding_unit.h"
#include "index/range_cover.h"
#include "index/sparse_index.h"
#include "primer/elongation.h"
#include "sim/synthesis.h"

namespace dnastore {
class ThreadPool;
}

namespace dnastore::core {

/** Encode-path parallelism knobs. */
struct EncodeParams
{
    /** Worker threads for encodeFile's per-block unit construction
     *  and molecule design (0 = hardware concurrency). Every value
     *  produces byte-identical molecules in the same order: blocks
     *  fan out across the pool and are concatenated in block order,
     *  and per-block encoding is pure (scrambler keystreams and
     *  index-tree plans are recomputed per call from seeds). */
    size_t threads = 0;
};

class Partition
{
  public:
    /**
     * @param config  geometry and seeds (validated)
     * @param forward main forward primer (config.primer_length bases)
     * @param reverse main reverse primer
     * @param file_id provenance tag used by the simulator
     */
    Partition(PartitionConfig config, dna::Sequence forward,
              dna::Sequence reverse, uint32_t file_id);

    const PartitionConfig &config() const { return config_; }
    const dna::Sequence &forwardPrimer() const { return forward_; }
    const dna::Sequence &reversePrimer() const { return reverse_; }
    const index::SparseIndexTree &tree() const { return tree_; }
    uint32_t fileId() const { return file_id_; }

    /** Blocks needed to store @p data_size bytes. */
    uint64_t blocksFor(size_t data_size) const;

    /**
     * Encode a whole file: splits into block_data_bytes blocks
     * (zero-padding the tail), assigns block i to leaf i, and
     * returns all designed molecules in block order.
     *
     * Per-block encoding fans out over @p pool when given one (the
     * shared-pool path used by services and benches), else over a
     * local pool of params.threads workers clamped to the block
     * count. Molecules are byte-identical to the sequential path for
     * any thread count.
     */
    std::vector<sim::DesignedMolecule> encodeFile(
        const Bytes &data, const EncodeParams &params = {},
        ThreadPool *pool = nullptr) const;

    /**
     * Encode one block's payload as the given version slot (0 for
     * original data, 1..3 for update patches). The payload may be at
     * most block_data_bytes long; it is zero-padded to the unit size
     * and scrambled before the outer code is applied.
     */
    std::vector<sim::DesignedMolecule> encodeBlock(uint64_t block,
                                                   const Bytes &payload,
                                                   unsigned version) const;

    /** Encode an update record as a patch for @p block / @p version. */
    std::vector<sim::DesignedMolecule> encodePatch(
        uint64_t block, const UpdateRecord &record,
        unsigned version) const;

    /** Descramble and trim a decoded unit back to block bytes. */
    Bytes unscrambleUnit(const Bytes &unit, uint64_t block,
                         unsigned version) const;

    /** Descramble a unit but keep the full unit payload. */
    Bytes unscrambleUnitRaw(const Bytes &unit, uint64_t block,
                            unsigned version) const;

    /** The 20+1-base stem every elongated primer starts with. */
    const primer::ElongationBuilder &elongation() const
    {
        return elongation_;
    }

    /** Elongated primer selecting exactly one block (all versions). */
    dna::Sequence blockPrimer(uint64_t block) const;

    /** Elongated primers covering blocks [lo, hi] exactly. */
    std::vector<dna::Sequence> rangePrimers(uint64_t lo,
                                            uint64_t hi) const;

    /** The outer-code codec for this geometry. */
    const ecc::EncodingUnitCodec &unitCodec() const { return codec_; }

  private:
    PartitionConfig config_;
    dna::Sequence forward_;
    dna::Sequence reverse_;
    uint32_t file_id_;
    index::SparseIndexTree tree_;
    ecc::EncodingUnitCodec codec_;
    codec::Scrambler scrambler_;
    primer::ElongationBuilder elongation_;

    /** Scrambler stream id for a (block, version) unit. */
    uint64_t streamId(uint64_t block, unsigned version) const;
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_PARTITION_H
