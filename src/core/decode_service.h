/**
 * @file
 * DecodeService: asynchronous batch decoding over one shared pool,
 * with admission control and telemetry.
 *
 * Decoder::decodeAll is synchronous and spawns a fresh ThreadPool per
 * call; a device serving heavy traffic instead wants to enqueue work
 * (a batch of read sets, one per partition) and collect futures. The
 * service owns one long-lived ThreadPool and a FIFO submission queue:
 *
 *  - a batch's per-partition jobs are sharded across the pool and run
 *    concurrently, while each job's internal decode stages fork on
 *    the same pool (the nested fork-join the multi-job ThreadPool
 *    supports);
 *  - each job's result is exactly what a sequential decodeAll of that
 *    read set would produce (the per-stage index-addressed slots keep
 *    every decode byte-identical for any thread count), and the
 *    batch's promises are fulfilled in submission order;
 *  - an exception inside one partition's job surfaces through that
 *    job's future only — sibling futures in the batch still deliver.
 *
 * Admission control: max_queue_depth bounds the requests admitted but
 * not yet fulfilled. A submission that would exceed the bound either
 * blocks the submitter until space frees (OverflowPolicy::Block, the
 * default) or is shed (OverflowPolicy::Reject): every future of the
 * shed batch resolves immediately with DecodeStatus::Overloaded — a
 * typed outcome, never an exception thrown across threads, so remote
 * callers can retry or back off. A batch larger than the bound can
 * never be admitted and is rejected at the call site with FatalError.
 *
 * Telemetry: point DecodeServiceParams::metrics at a registry (which
 * must outlive the service) and the service records, per request,
 * queue latency (submit → job start) and decode latency into
 * fixed-bucket histograms, plus submitted/decoded/failed/rejected
 * counters and in-flight / pool-occupancy gauges. See README
 * "Storage frontend & telemetry" for the exact metric names.
 *
 * Shutdown drains: pending batches are decoded, not dropped, before
 * the dispatcher exits, so destroying the service never leaves a
 * broken promise. Submissions after shutdown are rejected with
 * FatalError; a submitter blocked on a full queue when shutdown()
 * lands is woken and also fails with FatalError.
 */

#ifndef DNASTORE_CORE_DECODE_SERVICE_H
#define DNASTORE_CORE_DECODE_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/decoder.h"
#include "telemetry/metrics.h"

namespace dnastore::core {

/** What happens to a submission that would overflow the queue. */
enum class OverflowPolicy
{
    /** Block the submitter until the queue has room. */
    Block,

    /** Shed the batch: futures resolve with DecodeStatus::Overloaded. */
    Reject,
};

/** Service-wide knobs. */
struct DecodeServiceParams
{
    /** Worker threads of the shared pool (0 = hardware
     *  concurrency). Partition jobs and their internal stages share
     *  these workers. */
    size_t threads = 0;

    /** Maximum requests admitted but not yet fulfilled (queued plus
     *  decoding); 0 = unbounded. One submitBatch() must fit whole:
     *  batches larger than this throw FatalError. */
    size_t max_queue_depth = 0;

    /** Applied when a submission would exceed max_queue_depth. */
    OverflowPolicy overflow = OverflowPolicy::Block;

    /** Optional metrics sink; not owned, must outlive the service.
     *  nullptr disables instrumentation. */
    telemetry::MetricsRegistry *metrics = nullptr;
};

/** One partition's unit of work within a batch. */
struct DecodeRequest
{
    /** Decoder bound to the partition the reads came from. Must stay
     *  alive until the request's future is ready; a decoder destroyed
     *  while the request is still queued is caught at dispatch and
     *  surfaces as FatalError through the future. */
    const Decoder *decoder = nullptr;

    std::vector<sim::Read> reads;
};

/** How a request left the service. */
enum class DecodeStatus
{
    Ok,

    /** Shed by OverflowPolicy::Reject before any decoding ran;
     *  units/stats are empty. */
    Overloaded,
};

/** What a request's future delivers. */
struct DecodeOutcome
{
    DecodeStatus status = DecodeStatus::Ok;
    std::map<uint64_t, BlockVersions> units;
    DecodeStats stats;

    bool operator==(const DecodeOutcome &) const = default;
};

/**
 * Thrown by synchronous read frontends (StorageFrontend, the routed
 * BlockDevice/PoolManager paths) when a Reject-policy service sheds
 * the request. Distinct from FatalError: the request was well-formed,
 * the service was merely saturated — retry or back off.
 */
class OverloadedError : public std::runtime_error
{
  public:
    explicit OverloadedError(const std::string &msg)
        : std::runtime_error("overloaded: " + msg)
    {}
};

class DecodeService
{
  public:
    explicit DecodeService(DecodeServiceParams params = {});

    /** Drains the queue (pending batches still decode) and joins. */
    ~DecodeService();

    DecodeService(const DecodeService &) = delete;
    DecodeService &operator=(const DecodeService &) = delete;

    /** Enqueue one read set. Throws FatalError after shutdown(). */
    std::future<DecodeOutcome> submit(const Decoder &decoder,
                                      std::vector<sim::Read> reads);

    /**
     * Enqueue a batch (typically one request per partition of a
     * device). The batch's jobs run concurrently; futures are
     * returned — and later fulfilled — in submission order. Throws
     * FatalError after shutdown() or when the batch alone exceeds
     * max_queue_depth; a Reject-policy overflow instead resolves
     * every returned future with DecodeStatus::Overloaded.
     */
    std::vector<std::future<DecodeOutcome>> submitBatch(
        std::vector<DecodeRequest> batch);

    /**
     * Stop accepting submissions, decode everything already queued,
     * and join the dispatcher. Idempotent; also run by the
     * destructor.
     */
    void shutdown();

    /** Worker count of the shared pool. */
    size_t threadCount() const { return pool_.threadCount(); }

    /** Batches accepted but not yet started (for backpressure). */
    size_t pendingBatches() const;

    /** Requests admitted but not yet fulfilled (queued + decoding). */
    size_t inFlightRequests() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Item
    {
        DecodeRequest request;
        std::promise<DecodeOutcome> promise;
        std::weak_ptr<const void> liveness;
        Clock::time_point enqueued;
    };

    struct Batch
    {
        std::vector<Item> items;
    };

    void dispatcherLoop();
    void runBatch(Batch &batch);

    DecodeServiceParams params_;
    ThreadPool pool_;
    mutable std::mutex mutex_;
    std::condition_variable queue_cv_;
    std::condition_variable space_cv_;
    std::deque<Batch> queue_;   // guarded by mutex_
    size_t in_flight_ = 0;      // guarded by mutex_
    bool accepting_ = true;     // guarded by mutex_
    std::once_flag joined_;
    std::thread dispatcher_;

    // Cached instruments (null when params_.metrics is null) so the
    // submit/dispatch hot paths never take the registry lock.
    telemetry::Counter *batches_submitted_ = nullptr;
    telemetry::Counter *requests_submitted_ = nullptr;
    telemetry::Counter *requests_rejected_ = nullptr;
    telemetry::Counter *requests_decoded_ = nullptr;
    telemetry::Counter *requests_failed_ = nullptr;
    telemetry::Gauge *queue_depth_ = nullptr;
    telemetry::Gauge *pool_threads_ = nullptr;
    telemetry::Gauge *pool_active_ = nullptr;
    telemetry::Histogram *queue_latency_us_ = nullptr;
    telemetry::Histogram *decode_latency_us_ = nullptr;
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_DECODE_SERVICE_H
