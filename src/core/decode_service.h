/**
 * @file
 * DecodeService: asynchronous batch decoding over one shared pool,
 * with per-tenant admission control, fair scheduling, and telemetry.
 *
 * Decoder::decodeAll is synchronous and spawns a fresh ThreadPool per
 * call; a device serving heavy traffic instead wants to enqueue work
 * (a batch of read sets, one per partition) and collect futures. The
 * service owns one long-lived ThreadPool and per-tenant submission
 * queues drained by a weighted-deficit-round-robin dispatcher:
 *
 *  - a batch's per-partition jobs are sharded across the pool and run
 *    concurrently, while each job's internal decode stages fork on
 *    the same pool (the nested fork-join the multi-job ThreadPool
 *    supports);
 *  - each job's result is exactly what a sequential decodeAll of that
 *    read set would produce (the per-stage index-addressed slots keep
 *    every decode byte-identical for any thread count), and the
 *    batch's promises are fulfilled in submission order;
 *  - an exception inside one partition's job surfaces through that
 *    job's future only — sibling futures in the batch still deliver.
 *
 * Tenancy: every request names a TenantId (kDefaultTenant when the
 * caller doesn't care — one submitBatch is one tenant's work, mixed
 * batches throw FatalError). Configured tenants
 * (DecodeServiceParams::tenants) carry a token-bucket admission
 * contract, a WDRR weight, and an optional per-tenant queue-depth
 * cap; see core/tenant.h for the exact bucket semantics. The
 * dispatcher serves queued tenants round-robin in activation order,
 * granting each `weight` requests' worth of deficit per round, so
 * under saturation dispatch counts match the weight ratio exactly
 * for any pool size, and no backlogged tenant can be starved: a
 * flooding tenant only ever delays others by one round. The default
 * tenant with no configured TenantParams preserves the untenanted
 * service behavior byte-for-byte (single queue, FIFO dispatch, no
 * bucket, no per-tenant instruments).
 *
 * Admission control: max_queue_depth bounds the requests admitted but
 * not yet fulfilled, service-wide; TenantParams::max_queue_depth adds
 * a per-tenant bound. A submission that would exceed either either
 * blocks the submitter until space frees (OverflowPolicy::Block, the
 * default) or is shed (OverflowPolicy::Reject): every future of the
 * shed batch resolves immediately with DecodeStatus::Overloaded — a
 * typed outcome, never an exception thrown across threads, so remote
 * callers can retry or back off. Blocked submitters are ticketed and
 * admitted strictly in the order they arrived (no barging, no
 * spurious-wakeup lottery). A batch that exceeds a tenant's token
 * bucket is shed with DecodeStatus::Throttled regardless of policy —
 * rate contracts are never converted into blocking. A batch larger
 * than an applicable bound can never be admitted and is rejected at
 * the call site with FatalError.
 *
 * Telemetry: point DecodeServiceParams::metrics at a registry (which
 * must outlive the service) and the service records, per request,
 * queue latency (submit → job start) and decode latency into
 * fixed-bucket histograms, plus submitted/decoded/failed/rejected/
 * throttled counters and in-flight / pool-occupancy gauges.
 * Explicitly configured tenants — and any non-default tenant seen at
 * runtime — additionally get per-tenant admitted/rejected/throttled/
 * dispatched counters and a queue-latency histogram under
 * `decode_service.tenant.<id>.*`. See README "Storage frontend &
 * telemetry" for the exact metric names.
 *
 * Determinism hooks (used by tests/support/scheduler_harness and
 * src/workload): `clock_us` replaces the time source — token-bucket
 * refills AND queue/decode latency stamps — with a virtual clock,
 * `on_dispatch` observes the exact dispatch order from the dispatcher
 * thread, and `start_paused` + resumeDispatch() let a test script an
 * entire contended backlog before a single batch runs. Under an
 * injected clock the latency histograms are byte-reproducible.
 *
 * Shutdown drains: pending batches are decoded, not dropped, before
 * the dispatcher exits (dispatch resumes if paused), so destroying
 * the service never leaves a broken promise. Submissions after
 * shutdown are rejected with FatalError; a submitter blocked on a
 * full queue when shutdown() lands is woken and also fails with
 * FatalError.
 */

#ifndef DNASTORE_CORE_DECODE_SERVICE_H
#define DNASTORE_CORE_DECODE_SERVICE_H

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag only; locks are common/sync.h
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/decoder.h"
#include "core/tenant.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dnastore::core {

/** What happens to a submission that would overflow the queue. */
enum class OverflowPolicy
{
    /** Block the submitter until the queue has room; waiters are
     *  admitted strictly in arrival order — one global line, so a
     *  head waiter parked on its own tenant's queue-depth cap delays
     *  later submitters of other tenants until its tenant drains.
     *  That coupling is the price of total admission order; tenants
     *  that need isolation from each other's backpressure should
     *  bound themselves with token buckets or Reject-policy caps,
     *  which never park anyone. */
    Block,

    /** Shed the batch: futures resolve with DecodeStatus::Overloaded. */
    Reject,
};

/** Service-wide knobs. */
struct DecodeServiceParams
{
    /** Worker threads of the shared pool (0 = hardware
     *  concurrency). Partition jobs and their internal stages share
     *  these workers. */
    size_t threads = 0;

    /** Maximum requests admitted but not yet fulfilled (queued plus
     *  decoding); 0 = unbounded. One submitBatch() must fit whole:
     *  batches larger than this throw FatalError. */
    size_t max_queue_depth = 0;

    /** Applied when a submission would exceed max_queue_depth or a
     *  tenant's own cap. */
    OverflowPolicy overflow = OverflowPolicy::Block;

    /** Per-tenant admission contracts and WDRR weights. Tenants not
     *  listed here get TenantParams{} (weight 1, no bucket, no cap);
     *  a listed weight of 0 throws FatalError at construction. */
    std::map<TenantId, TenantParams> tenants;

    /** Optional metrics sink; not owned, must outlive the service.
     *  nullptr disables instrumentation. */
    telemetry::MetricsRegistry *metrics = nullptr;

    /** Optional trace collector; not owned, must outlive the service.
     *  When set, every request whose DecodeRequest::trace is inactive
     *  gets its own "request"-rooted trace (admission, queue, decode
     *  stage spans); requests that arrive with an active context —
     *  e.g. under a StorageFrontend root span — join that trace
     *  instead. nullptr (the default) disables service-rooted
     *  tracing; span operations then cost one branch each. */
    telemetry::TraceCollector *tracer = nullptr;

    /** Bucket bounds for the queue/decode latency histograms
     *  (service-wide and per-tenant). Empty = defaultLatencyBoundsUs()
     *  (decade grid). Workload benches pass fineLatencyBoundsUs() so
     *  p99/p999 extraction has usable resolution. All services
     *  sharing one registry must agree (bounds are fixed per name). */
    std::vector<uint64_t> latency_bounds_us;

    /** Time source for the token buckets AND the queue/decode latency
     *  stamps, in microseconds. Leave empty for steady_clock; tests
     *  and the workload simulator inject a virtual clock so refill
     *  decisions — and latency histograms — are asserted exactly,
     *  not statistically. */
    std::function<uint64_t()> clock_us;

    /** Observer invoked from the dispatcher thread, in dispatch
     *  order, just before each batch runs: (tenant, request count).
     *  Must not call back into the service. */
    std::function<void(TenantId, size_t)> on_dispatch;

    /** Construct with dispatch paused (submissions queue up but
     *  nothing runs) until resumeDispatch(); shutdown() resumes
     *  automatically so draining always completes. */
    bool start_paused = false;
};

/** One partition's unit of work within a batch. */
struct DecodeRequest
{
    /** Decoder bound to the partition the reads came from. Must stay
     *  alive until the request's future is ready; a decoder destroyed
     *  while the request is still queued is caught at dispatch and
     *  surfaces as FatalError through the future. */
    const Decoder *decoder = nullptr;

    std::vector<sim::Read> reads;

    /** Tenant this request is billed to. All requests of one
     *  submitBatch must agree. */
    TenantId tenant = kDefaultTenant;

    /** Trace context this request runs under (e.g. a StorageFrontend
     *  root span's). Inactive by default — the service then roots a
     *  fresh trace itself when DecodeServiceParams::tracer is set. */
    telemetry::TraceContext trace;
};

/** How a request left the service. */
enum class DecodeStatus
{
    Ok,

    /** Shed by OverflowPolicy::Reject before any decoding ran;
     *  units/stats are empty. */
    Overloaded,

    /** Shed by the tenant's token bucket before any decoding ran;
     *  units/stats are empty. Applies under either overflow policy —
     *  a rate contract never blocks the submitter. */
    Throttled,

    /** A stream chunk that arrived after its session had already
     *  recovered every expected unit: the reads were counted as
     *  skipped, never processed. Stream chunks only. */
    Skipped,

    /** A stream finished with at least one expected unit still
     *  unrecovered; `units` holds everything that did decode and the
     *  missing units' futures resolve as Incomplete. Stream finish
     *  outcomes only. */
    Partial,
};

/** What a request's future delivers. */
struct DecodeOutcome
{
    DecodeStatus status = DecodeStatus::Ok;
    std::map<uint64_t, BlockVersions> units;
    DecodeStats stats;

    bool operator==(const DecodeOutcome &) const = default;
};

/**
 * Thrown by synchronous read frontends (StorageFrontend, the routed
 * BlockDevice/PoolManager paths) when a Reject-policy service sheds
 * the request. Distinct from FatalError: the request was well-formed,
 * the service was merely saturated — retry or back off.
 */
class OverloadedError : public std::runtime_error
{
  public:
    explicit OverloadedError(const std::string &msg)
        : std::runtime_error("overloaded: " + msg)
    {}
};

/**
 * Thrown by synchronous read frontends when the caller's tenant
 * token bucket sheds the request. Derives from OverloadedError so
 * existing back-off handlers keep working; catch ThrottledError
 * first to distinguish a rate-contract breach from plain saturation.
 */
class ThrottledError : public OverloadedError
{
  public:
    explicit ThrottledError(const std::string &msg)
        : OverloadedError("throttled: " + msg)
    {}
};

/** How one expected unit of a stream resolved. */
enum class UnitStatus
{
    /** The unit decoded; `payload` is byte-identical to what a
     *  one-shot decodeAll of the full read set would produce. */
    Decoded,

    /** The stream finished before the unit ever became decodable;
     *  `payload` is empty. */
    Incomplete,
};

/** What a per-unit completion future delivers. */
struct StreamUnitResult
{
    UnitStatus status = UnitStatus::Incomplete;
    uint64_t block = 0;
    unsigned version = 0;
    Bytes payload;

    bool operator==(const StreamUnitResult &) const = default;
};

/** Parameters of one streaming decode session. */
struct StreamParams
{
    /** Decoder bound to the partition the stream reads from. Must
     *  outlive the stream (same liveness contract as
     *  DecodeRequest::decoder). */
    const Decoder *decoder = nullptr;

    /** Tenant every chunk of this stream is billed to. */
    TenantId tenant = kDefaultTenant;

    /** Units whose recovery completes the session early; each gets a
     *  completion future (DecodeStream::unitFuture). Empty = deferred
     *  mode: no early attempts, finish() is byte-identical to a
     *  one-shot decodeAll (see StreamingParams::expected_units). */
    std::vector<UnitKey> expected_units;

    /** See StreamingParams::attempt_columns (0 = the margin-derived
     *  default; early accepts always keep reliability margin >= 3). */
    size_t attempt_columns = 0;

    /** Trace context the session's "stream" span joins (same
     *  contract as DecodeRequest::trace: inactive = the service
     *  roots its own trace when it has a tracer). */
    telemetry::TraceContext trace;
};

class DecodeService;

/**
 * Handle to one streaming decode session on a DecodeService. Obtained
 * from DecodeService::openStream; copyable (all copies share the
 * session). Chunks submitted through feed() pass the same admission
 * control as batch submissions (token bucket, queue depth, WDRR
 * dispatch — one chunk costs one request) and are processed strictly
 * in submission order, so the session sees the exact chunk sequence
 * the caller fed.
 *
 * The service must outlive every handle. finish() must be called to
 * resolve outstanding unit futures (dropping the last handle without
 * finishing breaks them with std::future_error instead).
 */
class DecodeStream
{
  public:
    /**
     * Submit one chunk. The future resolves after the chunk is
     * processed: Ok (with the session's running stats) when consumed,
     * Skipped when the session had already completed, Overloaded /
     * Throttled when admission shed the chunk before it reached the
     * session. Throws FatalError after finish() was called or after
     * service shutdown.
     */
    std::future<DecodeOutcome> feed(std::vector<sim::Read> reads);

    /**
     * Completion future for one expected unit: resolves Decoded the
     * moment the unit's RS decode succeeds (possibly many chunks
     * before the stream ends), or Incomplete when finish() runs
     * first. Each expected unit's future can be claimed once; an
     * unexpected (block, version) throws FatalError.
     */
    std::future<StreamUnitResult> unitFuture(uint64_t block,
                                             unsigned version);

    /**
     * Finalize the session: decodes everything still decodable from
     * the accumulated state, resolves every unclaimed expected-unit
     * future, and delivers the full result set — DecodeStatus::Ok
     * when every expected unit decoded (always Ok in deferred mode),
     * Partial otherwise. Single-shot; further feed()/finish() throws.
     */
    std::future<DecodeOutcome> finish();

    /** True once every expected unit has decoded — further feed()
     *  chunks will be skipped, so callers should stop reading. */
    bool complete() const;

    TenantId tenant() const;

  private:
    friend class DecodeService;

    struct State;
    explicit DecodeStream(std::shared_ptr<State> state);

    std::shared_ptr<State> state_;
};

class DecodeService
{
  public:
    explicit DecodeService(DecodeServiceParams params = {});

    /** Drains the queue (pending batches still decode) and joins. */
    ~DecodeService();

    DecodeService(const DecodeService &) = delete;
    DecodeService &operator=(const DecodeService &) = delete;

    /** Enqueue one read set for @p tenant. Throws FatalError after
     *  shutdown(). @p trace parents the request's spans (see
     *  DecodeRequest::trace). */
    std::future<DecodeOutcome> submit(
        const Decoder &decoder, std::vector<sim::Read> reads,
        TenantId tenant = kDefaultTenant,
        const telemetry::TraceContext &trace = {});

    /**
     * Enqueue a batch (typically one request per partition of a
     * device). The batch's jobs run concurrently; futures are
     * returned — and later fulfilled — in submission order. Throws
     * FatalError after shutdown(), when the batch mixes tenants, or
     * when the batch alone exceeds max_queue_depth or its tenant's
     * cap; a Reject-policy overflow instead resolves every returned
     * future with DecodeStatus::Overloaded, and a token-bucket breach
     * resolves them with DecodeStatus::Throttled.
     */
    std::vector<std::future<DecodeOutcome>> submitBatch(
        std::vector<DecodeRequest> batch);

    /**
     * Open a streaming decode session (see DecodeStream). The
     * session's chunks flow through this service's admission and
     * scheduling like any other submission of @p params.tenant.
     * Throws FatalError after shutdown() or without a decoder.
     */
    DecodeStream openStream(StreamParams params);

    /**
     * Stop accepting submissions, decode everything already queued
     * (resuming dispatch if paused), and join the dispatcher.
     * Idempotent; also run by the destructor.
     */
    void shutdown();

    /** Hold back dispatch: admitted batches queue but none start.
     *  Requests already dispatched finish normally. */
    void pauseDispatch();

    /** Resume dispatch after pauseDispatch()/start_paused. */
    void resumeDispatch();

    /** Worker count of the shared pool. */
    size_t threadCount() const { return pool_.threadCount(); }

    /** Batches accepted but not yet started (for backpressure). */
    size_t pendingBatches() const;

    /** Requests admitted but not yet fulfilled (queued + decoding). */
    size_t inFlightRequests() const;

    /** Block-policy submitters currently parked on a full queue, in
     *  ticket order (for backpressure and the ordering tests). */
    size_t blockedSubmitters() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Item
    {
        DecodeRequest request;
        std::promise<DecodeOutcome> promise;
        std::weak_ptr<const void> liveness;
        uint64_t enqueued_us = 0;  ///< nowUs() at submission
        uint64_t admitted_us = 0;  ///< nowUs() when admission granted

        // Request trace: root is the "request" span (joined from
        // request.trace or service-rooted), ctx parents the
        // admission/queue/decode children. Both inactive when
        // tracing is off.
        telemetry::SpanHandle root;
        telemetry::TraceContext ctx;
    };

    struct Batch
    {
        std::vector<Item> items;
        TenantId tenant = kDefaultTenant;
        // Per-tenant instruments resolved at admission (null when
        // uninstrumented) so dispatch never re-locks the registry.
        telemetry::Counter *dispatched = nullptr;
        telemetry::Histogram *queue_latency = nullptr;

        // Streaming chunk (items empty, costs one request): the
        // session it belongs to, the reads, and the chunk's own
        // completion promise. stream_finish marks the finalizing
        // pseudo-chunk enqueued by DecodeStream::finish().
        std::shared_ptr<DecodeStream::State> stream;
        std::vector<sim::Read> chunk;
        bool stream_finish = false;
        std::promise<DecodeOutcome> stream_promise;
        uint64_t enqueued_us = 0;  ///< nowUs() at submission
        uint64_t admitted_us = 0;  ///< nowUs() when admission granted

        /** WDRR credit left for the tenant's turn right after this
         *  batch was charged (captured in popNextBatchLocked; only
         *  read by the dispatch spans). */
        uint64_t dispatch_deficit = 0;

        // Stream-chunk trace: root is the "stream.chunk" (or
        // "stream.finish") span under the session's "stream" root,
        // ctx parents its admission/queue/decode children. Inactive
        // for item batches and when tracing is off.
        telemetry::SpanHandle root;
        telemetry::TraceContext ctx;
    };

    /** Per-tenant scheduler state; lives in tenants_, so every field
     *  is reached under mutex_ (the map carries the GUARDED_BY). */
    struct TenantState
    {
        TenantParams params;
        std::deque<Batch> queue;
        bool active = false;     ///< has an entry in active_
        uint64_t deficit = 0;    ///< WDRR credit, in requests
        bool charged = false;    ///< quantum granted for current turn
        double tokens = 0.0;     ///< token bucket level
        uint64_t last_refill_us = 0;
        bool bucket_primed = false;
        size_t in_flight = 0;    ///< admitted but unfulfilled requests

        // Cached per-tenant instruments (null when uninstrumented).
        telemetry::Counter *admitted = nullptr;
        telemetry::Counter *rejected = nullptr;
        telemetry::Counter *throttled = nullptr;
        telemetry::Counter *dispatched = nullptr;
        telemetry::Histogram *queue_latency = nullptr;
    };

    void dispatcherLoop() DNASTORE_EXCLUDES(mutex_);
    void runBatch(Batch &batch) DNASTORE_EXCLUDES(mutex_);

    /** Process one streaming chunk (or finish marker) inside the
     *  dispatcher; chunks of one session are strictly serialized. */
    void runStreamChunk(Batch &batch) DNASTORE_EXCLUDES(mutex_);

    /** Admission path shared by submitBatch and stream chunks: bill
     *  the token bucket, wait in the ticket line (Block policy) or
     *  shed, and enqueue on success. @p pending is consumed only on
     *  Admitted; a shed verdict leaves it with the caller, whose
     *  promises must still be resolved. */
    enum class Verdict
    {
        Admitted,
        Rejected,
        Throttled,
    };
    Verdict admitBatch(Batch &pending, size_t n,
                       telemetry::Counter **tenant_rejected,
                       telemetry::Counter **tenant_throttled,
                       bool *ticketed) DNASTORE_EXCLUDES(mutex_);

    /** Enqueue one chunk of @p stream through admission control. */
    std::future<DecodeOutcome> submitStreamChunk(
        std::shared_ptr<DecodeStream::State> stream,
        std::vector<sim::Read> reads, bool finish_marker)
        DNASTORE_EXCLUDES(mutex_);

    /** Build a fresh tenant's state: validate its contract and create
     *  its instruments. Takes only the registry lock — holding
     *  mutex_ (rank kServiceState) while it reaches for the registry
     *  (rank kTelemetryRegistry, higher) is the PR 6 inversion, and
     *  the rank checker aborts on it. */
    TenantState makeTenantState(TenantId tenant) const
        DNASTORE_EXCLUDES(mutex_);

    /** Find-or-create a tenant's state. On first sighting the
     *  instruments are created with @p lock dropped (the registry
     *  mutex is never taken under mutex_), then reacquired; rechecks
     *  accepting_ after the gap. The drop/relock goes through a
     *  parameter the analysis cannot follow, so the body is exempt;
     *  REQUIRES still binds every call site. */
    TenantState &tenantStateLocked(sync::MutexLock &lock,
                                   TenantId tenant)
        DNASTORE_REQUIRES(mutex_) DNASTORE_NO_THREAD_SAFETY_ANALYSIS;

    /** Refill a tenant's token bucket to the service clock. */
    void refillBucketLocked(TenantState &state)
        DNASTORE_REQUIRES(mutex_);

    /** Whether @p n more requests fit under both the global and the
     *  tenant's queue-depth bound. */
    bool fitsLocked(const TenantState &state, size_t n) const
        DNASTORE_REQUIRES(mutex_);

    /** Pop the next batch under weighted deficit round robin (at
     *  least one batch must be pending). */
    Batch popNextBatchLocked() DNASTORE_REQUIRES(mutex_);

    /** Token-bucket clock, microseconds. */
    uint64_t nowUs() const;

    DecodeServiceParams params_;
    ThreadPool pool_;
    mutable sync::Mutex mutex_{sync::Rank::kServiceState,
                               "decode_service"};
    sync::CondVar queue_cv_;
    sync::CondVar space_cv_;
    std::map<TenantId, TenantState> tenants_
        DNASTORE_GUARDED_BY(mutex_);
    /** WDRR round order. */
    std::deque<TenantId> active_ DNASTORE_GUARDED_BY(mutex_);
    size_t pending_batches_ DNASTORE_GUARDED_BY(mutex_) = 0;
    size_t in_flight_ DNASTORE_GUARDED_BY(mutex_) = 0;
    bool accepting_ DNASTORE_GUARDED_BY(mutex_) = true;
    bool paused_ DNASTORE_GUARDED_BY(mutex_) = false;
    uint64_t next_ticket_ DNASTORE_GUARDED_BY(mutex_) = 0;
    uint64_t serving_ticket_ DNASTORE_GUARDED_BY(mutex_) = 0;
    std::once_flag joined_;
    std::thread dispatcher_;

    // Cached instruments (null when params_.metrics is null) so the
    // submit/dispatch hot paths never take the registry lock.
    telemetry::Counter *batches_submitted_ = nullptr;
    telemetry::Counter *requests_submitted_ = nullptr;
    telemetry::Counter *requests_rejected_ = nullptr;
    telemetry::Counter *requests_throttled_ = nullptr;
    telemetry::Counter *requests_decoded_ = nullptr;
    telemetry::Counter *requests_failed_ = nullptr;
    telemetry::Gauge *queue_depth_ = nullptr;
    telemetry::Gauge *pool_threads_ = nullptr;
    telemetry::Gauge *pool_active_ = nullptr;
    telemetry::Histogram *queue_latency_us_ = nullptr;
    telemetry::Histogram *decode_latency_us_ = nullptr;
    telemetry::Histogram *rejected_latency_us_ = nullptr;

    // Streaming instruments (null when params_.metrics is null).
    telemetry::Counter *streams_opened_ = nullptr;
    telemetry::Counter *stream_chunks_ = nullptr;
    telemetry::Counter *stream_reads_consumed_ = nullptr;
    telemetry::Counter *stream_reads_skipped_ = nullptr;
    telemetry::Counter *stream_units_early_ = nullptr;
    telemetry::Counter *streams_completed_early_ = nullptr;
    telemetry::Histogram *stream_reads_at_completion_ = nullptr;

    friend class DecodeStream;
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_DECODE_SERVICE_H
