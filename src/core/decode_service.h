/**
 * @file
 * DecodeService: asynchronous batch decoding over one shared pool.
 *
 * Decoder::decodeAll is synchronous and spawns a fresh ThreadPool per
 * call; a device serving heavy traffic instead wants to enqueue work
 * (a batch of read sets, one per partition) and collect futures. The
 * service owns one long-lived ThreadPool and a FIFO submission queue:
 *
 *  - a batch's per-partition jobs are sharded across the pool and run
 *    concurrently, while each job's internal decode stages fork on
 *    the same pool (the nested fork-join the multi-job ThreadPool
 *    supports);
 *  - each job's result is exactly what a sequential decodeAll of that
 *    read set would produce (the per-stage index-addressed slots keep
 *    every decode byte-identical for any thread count), and the
 *    batch's promises are fulfilled in submission order;
 *  - an exception inside one partition's job surfaces through that
 *    job's future only — sibling futures in the batch still deliver.
 *
 * Shutdown drains: pending batches are decoded, not dropped, before
 * the dispatcher exits, so destroying the service never leaves a
 * broken promise. Submissions after shutdown are rejected with
 * FatalError.
 */

#ifndef DNASTORE_CORE_DECODE_SERVICE_H
#define DNASTORE_CORE_DECODE_SERVICE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/decoder.h"

namespace dnastore::core {

/** Service-wide knobs. */
struct DecodeServiceParams
{
    /** Worker threads of the shared pool (0 = hardware
     *  concurrency). Partition jobs and their internal stages share
     *  these workers. */
    size_t threads = 0;
};

/** One partition's unit of work within a batch. */
struct DecodeRequest
{
    /** Decoder bound to the partition the reads came from. Must stay
     *  alive until the request's future is ready. */
    const Decoder *decoder = nullptr;

    std::vector<sim::Read> reads;
};

/** What a request's future delivers. */
struct DecodeOutcome
{
    std::map<uint64_t, BlockVersions> units;
    DecodeStats stats;

    bool operator==(const DecodeOutcome &) const = default;
};

class DecodeService
{
  public:
    explicit DecodeService(DecodeServiceParams params = {});

    /** Drains the queue (pending batches still decode) and joins. */
    ~DecodeService();

    DecodeService(const DecodeService &) = delete;
    DecodeService &operator=(const DecodeService &) = delete;

    /** Enqueue one read set. Throws FatalError after shutdown(). */
    std::future<DecodeOutcome> submit(const Decoder &decoder,
                                      std::vector<sim::Read> reads);

    /**
     * Enqueue a batch (typically one request per partition of a
     * device). The batch's jobs run concurrently; futures are
     * returned — and later fulfilled — in submission order. Throws
     * FatalError after shutdown().
     */
    std::vector<std::future<DecodeOutcome>> submitBatch(
        std::vector<DecodeRequest> batch);

    /**
     * Stop accepting submissions, decode everything already queued,
     * and join the dispatcher. Idempotent; also run by the
     * destructor.
     */
    void shutdown();

    /** Worker count of the shared pool. */
    size_t threadCount() const { return pool_.threadCount(); }

    /** Batches accepted but not yet started (for backpressure). */
    size_t pendingBatches() const;

  private:
    struct Item
    {
        DecodeRequest request;
        std::promise<DecodeOutcome> promise;
    };

    struct Batch
    {
        std::vector<Item> items;
    };

    void dispatcherLoop();
    void runBatch(Batch &batch);

    ThreadPool pool_;
    mutable std::mutex mutex_;
    std::condition_variable queue_cv_;
    std::deque<Batch> queue_;  // guarded by mutex_
    bool accepting_ = true;    // guarded by mutex_
    std::once_flag joined_;
    std::thread dispatcher_;
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_DECODE_SERVICE_H
