/**
 * @file
 * Management of elongated primers (paper Section 7.7.4).
 *
 * A production system does not pre-synthesize all 4^L elongated
 * primers; it synthesizes them lazily on first use (by continuing
 * synthesis on top of the main primer) and keeps only the N most
 * useful ones per partition. Block popularity is Zipfian, so a small
 * cache amortizes the elongation cost across repeated requests.
 *
 * This module implements that policy: an LRU-with-frequency cache of
 * elongations with synthesis-cost accounting, so the Section 7.7.4
 * bench can show the amortization on a Zipfian trace.
 */

#ifndef DNASTORE_CORE_PRIMER_CACHE_H
#define DNASTORE_CORE_PRIMER_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "dna/sequence.h"

namespace dnastore::core {

/** Cache statistics. */
struct PrimerCacheStats
{
    size_t hits = 0;
    size_t misses = 0;           ///< elongations synthesized
    size_t evictions = 0;
    size_t bases_synthesized = 0; ///< index bases appended on misses

    double
    hitRate() const
    {
        size_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * LRU cache of elongated primers for one partition.
 */
class PrimerCache
{
  public:
    /**
     * @param capacity maximum elongations kept (paper: "keep up to N
     *        most frequently requested elongations per partition")
     */
    explicit PrimerCache(size_t capacity);

    /**
     * Request the elongated primer for @p block. On a miss the
     * elongation is "synthesized" (cost: the index bases appended on
     * top of the main primer stem) and cached.
     *
     * @param block          block id (cache key)
     * @param physical_index the sparse index of the block; only its
     *                       length is charged on a miss
     * @return true on a cache hit
     */
    bool request(uint64_t block, const dna::Sequence &physical_index);

    /** True if the block's elongation is currently cached. */
    bool contains(uint64_t block) const;

    size_t size() const { return entries_.size(); }
    size_t capacity() const { return capacity_; }
    const PrimerCacheStats &stats() const { return stats_; }

  private:
    size_t capacity_;
    PrimerCacheStats stats_;

    /** LRU list, most recent at the front. */
    std::list<uint64_t> order_;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator>
        entries_;
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_PRIMER_CACHE_H
