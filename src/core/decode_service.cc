#include "core/decode_service.h"

#include "common/error.h"

namespace dnastore::core {

namespace {

uint64_t
elapsedUs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        to - from);
    return us.count() < 0 ? 0 : static_cast<uint64_t>(us.count());
}

} // namespace

DecodeService::DecodeService(DecodeServiceParams params)
    : params_(params), pool_(params.threads)
{
    if (params_.metrics) {
        telemetry::MetricsRegistry &registry = *params_.metrics;
        batches_submitted_ =
            &registry.counter("decode_service.batches_submitted");
        requests_submitted_ =
            &registry.counter("decode_service.requests_submitted");
        requests_rejected_ =
            &registry.counter("decode_service.requests_rejected");
        requests_decoded_ =
            &registry.counter("decode_service.requests_decoded");
        requests_failed_ =
            &registry.counter("decode_service.requests_failed");
        queue_depth_ = &registry.gauge("decode_service.queue_depth");
        pool_threads_ = &registry.gauge("decode_service.pool_threads");
        pool_active_ =
            &registry.gauge("decode_service.pool_active_threads");
        queue_latency_us_ =
            &registry.histogram("decode_service.queue_latency_us");
        decode_latency_us_ =
            &registry.histogram("decode_service.decode_latency_us");
        pool_threads_->set(
            static_cast<int64_t>(pool_.threadCount()));
    }
    // Start the dispatcher only once every member it reads exists.
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

DecodeService::~DecodeService()
{
    shutdown();
}

void
DecodeService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        accepting_ = false;
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
    std::call_once(joined_, [this] { dispatcher_.join(); });
}

std::future<DecodeOutcome>
DecodeService::submit(const Decoder &decoder,
                      std::vector<sim::Read> reads)
{
    std::vector<DecodeRequest> batch(1);
    batch[0].decoder = &decoder;
    batch[0].reads = std::move(reads);
    return std::move(submitBatch(std::move(batch))[0]);
}

std::vector<std::future<DecodeOutcome>>
DecodeService::submitBatch(std::vector<DecodeRequest> batch)
{
    const size_t n = batch.size();
    Batch pending;
    pending.items.resize(n);
    std::vector<std::future<DecodeOutcome>> futures;
    futures.reserve(n);
    Clock::time_point now = Clock::now();
    for (size_t i = 0; i < n; ++i) {
        if (batch[i].decoder)
            pending.items[i].liveness = batch[i].decoder->livenessToken();
        pending.items[i].request = std::move(batch[i]);
        pending.items[i].enqueued = now;
        futures.push_back(pending.items[i].promise.get_future());
    }

    bool rejected = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        fatalIf(!accepting_,
                "DecodeService: submission after shutdown");
        if (n == 0)
            return futures;
        if (params_.max_queue_depth > 0) {
            fatalIf(n > params_.max_queue_depth,
                    "DecodeService: batch of ", n,
                    " requests exceeds max_queue_depth ",
                    params_.max_queue_depth);
            if (in_flight_ + n > params_.max_queue_depth) {
                if (params_.overflow == OverflowPolicy::Reject) {
                    rejected = true;
                } else {
                    space_cv_.wait(lock, [&] {
                        return !accepting_ ||
                               in_flight_ + n <=
                                   params_.max_queue_depth;
                    });
                    fatalIf(!accepting_,
                            "DecodeService: shut down while a "
                            "submission was blocked on a full queue");
                }
            }
        }
        if (!rejected) {
            in_flight_ += n;
            if (queue_depth_)
                queue_depth_->set(static_cast<int64_t>(in_flight_));
            queue_.push_back(std::move(pending));
        }
    }

    if (rejected) {
        // Shed: resolve every future with a typed Overloaded outcome
        // rather than throwing across threads. No decoding ran.
        if (requests_rejected_)
            requests_rejected_->increment(n);
        for (Item &item : pending.items) {
            DecodeOutcome outcome;
            outcome.status = DecodeStatus::Overloaded;
            item.promise.set_value(std::move(outcome));
        }
        return futures;
    }

    queue_cv_.notify_one();
    if (batches_submitted_)
        batches_submitted_->increment();
    if (requests_submitted_)
        requests_submitted_->increment(n);
    return futures;
}

size_t
DecodeService::pendingBatches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

size_t
DecodeService::inFlightRequests() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_;
}

void
DecodeService::dispatcherLoop()
{
    for (;;) {
        Batch batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queue_cv_.wait(lock, [&] {
                return !accepting_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // shut down and fully drained
            batch = std::move(queue_.front());
            queue_.pop_front();
        }
        runBatch(batch);
    }
}

void
DecodeService::runBatch(Batch &batch)
{
    const size_t n = batch.items.size();
    std::vector<DecodeOutcome> outcomes(n);
    std::vector<std::exception_ptr> errors(n);

    // Shard the batch's partition jobs across the pool. Each job's
    // internal stages fork on the same pool (nested fork-join), and
    // each job catches its own failure so one bad request cannot
    // abandon its siblings' iterations or poison their promises.
    pool_.parallelFor(n, [&](size_t i) {
        Item &item = batch.items[i];
        Clock::time_point start = Clock::now();
        if (queue_latency_us_)
            queue_latency_us_->observe(
                elapsedUs(item.enqueued, start));
        if (pool_active_)
            pool_active_->set(
                static_cast<int64_t>(pool_.activeThreads()));
        try {
            fatalIf(item.request.decoder == nullptr,
                    "DecodeService: request has no decoder");
            fatalIf(item.liveness.expired(),
                    "DecodeService: Decoder destroyed before its "
                    "request ran");
            outcomes[i].units = item.request.decoder->decodeAll(
                item.request.reads, &outcomes[i].stats, pool_);
            if (decode_latency_us_)
                decode_latency_us_->observe(
                    elapsedUs(start, Clock::now()));
        } catch (...) {
            errors[i] = std::current_exception();
        }
    });
    // Re-sample after the batch so an idle service doesn't keep
    // reporting the last mid-decode occupancy forever.
    if (pool_active_)
        pool_active_->set(static_cast<int64_t>(pool_.activeThreads()));

    // Release queue space before fulfilling the promises: a caller
    // woken by future.get() must observe the freed capacity.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        in_flight_ -= n;
        if (queue_depth_)
            queue_depth_->set(static_cast<int64_t>(in_flight_));
    }
    space_cv_.notify_all();

    // Count outcomes before any promise fires so a caller returning
    // from future.get() already observes the updated counters.
    size_t failed = 0;
    for (size_t i = 0; i < n; ++i)
        failed += errors[i] ? 1 : 0;
    if (requests_failed_ && failed > 0)
        requests_failed_->increment(failed);
    if (requests_decoded_ && failed < n)
        requests_decoded_->increment(n - failed);

    // Reduce in submission order: promises fire exactly in the order
    // the requests were handed in.
    for (size_t i = 0; i < n; ++i) {
        if (errors[i])
            batch.items[i].promise.set_exception(errors[i]);
        else
            batch.items[i].promise.set_value(std::move(outcomes[i]));
    }
}

} // namespace dnastore::core
