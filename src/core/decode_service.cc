#include "core/decode_service.h"

#include "common/error.h"

namespace dnastore::core {

DecodeService::DecodeService(DecodeServiceParams params)
    : pool_(params.threads),
      dispatcher_([this] { dispatcherLoop(); })
{}

DecodeService::~DecodeService()
{
    shutdown();
}

void
DecodeService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        accepting_ = false;
    }
    queue_cv_.notify_all();
    std::call_once(joined_, [this] { dispatcher_.join(); });
}

std::future<DecodeOutcome>
DecodeService::submit(const Decoder &decoder,
                      std::vector<sim::Read> reads)
{
    std::vector<DecodeRequest> batch(1);
    batch[0].decoder = &decoder;
    batch[0].reads = std::move(reads);
    return std::move(submitBatch(std::move(batch))[0]);
}

std::vector<std::future<DecodeOutcome>>
DecodeService::submitBatch(std::vector<DecodeRequest> batch)
{
    Batch pending;
    pending.items.resize(batch.size());
    std::vector<std::future<DecodeOutcome>> futures;
    futures.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        pending.items[i].request = std::move(batch[i]);
        futures.push_back(pending.items[i].promise.get_future());
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fatalIf(!accepting_,
                "DecodeService: submission after shutdown");
        if (!pending.items.empty())
            queue_.push_back(std::move(pending));
    }
    queue_cv_.notify_one();
    return futures;
}

size_t
DecodeService::pendingBatches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
DecodeService::dispatcherLoop()
{
    for (;;) {
        Batch batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queue_cv_.wait(lock, [&] {
                return !accepting_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // shut down and fully drained
            batch = std::move(queue_.front());
            queue_.pop_front();
        }
        runBatch(batch);
    }
}

void
DecodeService::runBatch(Batch &batch)
{
    const size_t n = batch.items.size();
    std::vector<DecodeOutcome> outcomes(n);
    std::vector<std::exception_ptr> errors(n);

    // Shard the batch's partition jobs across the pool. Each job's
    // internal stages fork on the same pool (nested fork-join), and
    // each job catches its own failure so one bad request cannot
    // abandon its siblings' iterations or poison their promises.
    pool_.parallelFor(n, [&](size_t i) {
        Item &item = batch.items[i];
        try {
            fatalIf(item.request.decoder == nullptr,
                    "DecodeService: request has no decoder");
            outcomes[i].units = item.request.decoder->decodeAll(
                item.request.reads, &outcomes[i].stats, pool_);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    });

    // Reduce in submission order: promises fire exactly in the order
    // the requests were handed in.
    for (size_t i = 0; i < n; ++i) {
        if (errors[i])
            batch.items[i].promise.set_exception(errors[i]);
        else
            batch.items[i].promise.set_value(std::move(outcomes[i]));
    }
}

} // namespace dnastore::core
