#include "core/decode_service.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <string>

#include "common/error.h"

namespace dnastore::core {

namespace {

/** Saturating microsecond delta: an injected virtual clock may stamp
 *  an arrival "after" dispatch reads it (the simulator advances time
 *  between the two), and a negative latency must read as zero, not
 *  wrap. */
uint64_t
elapsedUs(uint64_t from_us, uint64_t to_us)
{
    return to_us > from_us ? to_us - from_us : 0;
}

/** Slack for the double-valued token ledger so an exact refill (1.0
 *  token after exactly one second at rate 1) is never lost to the
 *  last ulp of the accumulation. */
constexpr double kTokenEpsilon = 1e-9;

} // namespace

/**
 * Shared session state behind every copy of a DecodeStream handle.
 * The StreamingDecoder itself is touched only from the dispatcher
 * thread (chunks of a session are strictly serialized through the
 * queue); the promise/future maps are shared with caller threads and
 * guarded by `m`.
 */
struct DecodeStream::State
{
    DecodeService *service = nullptr;
    std::weak_ptr<const void> liveness;
    TenantId tenant = kDefaultTenant;

    /** Dispatcher-thread only after openStream(). */
    std::unique_ptr<StreamingDecoder> session;

    /** Set once the reads-at-completion histogram was fed, so a
     *  stream observes exactly one sample (dispatcher-thread only). */
    bool completion_observed = false;

    /** Guards the promise/future maps shared between caller threads
     *  and the dispatcher. Ranks below the service mutex: a chunk's
     *  admission never nests the two (feed() drops m before
     *  submitting), but if they ever must nest, service-then-stream
     *  is the direction the dispatcher already implies. */
    sync::Mutex m{sync::Rank::kStreamState, "decode_stream"};
    std::map<UnitKey, std::promise<StreamUnitResult>> unit_promises
        DNASTORE_GUARDED_BY(m);
    std::map<UnitKey, std::future<StreamUnitResult>> unit_futures
        DNASTORE_GUARDED_BY(m);
    bool finish_submitted DNASTORE_GUARDED_BY(m) = false;

    std::atomic<bool> complete{false};

    /** Session-level "stream" span (root of the session's trace, or
     *  a child of the caller's context). Written in openStream, read
     *  by chunk submissions (trace_ctx only), ended by the dispatcher
     *  when the finish marker completes — those phases are ordered
     *  through the service queue, so no extra guard is needed. The
     *  SpanHandle destructor is the safety net for sessions dropped
     *  without finish(). */
    telemetry::SpanHandle trace_root;
    telemetry::TraceContext trace_ctx;

    /** StreamingParams::on_unit target: resolves the unit's
     *  completion future the moment it decodes. */
    void
    deliverUnit(uint64_t block, unsigned version, const Bytes &payload)
    {
        sync::MutexLock lock(m);
        auto it = unit_promises.find({block, version});
        if (it == unit_promises.end())
            return;  // unexpected unit, or already delivered
        StreamUnitResult result;
        result.status = UnitStatus::Decoded;
        result.block = block;
        result.version = version;
        result.payload = payload;
        it->second.set_value(std::move(result));
        unit_promises.erase(it);
    }
};

DecodeStream::DecodeStream(std::shared_ptr<State> state)
    : state_(std::move(state))
{}

std::future<DecodeOutcome>
DecodeStream::feed(std::vector<sim::Read> reads)
{
    {
        sync::MutexLock lock(state_->m);
        fatalIf(state_->finish_submitted,
                "DecodeStream: feed after finish()");
    }
    return state_->service->submitStreamChunk(state_, std::move(reads),
                                              false);
}

std::future<StreamUnitResult>
DecodeStream::unitFuture(uint64_t block, unsigned version)
{
    sync::MutexLock lock(state_->m);
    auto it = state_->unit_futures.find({block, version});
    fatalIf(it == state_->unit_futures.end(),
            "DecodeStream: unit (", block, ", ", version,
            ") is not an expected unit of this stream, or its future "
            "was already claimed");
    std::future<StreamUnitResult> future = std::move(it->second);
    state_->unit_futures.erase(it);
    return future;
}

std::future<DecodeOutcome>
DecodeStream::finish()
{
    {
        sync::MutexLock lock(state_->m);
        fatalIf(state_->finish_submitted,
                "DecodeStream: finish() called twice");
        state_->finish_submitted = true;
    }
    return state_->service->submitStreamChunk(state_, {}, true);
}

bool
DecodeStream::complete() const
{
    return state_->complete.load(std::memory_order_acquire);
}

TenantId
DecodeStream::tenant() const
{
    return state_->tenant;
}

DecodeService::DecodeService(DecodeServiceParams params)
    : params_(std::move(params)), pool_(params_.threads),
      paused_(params_.start_paused)
{
    if (params_.metrics) {
        telemetry::MetricsRegistry &registry = *params_.metrics;
        batches_submitted_ =
            &registry.counter("decode_service.batches_submitted");
        requests_submitted_ =
            &registry.counter("decode_service.requests_submitted");
        requests_rejected_ =
            &registry.counter("decode_service.requests_rejected");
        requests_throttled_ =
            &registry.counter("decode_service.requests_throttled");
        requests_decoded_ =
            &registry.counter("decode_service.requests_decoded");
        requests_failed_ =
            &registry.counter("decode_service.requests_failed");
        queue_depth_ = &registry.gauge("decode_service.queue_depth");
        pool_threads_ = &registry.gauge("decode_service.pool_threads");
        pool_active_ =
            &registry.gauge("decode_service.pool_active_threads");
        const std::vector<uint64_t> latency_bounds =
            params_.latency_bounds_us.empty()
                ? telemetry::defaultLatencyBoundsUs()
                : params_.latency_bounds_us;
        queue_latency_us_ =
            &registry.histogram("decode_service.queue_latency_us",
                                latency_bounds);
        decode_latency_us_ =
            &registry.histogram("decode_service.decode_latency_us",
                                latency_bounds);
        rejected_latency_us_ =
            &registry.histogram("decode_service.rejected_latency_us",
                                latency_bounds);
        streams_opened_ =
            &registry.counter("decode_service.streams_opened");
        stream_chunks_ =
            &registry.counter("decode_service.stream_chunks");
        stream_reads_consumed_ =
            &registry.counter("decode_service.stream_reads_consumed");
        stream_reads_skipped_ =
            &registry.counter("decode_service.stream_reads_skipped");
        stream_units_early_ =
            &registry.counter("decode_service.stream_units_early");
        streams_completed_early_ = &registry.counter(
            "decode_service.streams_completed_early");
        stream_reads_at_completion_ = &registry.histogram(
            "decode_service.stream_reads_at_completion",
            telemetry::defaultReadCountBounds());
        pool_threads_->set(
            static_cast<int64_t>(pool_.threadCount()));
    }
    // Validate every configured tenant (and create its instruments)
    // up front so a bad contract throws here, not mid-traffic. The
    // registry work happens before mutex_ is ever taken — the rank
    // order (registry above service) allows no other arrangement.
    std::map<TenantId, TenantState> initial;
    for (const auto &[tenant, tenant_params] : params_.tenants) {
        (void)tenant_params;
        initial.emplace(tenant, makeTenantState(tenant));
    }
    {
        sync::MutexLock lock(mutex_);
        tenants_ = std::move(initial);
    }
    // Start the dispatcher only once every member it reads exists.
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

DecodeService::~DecodeService()
{
    shutdown();
}

void
DecodeService::shutdown()
{
    {
        sync::MutexLock lock(mutex_);
        accepting_ = false;
        paused_ = false;  // draining must not hang on a paused valve
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
    std::call_once(joined_, [this] { dispatcher_.join(); });
}

void
DecodeService::pauseDispatch()
{
    sync::MutexLock lock(mutex_);
    paused_ = true;
}

void
DecodeService::resumeDispatch()
{
    {
        sync::MutexLock lock(mutex_);
        paused_ = false;
    }
    queue_cv_.notify_all();
}

uint64_t
DecodeService::nowUs() const
{
    if (params_.clock_us)
        return params_.clock_us();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now().time_since_epoch())
            .count());
}

DecodeService::TenantState
DecodeService::makeTenantState(TenantId tenant) const
{
    TenantState state;
    auto configured = params_.tenants.find(tenant);
    if (configured != params_.tenants.end())
        state.params = configured->second;
    fatalIf(state.params.weight == 0, "DecodeService: tenant ", tenant,
            " has weight 0; WDRR weights must be >= 1");
    fatalIf(state.params.rate < 0.0 || state.params.burst < 0.0,
            "DecodeService: tenant ", tenant,
            " has a negative token-bucket rate or burst");

    // Per-tenant instruments only for tenants the caller opted into —
    // explicitly configured or non-default — so a default-tenant-only
    // run exports exactly the pre-tenant metric set.
    if (params_.metrics &&
        (configured != params_.tenants.end() ||
         tenant != kDefaultTenant)) {
        telemetry::MetricsRegistry &registry = *params_.metrics;
        const std::string prefix =
            "decode_service.tenant." + std::to_string(tenant) + ".";
        state.admitted =
            &registry.counter(prefix + "requests_admitted");
        state.rejected =
            &registry.counter(prefix + "requests_rejected");
        state.throttled =
            &registry.counter(prefix + "requests_throttled");
        state.dispatched =
            &registry.counter(prefix + "batches_dispatched");
        state.queue_latency = &registry.histogram(
            prefix + "queue_latency_us",
            params_.latency_bounds_us.empty()
                ? telemetry::defaultLatencyBoundsUs()
                : params_.latency_bounds_us);
    }
    return state;
}

// The body drops and reacquires the caller's lock through a
// parameter, which the thread-safety analysis cannot follow; the
// REQUIRES(mutex_) contract is still enforced at every call site,
// and the rank checker covers the registry acquisition in the gap.
DecodeService::TenantState &
DecodeService::tenantStateLocked(sync::MutexLock &lock,
                                 TenantId tenant)
{
    auto it = tenants_.find(tenant);
    if (it != tenants_.end())
        return it->second;

    // First sighting of a runtime tenant. Building its state creates
    // instruments in the registry, which takes the registry mutex —
    // drop the service lock for that so the two mutexes are never
    // held together and a concurrent snapshot()/exportText() never
    // contends with the admission path.
    lock.unlock();
    TenantState fresh = makeTenantState(tenant);
    lock.lock();
    fatalIf(!accepting_, "DecodeService: submission after shutdown");
    // A racing submitter may have inserted the tenant during the gap;
    // emplace keeps the first insertion and the duplicate instruments
    // resolve to the same registry objects by name.
    return tenants_.emplace(tenant, std::move(fresh)).first->second;
}

void
DecodeService::refillBucketLocked(TenantState &state)
{
    const uint64_t now_us = nowUs();
    if (!state.bucket_primed) {
        // The bucket starts full: a fresh tenant may burst.
        state.tokens = state.params.burst;
        state.bucket_primed = true;
    } else if (now_us > state.last_refill_us) {
        const double elapsed_us =
            static_cast<double>(now_us - state.last_refill_us);
        state.tokens =
            std::min(state.params.burst,
                     state.tokens +
                         elapsed_us * state.params.rate / 1e6);
    }
    state.last_refill_us = now_us;
}

std::future<DecodeOutcome>
DecodeService::submit(const Decoder &decoder,
                      std::vector<sim::Read> reads, TenantId tenant,
                      const telemetry::TraceContext &trace)
{
    std::vector<DecodeRequest> batch(1);
    batch[0].decoder = &decoder;
    batch[0].reads = std::move(reads);
    batch[0].tenant = tenant;
    batch[0].trace = trace;
    return std::move(submitBatch(std::move(batch))[0]);
}

bool
DecodeService::fitsLocked(const TenantState &state, size_t n) const
{
    if (params_.max_queue_depth > 0 &&
        in_flight_ + n > params_.max_queue_depth)
        return false;
    const size_t tenant_cap = state.params.max_queue_depth;
    if (tenant_cap > 0 && state.in_flight + n > tenant_cap)
        return false;
    return true;
}

DecodeService::Verdict
DecodeService::admitBatch(Batch &pending, size_t n,
                          telemetry::Counter **tenant_rejected,
                          telemetry::Counter **tenant_throttled,
                          bool *ticketed)
{
    sync::MutexLock lock(mutex_);
    fatalIf(!accepting_, "DecodeService: submission after shutdown");
    const TenantId tenant = pending.tenant;
    // Queue depth as the request found it — before this batch adds
    // its own weight — for the admission span.
    const uint64_t entry_depth = in_flight_;
    uint64_t ticket_wait_us = 0;
    TenantState &state = tenantStateLocked(lock, tenant);
    *tenant_rejected = state.rejected;
    *tenant_throttled = state.throttled;
    pending.dispatched = state.dispatched;
    pending.queue_latency = state.queue_latency;

    // A finish marker is a control message, not work: it carries no
    // reads and must always reach the session (its unit futures
    // resolve there), so it bypasses the rate and capacity checks.
    const bool exempt = pending.stream && pending.stream_finish;

    if (!exempt && params_.max_queue_depth > 0) {
        fatalIf(n > params_.max_queue_depth,
                "DecodeService: batch of ", n,
                " requests exceeds max_queue_depth ",
                params_.max_queue_depth);
    }
    const size_t tenant_cap = state.params.max_queue_depth;
    if (!exempt && tenant_cap > 0) {
        fatalIf(n > tenant_cap, "DecodeService: batch of ", n,
                " requests exceeds tenant ", tenant,
                "'s queue-depth cap of ", tenant_cap);
    }

    Verdict verdict = Verdict::Admitted;

    // Token bucket first: the rate contract is independent of how
    // full the queue happens to be, and never blocks.
    if (!exempt && state.params.bucketEnabled()) {
        refillBucketLocked(state);
        if (state.tokens + kTokenEpsilon < static_cast<double>(n)) {
            verdict = Verdict::Throttled;
        } else {
            state.tokens -= static_cast<double>(n);
        }
    }

    if (!exempt && verdict == Verdict::Admitted) {
        // Join the ticket line when the queue is full OR other
        // submitters are already parked — barging past them would
        // undo the FIFO admission order.
        if (!fitsLocked(state, n) ||
            next_ticket_ != serving_ticket_) {
            if (params_.overflow == OverflowPolicy::Reject) {
                if (!fitsLocked(state, n))
                    verdict = Verdict::Rejected;
                // A Reject-policy service never parks submitters,
                // so the line is empty and a fitting batch admits.
            } else {
                const uint64_t ticket = next_ticket_++;
                *ticketed = true;
                const uint64_t wait_start_us = nowUs();
                while (accepting_ &&
                       !(ticket == serving_ticket_ &&
                         fitsLocked(state, n)))
                    space_cv_.wait(lock);
                ticket_wait_us = elapsedUs(wait_start_us, nowUs());
                ++serving_ticket_;
                if (!accepting_) {
                    // Successors wake via accepting_ and fail too.
                    space_cv_.notify_all();
                    fatal("DecodeService: shut down while a "
                          "submission was blocked on a full queue");
                }
            }
        }
    }
    if (verdict == Verdict::Admitted) {
        // Emit the admission spans before the batch is surrendered to
        // the queue (a dispatcher may take it the moment the lock
        // drops). Span pushes rank kTraceBuffer, far below mutex_, so
        // recording here is rank-legal; when tracing is off each
        // iteration is one branch.
        const uint64_t admitted_us = nowUs();
        for (Item &item : pending.items) {
            item.admitted_us = admitted_us;
            if (!item.ctx.active())
                continue;
            telemetry::SpanHandle span =
                item.ctx.spanAt("admission", item.enqueued_us);
            span.attr("outcome", "admitted");
            span.attrU64("queue_depth_entry", entry_depth);
            span.attrU64("ticket_wait_us", ticket_wait_us);
            span.endAt(admitted_us);
        }
        pending.admitted_us = admitted_us;
        if (pending.stream && pending.ctx.active()) {
            telemetry::SpanHandle span =
                pending.ctx.spanAt("admission", pending.enqueued_us);
            span.attr("outcome", "admitted");
            span.attrU64("queue_depth_entry", entry_depth);
            span.attrU64("ticket_wait_us", ticket_wait_us);
            span.endAt(admitted_us);
        }
        in_flight_ += n;
        state.in_flight += n;
        if (queue_depth_)
            queue_depth_->set(static_cast<int64_t>(in_flight_));
        state.queue.push_back(std::move(pending));
        ++pending_batches_;
        if (!state.active) {
            state.active = true;
            active_.push_back(tenant);
        }
        if (state.admitted)
            state.admitted->increment(n);
    }
    return verdict;
}

std::vector<std::future<DecodeOutcome>>
DecodeService::submitBatch(std::vector<DecodeRequest> batch)
{
    const size_t n = batch.size();
    Batch pending;
    pending.items.resize(n);
    std::vector<std::future<DecodeOutcome>> futures;
    futures.reserve(n);
    const uint64_t now_us = nowUs();
    const TenantId tenant = n > 0 ? batch[0].tenant : kDefaultTenant;
    pending.tenant = tenant;
    for (size_t i = 0; i < n; ++i) {
        fatalIf(batch[i].tenant != tenant,
                "DecodeService: batch mixes tenants ", tenant, " and ",
                batch[i].tenant,
                "; one submitBatch is one tenant's work");
        if (batch[i].decoder)
            pending.items[i].liveness = batch[i].decoder->livenessToken();
        pending.items[i].request = std::move(batch[i]);
        pending.items[i].enqueued_us = now_us;
        futures.push_back(pending.items[i].promise.get_future());

        // Root the request's trace: join the caller's context when it
        // has one (e.g. a StorageFrontend root span), otherwise start
        // a fresh head-sampled trace. Both inactive => one branch.
        Item &item = pending.items[i];
        if (item.request.trace.active())
            item.root = item.request.trace.spanAt("request", now_us);
        else if (params_.tracer)
            item.root = params_.tracer->startTrace("request", tenant);
        if (item.root.active()) {
            item.root.attrU64("tenant", tenant);
            item.ctx = item.root.context();
        }
    }
    if (n == 0) {
        sync::MutexLock lock(mutex_);
        fatalIf(!accepting_,
                "DecodeService: submission after shutdown");
        return futures;
    }

    telemetry::Counter *tenant_rejected = nullptr;
    telemetry::Counter *tenant_throttled = nullptr;
    bool ticketed = false;
    Verdict verdict = admitBatch(pending, n, &tenant_rejected,
                                 &tenant_throttled, &ticketed);

    if (verdict != Verdict::Admitted) {
        // Shed: resolve every future with a typed outcome rather
        // than throwing across threads. No decoding ran.
        const bool throttled = verdict == Verdict::Throttled;
        telemetry::Counter *global =
            throttled ? requests_throttled_ : requests_rejected_;
        telemetry::Counter *per_tenant =
            throttled ? tenant_throttled : tenant_rejected;
        if (global)
            global->increment(n);
        if (per_tenant)
            per_tenant->increment(n);
        const uint64_t shed_us = nowUs();
        for (Item &item : pending.items) {
            // Shed requests spent real time in admission (token
            // lookup, possibly a ticket wait) that queue_latency_us
            // never sees — account for it separately.
            const uint64_t waited_us =
                elapsedUs(item.enqueued_us, shed_us);
            if (rejected_latency_us_)
                rejected_latency_us_->observe(waited_us,
                                              item.ctx.traceId());
            if (item.root.active()) {
                item.root.attr("outcome", throttled ? "throttled"
                                                    : "overloaded");
                item.root.attrU64("rejected_latency_us", waited_us);
                item.ctx.keep();  // tail trigger: shed = interesting
                item.root.endAt(shed_us);
            }
            DecodeOutcome outcome;
            outcome.status = throttled ? DecodeStatus::Throttled
                                       : DecodeStatus::Overloaded;
            item.promise.set_value(std::move(outcome));
        }
        return futures;
    }

    queue_cv_.notify_one();
    if (ticketed) {
        // We were the head of the line; the next ticket holder must
        // re-evaluate whether the remaining space fits it.
        space_cv_.notify_all();
    }
    if (batches_submitted_)
        batches_submitted_->increment();
    if (requests_submitted_)
        requests_submitted_->increment(n);
    return futures;
}

DecodeStream
DecodeService::openStream(StreamParams params)
{
    fatalIf(params.decoder == nullptr,
            "DecodeService::openStream: no decoder");
    auto state = std::make_shared<DecodeStream::State>();
    state->service = this;
    state->liveness = params.decoder->livenessToken();
    state->tenant = params.tenant;

    // Root the session's trace; every chunk becomes a child span.
    if (params.trace.active())
        state->trace_root = params.trace.span("stream");
    else if (params_.tracer)
        state->trace_root =
            params_.tracer->startTrace("stream", params.tenant);
    if (state->trace_root.active()) {
        state->trace_root.attrU64("tenant", params.tenant);
        state->trace_root.attrU64("expected_units",
                                  params.expected_units.size());
        state->trace_ctx = state->trace_root.context();
    }

    StreamingParams streaming;
    streaming.expected_units = params.expected_units;
    streaming.attempt_columns = params.attempt_columns;
    // The callback outlives nothing: the session lives inside the
    // state it points back to, and fires only while processing a
    // chunk of that session.
    DecodeStream::State *raw = state.get();
    streaming.on_unit = [raw](uint64_t block, unsigned version,
                              const Bytes &payload) {
        raw->deliverUnit(block, version, payload);
    };
    state->session = std::make_unique<StreamingDecoder>(
        params.decoder->partition(), params.decoder->params(),
        std::move(streaming));

    for (const UnitKey &unit : params.expected_units) {
        if (state->unit_futures.count(unit))
            continue;  // a duplicate expected unit gets one future
        std::promise<StreamUnitResult> promise;
        state->unit_futures.emplace(unit, promise.get_future());
        state->unit_promises.emplace(unit, std::move(promise));
    }
    {
        // Resolve the tenant now so the first chunk's admission
        // doesn't pay the instrument-creation detour.
        sync::MutexLock lock(mutex_);
        fatalIf(!accepting_,
                "DecodeService: openStream after shutdown");
        tenantStateLocked(lock, params.tenant);
    }
    if (streams_opened_)
        streams_opened_->increment();
    return DecodeStream(std::move(state));
}

std::future<DecodeOutcome>
DecodeService::submitStreamChunk(
    std::shared_ptr<DecodeStream::State> stream,
    std::vector<sim::Read> reads, bool finish_marker)
{
    Batch pending;
    pending.tenant = stream->tenant;
    pending.stream = std::move(stream);
    pending.chunk = std::move(reads);
    pending.stream_finish = finish_marker;
    pending.enqueued_us = nowUs();
    if (pending.stream->trace_ctx.active()) {
        pending.root = pending.stream->trace_ctx.spanAt(
            finish_marker ? "stream.finish" : "stream.chunk",
            pending.enqueued_us);
        pending.root.attrU64("reads", pending.chunk.size());
        pending.ctx = pending.root.context();
    }
    std::future<DecodeOutcome> future =
        pending.stream_promise.get_future();

    telemetry::Counter *tenant_rejected = nullptr;
    telemetry::Counter *tenant_throttled = nullptr;
    bool ticketed = false;
    Verdict verdict = admitBatch(pending, 1, &tenant_rejected,
                                 &tenant_throttled, &ticketed);

    if (verdict != Verdict::Admitted) {
        const bool throttled = verdict == Verdict::Throttled;
        telemetry::Counter *global =
            throttled ? requests_throttled_ : requests_rejected_;
        telemetry::Counter *per_tenant =
            throttled ? tenant_throttled : tenant_rejected;
        if (global)
            global->increment();
        if (per_tenant)
            per_tenant->increment();
        const uint64_t shed_us = nowUs();
        const uint64_t waited_us =
            elapsedUs(pending.enqueued_us, shed_us);
        if (rejected_latency_us_)
            rejected_latency_us_->observe(waited_us,
                                          pending.ctx.traceId());
        if (pending.root.active()) {
            pending.root.attr("outcome", throttled ? "throttled"
                                                   : "overloaded");
            pending.root.attrU64("rejected_latency_us", waited_us);
            pending.ctx.keep();
            pending.root.endAt(shed_us);
        }
        DecodeOutcome outcome;
        outcome.status = throttled ? DecodeStatus::Throttled
                                   : DecodeStatus::Overloaded;
        pending.stream_promise.set_value(std::move(outcome));
        return future;
    }

    queue_cv_.notify_one();
    if (ticketed)
        space_cv_.notify_all();
    if (stream_chunks_)
        stream_chunks_->increment();
    if (requests_submitted_)
        requests_submitted_->increment();
    return future;
}

size_t
DecodeService::pendingBatches() const
{
    sync::MutexLock lock(mutex_);
    return pending_batches_;
}

size_t
DecodeService::inFlightRequests() const
{
    sync::MutexLock lock(mutex_);
    return in_flight_;
}

size_t
DecodeService::blockedSubmitters() const
{
    sync::MutexLock lock(mutex_);
    return static_cast<size_t>(next_ticket_ - serving_ticket_);
}

DecodeService::Batch
DecodeService::popNextBatchLocked()
{
    // Weighted deficit round robin over the active tenants, in
    // activation order. Each tenant's turn at the head grants it
    // `weight` requests' worth of deficit once; it dispatches whole
    // batches while the deficit covers them, then rotates to the
    // back. An emptied tenant leaves the round and forfeits its
    // remaining deficit, so credit never banks across idle periods.
    for (;;) {
        TenantState &state = tenants_.at(active_.front());
        if (!state.charged) {
            state.deficit += state.params.weight;
            state.charged = true;
        }
        const uint64_t cost = static_cast<uint64_t>(
            std::max<size_t>(1, state.queue.front().items.size()));
        if (active_.size() == 1 && state.deficit < cost) {
            // Alone in the round there is nothing to interleave
            // with: grant the full cost at once instead of spinning
            // ceil(cost/weight) empty rotations under the lock. The
            // deficit is consumed in full below, so no credit leaks
            // into a later contended round.
            state.deficit = cost;
        }
        if (state.deficit >= cost) {
            Batch batch = std::move(state.queue.front());
            state.queue.pop_front();
            --pending_batches_;
            state.deficit -= cost;
            // Credit left for this turn, for the dispatch ("queue")
            // spans — captured here because the state is gone from
            // the dispatcher's view once the lock drops.
            batch.dispatch_deficit = state.deficit;
            if (state.queue.empty()) {
                state.deficit = 0;
                state.charged = false;
                state.active = false;
                active_.pop_front();
            }
            return batch;
        }
        // Turn exhausted: keep the accumulated deficit (a batch
        // bigger than one quantum still dispatches within
        // ceil(cost / weight) rounds — starvation-free) and rotate.
        state.charged = false;
        active_.push_back(active_.front());
        active_.pop_front();
    }
}

void
DecodeService::dispatcherLoop()
{
    for (;;) {
        Batch batch;
        {
            sync::MutexLock lock(mutex_);
            while (accepting_ &&
                   (pending_batches_ == 0 || paused_))
                queue_cv_.wait(lock);
            if (pending_batches_ == 0)
                return;  // shut down and fully drained
            batch = popNextBatchLocked();
        }
        if (params_.on_dispatch)
            params_.on_dispatch(batch.tenant,
                                std::max<size_t>(
                                    1, batch.items.size()));
        if (batch.dispatched)
            batch.dispatched->increment();
        if (batch.stream)
            runStreamChunk(batch);
        else
            runBatch(batch);
    }
}

void
DecodeService::runStreamChunk(Batch &batch)
{
    DecodeStream::State &stream = *batch.stream;
    const uint64_t start_us = nowUs();
    const uint64_t queued_us = elapsedUs(batch.enqueued_us, start_us);
    if (queue_latency_us_)
        queue_latency_us_->observe(queued_us, batch.ctx.traceId());
    if (batch.queue_latency)
        batch.queue_latency->observe(queued_us, batch.ctx.traceId());
    if (batch.ctx.active()) {
        telemetry::SpanHandle queue_span =
            batch.ctx.spanAt("queue", batch.admitted_us);
        queue_span.attrU64("wdrr_deficit", batch.dispatch_deficit);
        queue_span.endAt(start_us);
    }

    DecodeOutcome outcome;
    std::exception_ptr error;
    size_t missing = 0;
    try {
        fatalIf(stream.liveness.expired(),
                "DecodeService: Decoder destroyed before its stream "
                "chunk ran");
        const DecodeStats before = stream.session->stats();
        if (batch.stream_finish) {
            outcome.units = stream.session->finish(&outcome.stats,
                                                   &pool_, batch.ctx);
            // Expected units the session never recovered resolve
            // with a typed Incomplete result, and the finish
            // outcome reports Partial.
            {
                sync::MutexLock lock(stream.m);
                missing = stream.unit_promises.size();
                for (auto &[unit, promise] : stream.unit_promises) {
                    StreamUnitResult result;
                    result.status = UnitStatus::Incomplete;
                    result.block = unit.first;
                    result.version = unit.second;
                    promise.set_value(std::move(result));
                }
                stream.unit_promises.clear();
            }
            outcome.status = missing == 0 ? DecodeStatus::Ok
                                          : DecodeStatus::Partial;
        } else {
            const size_t consumed =
                stream.session->feed(batch.chunk, &pool_, batch.ctx);
            outcome.stats = stream.session->stats();
            outcome.status = (consumed == 0 && !batch.chunk.empty())
                                 ? DecodeStatus::Skipped
                                 : DecodeStatus::Ok;
        }

        const DecodeStats &after = outcome.stats;
        if (stream_reads_consumed_)
            stream_reads_consumed_->increment(
                after.reads_consumed - before.reads_consumed);
        if (stream_reads_skipped_)
            stream_reads_skipped_->increment(
                after.reads_skipped - before.reads_skipped);
        if (stream_units_early_)
            stream_units_early_->increment(
                after.units_emitted_early -
                before.units_emitted_early);
        if (stream.session->complete() &&
            !stream.complete.load(std::memory_order_relaxed)) {
            stream.complete.store(true, std::memory_order_release);
            if (streams_completed_early_)
                streams_completed_early_->increment();
        }
        if ((stream.session->complete() || batch.stream_finish) &&
            !stream.completion_observed) {
            stream.completion_observed = true;
            if (stream_reads_at_completion_)
                stream_reads_at_completion_->observe(
                    after.reads_consumed);
        }
        if (decode_latency_us_)
            decode_latency_us_->observe(elapsedUs(start_us, nowUs()),
                                        batch.ctx.traceId());
    } catch (...) {
        error = std::current_exception();
    }

    if (batch.root.active()) {
        if (error) {
            batch.root.attr("outcome", "error");
            batch.ctx.keep();
        } else {
            batch.root.attr("outcome",
                            outcome.status == DecodeStatus::Ok
                                ? "ok"
                                : outcome.status ==
                                          DecodeStatus::Partial
                                      ? "partial"
                                      : "skipped");
            batch.root.attrU64("reads_consumed",
                               outcome.stats.reads_consumed);
        }
        batch.root.end();
    }
    // The finish marker closes the session's "stream" root — it is
    // the last chunk by contract, and the trace deposits here so a
    // caller waking from finish().get() can already retrieve it.
    if (batch.stream_finish && stream.trace_root.active()) {
        if (error) {
            stream.trace_root.attr("outcome", "error");
            stream.trace_ctx.keep();
        } else {
            stream.trace_root.attr("outcome",
                                   missing == 0 ? "ok" : "partial");
            stream.trace_root.attrU64("units_missing", missing);
        }
        stream.trace_root.end();
    }

    // Release queue space before fulfilling the promise: a caller
    // woken by future.get() must observe the freed capacity.
    {
        sync::MutexLock lock(mutex_);
        in_flight_ -= 1;
        tenants_.at(batch.tenant).in_flight -= 1;
        if (queue_depth_)
            queue_depth_->set(static_cast<int64_t>(in_flight_));
    }
    space_cv_.notify_all();

    if (error) {
        if (requests_failed_)
            requests_failed_->increment();
        batch.stream_promise.set_exception(error);
    } else {
        if (requests_decoded_)
            requests_decoded_->increment();
        batch.stream_promise.set_value(std::move(outcome));
    }
}

void
DecodeService::runBatch(Batch &batch)
{
    const size_t n = batch.items.size();
    std::vector<DecodeOutcome> outcomes(n);
    std::vector<std::exception_ptr> errors(n);

    // Shard the batch's partition jobs across the pool. Each job's
    // internal stages fork on the same pool (nested fork-join), and
    // each job catches its own failure so one bad request cannot
    // abandon its siblings' iterations or poison their promises.
    pool_.parallelFor(n, [&](size_t i) {
        Item &item = batch.items[i];
        const uint64_t start_us = nowUs();
        const uint64_t queued_us = elapsedUs(item.enqueued_us,
                                             start_us);
        if (queue_latency_us_)
            queue_latency_us_->observe(queued_us,
                                       item.ctx.traceId());
        if (batch.queue_latency)
            batch.queue_latency->observe(queued_us,
                                         item.ctx.traceId());
        if (pool_active_)
            pool_active_->set(
                static_cast<int64_t>(pool_.activeThreads()));
        telemetry::SpanHandle decode_span;
        if (item.ctx.active()) {
            telemetry::SpanHandle queue_span =
                item.ctx.spanAt("queue", item.admitted_us);
            queue_span.attrU64("wdrr_deficit",
                               batch.dispatch_deficit);
            queue_span.endAt(start_us);
            decode_span = item.ctx.span("decode");
            decode_span.attrU64("reads", item.request.reads.size());
        }
        try {
            fatalIf(item.request.decoder == nullptr,
                    "DecodeService: request has no decoder");
            fatalIf(item.liveness.expired(),
                    "DecodeService: Decoder destroyed before its "
                    "request ran");
            outcomes[i].units = item.request.decoder->decodeAll(
                item.request.reads, &outcomes[i].stats, pool_,
                decode_span.context());
            if (decode_latency_us_)
                decode_latency_us_->observe(
                    elapsedUs(start_us, nowUs()),
                    item.ctx.traceId());
        } catch (...) {
            errors[i] = std::current_exception();
        }
        decode_span.end();
    });
    // Re-sample after the batch so an idle service doesn't keep
    // reporting the last mid-decode occupancy forever.
    if (pool_active_)
        pool_active_->set(static_cast<int64_t>(pool_.activeThreads()));

    // Release queue space before fulfilling the promises: a caller
    // woken by future.get() must observe the freed capacity.
    {
        sync::MutexLock lock(mutex_);
        in_flight_ -= n;
        tenants_.at(batch.tenant).in_flight -= n;
        if (queue_depth_)
            queue_depth_->set(static_cast<int64_t>(in_flight_));
    }
    space_cv_.notify_all();

    // Count outcomes before any promise fires so a caller returning
    // from future.get() already observes the updated counters.
    size_t failed = 0;
    for (size_t i = 0; i < n; ++i)
        failed += errors[i] ? 1 : 0;
    if (requests_failed_ && failed > 0)
        requests_failed_->increment(failed);
    if (requests_decoded_ && failed < n)
        requests_decoded_->increment(n - failed);

    // Reduce in submission order: promises fire exactly in the order
    // the requests were handed in.
    for (size_t i = 0; i < n; ++i) {
        Item &item = batch.items[i];
        if (item.root.active()) {
            if (errors[i]) {
                item.root.attr("outcome", "error");
                item.ctx.keep();  // tail trigger: errors always kept
            } else {
                item.root.attr("outcome", "ok");
            }
            // End (and possibly deposit) the trace before the caller
            // wakes, so a future.get() straight into findTrace()
            // observes it.
            item.root.end();
        }
        if (errors[i])
            item.promise.set_exception(errors[i]);
        else
            item.promise.set_value(std::move(outcomes[i]));
    }
}

} // namespace dnastore::core
