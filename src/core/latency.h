/**
 * @file
 * Sequencing-latency models (paper Section 7.4).
 *
 * NGS (Illumina-class) machines run for a fixed duration and emit a
 * fixed number of reads per run; retrieval latency is therefore
 * quantized in runs, and precise block access only shortens latency
 * when the scope would otherwise span multiple runs. Nanopore
 * devices stream reads continuously and can stop as soon as the
 * target decodes, so block access shortens latency linearly at any
 * scale. These models turn a read requirement into wall-clock
 * latency for both technologies.
 */

#ifndef DNASTORE_CORE_LATENCY_H
#define DNASTORE_CORE_LATENCY_H

#include <cstddef>

namespace dnastore::core {

/** Fixed-run sequencer (e.g. Illumina MiSeq/NovaSeq). */
struct NgsModel
{
    /** Reads produced by one run. */
    double reads_per_run = 25e6;

    /** Duration of one run in hours. */
    double hours_per_run = 24.0;

    /** Latency to obtain @p reads_needed reads (whole runs). */
    double
    latencyHours(double reads_needed) const
    {
        double runs = reads_needed / reads_per_run;
        double whole = static_cast<double>(
            static_cast<unsigned long long>(runs));
        if (runs > whole)
            whole += 1.0;
        if (whole < 1.0)
            whole = 1.0;
        return whole * hours_per_run;
    }
};

/** Streaming sequencer (e.g. Oxford Nanopore). */
struct NanoporeModel
{
    /** Sustained read output per hour. */
    double reads_per_hour = 2e6;

    /** Latency: stop as soon as enough reads are collected. */
    double
    latencyHours(double reads_needed) const
    {
        return reads_needed / reads_per_hour;
    }
};

/**
 * Reads required to decode a scope of @p molecules unique molecules
 * at @p coverage reads each, when only @p useful_fraction of the
 * sequencing output belongs to the scope.
 */
inline double
readsNeeded(double molecules, double coverage, double useful_fraction)
{
    return molecules * coverage / useful_fraction;
}

} // namespace dnastore::core

#endif // DNASTORE_CORE_LATENCY_H
