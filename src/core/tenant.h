/**
 * @file
 * Tenant identity and per-tenant admission/scheduling parameters.
 *
 * A tenant is one caller class sharing a DecodeService — a frontend,
 * a remote client, a batch job. Tenants exist so that one hot caller
 * cannot monopolize the service: each tenant can carry a token-bucket
 * admission contract (rate/burst), a weighted-fair-queueing weight,
 * and its own queue-depth cap, all enforced by the service's
 * scheduler. The default tenant (id 0) with no configured TenantParams
 * behaves exactly like the pre-tenant service: no bucket, weight 1,
 * no per-tenant cap, FIFO dispatch.
 *
 * This header is deliberately tiny so that device- and pool-level
 * read APIs can carry a TenantId without pulling in the full
 * DecodeService header.
 */

#ifndef DNASTORE_CORE_TENANT_H
#define DNASTORE_CORE_TENANT_H

#include <cstddef>
#include <cstdint>

namespace dnastore::core {

/** Identifies one caller class sharing a DecodeService. */
using TenantId = uint32_t;

/** The tenant used when callers don't name one; with no configured
 *  TenantParams it reproduces the untenanted service byte-for-byte. */
inline constexpr TenantId kDefaultTenant = 0;

/**
 * Per-tenant admission and scheduling knobs
 * (DecodeServiceParams::tenants).
 *
 * Token bucket: enabled when rate > 0 or burst > 0. The bucket starts
 * full (burst tokens, one token = one request), refills at `rate`
 * tokens per second of the service clock, and admission is
 * all-or-nothing per submitBatch: a batch whose size exceeds the
 * available tokens is shed with DecodeStatus::Throttled and consumes
 * nothing, while a batch that passes the bucket spends its tokens
 * even if the queue-depth stage then sheds it — overload shedding is
 * load, too. A bucket with rate > 0 but burst == 0 admits nothing.
 *
 * Weight: requests' worth of dispatch credit the tenant earns per
 * weighted-deficit-round-robin round while it has queued batches.
 * Under saturation, dispatch counts match the weight ratio exactly
 * (a weight-3 tenant dispatches 3 single-request batches for every 1
 * of a weight-1 tenant). Must be >= 1.
 *
 * max_queue_depth: per-tenant bound on admitted-but-unfulfilled
 * requests, layered under the service-wide bound; 0 = no per-tenant
 * cap. Overflow follows the service's OverflowPolicy — note that
 * under Block a submitter parked on its own tenant's cap holds the
 * service's single FIFO admission line (see OverflowPolicy::Block),
 * so shedding caps (Reject) or rate contracts (the bucket) are the
 * isolation-preserving way to bound one tenant.
 */
struct TenantParams
{
    /** Token-bucket refill, in requests per second (0 = no refill). */
    double rate = 0.0;

    /** Token-bucket capacity, in requests (0 with rate > 0 admits
     *  nothing). */
    double burst = 0.0;

    /** WDRR dispatch weight, in requests per scheduling round. */
    uint32_t weight = 1;

    /** Per-tenant queue-depth cap (0 = only the service-wide bound). */
    size_t max_queue_depth = 0;

    bool operator==(const TenantParams &) const = default;

    /** Whether this tenant carries a token bucket at all. */
    bool
    bucketEnabled() const
    {
        return rate > 0.0 || burst > 0.0;
    }
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_TENANT_H
