#include "core/capacity.h"

#include <cmath>

#include "common/error.h"

namespace dnastore::core {

CapacityPoint
capacityAt(size_t strand_length, size_t primer_length,
           size_t index_length)
{
    fatalIf(strand_length <= 2 * primer_length,
            "strand shorter than the two primers");
    const size_t usable = strand_length - 2 * primer_length;
    fatalIf(index_length > usable, "index longer than usable bases");

    const double L = static_cast<double>(index_length);
    const double data_bits_per_strand =
        2.0 * static_cast<double>(usable - index_length);

    // log2 capacities of the two regimes (4^L strands each).
    double data_log2 =
        data_bits_per_strand > 0.0
            ? 2.0 * L + std::log2(data_bits_per_strand)
            : -1.0;
    double presence_log2 = 2.0 * L;  // one bit per address

    CapacityPoint point;
    point.index_length = index_length;
    double bits_log2 = std::max(data_log2, presence_log2);
    point.capacity_bytes_log2 = bits_log2 - 3.0;

    // Density: capacity bits / total bases; the 4^L cancels for the
    // data regime; the presence regime stores 1 bit per strand.
    double bits_per_strand = std::max(data_bits_per_strand, 1.0);
    point.bits_per_base =
        bits_per_strand / static_cast<double>(strand_length);
    return point;
}

std::vector<CapacityPoint>
capacityCurve(size_t strand_length, size_t primer_length)
{
    const size_t usable = strand_length - 2 * primer_length;
    std::vector<CapacityPoint> curve;
    curve.reserve(usable + 1);
    for (size_t L = 0; L <= usable; ++L)
        curve.push_back(capacityAt(strand_length, primer_length, L));
    return curve;
}

} // namespace dnastore::core
