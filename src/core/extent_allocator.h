/**
 * @file
 * Subtree-aligned extent allocation (paper Section 3.1, left as
 * future work: "a set of files could be mapped onto the partition in
 * a manner that tries to optimally align the files to nodes in the
 * prefix tree").
 *
 * A file stored on subtree-aligned extents can be retrieved
 * sequentially with one elongated primer per extent; an unaligned
 * placement of the same size needs a longer prefix cover. The
 * allocator is a buddy allocator over the 4-ary address tree: free
 * extents are maintained per order k (size 4^k, aligned to 4^k), a
 * larger extent splits into four buddies, and four free buddies
 * coalesce.
 */

#ifndef DNASTORE_CORE_EXTENT_ALLOCATOR_H
#define DNASTORE_CORE_EXTENT_ALLOCATOR_H

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

namespace dnastore::core {

/** A subtree-aligned run of blocks: start % size == 0, size = 4^k. */
struct Extent
{
    uint64_t start = 0;
    uint64_t size = 0;

    uint64_t end() const { return start + size; }
    bool operator==(const Extent &) const = default;
};

/**
 * Buddy allocator over a depth-L 4-ary block address space.
 */
class ExtentAllocator
{
  public:
    /** Allocation policies for multi-extent requests. */
    enum class Policy
    {
        /** Minimal set of aligned extents (base-4 decomposition of
         *  the size): no wasted blocks, one primer per extent. */
        kMultiExtent,

        /** One single subtree >= the request: exactly one primer for
         *  the whole file, at the cost of internal fragmentation. */
        kSingleSubtree,
    };

    /** @param depth tree depth L; the space holds 4^L blocks. */
    explicit ExtentAllocator(size_t depth);

    /**
     * Allocate extents covering @p blocks blocks. Returns nullopt if
     * the space cannot satisfy the request (then no state changed).
     */
    std::optional<std::vector<Extent>> allocate(uint64_t blocks,
                                                Policy policy);

    /** Return an extent previously handed out. */
    void free(const Extent &extent);

    /** Blocks currently allocated (as requested, without padding). */
    uint64_t blocksAllocated() const { return blocks_allocated_; }

    /** Blocks handed out including single-subtree padding. */
    uint64_t blocksReserved() const { return blocks_reserved_; }

    /** Total blocks in the space. */
    uint64_t capacity() const { return uint64_t{1} << (2 * depth_); }

    /** Largest currently allocatable single extent (4^k). */
    uint64_t largestFreeExtent() const;

  private:
    size_t depth_;
    uint64_t blocks_allocated_ = 0;
    uint64_t blocks_reserved_ = 0;

    /** free_[k]: start addresses of free extents of size 4^k. */
    std::vector<std::set<uint64_t>> free_;

    /** Allocate exactly one extent of order k (splitting larger). */
    std::optional<uint64_t> allocateOrder(size_t order);

    /** Release one extent of order k (coalescing buddies). */
    void freeOrder(uint64_t start, size_t order);
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_EXTENT_ALLOCATOR_H
