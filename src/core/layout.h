/**
 * @file
 * Strand assembly and parsing for the paper's molecule layout
 * (Figure 4 bottom: main primer | PCR-compatible index | matrix
 * index | payload | reverse-primer site).
 */

#ifndef DNASTORE_CORE_LAYOUT_H
#define DNASTORE_CORE_LAYOUT_H

#include <optional>

#include "core/config.h"
#include "dna/sequence.h"

namespace dnastore::core {

/** Parsed positional fields of a (reconstructed) strand. */
struct StrandFields
{
    /** Sparse unit index (2L bases) plus the version base. */
    dna::Sequence address;

    /** Intra-unit address bases (matrix column, dense coding). */
    dna::Sequence intra;

    /** Payload bases. */
    dna::Sequence payload;
};

/** Assemble a full strand from its fields. */
dna::Sequence buildStrand(const PartitionConfig &config,
                          const dna::Sequence &forward_primer,
                          const dna::Sequence &reverse_primer,
                          const dna::Sequence &sparse_index,
                          dna::Base version_base,
                          unsigned column,
                          const dna::Sequence &payload);

/**
 * Slice a strand of exactly config.strand_length bases into fields.
 * Returns nullopt if the length is wrong (the consensus stage is
 * responsible for producing exact-length reconstructions).
 */
std::optional<StrandFields> parseStrand(const PartitionConfig &config,
                                        const dna::Sequence &strand);

/** Encode a matrix column number as dense intra-address bases. */
dna::Sequence encodeIntra(const PartitionConfig &config, unsigned column);

/** Decode intra-address bases back to a column number. */
unsigned decodeIntra(const PartitionConfig &config,
                     const dna::Sequence &intra);

} // namespace dnastore::core

#endif // DNASTORE_CORE_LAYOUT_H
