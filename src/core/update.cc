#include "core/update.h"

#include <algorithm>

#include "common/error.h"

namespace dnastore::core {

Bytes
UpdateOp::apply(const Bytes &block, size_t block_size) const
{
    Bytes edited = block;
    size_t del_start = std::min<size_t>(delete_pos, edited.size());
    size_t del_end =
        std::min<size_t>(del_start + delete_len, edited.size());
    edited.erase(edited.begin() + static_cast<ptrdiff_t>(del_start),
                 edited.begin() + static_cast<ptrdiff_t>(del_end));

    size_t ins = std::min<size_t>(insert_pos, edited.size());
    edited.insert(edited.begin() + static_cast<ptrdiff_t>(ins),
                  insert_bytes.begin(), insert_bytes.end());

    edited.resize(block_size, 0);
    return edited;
}

Bytes
UpdateRecord::serialize(size_t unit_bytes) const
{
    Bytes out;
    out.reserve(unit_bytes);
    out.push_back(static_cast<uint8_t>(kind));
    switch (kind) {
      case Kind::kInline: {
        fatalIf(6 + op.insert_bytes.size() > unit_bytes,
                "update op does not fit in a unit (",
                op.insert_bytes.size(), " insert bytes)");
        out.push_back(op.delete_pos);
        out.push_back(op.delete_len);
        out.push_back(op.insert_pos);
        out.push_back(
            static_cast<uint8_t>(op.insert_bytes.size() & 0xff));
        out.push_back(
            static_cast<uint8_t>((op.insert_bytes.size() >> 8) & 0xff));
        out.insert(out.end(), op.insert_bytes.begin(),
                   op.insert_bytes.end());
        break;
      }
      case Kind::kOverflowPointer: {
        for (unsigned i = 0; i < 8; ++i) {
            out.push_back(
                static_cast<uint8_t>((overflow_block >> (8 * i)) &
                                     0xff));
        }
        break;
      }
      case Kind::kReplace: {
        fatalIf(3 + replacement.size() > unit_bytes,
                "replacement does not fit in a unit");
        out.push_back(
            static_cast<uint8_t>(replacement.size() & 0xff));
        out.push_back(
            static_cast<uint8_t>((replacement.size() >> 8) & 0xff));
        out.insert(out.end(), replacement.begin(), replacement.end());
        break;
      }
    }
    fatalIf(out.size() > unit_bytes, "update record too large");
    out.resize(unit_bytes, 0);
    return out;
}

std::optional<UpdateRecord>
UpdateRecord::deserialize(const Bytes &payload)
{
    if (payload.empty())
        return std::nullopt;
    UpdateRecord record;
    switch (payload[0]) {
      case static_cast<uint8_t>(Kind::kInline): {
        if (payload.size() < 6)
            return std::nullopt;
        record.kind = Kind::kInline;
        record.op.delete_pos = payload[1];
        record.op.delete_len = payload[2];
        record.op.insert_pos = payload[3];
        size_t insert_len = payload[4] |
                            (static_cast<size_t>(payload[5]) << 8);
        if (6 + insert_len > payload.size())
            return std::nullopt;
        record.op.insert_bytes.assign(
            payload.begin() + 6,
            payload.begin() + 6 + static_cast<ptrdiff_t>(insert_len));
        return record;
      }
      case static_cast<uint8_t>(Kind::kOverflowPointer): {
        if (payload.size() < 9)
            return std::nullopt;
        record.kind = Kind::kOverflowPointer;
        record.overflow_block = 0;
        for (unsigned i = 0; i < 8; ++i) {
            record.overflow_block |=
                static_cast<uint64_t>(payload[1 + i]) << (8 * i);
        }
        return record;
      }
      case static_cast<uint8_t>(Kind::kReplace): {
        if (payload.size() < 3)
            return std::nullopt;
        record.kind = Kind::kReplace;
        size_t len = payload[1] |
                     (static_cast<size_t>(payload[2]) << 8);
        if (3 + len > payload.size())
            return std::nullopt;
        record.replacement.assign(
            payload.begin() + 3,
            payload.begin() + 3 + static_cast<ptrdiff_t>(len));
        return record;
      }
      default:
        return std::nullopt;
    }
}

} // namespace dnastore::core
