#include "core/layout.h"

#include "codec/base4.h"

namespace dnastore::core {

dna::Sequence
buildStrand(const PartitionConfig &config,
            const dna::Sequence &forward_primer,
            const dna::Sequence &reverse_primer,
            const dna::Sequence &sparse_index, dna::Base version_base,
            unsigned column, const dna::Sequence &payload)
{
    fatalIf(forward_primer.size() != config.primer_length,
            "forward primer length mismatch");
    fatalIf(reverse_primer.size() != config.primer_length,
            "reverse primer length mismatch");
    fatalIf(sparse_index.size() != config.sparseIndexLength(),
            "sparse index length mismatch");
    fatalIf(payload.size() != config.payloadBases(),
            "payload length mismatch: got ", payload.size(),
            ", expected ", config.payloadBases());

    dna::Sequence strand = forward_primer;
    strand.push_back(config.sync_base);
    strand += sparse_index;
    strand.push_back(version_base);
    strand += encodeIntra(config, column);
    strand += payload;
    strand += reverse_primer.reverseComplement();
    panicIf(strand.size() != config.strand_length,
            "assembled strand has wrong length");
    return strand;
}

std::optional<StrandFields>
parseStrand(const PartitionConfig &config, const dna::Sequence &strand)
{
    if (strand.size() != config.strand_length)
        return std::nullopt;
    StrandFields fields;
    size_t pos = config.primer_length + 1;  // skip primer + sync base
    size_t address_len =
        config.sparseIndexLength() + config.versionBases();
    fields.address = strand.substr(pos, address_len);
    pos += address_len;
    fields.intra = strand.substr(pos, config.intraIndexLength());
    pos += config.intraIndexLength();
    fields.payload = strand.substr(pos, config.payloadBases());
    return fields;
}

dna::Sequence
encodeIntra(const PartitionConfig &config, unsigned column)
{
    fatalIf(column >= config.rs_n, "column out of range");
    codec::Digits digits =
        codec::toBase4(column, config.intraIndexLength());
    std::vector<dna::Base> bases;
    bases.reserve(digits.size());
    for (uint8_t digit : digits)
        bases.push_back(static_cast<dna::Base>(digit));
    return dna::Sequence(bases);
}

unsigned
decodeIntra(const PartitionConfig &config, const dna::Sequence &intra)
{
    fatalIf(intra.size() != config.intraIndexLength(),
            "intra address length mismatch");
    codec::Digits digits;
    digits.reserve(intra.size());
    for (size_t i = 0; i < intra.size(); ++i)
        digits.push_back(static_cast<uint8_t>(intra.baseAt(i)));
    return static_cast<unsigned>(codec::fromBase4(digits));
}

} // namespace dnastore::core
