/**
 * @file
 * Update-patch format and application (paper Sections 5.4 and 6.4).
 *
 * An update patch is an ordinary encoding unit whose payload encodes
 * a delete-then-insert edit of one block:
 *
 *   byte 0: record kind (inline patch / overflow pointer / whole-
 *           block replacement)
 *   byte 1: first byte to delete
 *   byte 2: number of bytes to delete
 *   byte 3: insertion position (after the deletion is applied)
 *   bytes 4-5: length of the insertion (little endian)
 *   bytes 6+: the bytes to insert
 *
 * The paper's proof-of-concept format is bytes 1-3 plus a trailing
 * byte array; the explicit kind and length fields make the format
 * self-delimiting inside a padded 256-byte block and add the
 * overflow-pointer record that links a block's last version slot to
 * the shared overflow log (Figure 8: "the last update block will
 * contain a pointer to an entry in the common update log").
 */

#ifndef DNASTORE_CORE_UPDATE_H
#define DNASTORE_CORE_UPDATE_H

#include <cstdint>
#include <optional>
#include <vector>

namespace dnastore::core {

using Bytes = std::vector<uint8_t>;

/** A delete-then-insert edit of one block's contents. */
struct UpdateOp
{
    /** First byte to delete. */
    uint8_t delete_pos = 0;

    /** Bytes to delete starting at delete_pos (0 = pure insert). */
    uint8_t delete_len = 0;

    /** Insertion position, evaluated after the deletion. */
    uint8_t insert_pos = 0;

    /** Bytes to insert (may be empty for a pure delete). */
    Bytes insert_bytes;

    /**
     * Apply to a block's contents. The edited data is truncated or
     * zero-padded back to @p block_size, preserving the fixed-size
     * block semantics.
     */
    Bytes apply(const Bytes &block, size_t block_size) const;
};

/** On-DNA update record: an edit or a pointer into the overflow log. */
struct UpdateRecord
{
    enum class Kind : uint8_t
    {
        kInline = 1,          ///< the op applies to this block
        kOverflowPointer = 2, ///< further updates live at `overflow_block`
        kReplace = 3,         ///< payload replaces the whole block
    };

    Kind kind = Kind::kInline;
    UpdateOp op;                   ///< valid for kInline
    uint64_t overflow_block = 0;   ///< valid for kOverflowPointer
    Bytes replacement;             ///< valid for kReplace

    /** Serialize into exactly @p unit_bytes bytes (zero padded). */
    Bytes serialize(size_t unit_bytes) const;

    /** Parse a record; nullopt if the payload is not a valid record. */
    static std::optional<UpdateRecord> deserialize(const Bytes &payload);
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_UPDATE_H
