/**
 * @file
 * Analytical capacity/density model of a partition (paper Figure 3).
 *
 * For a strand of length S and primers of length P, U = S - 2P bases
 * are usable per strand. With an index of length L:
 *   - data regime: 4^L strands carrying 2*(U - L) bits each;
 *   - presence regime (L == U): each of the 4^L addresses stores one
 *     bit by the presence/absence of the molecule.
 * Capacity is the max of both; information density divides by the
 * total bases (4^L strands of S bases).
 */

#ifndef DNASTORE_CORE_CAPACITY_H
#define DNASTORE_CORE_CAPACITY_H

#include <cstddef>
#include <vector>

namespace dnastore::core {

/** One point of the Figure 3 curves. */
struct CapacityPoint
{
    size_t index_length = 0;

    /** log2 of the partition capacity in bytes. */
    double capacity_bytes_log2 = 0.0;

    /** Information density in bits per base. */
    double bits_per_base = 0.0;
};

/** Capacity/density of one (strand, primer, L) configuration. */
CapacityPoint capacityAt(size_t strand_length, size_t primer_length,
                         size_t index_length);

/** The full curve for L = 0 .. U (Figure 3's x-axis). */
std::vector<CapacityPoint> capacityCurve(size_t strand_length,
                                         size_t primer_length);

} // namespace dnastore::core

#endif // DNASTORE_CORE_CAPACITY_H
