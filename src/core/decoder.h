/**
 * @file
 * Decoding pipeline (paper Sections 6.6 and 8).
 *
 * From raw sequencing reads to decoded (and updated) block contents:
 *
 *  1. keep reads carrying the partition's primer stem (and, for a
 *     targeted read, the elongated prefix);
 *  2. cluster the reads by edit distance [28];
 *  3. in descending cluster-size order, reconstruct a strand per
 *     cluster with double-sided BMA [20], parse its address, and
 *     keep the first reconstruction per address (later duplicates
 *     are discarded, or kept as alternate candidates for the
 *     recursive fallback of Section 8.1);
 *  4. place molecules into encoding units by (block, version,
 *     column), decode each unit with RS errors-and-erasures,
 *     descramble;
 *  5. apply each block's update chain in version order.
 *
 * Two entry points share the stages. Decoder::decodeAll is the
 * one-shot path: the whole read set in, every decodable unit out.
 * StreamingDecoder is the incremental path: reads stream in through
 * feed() (as they come off a sequencer) into a running OnlineClusterer
 * and per-cluster consensus state, each RS unit decodes the moment its
 * column coverage suffices, and the session terminates early — further
 * reads are skipped, not processed — once every expected unit is
 * recovered. That makes p50 decode latency proportional to when the
 * file *became* recoverable instead of to the worst-case read budget.
 */

#ifndef DNASTORE_CORE_DECODER_H
#define DNASTORE_CORE_DECODER_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/clusterer.h"
#include "consensus/bma.h"
#include "core/partition.h"
#include "core/update.h"
#include "sim/sequencer.h"
#include "telemetry/trace.h"

namespace dnastore {
class ThreadPool;
}

namespace dnastore::core {

/** Pipeline knobs. */
struct DecoderParams
{
    cluster::ClustererParams cluster;
    consensus::BmaParams bma;

    /** Maximum edit distance between a read prefix and the primer
     *  stem for the read to enter the pipeline. */
    size_t primer_match_dist = 3;

    /** Maximum tree-walk mismatches accepted by the nearest-leaf
     *  index decode. */
    size_t max_index_mismatches = 2;

    /** Clusters smaller than this are ignored. */
    size_t min_cluster_size = 2;

    /** Keep up to this many alternate candidates per address for the
     *  recursive decode fallback (Section 8.1). */
    size_t max_candidates_per_address = 3;

    /** Worker threads for the decode pipeline (0 = use
     *  hardware_concurrency). The primer filter, MinHash signatures,
     *  per-cluster consensus and per-unit RS decodes fan out across
     *  the pool; results are byte-identical for any thread count. */
    size_t threads = 0;
};

/** Counters reported by a decode run. */
struct DecodeStats
{
    /** Reads offered to the pipeline — consumed or skipped. */
    size_t reads_in = 0;
    size_t reads_primer_matched = 0;
    size_t clusters_total = 0;
    size_t clusters_used = 0;
    size_t strands_recovered = 0;
    size_t duplicate_addresses = 0;
    size_t index_rejects = 0;
    size_t units_attempted = 0;
    size_t units_decoded = 0;
    size_t units_failed = 0;
    size_t symbol_errors_corrected = 0;
    size_t erasures_filled = 0;
    size_t candidate_retries = 0;

    /** Reads the pipeline actually ingested (filtered, clustered).
     *  Always reads_in for the one-shot path; for a streaming session
     *  it stops growing at early termination, so skipped reads are
     *  never misreported as processed. Invariant:
     *  reads_in == reads_consumed + reads_skipped. */
    size_t reads_consumed = 0;

    /** Reads offered after the session completed; never processed. */
    size_t reads_skipped = 0;

    /** Units emitted by an early (pre-finish) streaming RS attempt.
     *  Always 0 for the one-shot path. */
    size_t units_emitted_early = 0;

    /** Field-wise equality (used by the thread-invariance tests). */
    bool operator==(const DecodeStats &) const = default;
};

/** All decoded versions of one block. */
struct BlockVersions
{
    /** version -> descrambled full unit payload. */
    std::map<unsigned, Bytes> versions;

    bool operator==(const BlockVersions &) const = default;
};

/** One payload candidate recovered for a (block, version, column)
 *  address (step 3's output, step 4's input). */
struct StrandCandidate
{
    Bytes payload;

    /** Reads supporting the reconstruction. */
    size_t cluster_size = 0;

    /** Tree-walk mismatches of the decoded index; misprimed
     *  amplicons typically decode with 1-2 mismatches while true
     *  strands decode exactly, so this ranks candidates. */
    size_t index_mismatches = 0;
};

/** All candidates recovered for one address, sorted best-first:
 *  fewest index mismatches, then most supporting reads. */
struct RecoveredSlot
{
    std::vector<StrandCandidate> candidates;
};

class Decoder
{
  public:
    Decoder(const Partition &partition, DecoderParams params);

    /**
     * Decode every unit present in the reads. Keys are block ids;
     * each entry maps version slots to descrambled unit payloads.
     */
    std::map<uint64_t, BlockVersions> decodeAll(
        const std::vector<sim::Read> &reads,
        DecodeStats *stats = nullptr,
        const telemetry::TraceContext &trace = {}) const;

    /**
     * decodeAll through a caller-owned pool. Used by DecodeService to
     * share one long-lived pool across submissions instead of paying
     * a pool spawn per call; DecoderParams::threads is ignored in
     * favor of the pool's size. Output is byte-identical to the
     * pool-per-call overload for any pool size.
     *
     * @p trace parents per-stage spans (decode.primer_filter,
     * decode.cluster, decode.consensus, one decode.rs_unit per RS
     * attempt); the default inactive context records nothing and
     * costs one branch per stage.
     */
    std::map<uint64_t, BlockVersions> decodeAll(
        const std::vector<sim::Read> &reads, DecodeStats *stats,
        ThreadPool &pool,
        const telemetry::TraceContext &trace = {}) const;

    /**
     * Decode one block's final contents: version 0 plus the update
     * chain applied in slot order. Returns nullopt if version 0 is
     * not decodable. If the chain ends in an overflow pointer, the
     * pointer is reported through @p overflow_block (the caller must
     * fetch that block in another round trip).
     */
    std::optional<Bytes> decodeBlock(
        const std::vector<sim::Read> &reads, uint64_t block,
        DecodeStats *stats = nullptr,
        std::optional<uint64_t> *overflow_block = nullptr) const;

    /**
     * Apply a decoded update chain to base contents. Versions must
     * be the descrambled unit payloads of one block. Returns the
     * updated block contents and optionally the overflow pointer.
     */
    Bytes applyUpdateChain(
        const Bytes &base, const BlockVersions &chain,
        std::optional<uint64_t> *overflow_block = nullptr) const;

    const Partition &partition() const { return partition_; }
    const DecoderParams &params() const { return params_; }

    /**
     * Expires when this decoder is destroyed. DecodeService captures
     * it at submission and refuses (FatalError through the future) to
     * run a request whose decoder died while queued — turning the
     * "decoder must outlive its future" contract from silent UB into
     * a typed failure. Best-effort: a decoder destroyed *while* its
     * request is decoding is still a caller bug.
     */
    std::weak_ptr<const void> livenessToken() const { return liveness_; }

  private:
    const Partition &partition_;
    DecoderParams params_;

    /** Anchor for livenessToken(); dies with the decoder. */
    std::shared_ptr<const void> liveness_ = std::make_shared<int>(0);

    /** Steps 1-3: reads -> per-address payload candidates. */
    std::map<std::tuple<uint64_t, unsigned, unsigned>, RecoveredSlot>
    recoverStrands(const std::vector<sim::Read> &reads,
                   DecodeStats *stats, ThreadPool &pool,
                   const telemetry::TraceContext &trace = {}) const;
};

/** Identifies one RS encoding unit: (block, version slot). */
using UnitKey = std::pair<uint64_t, unsigned>;

/** Streaming-session knobs (on top of DecoderParams). */
struct StreamingParams
{
    /**
     * Units whose recovery terminates the session early: once every
     * listed unit has decoded, the session is complete() and further
     * feed() chunks are skipped (counted, never processed). Typically
     * {(block, 0)} for every block of the file being read.
     *
     * Empty list = deferred mode: feed() only accumulates cluster
     * state (no early RS attempts, no early termination) and
     * finish() is byte-identical — units AND DecodeStats — to a
     * one-shot Decoder::decodeAll over the concatenated chunks.
     */
    std::vector<UnitKey> expected_units;

    /**
     * Distinct columns a unit needs before an early RS attempt
     * fires; 0 = rs_n - max(0, d - 3) where d = rs_n - rs_k + 1 is
     * the code's minimum distance (13 of 15 for the default RS
     * geometry). Early attempts additionally only accept outcomes
     * whose erasures f and corrections e keep the reliability margin
     * d - f - 2e >= 3, so a frozen early payload can only be wrong
     * if three consensus columns are wrong at once. Lowering the
     * threshold toward rs_k fires attempts sooner but cannot bypass
     * that accept guard — at exactly rs_k a decode is pure
     * interpolation and would never clear the margin. Eager mode
     * only.
     */
    size_t attempt_columns = 0;

    /**
     * Invoked synchronously from inside feed()/finish() for each
     * unit the moment it decodes, in deterministic order (ascending
     * unit key within a chunk). The payload is the descrambled raw
     * unit payload, byte-identical to the one-shot decode of the
     * same unit.
     */
    std::function<void(uint64_t block, unsigned version,
                       const Bytes &payload)>
        on_unit;
};

/** One unit emitted by a streaming session, in emission order. */
struct StreamedUnit
{
    uint64_t block = 0;
    unsigned version = 0;
    Bytes payload;

    bool operator==(const StreamedUnit &) const = default;
};

/**
 * Incremental decode session. Feed reads as they arrive; the session
 * maintains a running OnlineClusterer, per-cluster BMA consensus, and
 * per-unit column coverage, firing an RS unit decode as soon as a
 * unit's coverage threshold is met. All processing happens inside
 * feed()/finish() on the caller's thread (fanning out internal stages
 * on the given pool) — the session itself is not thread-safe; drive
 * it from one thread, or through DecodeService::openStream which
 * serializes chunks per session.
 *
 * Determinism: for a fixed chunk sequence, the emitted units, their
 * order, and the final stats are byte-identical for any pool size,
 * and every emitted payload is byte-identical to the one-shot
 * decodeAll of the full read set.
 */
class StreamingDecoder
{
  public:
    StreamingDecoder(const Partition &partition, DecoderParams params,
                     StreamingParams streaming = {});
    ~StreamingDecoder();

    StreamingDecoder(const StreamingDecoder &) = delete;
    StreamingDecoder &operator=(const StreamingDecoder &) = delete;

    /**
     * Ingest one chunk. Returns the number of reads consumed: the
     * whole chunk, or 0 when the session already completed (the
     * chunk is counted as skipped). Newly decodable units are
     * emitted through StreamingParams::on_unit before feed returns.
     * Throws FatalError after finish().
     *
     * @p pool serves the chunk's internal parallel stages; nullptr
     * uses a session-owned pool of DecoderParams::threads workers.
     * @p trace parents the chunk's stage spans (same taxonomy as
     * Decoder::decodeAll, plus a decode.early_termination event the
     * moment the last expected unit decodes).
     */
    size_t feed(const std::vector<sim::Read> &reads,
                ThreadPool *pool = nullptr,
                const telemetry::TraceContext &trace = {});

    /** True once every expected unit has decoded (eager mode). */
    bool complete() const { return complete_; }

    /**
     * Finalize the session: decode everything still decodable from
     * the accumulated state (deferred mode: exactly the one-shot
     * pipeline over all consumed reads) and return every recovered
     * unit — early-emitted and finish-decoded alike. Expected units
     * that never reached decodability are simply absent from the
     * result (DecodeService::openStream surfaces them with a typed
     * per-unit status). Single-shot: a second call throws.
     */
    std::map<uint64_t, BlockVersions> finish(
        DecodeStats *stats = nullptr, ThreadPool *pool = nullptr,
        const telemetry::TraceContext &trace = {});

    bool finished() const { return finished_; }

    /** Units emitted so far, in emission order. */
    const std::vector<StreamedUnit> &emitted() const { return emitted_; }

    /** Running counters (reads consumed/skipped grow per feed). */
    const DecodeStats &stats() const { return stats_; }

  private:
    /** What the latest consensus of one cluster mapped to. */
    struct ClusterView
    {
        enum class State
        {
            Unparsed,     ///< consensus did not parse to fields
            IndexReject,  ///< parsed, but index/column decode failed
            Mapped,       ///< contributes a candidate for `unit`
        };

        /** Cluster size when consensus last ran (0 = never). */
        size_t members_at_consensus = 0;

        State state = State::Unparsed;
        UnitKey unit{0, 0};
        unsigned column = 0;
        Bytes payload;
        size_t index_mismatches = 0;
    };

    ThreadPool &resolvePool(ThreadPool *pool);

    /** Recompute consensus for @p cluster_ids (ascending), refresh
     *  their views, and collect the unit keys whose column maps
     *  changed. */
    std::set<UnitKey> refreshClusters(
        const std::vector<size_t> &cluster_ids, ThreadPool &pool,
        const telemetry::TraceContext &trace);

    /** Fire RS attempts for changed, coverage-sufficient units in
     *  ascending key order; emit successes. */
    void attemptUnits(const std::set<UnitKey> &changed,
                      ThreadPool &pool,
                      const telemetry::TraceContext &trace);

    /** Record a successful unit decode: emission list, callback,
     *  early-termination bookkeeping (stats fold in the callers). */
    void emitUnit(const UnitKey &unit, Bytes payload, bool early);

    const Partition &partition_;
    DecoderParams params_;
    StreamingParams streaming_;

    cluster::OnlineClusterer clusterer_;
    std::vector<ClusterView> views_;

    /** Incomplete units: column -> contributing cluster ids. */
    std::map<UnitKey, std::map<unsigned, std::vector<size_t>>>
        pending_units_;

    /** Decoded units: descrambled raw unit payloads. */
    std::map<UnitKey, Bytes> completed_;

    std::vector<StreamedUnit> emitted_;
    std::set<UnitKey> expected_remaining_;
    bool eager_ = false;
    bool complete_ = false;
    bool finished_ = false;
    DecodeStats stats_;

    /** Lazily created when feed()/finish() get no external pool. */
    std::unique_ptr<ThreadPool> own_pool_;
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_DECODER_H
