/**
 * @file
 * Decoding pipeline (paper Sections 6.6 and 8).
 *
 * From raw sequencing reads to decoded (and updated) block contents:
 *
 *  1. keep reads carrying the partition's primer stem (and, for a
 *     targeted read, the elongated prefix);
 *  2. cluster the reads by edit distance [28];
 *  3. in descending cluster-size order, reconstruct a strand per
 *     cluster with double-sided BMA [20], parse its address, and
 *     keep the first reconstruction per address (later duplicates
 *     are discarded, or kept as alternate candidates for the
 *     recursive fallback of Section 8.1);
 *  4. place molecules into encoding units by (block, version,
 *     column), decode each unit with RS errors-and-erasures,
 *     descramble;
 *  5. apply each block's update chain in version order.
 */

#ifndef DNASTORE_CORE_DECODER_H
#define DNASTORE_CORE_DECODER_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/clusterer.h"
#include "consensus/bma.h"
#include "core/partition.h"
#include "core/update.h"
#include "sim/sequencer.h"

namespace dnastore {
class ThreadPool;
}

namespace dnastore::core {

/** Pipeline knobs. */
struct DecoderParams
{
    cluster::ClustererParams cluster;
    consensus::BmaParams bma;

    /** Maximum edit distance between a read prefix and the primer
     *  stem for the read to enter the pipeline. */
    size_t primer_match_dist = 3;

    /** Maximum tree-walk mismatches accepted by the nearest-leaf
     *  index decode. */
    size_t max_index_mismatches = 2;

    /** Clusters smaller than this are ignored. */
    size_t min_cluster_size = 2;

    /** Keep up to this many alternate candidates per address for the
     *  recursive decode fallback (Section 8.1). */
    size_t max_candidates_per_address = 3;

    /** Worker threads for the decode pipeline (0 = use
     *  hardware_concurrency). The primer filter, MinHash signatures,
     *  per-cluster consensus and per-unit RS decodes fan out across
     *  the pool; results are byte-identical for any thread count. */
    size_t threads = 0;
};

/** Counters reported by a decode run. */
struct DecodeStats
{
    size_t reads_in = 0;
    size_t reads_primer_matched = 0;
    size_t clusters_total = 0;
    size_t clusters_used = 0;
    size_t strands_recovered = 0;
    size_t duplicate_addresses = 0;
    size_t index_rejects = 0;
    size_t units_attempted = 0;
    size_t units_decoded = 0;
    size_t units_failed = 0;
    size_t symbol_errors_corrected = 0;
    size_t erasures_filled = 0;
    size_t candidate_retries = 0;

    /** Field-wise equality (used by the thread-invariance tests). */
    bool operator==(const DecodeStats &) const = default;
};

/** All decoded versions of one block. */
struct BlockVersions
{
    /** version -> descrambled full unit payload. */
    std::map<unsigned, Bytes> versions;

    bool operator==(const BlockVersions &) const = default;
};

class Decoder
{
  public:
    Decoder(const Partition &partition, DecoderParams params);

    /**
     * Decode every unit present in the reads. Keys are block ids;
     * each entry maps version slots to descrambled unit payloads.
     */
    std::map<uint64_t, BlockVersions> decodeAll(
        const std::vector<sim::Read> &reads,
        DecodeStats *stats = nullptr) const;

    /**
     * decodeAll through a caller-owned pool. Used by DecodeService to
     * share one long-lived pool across submissions instead of paying
     * a pool spawn per call; DecoderParams::threads is ignored in
     * favor of the pool's size. Output is byte-identical to the
     * pool-per-call overload for any pool size.
     */
    std::map<uint64_t, BlockVersions> decodeAll(
        const std::vector<sim::Read> &reads, DecodeStats *stats,
        ThreadPool &pool) const;

    /**
     * Decode one block's final contents: version 0 plus the update
     * chain applied in slot order. Returns nullopt if version 0 is
     * not decodable. If the chain ends in an overflow pointer, the
     * pointer is reported through @p overflow_block (the caller must
     * fetch that block in another round trip).
     */
    std::optional<Bytes> decodeBlock(
        const std::vector<sim::Read> &reads, uint64_t block,
        DecodeStats *stats = nullptr,
        std::optional<uint64_t> *overflow_block = nullptr) const;

    /**
     * Apply a decoded update chain to base contents. Versions must
     * be the descrambled unit payloads of one block. Returns the
     * updated block contents and optionally the overflow pointer.
     */
    Bytes applyUpdateChain(
        const Bytes &base, const BlockVersions &chain,
        std::optional<uint64_t> *overflow_block = nullptr) const;

    /**
     * Expires when this decoder is destroyed. DecodeService captures
     * it at submission and refuses (FatalError through the future) to
     * run a request whose decoder died while queued — turning the
     * "decoder must outlive its future" contract from silent UB into
     * a typed failure. Best-effort: a decoder destroyed *while* its
     * request is decoding is still a caller bug.
     */
    std::weak_ptr<const void> livenessToken() const { return liveness_; }

  private:
    const Partition &partition_;
    DecoderParams params_;

    /** Anchor for livenessToken(); dies with the decoder. */
    std::shared_ptr<const void> liveness_ = std::make_shared<int>(0);

    struct Candidate
    {
        Bytes payload;

        /** Reads supporting the reconstruction. */
        size_t cluster_size = 0;

        /** Tree-walk mismatches of the decoded index; misprimed
         *  amplicons typically decode with 1-2 mismatches while true
         *  strands decode exactly, so this ranks candidates. */
        size_t index_mismatches = 0;
    };

    struct Recovered
    {
        /** Sorted best-first: fewest index mismatches, then most
         *  supporting reads. */
        std::vector<Candidate> candidates;
    };

    /** Steps 1-3: reads -> per-address payload candidates. */
    std::map<std::tuple<uint64_t, unsigned, unsigned>, Recovered>
    recoverStrands(const std::vector<sim::Read> &reads,
                   DecodeStats *stats, ThreadPool &pool) const;
};

} // namespace dnastore::core

#endif // DNASTORE_CORE_DECODER_H
