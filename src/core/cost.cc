// CostModel is header-only; this translation unit anchors the library.
#include "core/cost.h"
