/**
 * @file
 * Baseline DNA object store, modelling prior work [23] (paper
 * Sections 1, 5.1, 7.1 and 7.5).
 *
 * In the baseline architecture a pair of main primers defines one
 * *object* of arbitrary size. The internal index is dense (maximum
 * information density, no PCR compatibility), so the only random
 * access is retrieving the whole object with the main primers and
 * discarding unwanted reads in software. Updates are "naive"
 * (Section 5.1): synthesize a complete updated copy of the object
 * under a brand-new primer pair, wasting one primer pair and a full
 * re-synthesis per update.
 */

#ifndef DNASTORE_BASELINE_OBJECT_STORE_H
#define DNASTORE_BASELINE_OBJECT_STORE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/block_device.h"
#include "core/config.h"
#include "core/cost.h"
#include "core/update.h"
#include "ecc/encoding_unit.h"
#include "sim/pcr.h"
#include "sim/pool.h"
#include "sim/sequencer.h"
#include "sim/synthesis.h"

namespace dnastore::baseline {

using core::Bytes;

/** Geometry of the baseline strand (dense index, no version base). */
struct ObjectStoreParams
{
    size_t strand_length = 150;
    size_t primer_length = 20;
    dna::Base sync_base = dna::Base::A;

    /** Dense unit-index bases (5 densely address 1024 units). */
    size_t index_length = 5;

    unsigned rs_n = 15;
    unsigned rs_k = 11;
    size_t unit_data_bytes = 256;

    uint64_t scramble_seed = 0xba5e11fe;
    sim::SynthesisParams synthesis;
    sim::PcrParams pcr;
    sim::SequencerParams sequencer;
    core::CostParams costs;
    double coverage = 20.0;

    /** Payload bases per strand. */
    size_t
    payloadBases() const
    {
        size_t overhead =
            2 * primer_length + 1 + index_length + 2;
        size_t payload = strand_length - overhead;
        return payload - payload % 4;
    }

    size_t columnBytes() const { return payloadBases() / 4; }
    size_t unitCapacityBytes() const { return columnBytes() * rs_k; }
};

/**
 * One object (one primer pair) in the baseline store.
 */
class ObjectStore
{
  public:
    ObjectStore(ObjectStoreParams params, dna::Sequence forward,
                dna::Sequence reverse, uint32_t file_id = 1);

    /** Encode + synthesize; the whole object is one primer scope. */
    void writeObject(const Bytes &data);

    /**
     * Retrieve the whole object: PCR with the main primers, sequence
     * every molecule at the configured coverage, decode all units.
     */
    std::optional<Bytes> readObject();

    /**
     * Naive update (Section 5.1): apply the edit to unit @p unit in
     * software, re-synthesize the *entire* object under the new
     * primer pair, and abandon (but keep in the tube) the old copy.
     */
    void naiveUpdate(uint64_t unit, const core::UpdateOp &op,
                     dna::Sequence new_forward,
                     dna::Sequence new_reverse);

    const sim::Pool &pool() const { return pool_; }
    core::CostModel &costs() { return costs_; }
    const core::CostModel &costs() const { return costs_; }

    /** Unique molecules in the current (live) object copy. */
    size_t liveMolecules() const { return live_molecules_; }

    /** Number of primer pairs consumed so far. */
    unsigned primerPairsUsed() const { return primer_pairs_used_; }

    uint64_t unitCount() const { return unit_count_; }

  private:
    ObjectStoreParams params_;
    dna::Sequence forward_;
    dna::Sequence reverse_;
    uint32_t file_id_;
    ecc::EncodingUnitCodec codec_;
    sim::Pool pool_;
    core::CostModel costs_;
    Bytes contents_;
    uint64_t unit_count_ = 0;
    size_t live_molecules_ = 0;
    unsigned primer_pairs_used_ = 1;
    unsigned generation_ = 0;

    std::vector<sim::DesignedMolecule> encodeObject(
        const Bytes &data) const;
    dna::Sequence denseIndex(uint64_t unit) const;
};

} // namespace dnastore::baseline

#endif // DNASTORE_BASELINE_OBJECT_STORE_H
