#include "baseline/object_store.h"

#include <algorithm>

#include "cluster/clusterer.h"
#include "codec/base4.h"
#include "codec/base_codec.h"
#include "codec/scrambler.h"
#include "common/rng.h"
#include "consensus/bma.h"
#include "dna/distance.h"

namespace dnastore::baseline {

ObjectStore::ObjectStore(ObjectStoreParams params, dna::Sequence forward,
                         dna::Sequence reverse, uint32_t file_id)
    : params_(params), forward_(std::move(forward)),
      reverse_(std::move(reverse)), file_id_(file_id),
      codec_(params.rs_n, params.rs_k, params.columnBytes()),
      costs_(params.costs)
{
    fatalIf(params_.unit_data_bytes > params_.unitCapacityBytes(),
            "unit data exceeds baseline unit capacity");
}

dna::Sequence
ObjectStore::denseIndex(uint64_t unit) const
{
    codec::Digits digits = codec::toBase4(unit, params_.index_length);
    std::vector<dna::Base> bases;
    bases.reserve(digits.size());
    for (uint8_t digit : digits)
        bases.push_back(static_cast<dna::Base>(digit));
    return dna::Sequence(bases);
}

std::vector<sim::DesignedMolecule>
ObjectStore::encodeObject(const Bytes &data) const
{
    codec::Scrambler scrambler(params_.scramble_seed);
    uint64_t units = (data.size() + params_.unit_data_bytes - 1) /
                     params_.unit_data_bytes;
    fatalIf(units > (uint64_t{1} << (2 * params_.index_length)),
            "object too large for the dense index space");

    std::vector<sim::DesignedMolecule> molecules;
    molecules.reserve(units * params_.rs_n);
    dna::Sequence reverse_site = reverse_.reverseComplement();
    for (uint64_t unit = 0; unit < units; ++unit) {
        size_t offset = unit * params_.unit_data_bytes;
        size_t len =
            std::min(params_.unit_data_bytes, data.size() - offset);
        Bytes unit_data(
            data.begin() + static_cast<ptrdiff_t>(offset),
            data.begin() + static_cast<ptrdiff_t>(offset + len));
        unit_data.resize(params_.unitCapacityBytes(), 0);
        scrambler.apply(unit_data, unit + generation_ * (uint64_t{1} << 40));

        std::vector<Bytes> columns = codec_.encode(unit_data);
        for (unsigned c = 0; c < columns.size(); ++c) {
            dna::Sequence strand = forward_;
            strand.push_back(params_.sync_base);
            strand += denseIndex(unit);
            codec::Digits col_digits = codec::toBase4(c, 2);
            for (uint8_t digit : col_digits)
                strand.push_back(static_cast<dna::Base>(digit));
            strand += codec::bytesToBases(columns[c]);
            // Pad the strand to full length with scrambled filler so
            // every baseline strand is strand_length bases.
            while (strand.size() + reverse_site.size() <
                   params_.strand_length) {
                strand.push_back(dna::Base::A);
            }
            strand += reverse_site;

            sim::DesignedMolecule molecule;
            molecule.seq = std::move(strand);
            molecule.info.file_id = file_id_;
            molecule.info.block = unit;
            molecule.info.version = static_cast<uint8_t>(generation_);
            molecule.info.column = static_cast<uint8_t>(c);
            molecules.push_back(std::move(molecule));
        }
    }
    return molecules;
}

void
ObjectStore::writeObject(const Bytes &data)
{
    contents_ = data;
    unit_count_ = (data.size() + params_.unit_data_bytes - 1) /
                  params_.unit_data_bytes;
    std::vector<sim::DesignedMolecule> order = encodeObject(data);
    live_molecules_ = order.size();
    sim::Pool fresh = sim::synthesize(order, params_.synthesis);
    pool_.mixIn(fresh);
    costs_.recordSynthesis(order.size(), params_.strand_length);
}

std::optional<Bytes>
ObjectStore::readObject()
{
    fatalIf(pool_.speciesCount() == 0, "object store is empty");

    sim::Pool product = sim::runPcr(
        pool_, {sim::PcrPrimer{forward_, 1.0}}, reverse_, params_.pcr);
    size_t budget = static_cast<size_t>(
        params_.coverage * static_cast<double>(pool_.speciesCount()));
    sim::SequencerParams sequencer = params_.sequencer;
    sequencer.seed =
        Rng::deriveSeed(params_.sequencer.seed, costs_.readsSequenced());
    costs_.recordSequencing(budget);
    costs_.recordRoundTrip();
    std::vector<sim::Read> reads =
        sim::sequencePool(product, budget, sequencer);

    // Filter by primer, cluster, reconstruct.
    dna::Sequence stem = forward_;
    stem.push_back(params_.sync_base);
    std::vector<dna::Sequence> filtered;
    for (const sim::Read &read : reads) {
        if (dna::alignPrimerToPrefix(stem, read.seq, 3).distance !=
            dna::kDistanceInfinity) {
            filtered.push_back(read.seq);
        }
    }
    if (filtered.empty())
        return std::nullopt;

    cluster::ClustererParams cluster_params;
    std::vector<cluster::Cluster> clusters =
        cluster::clusterReads(filtered, cluster_params);

    std::map<std::pair<uint64_t, unsigned>, Bytes> recovered;
    size_t header = params_.primer_length + 1;
    for (const cluster::Cluster &c : clusters) {
        if (c.size() < 2)
            break;
        std::vector<dna::Sequence> members;
        for (size_t idx : c.members)
            members.push_back(filtered[idx]);
        dna::Sequence strand = consensus::bmaDoubleSided(
            members, params_.strand_length);

        codec::Digits digits;
        for (size_t i = 0; i < params_.index_length; ++i) {
            digits.push_back(static_cast<uint8_t>(
                dna::charToBase(strand[header + i])));
        }
        uint64_t unit = codec::fromBase4(digits);
        codec::Digits col_digits = {
            static_cast<uint8_t>(dna::charToBase(
                strand[header + params_.index_length])),
            static_cast<uint8_t>(dna::charToBase(
                strand[header + params_.index_length + 1]))};
        unsigned column =
            static_cast<unsigned>(codec::fromBase4(col_digits));
        if (unit >= unit_count_ || column >= params_.rs_n)
            continue;
        dna::Sequence payload =
            strand.substr(header + params_.index_length + 2,
                          params_.payloadBases());
        recovered.try_emplace({unit, column},
                              codec::basesToBytes(payload));
    }

    // Unit decode + descramble.
    codec::Scrambler scrambler(params_.scramble_seed);
    Bytes result;
    result.reserve(unit_count_ * params_.unit_data_bytes);
    for (uint64_t unit = 0; unit < unit_count_; ++unit) {
        std::vector<std::optional<Bytes>> columns(params_.rs_n);
        for (unsigned c = 0; c < params_.rs_n; ++c) {
            auto it = recovered.find({unit, c});
            if (it != recovered.end())
                columns[c] = it->second;
        }
        ecc::UnitDecodeResult decoded = codec_.decode(columns);
        if (!decoded.ok())
            return std::nullopt;
        Bytes unit_data = scrambler.applied(
            *decoded.data, unit + generation_ * (uint64_t{1} << 40));
        unit_data.resize(params_.unit_data_bytes);
        result.insert(result.end(), unit_data.begin(), unit_data.end());
    }
    result.resize(contents_.size());
    return result;
}

void
ObjectStore::naiveUpdate(uint64_t unit, const core::UpdateOp &op,
                         dna::Sequence new_forward,
                         dna::Sequence new_reverse)
{
    fatalIf(unit >= unit_count_, "unit out of range");

    // Apply the edit in software to the authoritative copy.
    size_t offset = unit * params_.unit_data_bytes;
    size_t len =
        std::min(params_.unit_data_bytes, contents_.size() - offset);
    Bytes block(contents_.begin() + static_cast<ptrdiff_t>(offset),
                contents_.begin() + static_cast<ptrdiff_t>(offset + len));
    Bytes edited = op.apply(block, len);
    std::copy(edited.begin(), edited.end(),
              contents_.begin() + static_cast<ptrdiff_t>(offset));

    // Re-synthesize everything under a fresh primer pair; the old
    // data stays in the tube but is no longer addressed.
    forward_ = std::move(new_forward);
    reverse_ = std::move(new_reverse);
    ++primer_pairs_used_;
    ++generation_;
    writeObject(contents_);
}

} // namespace dnastore::baseline
