#include "cluster/clusterer.h"

#include <algorithm>

#include "common/arena.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "dna/distance.h"

namespace dnastore::cluster {

namespace {

/**
 * MinHash signatures of a read's q-gram set, one per hash salt. The
 * rolling 2-bit q-gram packing and splitMix64 mixing run in the
 * vectorized minhash kernel (all salt lanes advance together); reads
 * shorter than one q-gram have an empty q-gram set and fall back to
 * hashing the whole string, exactly as before.
 */
void
minHashSignatures(const dna::Sequence &read, size_t q,
                  const uint64_t *salts, size_t num_salts,
                  uint64_t *out)
{
    const std::string &s = read.str();
    if (s.size() < q) {
        for (size_t b = 0; b < num_salts; ++b)
            out[b] = fnv1a(s) ^ salts[b];
        return;
    }
    const uint64_t mask = (q * 2 >= 64) ? ~uint64_t{0}
                                        : ((uint64_t{1} << (q * 2)) - 1);
    Arena &arena = Arena::scratch();
    ArenaScope scope(arena);
    uint8_t *bases = arena.allocArray<uint8_t>(s.size());
    for (size_t i = 0; i < s.size(); ++i)
        bases[i] = static_cast<uint8_t>(dna::charToBase(s[i]));
    simd::kernels().minhash(bases, s.size(), q, mask, salts,
                            num_salts, out);
}

} // namespace

OnlineClusterer::OnlineClusterer(ClustererParams params)
    : params_(params)
{
    Rng rng = Rng::deriveStream(params_.seed, "clusterer");
    salts_.resize(params_.signatures);
    for (uint64_t &salt : salts_)
        salt = rng.next();
    buckets_.resize(params_.signatures);
    band_order_.resize(params_.signatures);
    signature_scratch_.resize(params_.signatures);
}

size_t
OnlineClusterer::assign(const dna::Sequence &read)
{
    minHashSignatures(read, params_.qgram, salts_.data(),
                      salts_.size(), signature_scratch_.data());
    return assignWithSignatures(read, signature_scratch_.data());
}

size_t
OnlineClusterer::assignWithSignatures(const dna::Sequence &read,
                                      const uint64_t *signature)
{
    const size_t bands = salts_.size();
    const size_t r = reads_.size();
    reads_.push_back(read);

    candidates_.clear();
    // Gather up to max_candidates candidates — a cap across all
    // bands, not per band. The bands are drained round-robin
    // (entry i of every band's bucket before entry i + 1 of any)
    // so that one hot bucket cannot starve the other bands'
    // entries out of the capped budget: a cluster that is only
    // reachable through a sparser band stays reachable.
    size_t depth = 0;
    for (size_t b = 0; b < bands; ++b) {
        auto it = buckets_[b].find(signature[b]);
        band_order_[b] =
            it == buckets_[b].end() ? nullptr : &it->second.order;
        if (band_order_[b])
            depth = std::max(depth, band_order_[b]->size());
    }
    for (size_t i = 0;
         i < depth && candidates_.size() < params_.max_candidates;
         ++i) {
        for (size_t b = 0; b < bands; ++b) {
            if (!band_order_[b] || i >= band_order_[b]->size())
                continue;
            size_t cluster_idx = (*band_order_[b])[i];
            if (candidate_stamp_[cluster_idx] != r + 1) {
                candidate_stamp_[cluster_idx] = r + 1;
                candidates_.push_back(cluster_idx);
                if (candidates_.size() >= params_.max_candidates)
                    break;
            }
        }
    }

    size_t assigned = SIZE_MAX;
    for (size_t cluster_idx : candidates_) {
        const dna::Sequence &rep =
            reads_[clusters_[cluster_idx].representative];
        if (dna::bandedLevenshtein(read, rep,
                                   params_.distance_threshold) !=
            dna::kDistanceInfinity) {
            assigned = cluster_idx;
            break;
        }
    }

    if (assigned == SIZE_MAX) {
        assigned = clusters_.size();
        Cluster cluster;
        cluster.representative = r;
        clusters_.push_back(cluster);
        candidate_stamp_.push_back(0);
    }
    clusters_[assigned].members.push_back(r);
    // Index every member's signatures, not only the
    // representative's: a later read whose MinHash differs from
    // the representative can still reach the cluster through any
    // earlier member (improves recall under IDS noise).
    for (size_t b = 0; b < bands; ++b)
        buckets_[b][signature[b]].insert(assigned);
    return assigned;
}

std::vector<size_t>
OnlineClusterer::assignBatch(const std::vector<dna::Sequence> &reads,
                             ThreadPool *pool)
{
    const size_t bands = salts_.size();
    // Phase 1: per-read MinHash signatures. Each read's row is
    // independent, so this fans out across the pool; the signatures
    // depend only on (read, salt), never on scheduling.
    std::vector<uint64_t> signatures(reads.size() * bands);
    parallelFor(pool, reads.size(), [&](size_t r) {
        minHashSignatures(reads[r], params_.qgram, salts_.data(),
                          bands, signatures.data() + r * bands);
    });

    // Phase 2: sequential greedy bucket/assign in chunk order. This
    // pass defines the clustering (each read joins the first
    // candidate within the distance threshold, in bucket order) and
    // therefore stays single-threaded; with precomputed signatures
    // it is pure hash lookups plus the banded alignments.
    std::vector<size_t> assigned(reads.size());
    for (size_t r = 0; r < reads.size(); ++r) {
        // .data() arithmetic, not operator[]: with zero bands the
        // offset stays 0 and the pointer is never dereferenced.
        assigned[r] = assignWithSignatures(
            reads[r], signatures.data() + r * bands);
    }
    return assigned;
}

std::vector<Cluster>
OnlineClusterer::sortedClusters() const
{
    std::vector<Cluster> sorted = clusters_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Cluster &a, const Cluster &b) {
                  return a.size() > b.size();
              });
    return sorted;
}

std::vector<Cluster>
clusterReads(const std::vector<dna::Sequence> &reads,
             const ClustererParams &params, ThreadPool *pool)
{
    OnlineClusterer clusterer(params);
    clusterer.assignBatch(reads, pool);
    return clusterer.sortedClusters();
}

} // namespace dnastore::cluster
