#include "cluster/clusterer.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "dna/distance.h"

namespace dnastore::cluster {

namespace {

/** MinHash signature of a read's q-gram set under one hash salt. */
uint64_t
minHashSignature(const dna::Sequence &read, size_t q, uint64_t salt)
{
    const std::string &s = read.str();
    if (s.size() < q)
        return fnv1a(s) ^ salt;
    uint64_t best = UINT64_MAX;
    // Rolling 2-bit packing of the q-gram, mixed with the salt.
    uint64_t packed = 0;
    const uint64_t mask = (q * 2 >= 64) ? ~uint64_t{0}
                                        : ((uint64_t{1} << (q * 2)) - 1);
    for (size_t i = 0; i < s.size(); ++i) {
        packed = ((packed << 2) |
                  static_cast<uint64_t>(dna::charToBase(s[i]))) &
                 mask;
        if (i + 1 < q)
            continue;
        uint64_t state = packed ^ salt;
        uint64_t hashed = splitMix64(state);
        best = std::min(best, hashed);
    }
    return best;
}

/**
 * One signature band's bucket: the clusters indexed under one
 * signature value. `order` preserves first-insertion order (the order
 * candidates are gathered in, which the greedy assignment depends
 * on); `members` makes the duplicate check O(1) where a linear scan
 * was quadratic for hot buckets.
 */
struct Bucket
{
    std::vector<size_t> order;
    std::unordered_set<size_t> members;

    void
    insert(size_t cluster_idx)
    {
        if (members.insert(cluster_idx).second)
            order.push_back(cluster_idx);
    }
};

} // namespace

std::vector<Cluster>
clusterReads(const std::vector<dna::Sequence> &reads,
             const ClustererParams &params, ThreadPool *pool)
{
    Rng rng = Rng::deriveStream(params.seed, "clusterer");
    const size_t bands = params.signatures;
    std::vector<uint64_t> salts(bands);
    for (uint64_t &salt : salts)
        salt = rng.next();

    // Phase 1: per-read MinHash signatures. Each read's row is
    // independent, so this fans out across the pool; the signatures
    // depend only on (read, salt), never on scheduling.
    std::vector<uint64_t> signatures(reads.size() * bands);
    parallelFor(pool, reads.size(), [&](size_t r) {
        for (size_t b = 0; b < bands; ++b) {
            signatures[r * bands + b] =
                minHashSignature(reads[r], params.qgram, salts[b]);
        }
    });

    // Phase 2: sequential greedy bucket/assign. This pass defines the
    // clustering (each read joins the first candidate within the
    // distance threshold, in bucket order) and therefore stays
    // single-threaded; with precomputed signatures it is pure hash
    // lookups plus the banded alignments.
    std::vector<Cluster> clusters;
    std::vector<std::unordered_map<uint64_t, Bucket>> buckets(bands);
    std::vector<size_t> candidates;
    // candidate_stamp[c] == r + 1 iff cluster c is already a
    // candidate for read r: an O(1) dedup that needs no per-read
    // clearing.
    std::vector<size_t> candidate_stamp;

    std::vector<const std::vector<size_t> *> band_order(bands);
    for (size_t r = 0; r < reads.size(); ++r) {
        // .data() arithmetic, not operator[]: with zero bands the
        // offset stays 0 and the pointer is never dereferenced.
        const uint64_t *signature = signatures.data() + r * bands;
        candidates.clear();
        // Gather up to max_candidates candidates — a cap across all
        // bands, not per band. The bands are drained round-robin
        // (entry i of every band's bucket before entry i + 1 of any)
        // so that one hot bucket cannot starve the other bands'
        // entries out of the capped budget: a cluster that is only
        // reachable through a sparser band stays reachable.
        size_t depth = 0;
        for (size_t b = 0; b < bands; ++b) {
            auto it = buckets[b].find(signature[b]);
            band_order[b] =
                it == buckets[b].end() ? nullptr : &it->second.order;
            if (band_order[b])
                depth = std::max(depth, band_order[b]->size());
        }
        for (size_t i = 0;
             i < depth && candidates.size() < params.max_candidates;
             ++i) {
            for (size_t b = 0; b < bands; ++b) {
                if (!band_order[b] || i >= band_order[b]->size())
                    continue;
                size_t cluster_idx = (*band_order[b])[i];
                if (candidate_stamp[cluster_idx] != r + 1) {
                    candidate_stamp[cluster_idx] = r + 1;
                    candidates.push_back(cluster_idx);
                    if (candidates.size() >= params.max_candidates)
                        break;
                }
            }
        }

        size_t assigned = SIZE_MAX;
        for (size_t cluster_idx : candidates) {
            const dna::Sequence &rep =
                reads[clusters[cluster_idx].representative];
            if (dna::bandedLevenshtein(reads[r], rep,
                                       params.distance_threshold) !=
                dna::kDistanceInfinity) {
                assigned = cluster_idx;
                break;
            }
        }

        if (assigned == SIZE_MAX) {
            assigned = clusters.size();
            Cluster cluster;
            cluster.representative = r;
            clusters.push_back(cluster);
            candidate_stamp.push_back(0);
        }
        clusters[assigned].members.push_back(r);
        // Index every member's signatures, not only the
        // representative's: a later read whose MinHash differs from
        // the representative can still reach the cluster through any
        // earlier member (improves recall under IDS noise).
        for (size_t b = 0; b < bands; ++b)
            buckets[b][signature[b]].insert(assigned);
    }

    std::sort(clusters.begin(), clusters.end(),
              [](const Cluster &a, const Cluster &b) {
                  return a.size() > b.size();
              });
    return clusters;
}

} // namespace dnastore::cluster
