#include "cluster/clusterer.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "dna/distance.h"

namespace dnastore::cluster {

namespace {

/** MinHash signature of a read's q-gram set under one hash salt. */
uint64_t
minHashSignature(const dna::Sequence &read, size_t q, uint64_t salt)
{
    const std::string &s = read.str();
    if (s.size() < q)
        return fnv1a(s) ^ salt;
    uint64_t best = UINT64_MAX;
    // Rolling 2-bit packing of the q-gram, mixed with the salt.
    uint64_t packed = 0;
    const uint64_t mask = (q * 2 >= 64) ? ~uint64_t{0}
                                        : ((uint64_t{1} << (q * 2)) - 1);
    for (size_t i = 0; i < s.size(); ++i) {
        packed = ((packed << 2) |
                  static_cast<uint64_t>(dna::charToBase(s[i]))) &
                 mask;
        if (i + 1 < q)
            continue;
        uint64_t state = packed ^ salt;
        uint64_t hashed = splitMix64(state);
        best = std::min(best, hashed);
    }
    return best;
}

} // namespace

std::vector<Cluster>
clusterReads(const std::vector<dna::Sequence> &reads,
             const ClustererParams &params)
{
    Rng rng = Rng::deriveStream(params.seed, "clusterer");
    std::vector<uint64_t> salts(params.signatures);
    for (uint64_t &salt : salts)
        salt = rng.next();

    std::vector<Cluster> clusters;
    // For each signature band: bucket value -> cluster indexes.
    std::vector<std::unordered_map<uint64_t, std::vector<size_t>>>
        buckets(params.signatures);
    std::vector<size_t> candidates;

    for (size_t r = 0; r < reads.size(); ++r) {
        std::vector<uint64_t> signature(params.signatures);
        candidates.clear();
        for (size_t b = 0; b < params.signatures; ++b) {
            signature[b] =
                minHashSignature(reads[r], params.qgram, salts[b]);
            auto it = buckets[b].find(signature[b]);
            if (it == buckets[b].end())
                continue;
            for (size_t cluster_idx : it->second) {
                if (std::find(candidates.begin(), candidates.end(),
                              cluster_idx) == candidates.end()) {
                    candidates.push_back(cluster_idx);
                }
                if (candidates.size() >= params.max_candidates)
                    break;
            }
        }

        size_t assigned = SIZE_MAX;
        for (size_t cluster_idx : candidates) {
            const dna::Sequence &rep =
                reads[clusters[cluster_idx].representative];
            if (dna::bandedLevenshtein(reads[r], rep,
                                       params.distance_threshold) !=
                dna::kDistanceInfinity) {
                assigned = cluster_idx;
                break;
            }
        }

        if (assigned == SIZE_MAX) {
            assigned = clusters.size();
            Cluster cluster;
            cluster.representative = r;
            clusters.push_back(cluster);
        }
        clusters[assigned].members.push_back(r);
        // Index every member's signatures, not only the
        // representative's: a later read whose MinHash differs from
        // the representative can still reach the cluster through any
        // earlier member (improves recall under IDS noise).
        for (size_t b = 0; b < params.signatures; ++b) {
            std::vector<size_t> &bucket = buckets[b][signature[b]];
            if (std::find(bucket.begin(), bucket.end(), assigned) ==
                bucket.end()) {
                bucket.push_back(assigned);
            }
        }
    }

    std::sort(clusters.begin(), clusters.end(),
              [](const Cluster &a, const Cluster &b) {
                  return a.size() > b.size();
              });
    return clusters;
}

} // namespace dnastore::cluster
