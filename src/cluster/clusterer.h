/**
 * @file
 * Read clustering by edit-distance similarity (Rashtchian et al. [28]
 * style, as used in paper Section 6.6 step 2).
 *
 * Reads originating from the same synthesized molecule differ only by
 * IDS sequencing noise, so they sit within a small edit-distance ball.
 * The clusterer buckets reads by randomized q-gram (MinHash)
 * signatures and then greedily assigns each read to the first cluster
 * representative within the distance threshold, creating a new
 * cluster otherwise — a single-pass approximation of the
 * distributed algorithm in [28] that is exact for well-separated
 * clusters (which scrambled payloads guarantee with high
 * probability).
 *
 * The greedy pass is inherently online: each read's assignment
 * depends only on the clusters built from the reads before it.
 * OnlineClusterer exposes exactly that as a session object — reads
 * stream in through assign()/assignBatch() and the cluster state
 * (including the MinHash band index) persists between calls — and
 * the one-shot clusterReads() is now a thin wrapper that feeds one
 * batch and sorts, so the streaming and batch paths cannot drift.
 */

#ifndef DNASTORE_CLUSTER_CLUSTERER_H
#define DNASTORE_CLUSTER_CLUSTERER_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dna/sequence.h"

namespace dnastore {
class ThreadPool;
}

namespace dnastore::cluster {

/** One cluster: indexes into the input read stream. */
struct Cluster
{
    std::vector<size_t> members;

    /** Index of the representative read. */
    size_t representative = 0;

    size_t size() const { return members.size(); }
};

/** Clustering parameters. */
struct ClustererParams
{
    /** q-gram length for the MinHash signature. */
    size_t qgram = 8;

    /** Number of independent hash signatures (bands). */
    size_t signatures = 4;

    /** Maximum edit distance between a read and its cluster
     *  representative. */
    size_t distance_threshold = 8;

    /** Cap on representatives compared per read, enforced across all
     *  signature bands (guards worst-case quadratic behaviour on
     *  adversarial inputs). */
    size_t max_candidates = 64;

    uint64_t seed = 17;
};

/**
 * Incremental clusterer: reads stream in one (or a batch) at a time
 * and each is placed into an existing or fresh cluster immediately,
 * by the same deterministic greedy rule the one-shot pass applies —
 * for any split of one read sequence into assign()/assignBatch()
 * calls, the final cluster state is identical to clustering the
 * concatenated sequence in one shot.
 *
 * The clusterer owns a copy of every read it has seen (the banded
 * alignments against cluster representatives, and the consensus
 * stage downstream, need the bases again later), so callers may hand
 * in transient chunks.
 */
class OnlineClusterer
{
  public:
    explicit OnlineClusterer(ClustererParams params);

    /**
     * Place the next read of the stream. Returns the index of the
     * cluster it joined (possibly a fresh one). The read's stream
     * index is readCount() before the call.
     */
    size_t assign(const dna::Sequence &read);

    /**
     * Assign a chunk in order; out[i] is the cluster index read i of
     * the chunk joined. The per-read MinHash signatures fan out
     * across @p pool when non-null; the greedy assignment itself is
     * sequential in chunk order, so the result is byte-identical for
     * any thread count — and identical to assign() read by read.
     */
    std::vector<size_t> assignBatch(
        const std::vector<dna::Sequence> &reads,
        ThreadPool *pool = nullptr);

    /** Reads streamed in so far, in arrival order. */
    const std::vector<dna::Sequence> &reads() const { return reads_; }

    size_t readCount() const { return reads_.size(); }

    /** Clusters in creation order (NOT sorted by size). */
    const std::vector<Cluster> &clusters() const { return clusters_; }

    /**
     * Clusters sorted by decreasing size — the order the decoder
     * consumes them in (Section 8), and exactly what clusterReads()
     * returns for the same read sequence.
     */
    std::vector<Cluster> sortedClusters() const;

  private:
    /** Assign with this read's precomputed band signatures. */
    size_t assignWithSignatures(const dna::Sequence &read,
                                const uint64_t *signature);

    /** One signature band's bucket: the clusters indexed under one
     *  signature value. `order` preserves first-insertion order (the
     *  order candidates are gathered in, which the greedy assignment
     *  depends on); `members` makes the duplicate check O(1) where a
     *  linear scan was quadratic for hot buckets. */
    struct Bucket
    {
        std::vector<size_t> order;
        std::unordered_set<size_t> members;

        void
        insert(size_t cluster_idx)
        {
            if (members.insert(cluster_idx).second)
                order.push_back(cluster_idx);
        }
    };

    ClustererParams params_;
    std::vector<uint64_t> salts_;
    std::vector<dna::Sequence> reads_;
    std::vector<Cluster> clusters_;
    std::vector<std::unordered_map<uint64_t, Bucket>> buckets_;

    /** candidate_stamp_[c] == r + 1 iff cluster c is already a
     *  candidate for stream read r: an O(1) dedup that needs no
     *  per-read clearing. */
    std::vector<size_t> candidate_stamp_;

    /** Scratch reused across assigns (no per-read allocation). */
    std::vector<size_t> candidates_;
    std::vector<const std::vector<size_t> *> band_order_;
    std::vector<uint64_t> signature_scratch_;
};

/**
 * Cluster reads by similarity; returns clusters sorted by decreasing
 * size (the order in which the decoder consumes them, Section 8).
 *
 * When @p pool is non-null the per-read MinHash signatures are
 * computed on the pool; the greedy assignment pass stays sequential,
 * so the result is byte-identical for any thread count.
 */
std::vector<Cluster> clusterReads(
    const std::vector<dna::Sequence> &reads,
    const ClustererParams &params, ThreadPool *pool = nullptr);

} // namespace dnastore::cluster

#endif // DNASTORE_CLUSTER_CLUSTERER_H
