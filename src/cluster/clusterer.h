/**
 * @file
 * Read clustering by edit-distance similarity (Rashtchian et al. [28]
 * style, as used in paper Section 6.6 step 2).
 *
 * Reads originating from the same synthesized molecule differ only by
 * IDS sequencing noise, so they sit within a small edit-distance ball.
 * The clusterer buckets reads by randomized q-gram (MinHash)
 * signatures and then greedily assigns each read to the first cluster
 * representative within the distance threshold, creating a new
 * cluster otherwise — a single-pass approximation of the
 * distributed algorithm in [28] that is exact for well-separated
 * clusters (which scrambled payloads guarantee with high
 * probability).
 */

#ifndef DNASTORE_CLUSTER_CLUSTERER_H
#define DNASTORE_CLUSTER_CLUSTERER_H

#include <cstdint>
#include <vector>

#include "dna/sequence.h"

namespace dnastore {
class ThreadPool;
}

namespace dnastore::cluster {

/** One cluster: indexes into the input read vector. */
struct Cluster
{
    std::vector<size_t> members;

    /** Index of the representative read. */
    size_t representative = 0;

    size_t size() const { return members.size(); }
};

/** Clustering parameters. */
struct ClustererParams
{
    /** q-gram length for the MinHash signature. */
    size_t qgram = 8;

    /** Number of independent hash signatures (bands). */
    size_t signatures = 4;

    /** Maximum edit distance between a read and its cluster
     *  representative. */
    size_t distance_threshold = 8;

    /** Cap on representatives compared per read, enforced across all
     *  signature bands (guards worst-case quadratic behaviour on
     *  adversarial inputs). */
    size_t max_candidates = 64;

    uint64_t seed = 17;
};

/**
 * Cluster reads by similarity; returns clusters sorted by decreasing
 * size (the order in which the decoder consumes them, Section 8).
 *
 * When @p pool is non-null the per-read MinHash signatures are
 * computed on the pool; the greedy assignment pass stays sequential,
 * so the result is byte-identical for any thread count.
 */
std::vector<Cluster> clusterReads(
    const std::vector<dna::Sequence> &reads,
    const ClustererParams &params, ThreadPool *pool = nullptr);

} // namespace dnastore::cluster

#endif // DNASTORE_CLUSTER_CLUSTERER_H
