#include "consensus/bma.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "common/arena.h"
#include "common/error.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace dnastore::consensus {

namespace {

using simd::kEditRowPad;
using simd::kInf16;

/**
 * Borrowed view of a member read, optionally traversed 3'->5'. The
 * backward BMA pass runs on these instead of materializing reversed
 * copies of every read, so a cluster's reconstruction allocates no
 * per-read strings.
 */
struct ReadView
{
    const char *data;
    size_t size;
    bool rev;

    char
    at(size_t k) const
    {
        return rev ? data[size - 1 - k] : data[k];
    }
};

/** One-sided BMA over views; writes expected_length chars to out. */
void
bmaForwardImpl(const ReadView *reads, size_t count,
               size_t expected_length, const BmaParams &params,
               Arena &arena, char *out)
{
    fatalIf(count == 0, "bmaForward: no reads");
    ArenaScope scope(arena);
    size_t *cursor = arena.allocArray<size_t>(count);
    // A read that disagreed at the previous position without
    // insertion evidence is "pending": the error class (substitution
    // vs deletion in the read) is decided one step later, when the
    // next majority is known.
    uint8_t *pending = arena.allocArray<uint8_t>(count);
    std::fill(cursor, cursor + count, size_t{0});
    std::fill(pending, pending + count, uint8_t{0});

    for (size_t j = 0; j < expected_length; ++j) {
        // Majority vote among live cursors.
        std::array<size_t, 4> votes = {0, 0, 0, 0};
        for (size_t i = 0; i < count; ++i) {
            if (cursor[i] < reads[i].size)
                ++votes[static_cast<size_t>(
                    dna::charToBase(reads[i].at(cursor[i])))];
        }
        size_t best = 0;
        for (size_t b = 1; b < 4; ++b) {
            if (votes[b] > votes[best])
                best = b;
        }
        dna::Base majority = static_cast<dna::Base>(best);
        out[j] = dna::baseToChar(majority);

        // Re-synchronize cursors.
        for (size_t i = 0; i < count; ++i) {
            if (cursor[i] >= reads[i].size)
                continue;
            const ReadView &read = reads[i];

            if (pending[i]) {
                pending[i] = 0;
                // The read disagreed at the previous position; the
                // error class is decided now that the next majority
                // is known:
                //   read[p]   == c -> deletion in the read (the
                //                     disputed base never existed);
                //   read[p+1] == c -> substitution (skip bad base);
                //   read[p+2] == c -> insertion (skip inserted base
                //                     and the disputed one).
                bool resolved = false;
                for (size_t k = 0; k <= params.lookahead; ++k) {
                    if (cursor[i] + k < read.size &&
                        dna::charToBase(read.at(cursor[i] + k)) ==
                            majority) {
                        cursor[i] += k + 1;
                        resolved = true;
                        break;
                    }
                }
                if (!resolved) {
                    // Two errors in a row: resign to advancing.
                    ++cursor[i];
                }
                continue;
            }

            if (dna::charToBase(read.at(cursor[i])) == majority) {
                ++cursor[i];
                continue;
            }
            pending[i] = 1;  // classify at the next position
        }
    }
}

/**
 * Scalar reference for one read's refinement votes — also the
 * fallback for inputs outside the uint16-safe bounds of the SIMD
 * path. The kernel path below must match it cell for cell.
 */
void
refineVotesGeneric(const char *draft, size_t n, const std::string &read,
                   size_t band, size_t *votes)
{
    const size_t m = read.size();
    const size_t inf = SIZE_MAX / 2;
    // Banded global alignment, draft rows x read columns.
    std::vector<std::vector<size_t>> cost(
        n + 1, std::vector<size_t>(m + 1, inf));
    cost[0][0] = 0;
    for (size_t j = 1; j <= std::min(m, band); ++j)
        cost[0][j] = j;
    for (size_t i = 1; i <= n; ++i) {
        size_t lo = i > band ? i - band : 1;
        size_t hi = std::min(m, i + band);
        if (i <= band)
            cost[i][0] = i;
        for (size_t j = lo; j <= hi; ++j) {
            size_t sub = cost[i - 1][j - 1] +
                         (draft[i - 1] == read[j - 1] ? 0 : 1);
            size_t del = cost[i - 1][j] + 1;  // draft base unread
            size_t ins = cost[i][j - 1] + 1;  // extra read base
            cost[i][j] = std::min({sub, del, ins});
        }
    }
    // Backtrace, voting draft positions matched to read bases.
    size_t i = n, j = m;
    if (cost[n][m] >= inf)
        return;  // read did not fit in the band; skip it
    while (i > 0 && j > 0) {
        size_t sub = cost[i - 1][j - 1] +
                     (draft[i - 1] == read[j - 1] ? 0 : 1);
        if (cost[i][j] == sub) {
            ++votes[(i - 1) * 4 +
                    static_cast<size_t>(dna::charToBase(read[j - 1]))];
            --i;
            --j;
        } else if (cost[i][j] == cost[i - 1][j] + 1) {
            --i;  // draft base deleted in the read: no vote
        } else {
            --j;  // inserted read base: no draft position
        }
    }
}

/**
 * One refinement pass over the draft: banded-align every read with
 * the SIMD edit_row kernel into a flat uint16 matrix in the arena,
 * backtrace for per-position votes, and write the majority draft to
 * out (n chars). The uint16 saturating matrix is observably identical
 * to the size_t reference: the backtrace only walks finite cells, and
 * saturated cells compare "not on the path" exactly like size_t
 * infinity does.
 */
void
refineDraftImpl(const char *draft, size_t n,
                const dna::Sequence *const *reads, size_t count,
                size_t band, Arena &arena, char *out)
{
    ArenaScope scope(arena);
    // votes[j * 4 + b]: aligned votes for base b at draft position j.
    size_t *votes = arena.allocArray<size_t>(n * 4);
    std::memset(votes, 0, n * 4 * sizeof(size_t));
    const simd::Kernels &kernels = simd::kernels();

    for (size_t rd = 0; rd < count; ++rd) {
        const std::string &read = reads[rd]->str();
        const size_t m = read.size();
        if (m == 0)
            continue;  // empty read never votes (j = 0 backtrace)
        if (n >= kInf16 / 2 || m >= kInf16 / 2) {
            refineVotesGeneric(draft, n, read, band, votes);
            continue;
        }

        ArenaScope read_scope(arena);
        // Full (n+1)-row matrix (the backtrace needs every row);
        // rows are stride-spaced so each kernel call can write its
        // kEditRowPad infinity tail in bounds. memset 0xFF fills
        // every untouched cell with kInf16, the uint16 analog of the
        // reference matrix's infinity fill.
        const size_t stride = m + 2 + kEditRowPad;
        uint16_t *cost = arena.allocArray<uint16_t>((n + 1) * stride);
        std::memset(cost, 0xFF, (n + 1) * stride * sizeof(uint16_t));
        uint8_t *rb = arena.allocArray<uint8_t>(m + kEditRowPad);
        std::memcpy(rb, read.data(), m);
        std::memset(rb + m, 0, kEditRowPad);

        cost[0] = 0;
        for (size_t j = 1; j <= std::min(m, band); ++j)
            cost[j] = static_cast<uint16_t>(j);
        for (size_t i = 1; i <= n; ++i) {
            size_t lo = i > band ? i - band : 1;
            size_t hi = std::min(m, i + band);
            if (lo > hi)
                break;  // band left the read; later rows stay inf
            uint16_t *prev = cost + (i - 1) * stride;
            uint16_t *curr = cost + i * stride;
            uint16_t edge = (lo == 1 && i <= band)
                                ? static_cast<uint16_t>(i)
                                : kInf16;
            curr[lo - 1] = edge;
            kernels.edit_row(rb, static_cast<uint8_t>(draft[i - 1]),
                             prev, curr, lo, hi, edge);
        }

        // Backtrace, voting draft positions matched to read bases.
        // uint32 arithmetic: a saturated (kInf16) predecessor plus
        // its step cost exceeds any finite cell, so it can never
        // claim the path — matching the size_t reference.
        size_t i = n, j = m;
        if (cost[n * stride + m] >= kInf16)
            continue;  // read did not fit in the band; skip it
        while (i > 0 && j > 0) {
            const uint16_t *row = cost + i * stride;
            const uint16_t *prow = cost + (i - 1) * stride;
            uint32_t here = row[j];
            uint32_t sub = uint32_t{prow[j - 1]} +
                           (draft[i - 1] == read[j - 1] ? 0u : 1u);
            if (here == sub) {
                ++votes[(i - 1) * 4 +
                        static_cast<size_t>(
                            dna::charToBase(read[j - 1]))];
                --i;
                --j;
            } else if (here == uint32_t{prow[j]} + 1) {
                --i;  // draft base deleted in the read: no vote
            } else {
                --j;  // inserted read base: no draft position
            }
        }
    }

    for (size_t j = 0; j < n; ++j) {
        size_t best = static_cast<size_t>(dna::charToBase(draft[j]));
        size_t best_votes = votes[j * 4 + best];
        for (size_t b = 0; b < 4; ++b) {
            if (votes[j * 4 + b] > best_votes) {
                best = b;
                best_votes = votes[j * 4 + b];
            }
        }
        out[j] = dna::baseToChar(static_cast<dna::Base>(best));
    }
}

/** Double-sided BMA + refinement over member pointers, all scratch
 *  (views, pass outputs, DP matrices) drawn from the arena. */
dna::Sequence
bmaDoubleSidedImpl(const dna::Sequence *const *members, size_t count,
                   size_t expected_length, const BmaParams &params,
                   Arena &arena)
{
    ArenaScope scope(arena);
    ReadView *fwd = arena.allocArray<ReadView>(count);
    ReadView *bwd = arena.allocArray<ReadView>(count);
    for (size_t i = 0; i < count; ++i) {
        fwd[i] = ReadView{members[i]->str().data(),
                          members[i]->size(), false};
        bwd[i] = ReadView{fwd[i].data, fwd[i].size, true};
    }
    char *fout = arena.allocArray<char>(expected_length);
    char *bout = arena.allocArray<char>(expected_length);
    bmaForwardImpl(fwd, count, expected_length, params, arena, fout);
    bmaForwardImpl(bwd, count, expected_length, params, arena, bout);

    // Splice: anchored-end halves from each pass (the backward pass
    // reconstructed the reversed strand, so its half is read from
    // the far end).
    size_t half = expected_length / 2 + expected_length % 2;
    char *spliced = arena.allocArray<char>(expected_length);
    std::memcpy(spliced, fout, half);
    for (size_t j = half; j < expected_length; ++j)
        spliced[j] = bout[expected_length - 1 - j];

    // Alignment-refinement passes repair any position where the BMA
    // cursors desynchronized.
    char *refined = arena.allocArray<char>(expected_length);
    for (size_t pass = 0; pass < params.refine_iterations; ++pass) {
        refineDraftImpl(spliced, expected_length, members, count,
                        params.refine_band, arena, refined);
        if (std::memcmp(refined, spliced, expected_length) == 0)
            break;
        std::swap(spliced, refined);
    }
    return dna::Sequence(std::string(spliced, expected_length));
}

} // namespace

dna::Sequence
bmaForward(const std::vector<dna::Sequence> &reads,
           size_t expected_length, const BmaParams &params)
{
    fatalIf(reads.empty(), "bmaForward: no reads");
    Arena &arena = Arena::scratch();
    ArenaScope scope(arena);
    ReadView *views = arena.allocArray<ReadView>(reads.size());
    for (size_t i = 0; i < reads.size(); ++i)
        views[i] =
            ReadView{reads[i].str().data(), reads[i].size(), false};
    char *out = arena.allocArray<char>(expected_length);
    bmaForwardImpl(views, reads.size(), expected_length, params,
                   arena, out);
    return dna::Sequence(std::string(out, expected_length));
}

dna::Sequence
refineDraft(const dna::Sequence &draft,
            const std::vector<dna::Sequence> &reads, size_t band)
{
    const size_t n = draft.size();
    if (n == 0)
        return draft;
    Arena &arena = Arena::scratch();
    ArenaScope scope(arena);
    const dna::Sequence **ptrs =
        arena.allocArray<const dna::Sequence *>(reads.size());
    for (size_t i = 0; i < reads.size(); ++i)
        ptrs[i] = &reads[i];
    char *out = arena.allocArray<char>(n);
    refineDraftImpl(draft.str().data(), n, ptrs, reads.size(), band,
                    arena, out);
    return dna::Sequence(std::string(out, n));
}

dna::Sequence
bmaDoubleSided(const std::vector<dna::Sequence> &reads,
               size_t expected_length, const BmaParams &params)
{
    Arena &arena = Arena::scratch();
    ArenaScope scope(arena);
    const dna::Sequence **ptrs =
        arena.allocArray<const dna::Sequence *>(reads.size());
    for (size_t i = 0; i < reads.size(); ++i)
        ptrs[i] = &reads[i];
    return bmaDoubleSidedImpl(ptrs, reads.size(), expected_length,
                              params, arena);
}

std::vector<dna::Sequence>
bmaDoubleSidedBatch(const std::vector<dna::Sequence> &reads,
                    const std::vector<std::vector<size_t>> &clusters,
                    size_t expected_length, const BmaParams &params,
                    ThreadPool *pool)
{
    std::vector<dna::Sequence> out(clusters.size());
    parallelFor(pool, clusters.size(), [&](size_t i) {
        if (clusters[i].empty())
            return;
        // Gather member *pointers* (not copies) into this worker's
        // arena; the reconstruction reads them in place.
        Arena &arena = Arena::scratch();
        ArenaScope scope(arena);
        const dna::Sequence **members =
            arena.allocArray<const dna::Sequence *>(
                clusters[i].size());
        for (size_t k = 0; k < clusters[i].size(); ++k)
            members[k] = &reads[clusters[i][k]];
        out[i] = bmaDoubleSidedImpl(members, clusters[i].size(),
                                    expected_length, params, arena);
    });
    return out;
}

} // namespace dnastore::consensus
