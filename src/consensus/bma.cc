#include "consensus/bma.h"

#include <algorithm>
#include <array>

#include "common/error.h"
#include "common/thread_pool.h"

namespace dnastore::consensus {

namespace {

/** Reverse a sequence (without complementing). */
dna::Sequence
reversed(const dna::Sequence &seq)
{
    std::string s = seq.str();
    std::reverse(s.begin(), s.end());
    return dna::Sequence(std::move(s));
}

} // namespace

dna::Sequence
bmaForward(const std::vector<dna::Sequence> &reads,
           size_t expected_length, const BmaParams &params)
{
    fatalIf(reads.empty(), "bmaForward: no reads");
    std::vector<size_t> cursor(reads.size(), 0);
    // A read that disagreed at the previous position without
    // insertion evidence is "pending": the error class (substitution
    // vs deletion in the read) is decided one step later, when the
    // next majority is known.
    std::vector<bool> pending(reads.size(), false);
    std::vector<dna::Base> out;
    out.reserve(expected_length);

    for (size_t j = 0; j < expected_length; ++j) {
        // Majority vote among live cursors.
        std::array<size_t, 4> votes = {0, 0, 0, 0};
        for (size_t i = 0; i < reads.size(); ++i) {
            if (cursor[i] < reads[i].size())
                ++votes[static_cast<size_t>(reads[i].baseAt(cursor[i]))];
        }
        size_t best = 0;
        for (size_t b = 1; b < 4; ++b) {
            if (votes[b] > votes[best])
                best = b;
        }
        dna::Base majority = static_cast<dna::Base>(best);
        out.push_back(majority);

        // Re-synchronize cursors.
        for (size_t i = 0; i < reads.size(); ++i) {
            if (cursor[i] >= reads[i].size())
                continue;
            const dna::Sequence &read = reads[i];

            if (pending[i]) {
                pending[i] = false;
                // The read disagreed at the previous position; the
                // error class is decided now that the next majority
                // is known:
                //   read[p]   == c -> deletion in the read (the
                //                     disputed base never existed);
                //   read[p+1] == c -> substitution (skip bad base);
                //   read[p+2] == c -> insertion (skip inserted base
                //                     and the disputed one).
                bool resolved = false;
                for (size_t k = 0; k <= params.lookahead; ++k) {
                    if (cursor[i] + k < read.size() &&
                        read.baseAt(cursor[i] + k) == majority) {
                        cursor[i] += k + 1;
                        resolved = true;
                        break;
                    }
                }
                if (!resolved) {
                    // Two errors in a row: resign to advancing.
                    ++cursor[i];
                }
                continue;
            }

            if (read.baseAt(cursor[i]) == majority) {
                ++cursor[i];
                continue;
            }
            pending[i] = true;  // classify at the next position
        }
    }
    return dna::Sequence(out);
}

dna::Sequence
refineDraft(const dna::Sequence &draft,
            const std::vector<dna::Sequence> &reads, size_t band)
{
    const size_t n = draft.size();
    if (n == 0)
        return draft;
    // votes[j][b]: aligned votes for base b at draft position j.
    std::vector<std::array<size_t, 4>> votes(
        n, std::array<size_t, 4>{0, 0, 0, 0});

    const size_t inf = SIZE_MAX / 2;
    for (const dna::Sequence &read : reads) {
        const size_t m = read.size();
        // Banded global alignment, draft rows x read columns.
        // cost[i][j] stored densely in a (n+1) x window layout would
        // save memory, but n is ~150 so the full matrix is fine.
        std::vector<std::vector<size_t>> cost(
            n + 1, std::vector<size_t>(m + 1, inf));
        cost[0][0] = 0;
        for (size_t j = 1; j <= std::min(m, band); ++j)
            cost[0][j] = j;
        for (size_t i = 1; i <= n; ++i) {
            size_t lo = i > band ? i - band : 1;
            size_t hi = std::min(m, i + band);
            if (i <= band)
                cost[i][0] = i;
            for (size_t j = lo; j <= hi; ++j) {
                size_t sub = cost[i - 1][j - 1] +
                             (draft[i - 1] == read[j - 1] ? 0 : 1);
                size_t del = cost[i - 1][j] + 1;  // draft base unread
                size_t ins = cost[i][j - 1] + 1;  // extra read base
                cost[i][j] = std::min({sub, del, ins});
            }
        }
        // Backtrace, voting draft positions matched to read bases.
        size_t i = n, j = m;
        if (cost[n][m] >= inf)
            continue;  // read did not fit in the band; skip it
        while (i > 0 && j > 0) {
            size_t sub = cost[i - 1][j - 1] +
                         (draft[i - 1] == read[j - 1] ? 0 : 1);
            if (cost[i][j] == sub) {
                ++votes[i - 1][static_cast<size_t>(
                    read.baseAt(j - 1))];
                --i;
                --j;
            } else if (cost[i][j] == cost[i - 1][j] + 1) {
                --i;  // draft base deleted in the read: no vote
            } else {
                --j;  // inserted read base: no draft position
            }
        }
    }

    std::vector<dna::Base> out;
    out.reserve(n);
    for (size_t j = 0; j < n; ++j) {
        size_t best = static_cast<size_t>(draft.baseAt(j));
        size_t best_votes = votes[j][best];
        for (size_t b = 0; b < 4; ++b) {
            if (votes[j][b] > best_votes) {
                best = b;
                best_votes = votes[j][b];
            }
        }
        out.push_back(static_cast<dna::Base>(best));
    }
    return dna::Sequence(out);
}

dna::Sequence
bmaDoubleSided(const std::vector<dna::Sequence> &reads,
               size_t expected_length, const BmaParams &params)
{
    dna::Sequence forward = bmaForward(reads, expected_length, params);

    std::vector<dna::Sequence> reversed_reads;
    reversed_reads.reserve(reads.size());
    for (const dna::Sequence &read : reads)
        reversed_reads.push_back(reversed(read));
    dna::Sequence backward =
        reversed(bmaForward(reversed_reads, expected_length, params));

    // Splice: anchored-end halves from each pass.
    size_t half = expected_length / 2 + expected_length % 2;
    dna::Sequence result = forward.substr(0, half);
    result += backward.substr(half);

    // Alignment-refinement passes repair any position where the BMA
    // cursors desynchronized.
    for (size_t pass = 0; pass < params.refine_iterations; ++pass) {
        dna::Sequence refined =
            refineDraft(result, reads, params.refine_band);
        if (refined == result)
            break;
        result = std::move(refined);
    }
    return result;
}

std::vector<dna::Sequence>
bmaDoubleSidedBatch(const std::vector<dna::Sequence> &reads,
                    const std::vector<std::vector<size_t>> &clusters,
                    size_t expected_length, const BmaParams &params,
                    ThreadPool *pool)
{
    std::vector<dna::Sequence> out(clusters.size());
    parallelFor(pool, clusters.size(), [&](size_t i) {
        if (clusters[i].empty())
            return;
        std::vector<dna::Sequence> members;
        members.reserve(clusters[i].size());
        for (size_t idx : clusters[i])
            members.push_back(reads[idx]);
        out[i] = bmaDoubleSided(members, expected_length, params);
    });
    return out;
}

} // namespace dnastore::consensus
