/**
 * @file
 * Trace reconstruction by double-sided Bitwise Majority Alignment
 * (Lin et al. [20], used in paper Sections 6.6 and 8).
 *
 * Given a cluster of noisy reads of the same original strand, BMA
 * reconstructs the strand position by position with a per-read
 * cursor: at each output position the majority base among the
 * cursors wins; disagreeing reads re-synchronize by peeking ahead
 * (classifying their error as insertion, deletion or substitution).
 * Running the same procedure from both ends and splicing the halves
 * ("double-sided") fixes the tail degradation of one-sided BMA,
 * because IDS errors desynchronize cursors more the farther they are
 * from the anchored end.
 */

#ifndef DNASTORE_CONSENSUS_BMA_H
#define DNASTORE_CONSENSUS_BMA_H

#include <cstddef>
#include <vector>

#include "dna/sequence.h"

namespace dnastore {
class ThreadPool;
}

namespace dnastore::consensus {

/** Reconstruction parameters. */
struct BmaParams
{
    /** How far a disagreeing read peeks ahead to re-synchronize. */
    size_t lookahead = 2;

    /** Alignment-refinement iterations applied after the BMA splice
     *  (0 disables). Each pass banded-aligns every read against the
     *  current draft and replaces each draft base by the majority of
     *  the aligned read bases, which repairs positions where BMA
     *  cursors desynchronized. */
    size_t refine_iterations = 2;

    /** Band half-width for the refinement alignment. */
    size_t refine_band = 8;
};

/**
 * One refinement pass: banded-align each read to @p draft and take a
 * per-position majority over the aligned bases. The output keeps the
 * draft's length.
 */
dna::Sequence refineDraft(const dna::Sequence &draft,
                          const std::vector<dna::Sequence> &reads,
                          size_t band);

/**
 * One-sided BMA from the 5' end; reconstructs exactly
 * @p expected_length bases.
 */
dna::Sequence bmaForward(const std::vector<dna::Sequence> &reads,
                         size_t expected_length,
                         const BmaParams &params = {});

/**
 * Double-sided BMA: forward pass, backward pass (on reversed reads),
 * spliced at the middle. This is the reconstruction used for every
 * cluster in the decoding pipeline.
 */
dna::Sequence bmaDoubleSided(const std::vector<dna::Sequence> &reads,
                             size_t expected_length,
                             const BmaParams &params = {});

/**
 * Reconstruct one strand per cluster: out[i] = bmaDoubleSided over
 * { reads[idx] : idx in clusters[i] }. Clusters are independent, so
 * the fan-out runs on @p pool when non-null (inline otherwise);
 * results land in cluster order either way, keeping the output
 * identical for any thread count. Each task gathers its own cluster's
 * reads transiently, so peak memory stays O(largest cluster) per
 * thread rather than a second copy of the whole read set. Empty
 * clusters yield an empty Sequence.
 */
std::vector<dna::Sequence> bmaDoubleSidedBatch(
    const std::vector<dna::Sequence> &reads,
    const std::vector<std::vector<size_t>> &clusters,
    size_t expected_length, const BmaParams &params = {},
    ThreadPool *pool = nullptr);

} // namespace dnastore::consensus

#endif // DNASTORE_CONSENSUS_BMA_H
