#include "index/prefix_tree.h"

#include "common/error.h"

namespace dnastore::index {

namespace {

/** Leaves under one node at the given prefix length. */
uint64_t
subtreeSize(size_t prefix_len, size_t depth)
{
    return uint64_t{1} << (2 * (depth - prefix_len));
}

} // namespace

std::vector<Prefix>
coverRange(uint64_t lo, uint64_t hi, size_t depth)
{
    const uint64_t leaf_count = uint64_t{1} << (2 * depth);
    fatalIf(lo > hi, "coverRange: lo > hi");
    fatalIf(hi >= leaf_count, "coverRange: hi beyond 4^depth leaves");

    std::vector<Prefix> cover;
    uint64_t cursor = lo;
    while (cursor <= hi) {
        // Largest aligned subtree that starts at cursor and fits.
        size_t prefix_len = depth;
        while (prefix_len > 0) {
            size_t candidate = prefix_len - 1;
            uint64_t span = subtreeSize(candidate, depth);
            if (cursor % span != 0 || cursor + span - 1 > hi)
                break;
            prefix_len = candidate;
        }
        cover.push_back(
            codec::toBase4(cursor >> (2 * (depth - prefix_len)),
                           prefix_len));
        cursor += subtreeSize(prefix_len, depth);
        if (cursor == 0)
            break;  // wrapped: covered the whole space
    }
    return cover;
}

Prefix
commonPrefix(uint64_t lo, uint64_t hi, size_t depth)
{
    Prefix lo_digits = codec::toBase4(lo, depth);
    Prefix hi_digits = codec::toBase4(hi, depth);
    Prefix common;
    for (size_t i = 0; i < depth; ++i) {
        if (lo_digits[i] != hi_digits[i])
            break;
        common.push_back(lo_digits[i]);
    }
    return common;
}

uint64_t
leavesUnder(const Prefix &prefix, size_t depth)
{
    fatalIf(prefix.size() > depth, "prefix longer than tree depth");
    return subtreeSize(prefix.size(), depth);
}

uint64_t
firstLeafUnder(const Prefix &prefix, size_t depth)
{
    fatalIf(prefix.size() > depth, "prefix longer than tree depth");
    return codec::fromBase4(prefix) << (2 * (depth - prefix.size()));
}

} // namespace dnastore::index
