#include "index/range_cover.h"

namespace dnastore::index {

std::vector<PhysicalPrefix>
physicalCover(const SparseIndexTree &tree, uint64_t lo, uint64_t hi)
{
    std::vector<Prefix> logical = coverRange(lo, hi, tree.depth());
    std::vector<PhysicalPrefix> cover;
    cover.reserve(logical.size());
    for (Prefix &prefix : logical) {
        PhysicalPrefix entry;
        entry.physical = tree.physicalPrefix(prefix);
        entry.blocks_covered = leavesUnder(prefix, tree.depth());
        entry.logical = std::move(prefix);
        cover.push_back(std::move(entry));
    }
    return cover;
}

PhysicalPrefix
physicalCommonPrefix(const SparseIndexTree &tree, uint64_t lo,
                     uint64_t hi)
{
    PhysicalPrefix entry;
    entry.logical = commonPrefix(lo, hi, tree.depth());
    entry.physical = tree.physicalPrefix(entry.logical);
    entry.blocks_covered = leavesUnder(entry.logical, tree.depth());
    return entry;
}

} // namespace dnastore::index
