/**
 * @file
 * Dense prefix-tree address utilities (paper Section 3.1).
 *
 * The internal address space of a partition with index length L is
 * the full base-4 prefix tree with 4^L leaves. Any contiguous range
 * of leaves maps to a small set of aligned prefixes — the property
 * that lets a range of blocks be retrieved with a few (or one
 * less-precise) elongated primers. These helpers work on *logical*
 * addresses (base-4 digit strings); the sparse tree maps them to
 * physical DNA indexes.
 */

#ifndef DNASTORE_INDEX_PREFIX_TREE_H
#define DNASTORE_INDEX_PREFIX_TREE_H

#include <cstdint>
#include <vector>

#include "codec/base4.h"

namespace dnastore::index {

/** A logical tree prefix: leading base-4 digits of an address. */
using Prefix = codec::Digits;

/**
 * Minimal set of aligned prefixes exactly covering the inclusive
 * leaf range [lo, hi] in a depth-@p depth tree.
 *
 * Example (depth 3, digits as letters): range AAA..AGT is covered by
 * {AA, AC, AG} — the example from paper Section 3.1.
 */
std::vector<Prefix> coverRange(uint64_t lo, uint64_t hi, size_t depth);

/** Longest common prefix of the range (the paper's imprecise cover). */
Prefix commonPrefix(uint64_t lo, uint64_t hi, size_t depth);

/** Number of leaves under a prefix in a depth-@p depth tree. */
uint64_t leavesUnder(const Prefix &prefix, size_t depth);

/** First leaf id under a prefix. */
uint64_t firstLeafUnder(const Prefix &prefix, size_t depth);

} // namespace dnastore::index

#endif // DNASTORE_INDEX_PREFIX_TREE_H
