/**
 * @file
 * Physical range covers: contiguous block ranges -> elongated-primer
 * index prefixes (paper Sections 3.1 and 4).
 *
 * Sequential access to blocks [lo, hi] is implemented by covering the
 * logical range with aligned prefixes (prefix_tree.h) and mapping
 * each through the sparse tree. A single multiplex PCR with the
 * resulting elongated primers retrieves exactly the range; the
 * cheaper one-primer alternative uses the longest common prefix and
 * over-retrieves (the paper's AAA..AGT example).
 */

#ifndef DNASTORE_INDEX_RANGE_COVER_H
#define DNASTORE_INDEX_RANGE_COVER_H

#include <cstdint>
#include <vector>

#include "dna/sequence.h"
#include "index/sparse_index.h"

namespace dnastore::index {

/** One element of a physical cover. */
struct PhysicalPrefix
{
    /** Logical prefix (base-4 digits). */
    Prefix logical;

    /** Sparse physical index prefix (2 bases per digit). */
    dna::Sequence physical;

    /** Leaves (blocks) this prefix retrieves. */
    uint64_t blocks_covered = 0;
};

/** Exact minimal cover of [lo, hi], one entry per needed primer. */
std::vector<PhysicalPrefix> physicalCover(const SparseIndexTree &tree,
                                          uint64_t lo, uint64_t hi);

/**
 * Single-primer (imprecise) cover: longest common prefix of the
 * range. blocks_covered counts everything the primer retrieves,
 * which may exceed hi - lo + 1.
 */
PhysicalPrefix physicalCommonPrefix(const SparseIndexTree &tree,
                                    uint64_t lo, uint64_t hi);

} // namespace dnastore::index

#endif // DNASTORE_INDEX_RANGE_COVER_H
