/**
 * @file
 * PCR-navigable sparse index tree (paper Sections 4.3 and 4.4).
 *
 * The tree transforms logical base-4 addresses into physical DNA
 * indexes that are viable PCR-primer elongations:
 *
 *  1. The four edges of every node are re-enumerated in a random
 *     order (seeded per node), so degenerate/unbalanced trees do not
 *     produce all-A paths.
 *  2. A spacer base of the opposite GC class is inserted after every
 *     edge letter. Among the four children, the two weak-lettered
 *     edges (A/T) receive the two strong spacers (C/G) in random
 *     order and vice versa, maximizing sibling Hamming distance.
 *
 * The resulting physical index of a depth-L leaf is 2L bases with
 * exactly one strong base per (edge, spacer) pair — near-perfect GC
 * balance in every prefix — no homopolymer longer than 2, and every
 * pair of sibling chunks at Hamming distance 2.
 *
 * The tree is never materialized: every node's randomization is
 * recomputed from hash(seed, node path), so only the 64-bit seed has
 * to be stored with the partition metadata (Section 4.4).
 *
 * A final *version base* after the leaf index distinguishes the
 * original block (version 0) from its update patches (versions 1..3),
 * implementing the interleaved update layout of Figure 8: data and
 * updates share the 2L-base prefix and are retrieved by one PCR.
 */

#ifndef DNASTORE_INDEX_SPARSE_INDEX_H
#define DNASTORE_INDEX_SPARSE_INDEX_H

#include <array>
#include <cstdint>
#include <optional>

#include "codec/base4.h"
#include "dna/sequence.h"
#include "index/prefix_tree.h"

namespace dnastore::index {

/** Outcome of decoding a (possibly noisy) physical index. */
struct IndexMatch
{
    uint64_t block = 0;

    /** Version slot encoded by the version base (0 = original). */
    unsigned version = 0;

    /** Hamming mismatches accumulated while walking the tree. */
    size_t mismatches = 0;
};

/**
 * Seeded, lazily-evaluated sparse index tree.
 */
class SparseIndexTree
{
  public:
    /** Number of version slots per block (1 original + 3 updates). */
    static constexpr unsigned kVersionSlots = 4;

    /**
     * @param seed  per-partition randomization seed
     * @param depth logical tree depth L (leaves = 4^L)
     */
    SparseIndexTree(uint64_t seed, size_t depth);

    size_t depth() const { return depth_; }
    uint64_t leafCount() const { return uint64_t{1} << (2 * depth_); }

    /** Physical bases of a full leaf index (2 * depth). */
    size_t physicalLength() const { return 2 * depth_; }

    /**
     * Map a logical prefix (possibly shorter than depth) to its
     * physical sparse representation of 2 * prefix.size() bases.
     */
    dna::Sequence physicalPrefix(const Prefix &logical) const;

    /** Physical index of leaf @p block (full depth). */
    dna::Sequence leafIndex(uint64_t block) const;

    /**
     * Version base appended after the leaf index: a per-leaf random
     * enumeration of the four bases; slot 0 tags the original block,
     * slots 1..3 tag successive update patches (Figure 8 layout).
     */
    dna::Base versionBase(uint64_t block, unsigned version) const;

    /** Full physical address: leaf index + version base. */
    dna::Sequence physicalAddress(uint64_t block, unsigned version) const;

    /**
     * Exact decode of a physical index (and version base if the
     * sequence is 2*depth+1 long). Returns nullopt on any mismatch.
     */
    std::optional<IndexMatch> decode(const dna::Sequence &physical) const;

    /**
     * Nearest-leaf decode for noisy indexes: at every level follow
     * the child whose (edge, spacer) chunk is closest in Hamming
     * distance, accumulating mismatches. Always returns a leaf; the
     * caller decides whether the mismatch count is acceptable.
     */
    IndexMatch decodeNearest(const dna::Sequence &physical) const;

    /** The randomized edge order (logical digit -> base) at a node. */
    std::array<dna::Base, 4> edgeOrder(const Prefix &node_path) const;

    /** The spacer assigned after each edge of a node. */
    std::array<dna::Base, 4> spacerOrder(const Prefix &node_path) const;

    uint64_t seed() const { return seed_; }

  private:
    uint64_t seed_;
    size_t depth_;

    /** Per-node deterministic randomization. */
    struct NodePlan
    {
        std::array<dna::Base, 4> edges;
        std::array<dna::Base, 4> spacers;
    };
    NodePlan planFor(const Prefix &node_path) const;
    uint64_t nodeSeed(const Prefix &node_path) const;
};

} // namespace dnastore::index

#endif // DNASTORE_INDEX_SPARSE_INDEX_H
