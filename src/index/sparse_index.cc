#include "index/sparse_index.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace dnastore::index {

SparseIndexTree::SparseIndexTree(uint64_t seed, size_t depth)
    : seed_(seed), depth_(depth)
{
    fatalIf(depth == 0 || depth > 28,
            "SparseIndexTree depth must be in [1, 28], got ", depth);
}

uint64_t
SparseIndexTree::nodeSeed(const Prefix &node_path) const
{
    // Mix the path into the seed one digit at a time; include the
    // depth so that a node and its first child never collide.
    uint64_t state = seed_ ^ 0xa5a5a5a5a5a5a5a5ULL;
    state = Rng::deriveSeed(state, node_path.size());
    for (uint8_t digit : node_path)
        state = Rng::deriveSeed(state, digit + 1);
    return state;
}

SparseIndexTree::NodePlan
SparseIndexTree::planFor(const Prefix &node_path) const
{
    Rng rng(nodeSeed(node_path));
    NodePlan plan;

    // Randomize the enumeration order of the four outgoing edges.
    std::vector<dna::Base> edges(dna::kAllBases,
                                 dna::kAllBases + 4);
    rng.shuffle(edges);
    std::copy(edges.begin(), edges.end(), plan.edges.begin());

    // Spacers: opposite GC class of the edge letter; the two
    // same-class edges get the two distinct candidates in random
    // order so that every sibling pair differs in edge AND spacer.
    std::vector<dna::Base> strong = {dna::Base::C, dna::Base::G};
    std::vector<dna::Base> weak = {dna::Base::A, dna::Base::T};
    rng.shuffle(strong);
    rng.shuffle(weak);
    size_t strong_cursor = 0;
    size_t weak_cursor = 0;
    for (size_t child = 0; child < 4; ++child) {
        if (dna::isStrong(plan.edges[child]))
            plan.spacers[child] = weak[weak_cursor++];
        else
            plan.spacers[child] = strong[strong_cursor++];
    }
    return plan;
}

dna::Sequence
SparseIndexTree::physicalPrefix(const Prefix &logical) const
{
    fatalIf(logical.size() > depth_,
            "logical prefix longer than tree depth");
    dna::Sequence physical;
    Prefix path;
    path.reserve(logical.size());
    for (uint8_t digit : logical) {
        panicIf(digit > 3, "logical digit out of range");
        NodePlan plan = planFor(path);
        physical.push_back(plan.edges[digit]);
        physical.push_back(plan.spacers[digit]);
        path.push_back(digit);
    }
    return physical;
}

dna::Sequence
SparseIndexTree::leafIndex(uint64_t block) const
{
    return physicalPrefix(codec::toBase4(block, depth_));
}

dna::Base
SparseIndexTree::versionBase(uint64_t block, unsigned version) const
{
    fatalIf(version >= kVersionSlots,
            "version ", version, " exceeds ", kVersionSlots, " slots");
    // Per-leaf random enumeration of the four bases, independent of
    // the node randomization stream.
    Rng rng(Rng::deriveSeed(nodeSeed(codec::toBase4(block, depth_)),
                            0x5eedULL));
    std::vector<dna::Base> order(dna::kAllBases, dna::kAllBases + 4);
    rng.shuffle(order);
    return order[version];
}

dna::Sequence
SparseIndexTree::physicalAddress(uint64_t block, unsigned version) const
{
    dna::Sequence address = leafIndex(block);
    address.push_back(versionBase(block, version));
    return address;
}

std::optional<IndexMatch>
SparseIndexTree::decode(const dna::Sequence &physical) const
{
    if (physical.size() != physicalLength() &&
        physical.size() != physicalLength() + 1) {
        return std::nullopt;
    }
    Prefix path;
    for (size_t level = 0; level < depth_; ++level) {
        NodePlan plan = planFor(path);
        char edge = physical[2 * level];
        char spacer = physical[2 * level + 1];
        bool matched = false;
        for (size_t child = 0; child < 4; ++child) {
            if (dna::baseToChar(plan.edges[child]) == edge &&
                dna::baseToChar(plan.spacers[child]) == spacer) {
                path.push_back(static_cast<uint8_t>(child));
                matched = true;
                break;
            }
        }
        if (!matched)
            return std::nullopt;
    }
    IndexMatch match;
    match.block = codec::fromBase4(path);
    if (physical.size() == physicalLength() + 1) {
        char version_char = physical[physicalLength()];
        bool found = false;
        for (unsigned v = 0; v < kVersionSlots; ++v) {
            if (dna::baseToChar(versionBase(match.block, v)) ==
                version_char) {
                match.version = v;
                found = true;
                break;
            }
        }
        if (!found)
            return std::nullopt;
    }
    return match;
}

IndexMatch
SparseIndexTree::decodeNearest(const dna::Sequence &physical) const
{
    // Beam search over the tree: a single corrupted base can tie two
    // children at one level (the true child's spacer mismatches, a
    // sibling's edge mismatches), so a greedy walk is not enough.
    constexpr size_t kBeamWidth = 6;
    struct Candidate
    {
        Prefix path;
        size_t cost = 0;
    };
    std::vector<Candidate> beam = {Candidate{}};
    std::vector<Candidate> next;
    for (size_t level = 0; level < depth_; ++level) {
        char edge = 2 * level < physical.size() ? physical[2 * level]
                                                : 'A';
        char spacer = 2 * level + 1 < physical.size()
                          ? physical[2 * level + 1]
                          : 'A';
        next.clear();
        for (const Candidate &candidate : beam) {
            NodePlan plan = planFor(candidate.path);
            for (size_t child = 0; child < 4; ++child) {
                size_t cost = candidate.cost;
                if (dna::baseToChar(plan.edges[child]) != edge)
                    ++cost;
                if (dna::baseToChar(plan.spacers[child]) != spacer)
                    ++cost;
                Candidate extended;
                extended.path = candidate.path;
                extended.path.push_back(static_cast<uint8_t>(child));
                extended.cost = cost;
                next.push_back(std::move(extended));
            }
        }
        std::sort(next.begin(), next.end(),
                  [](const Candidate &a, const Candidate &b) {
                      return a.cost < b.cost;
                  });
        if (next.size() > kBeamWidth)
            next.resize(kBeamWidth);
        beam = next;
    }

    IndexMatch match;
    match.mismatches = beam.front().cost;
    match.block = codec::fromBase4(beam.front().path);
    if (physical.size() > physicalLength()) {
        char version_char = physical[physicalLength()];
        unsigned best_version = 0;
        bool exact = false;
        for (unsigned v = 0; v < kVersionSlots; ++v) {
            if (dna::baseToChar(versionBase(match.block, v)) ==
                version_char) {
                best_version = v;
                exact = true;
                break;
            }
        }
        if (!exact)
            ++match.mismatches;
        match.version = best_version;
    }
    return match;
}

std::array<dna::Base, 4>
SparseIndexTree::edgeOrder(const Prefix &node_path) const
{
    return planFor(node_path).edges;
}

std::array<dna::Base, 4>
SparseIndexTree::spacerOrder(const Prefix &node_path) const
{
    return planFor(node_path).spacers;
}

} // namespace dnastore::index
