/**
 * @file
 * Primer-library generation by constraint-filtered random search.
 *
 * Reproduces the methodology the paper cites for counting mutually
 * compatible primers (Section 1): draw random candidates, keep those
 * that satisfy the composition constraints and a minimum pairwise
 * Hamming distance to every primer accepted so far. The paper reports
 * ~1000-3000 compatible primers at length 20 (depending on the
 * distance threshold) and ~10K at length 30 — linear-ish scaling that
 * motivates the whole partition/block design.
 */

#ifndef DNASTORE_PRIMER_LIBRARY_H
#define DNASTORE_PRIMER_LIBRARY_H

#include <cstdint>
#include <vector>

#include "dna/sequence.h"
#include "primer/constraints.h"

namespace dnastore::primer {

/** Result of a library-generation run. */
struct LibraryResult
{
    std::vector<dna::Sequence> primers;
    uint64_t candidates_tried = 0;
    uint64_t rejected_composition = 0;
    uint64_t rejected_distance = 0;
};

/**
 * Greedy primer-library generator.
 */
class LibraryGenerator
{
  public:
    LibraryGenerator(size_t primer_length, Constraints constraints,
                     uint64_t seed);

    /**
     * Draw up to @p max_candidates random candidates, accepting
     * greedily. Stops early if @p max_accepted primers are found.
     */
    LibraryResult generate(uint64_t max_candidates,
                           size_t max_accepted = SIZE_MAX) const;

  private:
    size_t primer_length_;
    Constraints constraints_;
    uint64_t seed_;
};

} // namespace dnastore::primer

#endif // DNASTORE_PRIMER_LIBRARY_H
