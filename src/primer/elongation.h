/**
 * @file
 * Elongated-primer construction and validation (paper Section 4).
 *
 * An elongated forward primer is the main partition primer, the
 * synchronization base, and a prefix of the PCR-compatible sparse
 * index appended base-by-base: 20 + 1 + (up to 2L) bases. In the
 * wetlab evaluation L = 5, giving 31-base primers (Section 6.5). The
 * validator checks what Section 4.2 demands: balanced GC content in
 * every possible elongation, no homopolymer longer than the limit,
 * and a melting temperature within the window for the full primer.
 */

#ifndef DNASTORE_PRIMER_ELONGATION_H
#define DNASTORE_PRIMER_ELONGATION_H

#include <cstddef>
#include <vector>

#include "dna/sequence.h"

namespace dnastore::primer {

/**
 * Builds elongated primers for one partition.
 */
class ElongationBuilder
{
  public:
    /**
     * @param main_primer the 20-base partition forward primer
     * @param sync_base   the synchronization base appended after the
     *                    main primer (paper Section 6.2 uses 'A')
     */
    ElongationBuilder(dna::Sequence main_primer, dna::Base sync_base);

    /** The fixed stem: main primer + sync base. */
    const dna::Sequence &stem() const { return stem_; }

    /**
     * Build main + sync + index_prefix. The prefix may be any leading
     * portion of a block's sparse index (full for block access,
     * partial for sequential/range access).
     */
    dna::Sequence build(const dna::Sequence &index_prefix) const;

  private:
    dna::Sequence stem_;
};

/** Validation summary for a set of elongations of one primer. */
struct ElongationReport
{
    /** Worst GC deviation (in bases from len/2) across the index
     *  part of every checked elongation length. */
    double worst_gc_deviation = 0.0;

    /** Longest homopolymer run in any full elongated primer. */
    size_t worst_homopolymer = 0;

    /** Melting temperature of the longest elongation. */
    double full_tm = 0.0;
};

/**
 * Validate the elongations of @p index at every even prefix length
 * (the lengths at which a primer may legally stop: after each
 * edge+spacer pair of the sparse tree).
 */
ElongationReport validateElongations(const ElongationBuilder &builder,
                                     const dna::Sequence &index);

} // namespace dnastore::primer

#endif // DNASTORE_PRIMER_ELONGATION_H
