#include "primer/constraints.h"

#include "dna/analysis.h"
#include "dna/distance.h"

namespace dnastore::primer {

CheckResult
checkComposition(const dna::Sequence &candidate,
                 const Constraints &constraints)
{
    CheckResult result;
    double gc = dna::gcContent(candidate);
    result.gc_ok = gc >= constraints.gc_min && gc <= constraints.gc_max;
    result.homopolymer_ok =
        dna::maxHomopolymerRun(candidate) <= constraints.max_homopolymer;
    double tm = dna::meltingTemperature(candidate);
    result.tm_ok = tm >= constraints.tm_min && tm <= constraints.tm_max;
    return result;
}

namespace {

/** True if hamming(a, b) >= limit; stops counting at the limit. */
bool
hammingAtLeast(const dna::Sequence &a, const dna::Sequence &b,
               size_t limit)
{
    const std::string &sa = a.str();
    const std::string &sb = b.str();
    size_t common = std::min(sa.size(), sb.size());
    size_t distance = std::max(sa.size(), sb.size()) - common;
    if (distance >= limit)
        return true;
    for (size_t i = 0; i < common; ++i) {
        if (sa[i] != sb[i] && ++distance >= limit)
            return true;
    }
    return false;
}

} // namespace

bool
checkDistances(const dna::Sequence &candidate,
               const std::vector<dna::Sequence> &accepted,
               const Constraints &constraints)
{
    dna::Sequence candidate_rc = candidate.reverseComplement();
    for (const dna::Sequence &other : accepted) {
        if (!hammingAtLeast(candidate, other,
                            constraints.min_pairwise_hamming)) {
            return false;
        }
        if (constraints.check_reverse_complement &&
            !hammingAtLeast(candidate_rc, other,
                            constraints.min_pairwise_hamming)) {
            return false;
        }
    }
    return true;
}

} // namespace dnastore::primer
