#include "primer/elongation.h"

#include <algorithm>

#include "dna/analysis.h"

namespace dnastore::primer {

ElongationBuilder::ElongationBuilder(dna::Sequence main_primer,
                                     dna::Base sync_base)
    : stem_(std::move(main_primer))
{
    stem_.push_back(sync_base);
}

dna::Sequence
ElongationBuilder::build(const dna::Sequence &index_prefix) const
{
    return stem_ + index_prefix;
}

ElongationReport
validateElongations(const ElongationBuilder &builder,
                    const dna::Sequence &index)
{
    ElongationReport report;
    for (size_t len = 2; len <= index.size(); len += 2) {
        dna::Sequence prefix = index.substr(0, len);
        double deviation =
            std::abs(static_cast<double>(dna::gcCount(prefix)) -
                     static_cast<double>(len) / 2.0);
        report.worst_gc_deviation =
            std::max(report.worst_gc_deviation, deviation);
        dna::Sequence full = builder.build(prefix);
        report.worst_homopolymer = std::max(
            report.worst_homopolymer, dna::maxHomopolymerRun(full));
    }
    report.full_tm = dna::meltingTemperature(builder.build(index));
    return report;
}

} // namespace dnastore::primer
