/**
 * @file
 * PCR primer viability constraints.
 *
 * Main (partition) primers must satisfy the classic constraints from
 * prior work [23, 33] (paper Sections 1 and 2.1.4): GC content near
 * 50%, no long homopolymer runs, a melting-temperature window, and a
 * large minimum pairwise Hamming distance to every other primer in
 * the pool. Elongated primers (Section 4.2) additionally require GC
 * balance in *every prefix*, because the primer may stop at any index
 * boundary.
 */

#ifndef DNASTORE_PRIMER_CONSTRAINTS_H
#define DNASTORE_PRIMER_CONSTRAINTS_H

#include <cstddef>
#include <vector>

#include "dna/sequence.h"

namespace dnastore::primer {

/** Tunable constraint set for a primer family. */
struct Constraints
{
    double gc_min = 0.45;
    double gc_max = 0.55;
    size_t max_homopolymer = 3;
    double tm_min = 50.0;
    double tm_max = 65.0;

    /** Minimum Hamming distance to every already-accepted primer. */
    size_t min_pairwise_hamming = 6;

    /** Also enforce the distance against reverse complements, so a
     *  primer cannot anneal to another primer's binding site. */
    bool check_reverse_complement = true;
};

/** Detailed outcome of a single-primer viability check. */
struct CheckResult
{
    bool gc_ok = false;
    bool homopolymer_ok = false;
    bool tm_ok = false;

    bool ok() const { return gc_ok && homopolymer_ok && tm_ok; }
};

/** Check the composition constraints of a single candidate. */
CheckResult checkComposition(const dna::Sequence &candidate,
                             const Constraints &constraints);

/**
 * Check the distance constraint of @p candidate against an accepted
 * set. Returns true if the candidate keeps the required distance to
 * every accepted primer (and their reverse complements if enabled).
 */
bool checkDistances(const dna::Sequence &candidate,
                    const std::vector<dna::Sequence> &accepted,
                    const Constraints &constraints);

} // namespace dnastore::primer

#endif // DNASTORE_PRIMER_CONSTRAINTS_H
