#include "primer/library.h"

#include "common/rng.h"

namespace dnastore::primer {

LibraryGenerator::LibraryGenerator(size_t primer_length,
                                   Constraints constraints, uint64_t seed)
    : primer_length_(primer_length), constraints_(constraints),
      seed_(seed)
{}

LibraryResult
LibraryGenerator::generate(uint64_t max_candidates,
                           size_t max_accepted) const
{
    LibraryResult result;
    Rng rng = Rng::deriveStream(seed_, "primer-library");
    std::vector<dna::Base> bases(primer_length_);
    for (uint64_t trial = 0; trial < max_candidates; ++trial) {
        if (result.primers.size() >= max_accepted)
            break;
        ++result.candidates_tried;
        for (size_t i = 0; i < primer_length_; ++i)
            bases[i] = static_cast<dna::Base>(rng.nextBelow(4));
        dna::Sequence candidate(bases);
        if (!checkComposition(candidate, constraints_).ok()) {
            ++result.rejected_composition;
            continue;
        }
        if (!checkDistances(candidate, result.primers, constraints_)) {
            ++result.rejected_distance;
            continue;
        }
        result.primers.push_back(std::move(candidate));
    }
    return result;
}

} // namespace dnastore::primer
