/**
 * @file
 * Encoding-unit (matrix) codec, the outer-code layout of Figure 1c.
 *
 * An encoding unit groups n molecules into a matrix whose columns are
 * molecule payloads and whose rows are RS(n, k) codewords over GF(16).
 * With the paper's wetlab parameters (Section 6.2): n = 15 columns
 * (11 data + 4 ECC molecules), each column carrying 24 payload bytes
 * (48 nibble rows), for a 264-byte unit (256 data + 8 padding).
 *
 * A lost molecule is 48 erasures in a known column; a molecule that
 * was reconstructed incorrectly contributes symbol errors. Each row
 * corrects any pattern with 2*errors + erasures <= n - k.
 */

#ifndef DNASTORE_ECC_ENCODING_UNIT_H
#define DNASTORE_ECC_ENCODING_UNIT_H

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/reed_solomon.h"

namespace dnastore::ecc {

using Bytes = std::vector<uint8_t>;

/** Result of decoding an encoding unit. */
struct UnitDecodeResult
{
    /** Unit payload (k * column_bytes bytes), if decodable. */
    std::optional<Bytes> data;

    /** Rows that failed to decode (empty on success). */
    std::vector<size_t> failed_rows;

    /** Total symbol errors corrected across all rows. */
    size_t symbol_errors_corrected = 0;

    /** Total erasures filled across all rows. */
    size_t erasures_filled = 0;

    /**
     * Max over rows of (erasures filled + 2 * errors corrected) —
     * the decoding-sphere distance the worst row consumed. The
     * code's minimum distance minus this is the confidence margin of
     * the least-trusted codeword in the unit: how many additional
     * genuinely wrong symbols it would have taken for that row to
     * decode to the wrong codeword.
     */
    size_t max_row_correction_load = 0;

    bool ok() const { return data.has_value(); }
};

/**
 * Encoder/decoder for one encoding unit.
 */
class EncodingUnitCodec
{
  public:
    /**
     * @param n            molecules (columns) per unit, <= 15
     * @param k            data molecules per unit
     * @param column_bytes payload bytes per molecule
     */
    EncodingUnitCodec(unsigned n, unsigned k, size_t column_bytes);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    size_t columnBytes() const { return column_bytes_; }

    /** Payload bytes carried by one unit (k * column_bytes). */
    size_t dataBytes() const { return k_ * column_bytes_; }

    /** Nibble rows per unit (2 * column_bytes). */
    size_t rows() const { return column_bytes_ * 2; }

    /**
     * Encode a unit payload of exactly dataBytes() bytes into n
     * molecule payloads of column_bytes each. Data fills columns
     * 0..k-1 column-major (Figure 1c); columns k..n-1 are parity.
     */
    std::vector<Bytes> encode(const Bytes &unit_data) const;

    /**
     * Decode from per-column payloads; a column is std::nullopt when
     * the molecule was not recovered (erasure). Present columns must
     * have exactly column_bytes bytes.
     */
    UnitDecodeResult decode(
        const std::vector<std::optional<Bytes>> &columns) const;

  private:
    unsigned n_;
    unsigned k_;
    size_t column_bytes_;
    ReedSolomon rs_;
};

} // namespace dnastore::ecc

#endif // DNASTORE_ECC_ENCODING_UNIT_H
