#include "ecc/reed_solomon.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "ecc/gf16.h"

namespace dnastore::ecc {

namespace {

/** Polynomial coefficients, lowest degree first. */
using Poly = std::vector<uint8_t>;

/** Evaluate a polynomial at x via Horner's rule. */
uint8_t
polyEval(const Poly &poly, uint8_t x)
{
    uint8_t acc = 0;
    for (auto it = poly.rbegin(); it != poly.rend(); ++it)
        acc = GF16::add(GF16::mul(acc, x), *it);
    return acc;
}

Poly
polyMul(const Poly &a, const Poly &b)
{
    Poly result(a.size() + b.size() - 1, 0);
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < b.size(); ++j) {
            result[i + j] = GF16::add(result[i + j],
                                      GF16::mul(a[i], b[j]));
        }
    }
    return result;
}

/** Formal derivative in characteristic 2: odd-degree terms survive. */
Poly
polyDerivative(const Poly &poly)
{
    Poly result;
    for (size_t i = 1; i < poly.size(); ++i)
        result.push_back(i % 2 == 1 ? poly[i] : 0);
    if (result.empty())
        result.push_back(0);
    return result;
}

} // namespace

ReedSolomon::ReedSolomon(unsigned n, unsigned k)
    : n_(n), k_(k)
{
    fatalIf(n > GF16::kMultGroupOrder,
            "RS codeword length ", n, " exceeds GF(16) limit of 15");
    fatalIf(k >= n, "RS requires k < n (got k=", k, ", n=", n, ")");

    // Generator polynomial: product of (x - alpha^i), i = 1..n-k.
    generator_ = {1};
    for (unsigned i = 1; i <= n_ - k_; ++i) {
        Poly factor = {GF16::alphaPow(static_cast<int>(i)), 1};
        generator_ = polyMul(generator_, factor);
    }

    // Per-syndrome Horner multiplier tables for the SIMD batch
    // syndrome kernel: row s is multiply-by-alpha^(s+1).
    syndrome_tables_.resize(static_cast<size_t>(n_ - k_) * 16);
    for (unsigned s = 0; s < n_ - k_; ++s) {
        const uint8_t *row =
            GF16::mulTable(GF16::alphaPow(static_cast<int>(s + 1)));
        std::copy(row, row + 16, syndrome_tables_.begin() + s * 16);
    }
}

std::vector<uint8_t>
ReedSolomon::encode(const std::vector<uint8_t> &data) const
{
    fatalIf(data.size() != k_,
            "RS encode expects ", k_, " symbols, got ", data.size());
    for (uint8_t symbol : data)
        fatalIf(symbol > 0xf, "RS symbol out of GF(16) range");

    // Systematic encoding: remainder of data * x^(n-k) mod generator.
    const unsigned parity_len = n_ - k_;
    std::vector<uint8_t> remainder(parity_len, 0);
    for (uint8_t symbol : data) {
        uint8_t feedback = GF16::add(symbol, remainder[0]);
        for (unsigned j = 0; j + 1 < parity_len; ++j) {
            remainder[j] = GF16::add(
                remainder[j + 1],
                GF16::mul(feedback,
                          generator_[parity_len - 1 - j]));
        }
        remainder[parity_len - 1] =
            GF16::mul(feedback, generator_[0]);
    }

    std::vector<uint8_t> codeword = data;
    codeword.insert(codeword.end(), remainder.begin(), remainder.end());
    return codeword;
}

std::vector<uint8_t>
ReedSolomon::computeSyndromes(const std::vector<uint8_t> &received) const
{
    // Codeword polynomial convention: symbol i is the coefficient of
    // x^(n-1-i), so evaluation uses descending powers.
    std::vector<uint8_t> syndromes(n_ - k_, 0);
    for (unsigned s = 0; s < n_ - k_; ++s) {
        uint8_t x = GF16::alphaPow(static_cast<int>(s + 1));
        uint8_t acc = 0;
        for (unsigned i = 0; i < n_; ++i)
            acc = GF16::add(GF16::mul(acc, x), received[i]);
        syndromes[s] = acc;
    }
    return syndromes;
}

RsDecodeResult
ReedSolomon::decode(const std::vector<uint8_t> &received,
                    const std::vector<size_t> &erasures) const
{
    RsDecodeResult result;
    fatalIf(received.size() != n_,
            "RS decode expects ", n_, " symbols, got ", received.size());
    if (erasures.size() > n_ - k_)
        return result;  // beyond guaranteed correction capability

    std::vector<uint8_t> word = received;
    // Zero out erased positions so they contribute known values.
    for (size_t pos : erasures) {
        fatalIf(pos >= n_, "erasure position out of range");
        word[pos] = 0;
    }

    std::vector<uint8_t> syndromes = computeSyndromes(word);
    return decodeWithSyndromes(std::move(word), erasures,
                               syndromes.data());
}

RsDecodeResult
ReedSolomon::decodeWithSyndromes(std::vector<uint8_t> word,
                                 const std::vector<size_t> &erasures,
                                 const uint8_t *syndromes) const
{
    RsDecodeResult result;
    fatalIf(word.size() != n_,
            "RS decode expects ", n_, " symbols, got ", word.size());
    for (size_t pos : erasures)
        fatalIf(pos >= n_, "erasure position out of range");
    if (erasures.size() > n_ - k_)
        return result;  // beyond guaranteed correction capability

    bool all_zero = std::all_of(syndromes, syndromes + (n_ - k_),
                                [](uint8_t s) { return s == 0; });
    if (all_zero && erasures.empty()) {
        result.codeword = std::move(word);
        return result;
    }

    // Erasure locator: product over erasures of (1 - X_j x), where
    // X_j = alpha^(n-1-pos) under the descending-power convention.
    Poly erasure_locator = {1};
    for (size_t pos : erasures) {
        uint8_t locator_root =
            GF16::alphaPow(static_cast<int>(n_ - 1 - pos));
        erasure_locator = polyMul(erasure_locator, {1, locator_root});
    }

    // Modified syndrome polynomial S(x) * Gamma(x) mod x^(n-k).
    Poly syndrome_poly(syndromes, syndromes + (n_ - k_));
    Poly modified = polyMul(syndrome_poly, erasure_locator);
    modified.resize(n_ - k_, 0);

    // Berlekamp-Massey on the modified syndromes for the error
    // locator, with room for floor((n-k-erasures)/2) errors.
    const unsigned rho = static_cast<unsigned>(erasures.size());
    const unsigned max_errors = (n_ - k_ - rho) / 2;
    Poly sigma = {1};
    Poly prev_sigma = {1};
    unsigned errors = 0;
    unsigned m = 1;
    uint8_t prev_discrepancy = 1;
    for (unsigned i = rho; i < n_ - k_; ++i) {
        uint8_t discrepancy = modified[i];
        for (unsigned j = 1; j <= errors && j < sigma.size(); ++j) {
            discrepancy = GF16::add(
                discrepancy, GF16::mul(sigma[j], modified[i - j]));
        }
        if (discrepancy == 0) {
            ++m;
        } else if (2 * errors <= i - rho) {
            Poly old_sigma = sigma;
            uint8_t scale = GF16::div(discrepancy, prev_discrepancy);
            Poly shifted(m, 0);
            shifted.insert(shifted.end(), prev_sigma.begin(),
                           prev_sigma.end());
            if (sigma.size() < shifted.size())
                sigma.resize(shifted.size(), 0);
            for (size_t j = 0; j < shifted.size(); ++j) {
                sigma[j] = GF16::add(sigma[j],
                                     GF16::mul(scale, shifted[j]));
            }
            errors = i - rho + 1 - errors;
            prev_sigma = old_sigma;
            prev_discrepancy = discrepancy;
            m = 1;
        } else {
            uint8_t scale = GF16::div(discrepancy, prev_discrepancy);
            Poly shifted(m, 0);
            shifted.insert(shifted.end(), prev_sigma.begin(),
                           prev_sigma.end());
            if (sigma.size() < shifted.size())
                sigma.resize(shifted.size(), 0);
            for (size_t j = 0; j < shifted.size(); ++j) {
                sigma[j] = GF16::add(sigma[j],
                                     GF16::mul(scale, shifted[j]));
            }
            ++m;
        }
    }
    if (errors > max_errors)
        return result;  // uncorrectable

    // Full locator = error locator * erasure locator.
    Poly locator = polyMul(sigma, erasure_locator);

    // Chien search: find roots; root alpha^(-j) marks position with
    // X = alpha^j = alpha^(n-1-pos).
    std::vector<size_t> error_positions;
    for (unsigned pos = 0; pos < n_; ++pos) {
        int j = static_cast<int>(n_ - 1 - pos);
        uint8_t x_inv = GF16::alphaPow(-j);
        if (polyEval(locator, x_inv) == 0)
            error_positions.push_back(pos);
    }
    // Locator degree must match the number of found positions.
    size_t degree = 0;
    for (size_t i = 0; i < locator.size(); ++i) {
        if (locator[i] != 0)
            degree = i;
    }
    if (error_positions.size() != degree)
        return result;  // decoding failure

    // Forney: error evaluator Omega(x) = S(x) * Lambda(x) mod x^(n-k).
    Poly omega = polyMul(syndrome_poly, locator);
    omega.resize(n_ - k_, 0);
    Poly locator_deriv = polyDerivative(locator);

    size_t plain_errors = 0;
    for (size_t pos : error_positions) {
        int j = static_cast<int>(n_ - 1 - pos);
        uint8_t x_inv = GF16::alphaPow(-j);
        uint8_t numerator = polyEval(omega, x_inv);
        uint8_t denominator = polyEval(locator_deriv, x_inv);
        if (denominator == 0)
            return result;  // decoding failure
        uint8_t magnitude = GF16::div(numerator, denominator);
        word[pos] = GF16::add(word[pos], magnitude);
        bool was_erasure =
            std::find(erasures.begin(), erasures.end(), pos) !=
            erasures.end();
        if (!was_erasure && magnitude != 0)
            ++plain_errors;
    }

    // Verify: corrected word must have zero syndromes.
    std::vector<uint8_t> check = computeSyndromes(word);
    if (!std::all_of(check.begin(), check.end(),
                     [](uint8_t s) { return s == 0; })) {
        return result;
    }

    result.codeword = std::move(word);
    result.errors_corrected = plain_errors;
    result.erasures_filled = erasures.size();
    return result;
}

} // namespace dnastore::ecc
