/**
 * @file
 * Systematic Reed-Solomon code over GF(16) with errors-and-erasures
 * decoding.
 *
 * One RS codeword is one *row* of the encoding-unit matrix (paper
 * Figure 1c): the i-th symbol of the codeword lives in the i-th
 * molecule of the unit. Molecule loss therefore shows up as an
 * erasure at a known column, and a mis-reconstructed molecule as a
 * symbol error. With n - k = 4 parity symbols, RS(15, 11) corrects
 * any pattern with (2 * errors + erasures) <= 4.
 */

#ifndef DNASTORE_ECC_REED_SOLOMON_H
#define DNASTORE_ECC_REED_SOLOMON_H

#include <cstdint>
#include <optional>
#include <vector>

namespace dnastore::ecc {

/** Outcome of a decode attempt. */
struct RsDecodeResult
{
    /** Corrected codeword (full n symbols), if decoding succeeded. */
    std::optional<std::vector<uint8_t>> codeword;

    /** Number of symbol errors corrected (not counting erasures). */
    size_t errors_corrected = 0;

    /** Number of erasures filled in. */
    size_t erasures_filled = 0;

    bool ok() const { return codeword.has_value(); }
};

/**
 * RS(n, k) over GF(16), n <= 15. Systematic: codeword = data symbols
 * followed by n-k parity symbols.
 */
class ReedSolomon
{
  public:
    /**
     * @param n codeword length in symbols (<= 15)
     * @param k data symbols per codeword (< n)
     */
    ReedSolomon(unsigned n, unsigned k);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned parity() const { return n_ - k_; }

    /** Encode k data symbols into an n-symbol systematic codeword. */
    std::vector<uint8_t> encode(const std::vector<uint8_t> &data) const;

    /**
     * Decode a received word with optional erasure positions
     * (indexes into the codeword). Erased positions may hold any
     * value. Returns the corrected codeword or failure.
     */
    RsDecodeResult decode(const std::vector<uint8_t> &received,
                          const std::vector<size_t> &erasures = {}) const;

    /**
     * Decode with syndromes already in hand: @p word must have every
     * erased position zeroed and @p syndromes must hold the parity()
     * syndrome values of @p word (as computeSyndromes produces).
     * This is the back half of decode(); EncodingUnitCodec uses it
     * after batch-computing the syndromes of all unit rows in one
     * SIMD pass. Results and stats are identical to decode().
     */
    RsDecodeResult decodeWithSyndromes(
        std::vector<uint8_t> word, const std::vector<size_t> &erasures,
        const uint8_t *syndromes) const;

    /**
     * parity() rows of 16 bytes: row s maps v to
     * mul(alpha^(s+1), v) — the per-syndrome Horner multiplier in
     * the layout the gf16_syndromes kernel consumes.
     */
    const std::vector<uint8_t> &
    syndromeMulTables() const
    {
        return syndrome_tables_;
    }

    /** Extract the k data symbols from a full codeword. */
    std::vector<uint8_t>
    dataOf(const std::vector<uint8_t> &codeword) const
    {
        return {codeword.begin(), codeword.begin() + k_};
    }

  private:
    unsigned n_;
    unsigned k_;
    std::vector<uint8_t> generator_;
    std::vector<uint8_t> syndrome_tables_;

    std::vector<uint8_t> computeSyndromes(
        const std::vector<uint8_t> &received) const;
};

} // namespace dnastore::ecc

#endif // DNASTORE_ECC_REED_SOLOMON_H
