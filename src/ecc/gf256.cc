#include "ecc/gf256.h"

#include "common/error.h"

namespace dnastore::ecc {

GF256::Tables::Tables()
{
    constexpr unsigned kPoly = 0x11d;
    unsigned value = 1;
    for (unsigned i = 0; i < kMultGroupOrder; ++i) {
        exp[i] = static_cast<uint8_t>(value);
        exp[i + kMultGroupOrder] = static_cast<uint8_t>(value);
        log[value] = static_cast<uint8_t>(i);
        value <<= 1;
        if (value & 0x100)
            value ^= kPoly;
    }
    exp[2 * kMultGroupOrder] = exp[kMultGroupOrder];
    exp[2 * kMultGroupOrder + 1] = exp[kMultGroupOrder + 1];
    // Zero has no discrete log; every caller branches or panics
    // before reading log[0] (see the class contract). The sentinel
    // is an out-of-range exponent so an accidental read cannot
    // masquerade as log[1] == 0.
    log[0] = kZeroLogSentinel;
}

const GF256::Tables &
GF256::tables()
{
    static const Tables instance;
    return instance;
}

uint8_t
GF256::mul(uint8_t a, uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + t.log[b]];
}

uint8_t
GF256::div(uint8_t a, uint8_t b)
{
    panicIf(b == 0, "GF256 division by zero");
    if (a == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + kMultGroupOrder - t.log[b]];
}

uint8_t
GF256::inv(uint8_t a)
{
    panicIf(a == 0, "GF256 inverse of zero");
    const Tables &t = tables();
    return t.exp[(kMultGroupOrder - t.log[a]) % kMultGroupOrder];
}

uint8_t
GF256::pow(uint8_t a, int n)
{
    if (a == 0) {
        panicIf(n <= 0, "GF256 pow: 0 to non-positive power");
        return 0;
    }
    const Tables &t = tables();
    long exponent = (static_cast<long>(t.log[a]) * n) %
                    static_cast<long>(kMultGroupOrder);
    if (exponent < 0)
        exponent += kMultGroupOrder;
    return t.exp[exponent];
}

uint8_t
GF256::alphaPow(int n)
{
    int exponent = n % static_cast<int>(kMultGroupOrder);
    if (exponent < 0)
        exponent += kMultGroupOrder;
    return tables().exp[exponent];
}

unsigned
GF256::log(uint8_t a)
{
    panicIf(a == 0, "GF256 log of zero");
    return tables().log[a];
}

namespace {

/** 256 rows x 16 entries: mul(c, v) or mul(c, v << 4). Built via
 *  the zero-checked mul(), so log[0] is never consulted. */
std::array<uint8_t, 256 * 16>
buildNibbleTables(bool high)
{
    std::array<uint8_t, 256 * 16> t{};
    for (unsigned c = 0; c < 256; ++c) {
        for (unsigned v = 0; v < 16; ++v) {
            uint8_t operand =
                static_cast<uint8_t>(high ? v << 4 : v);
            t[c * 16 + v] =
                GF256::mul(static_cast<uint8_t>(c), operand);
        }
    }
    return t;
}

} // namespace

const uint8_t *
GF256::mulTablesLo()
{
    static const auto t = buildNibbleTables(false);
    return t.data();
}

const uint8_t *
GF256::mulTablesHi()
{
    static const auto t = buildNibbleTables(true);
    return t.data();
}

} // namespace dnastore::ecc
