#include "ecc/gf16.h"

#include <cstddef>

#include "common/error.h"

namespace dnastore::ecc {

GF16::Tables::Tables()
{
    // Primitive polynomial x^4 + x + 1 -> 0b10011.
    constexpr unsigned kPoly = 0x13;
    uint8_t value = 1;
    for (unsigned i = 0; i < kMultGroupOrder; ++i) {
        exp[i] = value;
        exp[i + kMultGroupOrder] = value;  // duplicated to skip mod.
        log[value] = static_cast<uint8_t>(i);
        unsigned doubled = static_cast<unsigned>(value) << 1;
        if (doubled & 0x10)
            doubled ^= kPoly;
        value = static_cast<uint8_t>(doubled);
    }
    exp[30] = exp[15];
    exp[31] = exp[16];
    // Zero has no discrete log; every caller branches or panics
    // before reading log[0] (see the class contract). The sentinel
    // is an out-of-range exponent so an accidental read cannot
    // masquerade as log[1] == 0.
    log[0] = kZeroLogSentinel;
}

const GF16::Tables &
GF16::tables()
{
    static const Tables instance;
    return instance;
}

uint8_t
GF16::mul(uint8_t a, uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + t.log[b]];
}

uint8_t
GF16::div(uint8_t a, uint8_t b)
{
    panicIf(b == 0, "GF16 division by zero");
    if (a == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + kMultGroupOrder - t.log[b]];
}

uint8_t
GF16::inv(uint8_t a)
{
    panicIf(a == 0, "GF16 inverse of zero");
    const Tables &t = tables();
    return t.exp[(kMultGroupOrder - t.log[a]) % kMultGroupOrder];
}

uint8_t
GF16::pow(uint8_t a, int n)
{
    if (a == 0) {
        panicIf(n <= 0, "GF16 pow: 0 to non-positive power");
        return 0;
    }
    const Tables &t = tables();
    int exponent = (static_cast<int>(t.log[a]) * n) %
                   static_cast<int>(kMultGroupOrder);
    if (exponent < 0)
        exponent += kMultGroupOrder;
    return t.exp[exponent];
}

uint8_t
GF16::alphaPow(int n)
{
    int exponent = n % static_cast<int>(kMultGroupOrder);
    if (exponent < 0)
        exponent += kMultGroupOrder;
    return tables().exp[exponent];
}

unsigned
GF16::log(uint8_t a)
{
    panicIf(a == 0, "GF16 log of zero");
    return tables().log[a];
}

const uint8_t *
GF16::mulTable(uint8_t c)
{
    // Built through mul(), which handles zero operands before any
    // table lookup — the log[0] sentinel is never consulted.
    static const auto rows = [] {
        std::array<uint8_t, kFieldSize * kFieldSize> t{};
        for (unsigned a = 0; a < kFieldSize; ++a)
            for (unsigned v = 0; v < kFieldSize; ++v)
                t[a * kFieldSize + v] = mul(static_cast<uint8_t>(a),
                                            static_cast<uint8_t>(v));
        return t;
    }();
    return rows.data() + static_cast<size_t>(c) * kFieldSize;
}

} // namespace dnastore::ecc
