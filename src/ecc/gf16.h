/**
 * @file
 * GF(16) arithmetic for the outer Reed-Solomon code.
 *
 * The paper's wetlab setup uses 4-bit Reed-Solomon symbols so that a
 * codeword has 2^4 - 1 = 15 symbols, matching the 15-molecule
 * encoding unit (11 data + 4 ECC molecules, Section 6.2). The field
 * is GF(2^4) with the primitive polynomial x^4 + x + 1 (0x13).
 */

#ifndef DNASTORE_ECC_GF16_H
#define DNASTORE_ECC_GF16_H

#include <array>
#include <cstdint>

namespace dnastore::ecc {

/**
 * Arithmetic over GF(2^4), elements are the values 0..15.
 *
 * Zero-handling contract: zero has no discrete log, so every
 * operation that would consult log[0] either branches it away (mul
 * returns 0 early) or panics (div/inv/log). The log table stores
 * kZeroLogSentinel at index 0 — an out-of-range exponent chosen so
 * that any accidental read produces detectably wrong results instead
 * of silently aliasing log[1] == 0. SIMD helpers must therefore be
 * built from the zero-checked scalar ops (see mulTable()), never
 * from raw log/exp lookups.
 */
class GF16
{
  public:
    static constexpr unsigned kFieldSize = 16;
    static constexpr unsigned kMultGroupOrder = 15;

    /** Stored in log[0]; deliberately not a valid exponent. */
    static constexpr uint8_t kZeroLogSentinel = 15;

    /** Addition == subtraction == XOR in characteristic 2. */
    static uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
    static uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }

    /** Field multiplication via log/antilog tables. */
    static uint8_t mul(uint8_t a, uint8_t b);

    /** Field division; throws PanicError on division by zero. */
    static uint8_t div(uint8_t a, uint8_t b);

    /** Multiplicative inverse; throws PanicError for zero. */
    static uint8_t inv(uint8_t a);

    /** a raised to the (possibly negative) power n. */
    static uint8_t pow(uint8_t a, int n);

    /** alpha^n where alpha = 2 is the primitive element. */
    static uint8_t alphaPow(int n);

    /** Discrete log base alpha; input must be nonzero. */
    static unsigned log(uint8_t a);

    /**
     * 16-entry multiply-by-constant row: mulTable(c)[v] == mul(c, v)
     * for v in 0..15. This is the exact shape the PSHUFB/TBL GF
     * kernels consume; rows are built once through the zero-checked
     * mul(), so the SIMD paths never read log[0]
     * (tests/gf16_test.cc pins both properties).
     */
    static const uint8_t *mulTable(uint8_t c);

  private:
    struct Tables
    {
        std::array<uint8_t, 16> log;
        std::array<uint8_t, 32> exp;
        Tables();
    };
    static const Tables &tables();
};

} // namespace dnastore::ecc

#endif // DNASTORE_ECC_GF16_H
