/**
 * @file
 * GF(256) arithmetic for large encoding units.
 *
 * The paper's miniaturized wetlab uses 4-bit RS symbols so a unit is
 * 15 molecules (Section 6.2), but the reference architecture [23]
 * groups tens of thousands of molecules per unit with byte-wide
 * symbols. GF(2^8) with the primitive polynomial x^8 + x^4 + x^3 +
 * x^2 + 1 (0x11d) supports codewords up to 255 symbols.
 */

#ifndef DNASTORE_ECC_GF256_H
#define DNASTORE_ECC_GF256_H

#include <array>
#include <cstdint>

namespace dnastore::ecc {

/** Arithmetic over GF(2^8); elements are the values 0..255. */
class GF256
{
  public:
    static constexpr unsigned kFieldSize = 256;
    static constexpr unsigned kMultGroupOrder = 255;

    static uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
    static uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }

    static uint8_t mul(uint8_t a, uint8_t b);
    static uint8_t div(uint8_t a, uint8_t b);
    static uint8_t inv(uint8_t a);
    static uint8_t pow(uint8_t a, int n);

    /** alpha^n where alpha = 2 generates the multiplicative group. */
    static uint8_t alphaPow(int n);

    /** Discrete log base alpha; input must be nonzero. */
    static unsigned log(uint8_t a);

  private:
    struct Tables
    {
        std::array<uint8_t, 256> log;
        std::array<uint8_t, 512> exp;
        Tables();
    };
    static const Tables &tables();
};

} // namespace dnastore::ecc

#endif // DNASTORE_ECC_GF256_H
