/**
 * @file
 * GF(256) arithmetic for large encoding units.
 *
 * The paper's miniaturized wetlab uses 4-bit RS symbols so a unit is
 * 15 molecules (Section 6.2), but the reference architecture [23]
 * groups tens of thousands of molecules per unit with byte-wide
 * symbols. GF(2^8) with the primitive polynomial x^8 + x^4 + x^3 +
 * x^2 + 1 (0x11d) supports codewords up to 255 symbols.
 */

#ifndef DNASTORE_ECC_GF256_H
#define DNASTORE_ECC_GF256_H

#include <array>
#include <cstdint>

namespace dnastore::ecc {

/**
 * Arithmetic over GF(2^8); elements are the values 0..255.
 *
 * Zero-handling contract: zero has no discrete log; mul() branches
 * zero operands away before any table lookup and div/inv/log panic.
 * log[0] holds kZeroLogSentinel, an out-of-range exponent, so an
 * accidental read is detectably wrong rather than aliasing
 * log[1] == 0. SIMD helpers are derived from the zero-checked ops
 * (see mulTablesLo/Hi), never from raw log/exp lookups.
 */
class GF256
{
  public:
    static constexpr unsigned kFieldSize = 256;
    static constexpr unsigned kMultGroupOrder = 255;

    /** Stored in log[0]; deliberately not a valid exponent. */
    static constexpr uint8_t kZeroLogSentinel = 255;

    static uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
    static uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }

    static uint8_t mul(uint8_t a, uint8_t b);
    static uint8_t div(uint8_t a, uint8_t b);
    static uint8_t inv(uint8_t a);
    static uint8_t pow(uint8_t a, int n);

    /** alpha^n where alpha = 2 generates the multiplicative group. */
    static uint8_t alphaPow(int n);

    /** Discrete log base alpha; input must be nonzero. */
    static unsigned log(uint8_t a);

    /**
     * Split-nibble multiply tables in the layout the PSHUFB/TBL
     * kernels consume: mulTablesLo()[c * 16 + v] == mul(c, v) and
     * mulTablesHi()[c * 16 + v] == mul(c, v << 4), so
     * mul(c, x) == lo[c * 16 + (x & 0xF)] ^ hi[c * 16 + (x >> 4)].
     * Built once through the zero-checked mul(); the log[0] sentinel
     * is never read (tests/gf256_test.cc pins this).
     */
    static const uint8_t *mulTablesLo();
    static const uint8_t *mulTablesHi();

  private:
    struct Tables
    {
        std::array<uint8_t, 256> log;
        std::array<uint8_t, 512> exp;
        Tables();
    };
    static const Tables &tables();
};

} // namespace dnastore::ecc

#endif // DNASTORE_ECC_GF256_H
