/**
 * @file
 * Reed-Solomon over GF(256) with errors-and-erasures decoding, for
 * large encoding units (up to 255 molecules per codeword, the scale
 * of the reference architecture [23]).
 *
 * The algorithmic structure mirrors the GF(16) implementation
 * (syndromes, erasure locator, Berlekamp-Massey, Chien, Forney);
 * symbols are full bytes so one molecule column contributes one
 * byte per codeword row.
 */

#ifndef DNASTORE_ECC_REED_SOLOMON256_H
#define DNASTORE_ECC_REED_SOLOMON256_H

#include <cstdint>
#include <optional>
#include <vector>

namespace dnastore::ecc {

/** Outcome of a decode attempt. */
struct Rs256DecodeResult
{
    std::optional<std::vector<uint8_t>> codeword;
    size_t errors_corrected = 0;
    size_t erasures_filled = 0;

    bool ok() const { return codeword.has_value(); }
};

/** Systematic RS(n, k) over GF(256), n <= 255. */
class ReedSolomon256
{
  public:
    ReedSolomon256(unsigned n, unsigned k);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned parity() const { return n_ - k_; }

    std::vector<uint8_t> encode(const std::vector<uint8_t> &data) const;

    Rs256DecodeResult decode(
        const std::vector<uint8_t> &received,
        const std::vector<size_t> &erasures = {}) const;

  private:
    unsigned n_;
    unsigned k_;
    std::vector<uint8_t> generator_;

    /** syndrome_coeffs_[i * parity + s] = alpha^((s+1)*(n-1-i)):
     *  position i's contribution weights, so the syndrome vector is
     *  an XOR of mul-by-received[i] rows — the exact shape of the
     *  gf256_mul_const_accum kernel. */
    std::vector<uint8_t> syndrome_coeffs_;

    /** chien_powers_[d * n + pos] = alpha^(-d*(n-1-pos)): degree d's
     *  contribution to evaluating the locator at every candidate
     *  root at once ((parity+1) rows of n). */
    std::vector<uint8_t> chien_powers_;

    std::vector<uint8_t> computeSyndromes(
        const std::vector<uint8_t> &received) const;
};

} // namespace dnastore::ecc

#endif // DNASTORE_ECC_REED_SOLOMON256_H
