#include "ecc/reed_solomon256.h"

#include <algorithm>
#include <array>

#include "common/error.h"
#include "common/simd.h"
#include "ecc/gf256.h"

namespace dnastore::ecc {

namespace {

using Poly = std::vector<uint8_t>;

uint8_t
polyEval(const Poly &poly, uint8_t x)
{
    uint8_t acc = 0;
    for (auto it = poly.rbegin(); it != poly.rend(); ++it)
        acc = GF256::add(GF256::mul(acc, x), *it);
    return acc;
}

Poly
polyMul(const Poly &a, const Poly &b)
{
    Poly result(a.size() + b.size() - 1, 0);
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < b.size(); ++j) {
            result[i + j] = GF256::add(result[i + j],
                                       GF256::mul(a[i], b[j]));
        }
    }
    return result;
}

Poly
polyDerivative(const Poly &poly)
{
    Poly result;
    for (size_t i = 1; i < poly.size(); ++i)
        result.push_back(i % 2 == 1 ? poly[i] : 0);
    if (result.empty())
        result.push_back(0);
    return result;
}

} // namespace

ReedSolomon256::ReedSolomon256(unsigned n, unsigned k) : n_(n), k_(k)
{
    fatalIf(n > GF256::kMultGroupOrder,
            "RS256 codeword length ", n, " exceeds 255");
    fatalIf(k >= n, "RS256 requires k < n");
    generator_ = {1};
    for (unsigned i = 1; i <= n_ - k_; ++i) {
        Poly factor = {GF256::alphaPow(static_cast<int>(i)), 1};
        generator_ = polyMul(generator_, factor);
    }

    const unsigned parity = n_ - k_;
    syndrome_coeffs_.resize(static_cast<size_t>(n_) * parity);
    for (unsigned i = 0; i < n_; ++i) {
        for (unsigned s = 0; s < parity; ++s) {
            syndrome_coeffs_[i * parity + s] = GF256::alphaPow(
                static_cast<int>((s + 1) * (n_ - 1 - i)));
        }
    }
    chien_powers_.resize(static_cast<size_t>(parity + 1) * n_);
    for (unsigned d = 0; d <= parity; ++d) {
        for (unsigned pos = 0; pos < n_; ++pos) {
            chien_powers_[d * n_ + pos] = GF256::alphaPow(
                -static_cast<int>(d * (n_ - 1 - pos)));
        }
    }
}

std::vector<uint8_t>
ReedSolomon256::encode(const std::vector<uint8_t> &data) const
{
    fatalIf(data.size() != k_, "RS256 encode expects ", k_,
            " symbols, got ", data.size());
    const unsigned parity_len = n_ - k_;
    std::vector<uint8_t> remainder(parity_len, 0);
    for (uint8_t symbol : data) {
        uint8_t feedback = GF256::add(symbol, remainder[0]);
        for (unsigned j = 0; j + 1 < parity_len; ++j) {
            remainder[j] = GF256::add(
                remainder[j + 1],
                GF256::mul(feedback, generator_[parity_len - 1 - j]));
        }
        remainder[parity_len - 1] =
            GF256::mul(feedback, generator_[0]);
    }
    std::vector<uint8_t> codeword = data;
    codeword.insert(codeword.end(), remainder.begin(), remainder.end());
    return codeword;
}

std::vector<uint8_t>
ReedSolomon256::computeSyndromes(
    const std::vector<uint8_t> &received) const
{
    // S_s = sum_i received[i] * alpha^((s+1)*(n-1-i)): accumulate one
    // mul-by-constant row per nonzero symbol across all syndromes at
    // once. Field-identical to the Horner reference (GF sums are
    // XORs, so the accumulation order does not matter).
    std::vector<uint8_t> syndromes(n_ - k_, 0);
    const simd::Kernels &kernels = simd::kernels();
    const uint8_t *mul_lo = GF256::mulTablesLo();
    const uint8_t *mul_hi = GF256::mulTablesHi();
    const unsigned parity = n_ - k_;
    for (unsigned i = 0; i < n_; ++i) {
        if (received[i] == 0)
            continue;
        kernels.gf256_mul_const_accum(
            received[i], syndrome_coeffs_.data() + i * parity,
            syndromes.data(), parity, mul_lo, mul_hi);
    }
    return syndromes;
}

Rs256DecodeResult
ReedSolomon256::decode(const std::vector<uint8_t> &received,
                       const std::vector<size_t> &erasures) const
{
    Rs256DecodeResult result;
    fatalIf(received.size() != n_, "RS256 decode expects ", n_,
            " symbols");
    for (size_t pos : erasures)
        fatalIf(pos >= n_, "erasure position out of range");
    if (erasures.size() > n_ - k_)
        return result;

    std::vector<uint8_t> word = received;
    for (size_t pos : erasures)
        word[pos] = 0;

    std::vector<uint8_t> syndromes = computeSyndromes(word);
    bool all_zero = std::all_of(syndromes.begin(), syndromes.end(),
                                [](uint8_t s) { return s == 0; });
    if (all_zero && erasures.empty()) {
        result.codeword = word;
        return result;
    }

    Poly erasure_locator = {1};
    for (size_t pos : erasures) {
        uint8_t root = GF256::alphaPow(static_cast<int>(n_ - 1 - pos));
        erasure_locator = polyMul(erasure_locator, {1, root});
    }

    Poly syndrome_poly(syndromes.begin(), syndromes.end());
    Poly modified = polyMul(syndrome_poly, erasure_locator);
    modified.resize(n_ - k_, 0);

    const unsigned rho = static_cast<unsigned>(erasures.size());
    const unsigned max_errors = (n_ - k_ - rho) / 2;
    Poly sigma = {1};
    Poly prev_sigma = {1};
    unsigned errors = 0;
    unsigned m = 1;
    uint8_t prev_discrepancy = 1;
    for (unsigned i = rho; i < n_ - k_; ++i) {
        uint8_t discrepancy = modified[i];
        for (unsigned j = 1; j <= errors && j < sigma.size(); ++j) {
            discrepancy = GF256::add(
                discrepancy, GF256::mul(sigma[j], modified[i - j]));
        }
        if (discrepancy == 0) {
            ++m;
            continue;
        }
        Poly shifted(m, 0);
        shifted.insert(shifted.end(), prev_sigma.begin(),
                       prev_sigma.end());
        uint8_t scale = GF256::div(discrepancy, prev_discrepancy);
        if (2 * errors <= i - rho) {
            Poly old_sigma = sigma;
            if (sigma.size() < shifted.size())
                sigma.resize(shifted.size(), 0);
            for (size_t j = 0; j < shifted.size(); ++j) {
                sigma[j] = GF256::add(sigma[j],
                                      GF256::mul(scale, shifted[j]));
            }
            errors = i - rho + 1 - errors;
            prev_sigma = old_sigma;
            prev_discrepancy = discrepancy;
            m = 1;
        } else {
            if (sigma.size() < shifted.size())
                sigma.resize(shifted.size(), 0);
            for (size_t j = 0; j < shifted.size(); ++j) {
                sigma[j] = GF256::add(sigma[j],
                                      GF256::mul(scale, shifted[j]));
            }
            ++m;
        }
    }
    if (errors > max_errors)
        return result;

    Poly locator = polyMul(sigma, erasure_locator);

    // Chien search, vectorized over candidate positions: evaluate
    // the locator at every alpha^-(n-1-pos) simultaneously by
    // accumulating one mul-by-coefficient row per locator degree.
    std::array<uint8_t, GF256::kMultGroupOrder> chien_eval{};
    const simd::Kernels &kernels = simd::kernels();
    const uint8_t *mul_lo = GF256::mulTablesLo();
    const uint8_t *mul_hi = GF256::mulTablesHi();
    for (size_t d = 0; d < locator.size(); ++d) {
        if (locator[d] == 0)
            continue;
        // BM keeps deg(sigma) <= errors and deg(erasure locator) =
        // rho, and errors <= (parity - rho) / 2 was checked above,
        // so every nonzero coefficient has a precomputed row.
        panicIf(d >= static_cast<size_t>(n_ - k_) + 1,
                "RS256 locator degree exceeds parity");
        kernels.gf256_mul_const_accum(locator[d],
                                      chien_powers_.data() + d * n_,
                                      chien_eval.data(), n_, mul_lo,
                                      mul_hi);
    }
    std::vector<size_t> error_positions;
    for (unsigned pos = 0; pos < n_; ++pos) {
        if (chien_eval[pos] == 0)
            error_positions.push_back(pos);
    }
    size_t degree = 0;
    for (size_t i = 0; i < locator.size(); ++i) {
        if (locator[i] != 0)
            degree = i;
    }
    if (error_positions.size() != degree)
        return result;

    Poly omega = polyMul(syndrome_poly, locator);
    omega.resize(n_ - k_, 0);
    Poly locator_deriv = polyDerivative(locator);

    size_t plain_errors = 0;
    for (size_t pos : error_positions) {
        int j = static_cast<int>(n_ - 1 - pos);
        uint8_t x_inv = GF256::alphaPow(-j);
        uint8_t denominator = polyEval(locator_deriv, x_inv);
        if (denominator == 0)
            return result;
        uint8_t magnitude =
            GF256::div(polyEval(omega, x_inv), denominator);
        word[pos] = GF256::add(word[pos], magnitude);
        bool was_erasure =
            std::find(erasures.begin(), erasures.end(), pos) !=
            erasures.end();
        if (!was_erasure && magnitude != 0)
            ++plain_errors;
    }

    std::vector<uint8_t> check = computeSyndromes(word);
    if (!std::all_of(check.begin(), check.end(),
                     [](uint8_t s) { return s == 0; })) {
        return result;
    }
    result.codeword = word;
    result.errors_corrected = plain_errors;
    result.erasures_filled = erasures.size();
    return result;
}

} // namespace dnastore::ecc
