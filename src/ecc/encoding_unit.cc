#include "ecc/encoding_unit.h"

#include <algorithm>
#include <cstring>

#include "common/arena.h"
#include "common/error.h"
#include "common/simd.h"

namespace dnastore::ecc {

namespace {

/** Split bytes into nibbles, high nibble first. */
std::vector<uint8_t>
toNibbles(const Bytes &data)
{
    std::vector<uint8_t> nibbles;
    nibbles.reserve(data.size() * 2);
    for (uint8_t byte : data) {
        nibbles.push_back(byte >> 4);
        nibbles.push_back(byte & 0xf);
    }
    return nibbles;
}

/** Join nibbles (high first) back into bytes. */
Bytes
toBytes(const uint8_t *nibbles, size_t count)
{
    Bytes data;
    data.reserve(count / 2);
    for (size_t i = 0; i + 1 < count; i += 2) {
        data.push_back(static_cast<uint8_t>((nibbles[i] << 4) |
                                            (nibbles[i + 1] & 0xf)));
    }
    return data;
}

} // namespace

EncodingUnitCodec::EncodingUnitCodec(unsigned n, unsigned k,
                                     size_t column_bytes)
    : n_(n), k_(k), column_bytes_(column_bytes), rs_(n, k)
{
    fatalIf(column_bytes == 0, "EncodingUnitCodec: zero column size");
}

std::vector<Bytes>
EncodingUnitCodec::encode(const Bytes &unit_data) const
{
    fatalIf(unit_data.size() != dataBytes(),
            "EncodingUnitCodec::encode expects ", dataBytes(),
            " bytes, got ", unit_data.size());

    const size_t row_count = rows();
    std::vector<uint8_t> nibbles = toNibbles(unit_data);

    // nibbles are laid out column-major: column c of the data part
    // holds nibbles [c*rows, (c+1)*rows).
    std::vector<std::vector<uint8_t>> columns(
        n_, std::vector<uint8_t>(row_count, 0));
    for (unsigned c = 0; c < k_; ++c) {
        for (size_t r = 0; r < row_count; ++r)
            columns[c][r] = nibbles[c * row_count + r];
    }

    // Each row is an RS codeword across the n columns.
    std::vector<uint8_t> row_data(k_);
    for (size_t r = 0; r < row_count; ++r) {
        for (unsigned c = 0; c < k_; ++c)
            row_data[c] = columns[c][r];
        std::vector<uint8_t> codeword = rs_.encode(row_data);
        for (unsigned c = k_; c < n_; ++c)
            columns[c][r] = codeword[c];
    }

    std::vector<Bytes> payloads;
    payloads.reserve(n_);
    for (unsigned c = 0; c < n_; ++c)
        payloads.push_back(toBytes(columns[c].data(), columns[c].size()));
    return payloads;
}

UnitDecodeResult
EncodingUnitCodec::decode(
    const std::vector<std::optional<Bytes>> &columns) const
{
    UnitDecodeResult result;
    fatalIf(columns.size() != n_,
            "EncodingUnitCodec::decode expects ", n_, " columns, got ",
            columns.size());

    const size_t row_count = rows();
    const unsigned parity = n_ - k_;
    Arena &arena = Arena::scratch();
    ArenaScope scope(arena);

    // Column nibbles, flat [c * row_count + r]; erased columns are
    // zeroed so they contribute known values to every row codeword.
    uint8_t *nibbles = arena.allocArray<uint8_t>(n_ * row_count);
    const uint8_t **col_ptrs =
        arena.allocArray<const uint8_t *>(n_);
    std::vector<size_t> erasures;
    for (unsigned c = 0; c < n_; ++c) {
        uint8_t *col = nibbles + c * row_count;
        col_ptrs[c] = col;
        if (!columns[c].has_value()) {
            erasures.push_back(c);
            std::memset(col, 0, row_count);
            continue;
        }
        fatalIf(columns[c]->size() != column_bytes_,
                "column ", c, " has ", columns[c]->size(),
                " bytes, expected ", column_bytes_);
        const Bytes &bytes = *columns[c];
        for (size_t b = 0; b < bytes.size(); ++b) {
            col[2 * b] = bytes[b] >> 4;
            col[2 * b + 1] = bytes[b] & 0xf;
        }
    }

    // One SIMD pass computes every syndrome of every row codeword
    // (synd[s * row_count + r] = syndrome s of row r), so clean rows
    // — the overwhelming majority — never materialize a received
    // word or touch the RS decoder at all.
    uint8_t *synd = arena.allocArray<uint8_t>(parity * row_count);
    simd::kernels().gf16_syndromes(col_ptrs, n_, parity, row_count,
                                   rs_.syndromeMulTables().data(),
                                   synd);

    uint8_t *data_nibbles = arena.allocArray<uint8_t>(k_ * row_count);
    std::memset(data_nibbles, 0, k_ * row_count);
    std::vector<uint8_t> received(n_);
    for (size_t r = 0; r < row_count; ++r) {
        bool clean = true;
        for (unsigned s = 0; s < parity && clean; ++s)
            clean = synd[s * row_count + r] == 0;
        if (clean && erasures.empty()) {
            // All-zero syndromes and nothing erased: the row already
            // is a codeword. Same outcome and stats (zero errors,
            // zero erasures) as the RS decoder's fast path.
            for (unsigned c = 0; c < k_; ++c)
                data_nibbles[c * row_count + r] = col_ptrs[c][r];
            continue;
        }
        for (unsigned c = 0; c < n_; ++c)
            received[c] = col_ptrs[c][r];
        uint8_t row_synd[15];
        for (unsigned s = 0; s < parity; ++s)
            row_synd[s] = synd[s * row_count + r];
        RsDecodeResult row =
            rs_.decodeWithSyndromes(received, erasures, row_synd);
        if (!row.ok()) {
            result.failed_rows.push_back(r);
            continue;
        }
        result.symbol_errors_corrected += row.errors_corrected;
        result.erasures_filled += row.erasures_filled;
        result.max_row_correction_load =
            std::max(result.max_row_correction_load,
                     row.erasures_filled + 2 * row.errors_corrected);
        for (unsigned c = 0; c < k_; ++c)
            data_nibbles[c * row_count + r] = (*row.codeword)[c];
    }

    if (!result.failed_rows.empty())
        return result;
    result.data = toBytes(data_nibbles, k_ * row_count);
    return result;
}

} // namespace dnastore::ecc
