#include "ecc/encoding_unit.h"

#include <algorithm>

#include "common/error.h"

namespace dnastore::ecc {

namespace {

/** Split bytes into nibbles, high nibble first. */
std::vector<uint8_t>
toNibbles(const Bytes &data)
{
    std::vector<uint8_t> nibbles;
    nibbles.reserve(data.size() * 2);
    for (uint8_t byte : data) {
        nibbles.push_back(byte >> 4);
        nibbles.push_back(byte & 0xf);
    }
    return nibbles;
}

/** Join nibbles (high first) back into bytes. */
Bytes
toBytes(const std::vector<uint8_t> &nibbles)
{
    Bytes data;
    data.reserve(nibbles.size() / 2);
    for (size_t i = 0; i + 1 < nibbles.size(); i += 2) {
        data.push_back(static_cast<uint8_t>((nibbles[i] << 4) |
                                            (nibbles[i + 1] & 0xf)));
    }
    return data;
}

} // namespace

EncodingUnitCodec::EncodingUnitCodec(unsigned n, unsigned k,
                                     size_t column_bytes)
    : n_(n), k_(k), column_bytes_(column_bytes), rs_(n, k)
{
    fatalIf(column_bytes == 0, "EncodingUnitCodec: zero column size");
}

std::vector<Bytes>
EncodingUnitCodec::encode(const Bytes &unit_data) const
{
    fatalIf(unit_data.size() != dataBytes(),
            "EncodingUnitCodec::encode expects ", dataBytes(),
            " bytes, got ", unit_data.size());

    const size_t row_count = rows();
    std::vector<uint8_t> nibbles = toNibbles(unit_data);

    // nibbles are laid out column-major: column c of the data part
    // holds nibbles [c*rows, (c+1)*rows).
    std::vector<std::vector<uint8_t>> columns(
        n_, std::vector<uint8_t>(row_count, 0));
    for (unsigned c = 0; c < k_; ++c) {
        for (size_t r = 0; r < row_count; ++r)
            columns[c][r] = nibbles[c * row_count + r];
    }

    // Each row is an RS codeword across the n columns.
    std::vector<uint8_t> row_data(k_);
    for (size_t r = 0; r < row_count; ++r) {
        for (unsigned c = 0; c < k_; ++c)
            row_data[c] = columns[c][r];
        std::vector<uint8_t> codeword = rs_.encode(row_data);
        for (unsigned c = k_; c < n_; ++c)
            columns[c][r] = codeword[c];
    }

    std::vector<Bytes> payloads;
    payloads.reserve(n_);
    for (unsigned c = 0; c < n_; ++c)
        payloads.push_back(toBytes(columns[c]));
    return payloads;
}

UnitDecodeResult
EncodingUnitCodec::decode(
    const std::vector<std::optional<Bytes>> &columns) const
{
    UnitDecodeResult result;
    fatalIf(columns.size() != n_,
            "EncodingUnitCodec::decode expects ", n_, " columns, got ",
            columns.size());

    const size_t row_count = rows();
    std::vector<size_t> erasures;
    std::vector<std::vector<uint8_t>> column_nibbles(n_);
    for (unsigned c = 0; c < n_; ++c) {
        if (!columns[c].has_value()) {
            erasures.push_back(c);
            column_nibbles[c].assign(row_count, 0);
            continue;
        }
        fatalIf(columns[c]->size() != column_bytes_,
                "column ", c, " has ", columns[c]->size(),
                " bytes, expected ", column_bytes_);
        column_nibbles[c] = toNibbles(*columns[c]);
    }

    std::vector<uint8_t> data_nibbles(k_ * row_count, 0);
    std::vector<uint8_t> received(n_);
    for (size_t r = 0; r < row_count; ++r) {
        for (unsigned c = 0; c < n_; ++c)
            received[c] = column_nibbles[c][r];
        RsDecodeResult row = rs_.decode(received, erasures);
        if (!row.ok()) {
            result.failed_rows.push_back(r);
            continue;
        }
        result.symbol_errors_corrected += row.errors_corrected;
        result.erasures_filled += row.erasures_filled;
        result.max_row_correction_load =
            std::max(result.max_row_correction_load,
                     row.erasures_filled + 2 * row.errors_corrected);
        for (unsigned c = 0; c < k_; ++c)
            data_nibbles[c * row_count + r] = (*row.codeword)[c];
    }

    if (!result.failed_rows.empty())
        return result;
    result.data = toBytes(data_nibbles);
    return result;
}

} // namespace dnastore::ecc
