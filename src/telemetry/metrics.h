/**
 * @file
 * Lock-cheap service telemetry: counters, gauges, fixed-bucket
 * histograms, and a MetricsRegistry that owns them by name.
 *
 * The hot path — a DecodeService worker recording a queue latency, a
 * frontend counting a returned block — touches only relaxed atomics;
 * the registry mutex is taken only to register a metric (once per
 * name) and to snapshot. Instruments are created on first use and
 * live as long as the registry, so callers cache the returned
 * references and record without any lookup.
 *
 * Snapshots are deterministic: instruments are keyed in sorted name
 * order, and exportText() emits one stable line per sample (a
 * Prometheus-style text format), so two snapshots of registries with
 * identical recorded values serialize identically — tests pin the
 * export format literally.
 */

#ifndef DNASTORE_TELEMETRY_METRICS_H
#define DNASTORE_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dnastore::telemetry {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    increment(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous level (queue depth, threads busy); may go down. */
class Gauge
{
  public:
    void
    set(int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    void
    add(int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations <= bounds[i];
 * one implicit overflow bucket counts the rest. Bounds are fixed at
 * registration (strictly increasing), so concurrent observers only
 * ever fetch_add — no resizing, no locking.
 */
class Histogram
{
  public:
    /** @param bounds strictly increasing upper bounds; throws
     *               FatalError when empty or unsorted. */
    explicit Histogram(std::vector<uint64_t> bounds);

    void observe(uint64_t value);

    uint64_t count() const;
    uint64_t sum() const;

    const std::vector<uint64_t> &bounds() const { return bounds_; }

    /** Per-bucket counts, overflow bucket last
     *  (size = bounds().size() + 1). */
    std::vector<uint64_t> bucketCounts() const;

  private:
    std::vector<uint64_t> bounds_;
    std::vector<std::atomic<uint64_t>> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** Default latency bounds in microseconds: 10us .. 10s, decades. */
std::vector<uint64_t> defaultLatencyBoundsUs();

/** Default bounds for read-count distributions (e.g. reads consumed
 *  before a streaming decode completed): 10 .. 300k, 1-3-10 steps. */
std::vector<uint64_t> defaultReadCountBounds();

/** Point-in-time copy of one histogram. */
struct HistogramSnapshot
{
    std::vector<uint64_t> bounds;
    std::vector<uint64_t> buckets;  ///< overflow bucket last
    uint64_t count = 0;
    uint64_t sum = 0;

    bool operator==(const HistogramSnapshot &) const = default;
};

/** Point-in-time copy of a whole registry, keyed in name order. */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    bool operator==(const MetricsSnapshot &) const = default;
};

/**
 * Owns instruments by name. A name identifies exactly one instrument
 * of exactly one kind for the registry's lifetime; re-requesting it
 * returns the same object (so independent layers can share a
 * registry), and requesting it as a different kind — or a histogram
 * with different bounds — throws FatalError.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name,
                         std::vector<uint64_t> bounds =
                             defaultLatencyBoundsUs());

    MetricsSnapshot snapshot() const;

    /**
     * Prometheus-style text export of snapshot(): counters and gauges
     * as `name value`, histograms as cumulative `name_bucket{le="B"}`
     * lines (last bucket le="+Inf") plus `name_count` / `name_sum`.
     * Line order is name order — byte-stable for equal contents.
     */
    std::string exportText() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
};

} // namespace dnastore::telemetry

#endif // DNASTORE_TELEMETRY_METRICS_H
