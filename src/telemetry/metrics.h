/**
 * @file
 * Lock-cheap service telemetry: counters, gauges, fixed-bucket
 * histograms, and a MetricsRegistry that owns them by name.
 *
 * The hot path — a DecodeService worker recording a queue latency, a
 * frontend counting a returned block — touches only relaxed atomics;
 * the registry mutex is taken only to register a metric (once per
 * name) and to snapshot. Instruments are created on first use and
 * live as long as the registry, so callers cache the returned
 * references and record without any lookup.
 *
 * Snapshots are deterministic: instruments are keyed in sorted name
 * order, and exportText() emits one stable line per sample (a
 * Prometheus-style text format), so two snapshots of registries with
 * identical recorded values serialize identically — tests pin the
 * export format literally.
 *
 * Locking contract (machine-checked, see common/sync.h): the registry
 * mutex ranks kTelemetryRegistry — the TOP of the rank table — so no
 * subsystem lock may be held while creating an instrument or taking a
 * snapshot (the PR 6 inversion took this mutex under the decode
 * service's, and the rank checker now turns that into an instant
 * abort). The instruments themselves are deliberately *unguarded*
 * relaxed atomics, one per field, audited below: record paths must
 * stay lock-free, per-instrument reads are individually atomic, and
 * the only cross-field invariant a reader could want (a histogram's
 * count equalling the sum of its buckets) is explicitly not promised
 * by snapshot() — a snapshot taken mid-observe may tear *between*
 * fields, never within one.
 */

#ifndef DNASTORE_TELEMETRY_METRICS_H
#define DNASTORE_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace dnastore::telemetry {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    increment(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    /** Intentionally unguarded: increment() is the hottest telemetry
     *  path (every request, every stream chunk) and a relaxed
     *  fetch_add is already atomic and monotonic — a mutex would buy
     *  nothing but contention. Never written under any lock. */
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous level (queue depth, threads busy); may go down. */
class Gauge
{
  public:
    void
    set(int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    void
    add(int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    /** Intentionally unguarded: set() is last-writer-wins by design
     *  (an instantaneous sample has no ordering to protect), add() is
     *  atomic on its own, and callers — DecodeService setting
     *  queue_depth under its service mutex, ThreadPool occupancy
     *  sampled with no lock at all — must not need the registry rank
     *  to record. NOT mutex-protected in practice: the service-mutex
     *  writers are incidental (they also write it lock-free in
     *  runBatch's pool lambda), so GUARDED_BY would be a lie. */
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations <= bounds[i];
 * one implicit overflow bucket counts the rest. Bounds are fixed at
 * registration (strictly increasing), so concurrent observers only
 * ever fetch_add — no resizing, no locking.
 */
class Histogram
{
  public:
    /** @param bounds strictly increasing upper bounds; throws
     *               FatalError when empty or unsorted. */
    explicit Histogram(std::vector<uint64_t> bounds);

    void observe(uint64_t value);

    /** observe() that also stamps the bucket's exemplar: the id of
     *  the last sampled trace whose request landed here, so a fat
     *  p999 bucket links straight to a dumpable trace
     *  (TraceCollector::findTrace). Pass 0 (no trace) to leave the
     *  exemplar untouched — recording stays one relaxed store even
     *  on the traced path. */
    void observe(uint64_t value, uint64_t exemplar_trace);

    uint64_t count() const;
    uint64_t sum() const;

    const std::vector<uint64_t> &bounds() const { return bounds_; }

    /** Per-bucket counts, overflow bucket last
     *  (size = bounds().size() + 1). */
    std::vector<uint64_t> bucketCounts() const;

    /** Per-bucket exemplar trace ids (0 = none), overflow last. */
    std::vector<uint64_t> exemplarTraceIds() const;

  private:
    /** Immutable after construction (bounds are fixed at
     *  registration), so concurrent readers need no guard at all. */
    std::vector<uint64_t> bounds_;

    /** Intentionally unguarded: observe() runs on every decode
     *  worker; each bucket/count/sum is an independent relaxed
     *  fetch_add. The cross-field invariant (count_ == Σ buckets_)
     *  holds only quiescently — bucketCounts()/count()/sum() read
     *  each atom exactly once and may observe a mid-observe state;
     *  telemetry_test pins the quiescent accounting instead. */
    std::vector<std::atomic<uint64_t>> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};

    /** Last-writer-wins exemplar per bucket, same audit as buckets_:
     *  an exemplar is a hint ("some trace that landed here"), so a
     *  relaxed store losing a race to a concurrent observer is
     *  correct by definition. */
    std::vector<std::atomic<uint64_t>> exemplars_;
};

/** Default latency bounds in microseconds: 10us .. 10s, decades. */
std::vector<uint64_t> defaultLatencyBoundsUs();

/** Fine-grained latency bounds in microseconds: 10us .. 10s in a
 *  1-2-5 progression (19 buckets + overflow). Use these when quantile
 *  estimates matter — the bucket-resolution error of quantile() is
 *  one bucket width, so a decade grid can only say "p99 is somewhere
 *  under 1 s" while this grid pins it within a 1-2-5 step. */
std::vector<uint64_t> fineLatencyBoundsUs();

/** Default bounds for read-count distributions (e.g. reads consumed
 *  before a streaming decode completed): 10 .. 300k, 1-3-10 steps. */
std::vector<uint64_t> defaultReadCountBounds();

/** Point-in-time copy of one histogram. */
struct HistogramSnapshot
{
    std::vector<uint64_t> bounds;
    std::vector<uint64_t> buckets;  ///< overflow bucket last
    uint64_t count = 0;
    uint64_t sum = 0;
    /** Per-bucket exemplar trace ids (0 = none), overflow last.
     *  Deterministic whenever the recording side is (virtual-clock
     *  replays), all-zero when tracing is off — so the defaulted
     *  equality below stays usable in determinism pins. Not part of
     *  exportText(), whose format is pinned literally. */
    std::vector<uint64_t> exemplars;

    /**
     * Conservative quantile estimate from the bucket counts: the
     * upper bound of the bucket holding the observation of rank
     * ceil(q * count) (rank 1 when q is 0). Because bucket i counts
     * observations in (bounds[i-1], bounds[i]], the true q-quantile
     * lies in that same half-open interval — the estimate never
     * understates it and overstates it by at most one bucket width
     * (bounds[i] - bounds[i-1], or bounds[0] for the first bucket).
     * That is the documented resolution error; choose bounds
     * (e.g. fineLatencyBoundsUs()) to match the precision needed.
     *
     * Returns nullopt when the histogram is empty or the rank falls
     * in the overflow bucket (no finite upper bound exists). Throws
     * FatalError when q is outside [0, 1].
     */
    std::optional<uint64_t> quantile(double q) const;

    bool operator==(const HistogramSnapshot &) const = default;
};

/** Point-in-time copy of a whole registry, keyed in name order. */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    bool operator==(const MetricsSnapshot &) const = default;
};

/**
 * Owns instruments by name. A name identifies exactly one instrument
 * of exactly one kind for the registry's lifetime; re-requesting it
 * returns the same object (so independent layers can share a
 * registry), and requesting it as a different kind — or a histogram
 * with different bounds — throws FatalError.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name,
                         std::vector<uint64_t> bounds =
                             defaultLatencyBoundsUs());

    MetricsSnapshot snapshot() const;

    /**
     * Prometheus-style text export of snapshot(): counters and gauges
     * as `name value`, histograms as cumulative `name_bucket{le="B"}`
     * lines (last bucket le="+Inf") plus `name_count` / `name_sum`.
     * Line order is name order — byte-stable for equal contents.
     */
    std::string exportText() const;

  private:
    /** Top of the rank table: acquiring this while holding ANY other
     *  sync::Mutex is a rank violation — callers cache instrument
     *  pointers at construction instead of looking them up inside
     *  their own critical sections. */
    mutable sync::Mutex mutex_{sync::Rank::kTelemetryRegistry,
                               "metrics_registry"};
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_ DNASTORE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        gauges_ DNASTORE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_ DNASTORE_GUARDED_BY(mutex_);
};

} // namespace dnastore::telemetry

#endif // DNASTORE_TELEMETRY_METRICS_H
