/**
 * @file
 * Request-scoped tracing: spans, trace contexts, and a bounded
 * collector with head sampling, tail triggers, and two exporters.
 *
 * A trace is one request's tree of spans (name, parent, start/end
 * microseconds, key/value attributes). Span recording is staged in
 * the caller-owned SpanHandle — attributes and timestamps accumulate
 * in the handle's own storage, untouched by any lock — and drains
 * into the trace's span buffer exactly once, at end(). Ending the
 * root span deposits the finished trace into the TraceCollector's
 * bounded ring, where the sampling verdict is made:
 *
 *  - **head sampling**: a deterministic per-tenant counter keeps
 *    every Nth trace (`sample_every`, overridable per tenant). A
 *    counter, not a coin flip, so virtual-clock replays keep the
 *    same traces every run.
 *  - **tail triggers**: traces a caller flagged with keep() —
 *    errors, Throttled/Overloaded outcomes — and traces whose root
 *    span meets `slow_threshold_us` are kept even when head sampling
 *    passed them over. Until the verdict, such traces record
 *    provisionally; that is the documented cost of tail sampling.
 *
 * When tracing is off — a default-constructed TraceContext, or a
 * collector whose config disables both head sampling and tail
 * triggers — every span operation is a single branch on a null
 * pointer: no clock read, no allocation, no lock.
 *
 * Exporters: exportChromeJson() emits Chrome trace-event JSON
 * (loadable in Perfetto / chrome://tracing; pid = tenant, tid =
 * trace id), and exportText() emits a deterministic indented tree —
 * span ids are omitted and siblings are sorted, so two replays that
 * produce the same span trees serialize byte-identically even when
 * pool threads raced the span *insertions* (golden pins rely on
 * this).
 *
 * Clock: all timestamps read the collector's injectable `clock_us`
 * (steady_clock by default), the same hook DecodeService uses — the
 * workload simulator points both at its VirtualClock so replayed
 * traces are byte-reproducible.
 *
 * Locking contract (see common/sync.h): the per-trace span buffer
 * ranks kTraceBuffer and the collector ring kTraceCollector, both
 * near the bottom of the table, so spans may begin and end inside
 * any subsystem's critical section (the decode workers end per-unit
 * spans from inside pool jobs). The collector must outlive every
 * TraceContext and SpanHandle minted from it.
 */

#ifndef DNASTORE_TELEMETRY_TRACE_H
#define DNASTORE_TELEMETRY_TRACE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace dnastore::telemetry {

/** Process-unique trace identifier (0 = no trace). */
using TraceId = uint64_t;

/** Trace-unique span identifier (0 = no parent / root). */
using SpanId = uint32_t;

inline constexpr SpanId kNoSpan = 0;

/** One key/value attribute; values are preformatted strings so the
 *  export layers never need type dispatch. */
struct SpanAttr
{
    std::string key;
    std::string value;

    bool operator==(const SpanAttr &) const = default;
};

/** One finished span. */
struct Span
{
    SpanId id = kNoSpan;
    SpanId parent = kNoSpan;
    std::string name;
    uint64_t start_us = 0;
    uint64_t end_us = 0;
    std::vector<SpanAttr> attrs;  ///< insertion order

    bool operator==(const Span &) const = default;
};

/** One kept trace, as stored in the collector ring. Spans are in
 *  buffer-drain order (nondeterministic under pool concurrency);
 *  exporters sort, callers walking spans directly should too. */
struct FinishedTrace
{
    TraceId id = 0;
    uint64_t tenant = 0;
    std::vector<Span> spans;
};

class TraceCollector;
class TraceContext;
class SpanHandle;

namespace trace_detail {

/** Shared state of one live trace: identity, sampling flags, and the
 *  span buffer the handles drain into. Reference-counted so request
 *  structs can carry contexts across queues and threads. */
class TraceData
{
  public:
    TraceData(TraceCollector *collector, TraceId id, uint64_t tenant,
              bool head_sampled)
        : collector_(collector), id_(id), tenant_(tenant),
          head_sampled_(head_sampled)
    {}

  private:
    friend class dnastore::telemetry::TraceCollector;
    friend class dnastore::telemetry::TraceContext;
    friend class dnastore::telemetry::SpanHandle;

    TraceCollector *const collector_;
    const TraceId id_;
    const uint64_t tenant_;
    const bool head_sampled_;

    /** Next span id; fetched lock-free at span begin so concurrent
     *  pool workers can open spans without touching the buffer. */
    std::atomic<uint32_t> next_span_id_{1};

    /** Tail trigger: set by TraceContext::keep() (errors, throttled
     *  and overloaded outcomes). Read once at deposit. */
    std::atomic<bool> keep_{false};

    mutable sync::Mutex mutex_{sync::Rank::kTraceBuffer,
                               "trace_buffer"};
    std::vector<Span> spans_ DNASTORE_GUARDED_BY(mutex_);
};

} // namespace trace_detail

/**
 * A live span, staged locally until end(). Movable, not copyable:
 * exactly one owner stamps the end and drains it into the trace.
 * An inactive handle (default-constructed, minted from an inactive
 * context, or moved-from) ignores every call at the cost of one
 * branch. Destroying an open active handle ends it at the current
 * clock — explicit end() is still the norm; the destructor is a
 * safety net for early-error returns.
 */
class SpanHandle
{
  public:
    SpanHandle() = default;
    ~SpanHandle() { end(); }

    SpanHandle(SpanHandle &&other) noexcept
        : data_(std::move(other.data_)), span_(std::move(other.span_))
    {
        other.data_.reset();
    }

    SpanHandle &
    operator=(SpanHandle &&other) noexcept
    {
        if (this != &other) {
            end();
            data_ = std::move(other.data_);
            span_ = std::move(other.span_);
            other.data_.reset();
        }
        return *this;
    }

    SpanHandle(const SpanHandle &) = delete;
    SpanHandle &operator=(const SpanHandle &) = delete;

    bool active() const { return data_ != nullptr; }

    /** This span's id within its trace (kNoSpan when inactive). */
    SpanId id() const { return active() ? span_.id : kNoSpan; }

    /** Append a string attribute (no-op when inactive). */
    void attr(std::string_view key, std::string_view value);

    /** Append an unsigned integer attribute, formatted in decimal. */
    void attrU64(std::string_view key, uint64_t value);

    /** Context for child spans (parent = this span). */
    TraceContext context() const;

    /** Stamp end at the collector clock and drain into the trace;
     *  ending the root span deposits the trace. Idempotent — the
     *  handle becomes inactive. */
    void end();

    /** end() with an explicit timestamp (retroactive spans). */
    void endAt(uint64_t end_us);

  private:
    friend class TraceContext;
    friend class TraceCollector;

    std::shared_ptr<trace_detail::TraceData> data_;
    Span span_;  ///< caller-local staging; drained once, at end
};

/**
 * The propagation token: which trace (if any) the current request
 * belongs to and which span new children hang from. Cheap to copy
 * (shared_ptr + id); a default-constructed context is inactive and
 * makes every operation a single branch.
 */
class TraceContext
{
  public:
    TraceContext() = default;

    bool active() const { return data_ != nullptr; }

    /** 0 when inactive. */
    TraceId traceId() const;

    /** Collector clock (0 when inactive) — for callers that stamp
     *  retroactive spans via spanAt/endAt. */
    uint64_t nowUs() const;

    /** Begin a child span at the current clock. */
    SpanHandle span(std::string_view name) const;

    /** Begin a child span with an explicit start timestamp. */
    SpanHandle spanAt(std::string_view name, uint64_t start_us) const;

    /** Record an instant event (zero-duration child span). */
    void event(std::string_view name) const;

    /** Tail trigger: keep this trace regardless of head sampling
     *  (errors, Throttled/Overloaded outcomes). */
    void keep() const;

  private:
    friend class SpanHandle;
    friend class TraceCollector;

    std::shared_ptr<trace_detail::TraceData> data_;
    SpanId parent_ = kNoSpan;
};

/** Collector tuning. Fixed at construction; only the ring and the
 *  sampling counters mutate afterwards. */
struct TraceCollectorConfig
{
    /** Keep every Nth trace per tenant (deterministic counter, first
     *  trace always kept). 0 disables head sampling. */
    uint64_t sample_every = 1;

    /** Per-tenant overrides of sample_every (0 = head-off for that
     *  tenant). */
    std::map<uint64_t, uint64_t> tenant_sample_every;

    /** Keep traces whose root span lasts at least this long
     *  (0 = off). */
    uint64_t slow_threshold_us = 0;

    /** Honor TraceContext::keep() tail flags (errors / Throttled /
     *  Overloaded). */
    bool keep_errors = true;

    /** Finished-trace ring capacity; the oldest trace is evicted
     *  when a new one lands in a full ring. */
    size_t capacity = 256;

    /** Time source for every span timestamp, microseconds. Leave
     *  empty for steady_clock — the workload simulator injects its
     *  VirtualClock source so replayed traces are byte-identical. */
    std::function<uint64_t()> clock_us;
};

/**
 * Owns the bounded ring of kept traces and mints new ones. Thread
 * safe; must outlive every context and handle it minted.
 */
class TraceCollector
{
  public:
    explicit TraceCollector(TraceCollectorConfig config = {});

    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    /**
     * Begin a trace: returns the root span handle (name @p name) and
     * hands out child contexts via SpanHandle::context(). When the
     * config disables both head sampling (for this tenant) and every
     * tail trigger, returns an inactive handle — tracing then costs
     * the callers one branch per span operation.
     *
     * Ending the root deposits the trace; the sampling verdict
     * (head counter, keep() flag, slow threshold) is made there.
     */
    SpanHandle startTrace(std::string_view root_name, uint64_t tenant);

    /** Clock used for every span timestamp. */
    uint64_t clockUs() const;

    /** Number of traces currently in the ring. */
    size_t traceCount() const;

    /** Copy of the ring, oldest first. */
    std::vector<FinishedTrace> traces() const;

    /** The ring entry with the given id, if still resident. */
    std::optional<FinishedTrace> findTrace(TraceId id) const;

    /** Drop every kept trace (sampling counters keep counting). */
    void clear();

    /**
     * Deterministic indented text form, for golden pins:
     * traces sorted by id, one header line each
     * (`trace <id> tenant=<t> spans=<n>`), spans as an indented
     * tree with siblings sorted by (start, name, attrs) — span ids
     * never appear, so the bytes don't depend on which pool thread
     * allocated which id.
     */
    std::string exportText() const;

    /**
     * Chrome trace-event JSON ("X" complete events, ts/dur in
     * microseconds, pid = tenant, tid = trace id, attributes under
     * "args"), loadable in Perfetto / chrome://tracing. Same sorted
     * order as exportText().
     */
    std::string exportChromeJson() const;

  private:
    friend class SpanHandle;

    /** Root ended: decide keep/drop and ring the trace in. */
    void deposit(trace_detail::TraceData &data, const Span &root);

    uint64_t effectiveSampleEvery(uint64_t tenant) const;

    const TraceCollectorConfig config_;
    std::atomic<uint64_t> next_trace_id_{1};

    mutable sync::Mutex mutex_{sync::Rank::kTraceCollector,
                               "trace_collector"};
    /** Per-tenant head-sampling counters (trace ordinal per tenant). */
    std::map<uint64_t, uint64_t> head_counters_
        DNASTORE_GUARDED_BY(mutex_);
    /** Kept traces, oldest first; bounded by config_.capacity. */
    std::vector<FinishedTrace> ring_ DNASTORE_GUARDED_BY(mutex_);
};

} // namespace dnastore::telemetry

#endif // DNASTORE_TELEMETRY_TRACE_H
