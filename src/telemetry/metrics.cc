#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace dnastore::telemetry {

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1),
      exemplars_(bounds_.size() + 1)
{
    fatalIf(bounds_.empty(), "histogram needs at least one bound");
    fatalIf(!std::is_sorted(bounds_.begin(), bounds_.end()) ||
                std::adjacent_find(bounds_.begin(), bounds_.end()) !=
                    bounds_.end(),
            "histogram bounds must be strictly increasing");
}

void
Histogram::observe(uint64_t value)
{
    observe(value, 0);
}

void
Histogram::observe(uint64_t value, uint64_t exemplar_trace)
{
    size_t bucket = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    if (exemplar_trace != 0)
        exemplars_[bucket].store(exemplar_trace,
                                 std::memory_order_relaxed);
}

uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

uint64_t
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> counts(buckets_.size());
    for (size_t i = 0; i < buckets_.size(); ++i)
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
    return counts;
}

std::vector<uint64_t>
Histogram::exemplarTraceIds() const
{
    std::vector<uint64_t> ids(exemplars_.size());
    for (size_t i = 0; i < exemplars_.size(); ++i)
        ids[i] = exemplars_[i].load(std::memory_order_relaxed);
    return ids;
}

std::vector<uint64_t>
defaultLatencyBoundsUs()
{
    return {10, 100, 1'000, 10'000, 100'000, 1'000'000, 10'000'000};
}

std::vector<uint64_t>
fineLatencyBoundsUs()
{
    std::vector<uint64_t> bounds;
    for (uint64_t decade = 10; decade <= 1'000'000; decade *= 10)
        for (uint64_t step : {1, 2, 5})
            bounds.push_back(step * decade);
    bounds.push_back(10'000'000);
    return bounds;
}

std::optional<uint64_t>
HistogramSnapshot::quantile(double q) const
{
    fatalIf(q < 0.0 || q > 1.0, "quantile out of [0, 1]: ", q);
    if (count == 0)
        return std::nullopt;
    // Rank of the requested observation, 1-based; q = 0 asks for the
    // smallest observation, q = 1 for the largest.
    auto rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank == 0)
        rank = 1;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size() && i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (cumulative >= rank)
            return bounds[i];
    }
    return std::nullopt;  // rank falls in the overflow bucket
}

std::vector<uint64_t>
defaultReadCountBounds()
{
    return {10,     30,     100,     300,     1'000,
            3'000,  10'000, 30'000,  100'000, 300'000};
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    sync::MutexLock lock(mutex_);
    fatalIf(gauges_.count(name) || histograms_.count(name),
            "metric '", std::string(name),
            "' already registered as another kind");
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    sync::MutexLock lock(mutex_);
    fatalIf(counters_.count(name) || histograms_.count(name),
            "metric '", std::string(name),
            "' already registered as another kind");
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::vector<uint64_t> bounds)
{
    sync::MutexLock lock(mutex_);
    fatalIf(counters_.count(name) || gauges_.count(name), "metric '",
            std::string(name),
            "' already registered as another kind");
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(
                              std::move(bounds)))
                 .first;
    } else {
        fatalIf(it->second->bounds() != bounds, "histogram '",
                std::string(name),
                "' re-registered with different bounds");
    }
    return *it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    sync::MutexLock lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters_)
        snap.counters.emplace(name, counter->value());
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.emplace(name, gauge->value());
    for (const auto &[name, histogram] : histograms_) {
        HistogramSnapshot h;
        h.bounds = histogram->bounds();
        h.buckets = histogram->bucketCounts();
        h.count = histogram->count();
        h.sum = histogram->sum();
        h.exemplars = histogram->exemplarTraceIds();
        snap.histograms.emplace(name, std::move(h));
    }
    return snap;
}

std::string
MetricsRegistry::exportText() const
{
    MetricsSnapshot snap = snapshot();
    std::ostringstream os;
    for (const auto &[name, value] : snap.counters)
        os << name << ' ' << value << '\n';
    for (const auto &[name, value] : snap.gauges)
        os << name << ' ' << value << '\n';
    for (const auto &[name, h] : snap.histograms) {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.buckets.size(); ++i) {
            cumulative += h.buckets[i];
            os << name << "_bucket{le=\"";
            if (i < h.bounds.size())
                os << h.bounds[i];
            else
                os << "+Inf";
            os << "\"} " << cumulative << '\n';
        }
        os << name << "_count " << h.count << '\n';
        os << name << "_sum " << h.sum << '\n';
    }
    return os.str();
}

} // namespace dnastore::telemetry
