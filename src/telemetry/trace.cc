#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace dnastore::telemetry {

using trace_detail::TraceData;

// ---------------------------------------------------------------------
// SpanHandle

void
SpanHandle::attr(std::string_view key, std::string_view value)
{
    if (!data_)
        return;
    span_.attrs.push_back({std::string(key), std::string(value)});
}

void
SpanHandle::attrU64(std::string_view key, uint64_t value)
{
    if (!data_)
        return;
    span_.attrs.push_back({std::string(key), std::to_string(value)});
}

TraceContext
SpanHandle::context() const
{
    TraceContext ctx;
    if (data_) {
        ctx.data_ = data_;
        ctx.parent_ = span_.id;
    }
    return ctx;
}

void
SpanHandle::end()
{
    if (!data_)
        return;
    endAt(data_->collector_->clockUs());
}

void
SpanHandle::endAt(uint64_t end_us)
{
    if (!data_)
        return;
    // Keep durations well-defined even if a caller hands us a stamp
    // from before the span opened (mixed clock sources).
    span_.end_us = std::max(end_us, span_.start_us);
    const bool root = span_.parent == kNoSpan;
    std::shared_ptr<TraceData> data = std::move(data_);
    data_.reset();
    Span finished = std::move(span_);
    span_ = Span{};
    {
        sync::MutexLock lock(data->mutex_);
        data->spans_.push_back(root ? finished : std::move(finished));
    }
    // The root is the last span to end (children end first by
    // contract), so its end is the whole trace's end: decide
    // keep/drop and ring the trace in.
    if (root)
        data->collector_->deposit(*data, finished);
}

// ---------------------------------------------------------------------
// TraceContext

TraceId
TraceContext::traceId() const
{
    return data_ ? data_->id_ : 0;
}

uint64_t
TraceContext::nowUs() const
{
    return data_ ? data_->collector_->clockUs() : 0;
}

SpanHandle
TraceContext::span(std::string_view name) const
{
    if (!data_)
        return {};
    return spanAt(name, data_->collector_->clockUs());
}

SpanHandle
TraceContext::spanAt(std::string_view name, uint64_t start_us) const
{
    SpanHandle handle;
    if (!data_)
        return handle;
    handle.data_ = data_;
    handle.span_.id = data_->next_span_id_.fetch_add(
        1, std::memory_order_relaxed);
    handle.span_.parent = parent_;
    handle.span_.name = std::string(name);
    handle.span_.start_us = start_us;
    return handle;
}

void
TraceContext::event(std::string_view name) const
{
    if (!data_)
        return;
    SpanHandle handle = span(name);
    handle.endAt(handle.span_.start_us);
}

void
TraceContext::keep() const
{
    if (!data_)
        return;
    data_->keep_.store(true, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// TraceCollector

TraceCollector::TraceCollector(TraceCollectorConfig config)
    : config_(std::move(config))
{}

uint64_t
TraceCollector::clockUs() const
{
    if (config_.clock_us)
        return config_.clock_us();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

uint64_t
TraceCollector::effectiveSampleEvery(uint64_t tenant) const
{
    auto it = config_.tenant_sample_every.find(tenant);
    if (it != config_.tenant_sample_every.end())
        return it->second;
    return config_.sample_every;
}

SpanHandle
TraceCollector::startTrace(std::string_view root_name, uint64_t tenant)
{
    const uint64_t every = effectiveSampleEvery(tenant);
    const bool tail_armed =
        config_.keep_errors || config_.slow_threshold_us > 0;
    if (every == 0 && !tail_armed)
        return {};

    bool head_sampled = false;
    if (every > 0) {
        sync::MutexLock lock(mutex_);
        // Ordinal counter, not a coin flip: the first trace of each
        // tenant is always kept and replays keep the same traces.
        head_sampled = head_counters_[tenant]++ % every == 0;
    }
    auto data = std::make_shared<TraceData>(
        this, next_trace_id_.fetch_add(1, std::memory_order_relaxed),
        tenant, head_sampled);

    TraceContext root_ctx;
    root_ctx.data_ = std::move(data);
    root_ctx.parent_ = kNoSpan;
    return root_ctx.span(root_name);
}

void
TraceCollector::deposit(TraceData &data, const Span &root)
{
    bool keep = data.head_sampled_;
    if (!keep && config_.keep_errors)
        keep = data.keep_.load(std::memory_order_relaxed);
    if (!keep && config_.slow_threshold_us > 0)
        keep = root.end_us - root.start_us >= config_.slow_threshold_us;
    if (!keep || config_.capacity == 0)
        return;

    FinishedTrace finished;
    finished.id = data.id_;
    finished.tenant = data.tenant_;
    {
        // Drain the span buffer before touching the ring so the two
        // trace mutexes never nest (see sync.h rank table).
        sync::MutexLock lock(data.mutex_);
        finished.spans = std::move(data.spans_);
    }
    sync::MutexLock lock(mutex_);
    if (ring_.size() >= config_.capacity)
        ring_.erase(ring_.begin(),
                    ring_.begin() +
                        static_cast<std::ptrdiff_t>(
                            ring_.size() - config_.capacity + 1));
    ring_.push_back(std::move(finished));
}

size_t
TraceCollector::traceCount() const
{
    sync::MutexLock lock(mutex_);
    return ring_.size();
}

std::vector<FinishedTrace>
TraceCollector::traces() const
{
    sync::MutexLock lock(mutex_);
    return ring_;
}

std::optional<FinishedTrace>
TraceCollector::findTrace(TraceId id) const
{
    sync::MutexLock lock(mutex_);
    for (const FinishedTrace &trace : ring_)
        if (trace.id == id)
            return trace;
    return std::nullopt;
}

void
TraceCollector::clear()
{
    sync::MutexLock lock(mutex_);
    ring_.clear();
}

// ---------------------------------------------------------------------
// Exporters

namespace {

/** Attributes as ` k=v k=v`, insertion order (single-writer per span,
 *  so the order is deterministic). Doubles as the sibling tiebreak in
 *  sortedChildren — two same-named siblings with the same start stamp
 *  (e.g. per-block "request" spans under one batch root on a frozen
 *  virtual clock) order by their distinguishing attributes. */
std::string
attrSuffix(const Span &span)
{
    std::string out;
    for (const SpanAttr &attr : span.attrs) {
        out += ' ';
        out += attr.key;
        out += '=';
        out += attr.value;
    }
    return out;
}

/** Child indices of @p parent, sorted (start, name, attrs) — never by
 *  span id, which depends on pool-thread scheduling. */
std::vector<size_t>
sortedChildren(const std::vector<Span> &spans, SpanId parent,
               const std::vector<std::string> &attr_cache)
{
    std::vector<size_t> kids;
    for (size_t i = 0; i < spans.size(); ++i)
        if (spans[i].parent == parent &&
            (parent != kNoSpan || spans[i].id != kNoSpan))
            kids.push_back(i);
    std::sort(kids.begin(), kids.end(), [&](size_t a, size_t b) {
        const Span &sa = spans[a];
        const Span &sb = spans[b];
        if (sa.start_us != sb.start_us)
            return sa.start_us < sb.start_us;
        if (sa.name != sb.name)
            return sa.name < sb.name;
        return attr_cache[a] < attr_cache[b];
    });
    return kids;
}

void
writeTextSpan(std::ostringstream &os, const std::vector<Span> &spans,
              const std::vector<std::string> &attr_cache, size_t index,
              int depth)
{
    const Span &span = spans[index];
    for (int i = 0; i < depth; ++i)
        os << "  ";
    os << span.name << " start=" << span.start_us
       << " dur=" << span.end_us - span.start_us << attr_cache[index]
       << '\n';
    for (size_t kid : sortedChildren(spans, span.id, attr_cache))
        writeTextSpan(os, spans, attr_cache, kid, depth + 1);
}

/** Minimal JSON string escaping; span names and attribute values are
 *  ASCII identifiers in practice, but stay well-formed regardless. */
std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJsonSpan(std::ostringstream &os, const FinishedTrace &trace,
              size_t index, bool *first)
{
    const Span &span = trace.spans[index];
    if (!*first)
        os << ",\n";
    *first = false;
    os << R"({"name": ")" << jsonEscape(span.name)
       << R"(", "ph": "X", "ts": )" << span.start_us
       << R"(, "dur": )" << span.end_us - span.start_us
       << R"(, "pid": )" << trace.tenant << R"(, "tid": )" << trace.id;
    if (!span.attrs.empty()) {
        os << R"(, "args": {)";
        for (size_t i = 0; i < span.attrs.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << '"' << jsonEscape(span.attrs[i].key) << R"(": ")"
               << jsonEscape(span.attrs[i].value) << '"';
        }
        os << '}';
    }
    os << '}';
}

std::vector<std::string>
cacheAttrs(const std::vector<Span> &spans)
{
    std::vector<std::string> cache;
    cache.reserve(spans.size());
    for (const Span &span : spans)
        cache.push_back(attrSuffix(span));
    return cache;
}

std::vector<FinishedTrace>
sortedById(std::vector<FinishedTrace> traces)
{
    std::sort(traces.begin(), traces.end(),
              [](const FinishedTrace &a, const FinishedTrace &b) {
                  return a.id < b.id;
              });
    return traces;
}

} // namespace

std::string
TraceCollector::exportText() const
{
    std::ostringstream os;
    for (const FinishedTrace &trace : sortedById(traces())) {
        os << "trace " << trace.id << " tenant=" << trace.tenant
           << " spans=" << trace.spans.size() << '\n';
        const std::vector<std::string> attr_cache =
            cacheAttrs(trace.spans);
        for (size_t root :
             sortedChildren(trace.spans, kNoSpan, attr_cache))
            writeTextSpan(os, trace.spans, attr_cache, root, 1);
    }
    return os.str();
}

std::string
TraceCollector::exportChromeJson() const
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;
    for (const FinishedTrace &trace : sortedById(traces())) {
        const std::vector<std::string> attr_cache =
            cacheAttrs(trace.spans);
        // Same deterministic DFS order as exportText, so the two
        // exports describe spans in the same sequence.
        std::vector<size_t> stack =
            sortedChildren(trace.spans, kNoSpan, attr_cache);
        std::reverse(stack.begin(), stack.end());
        while (!stack.empty()) {
            size_t index = stack.back();
            stack.pop_back();
            writeJsonSpan(os, trace, index, &first);
            std::vector<size_t> kids = sortedChildren(
                trace.spans, trace.spans[index].id, attr_cache);
            std::reverse(kids.begin(), kids.end());
            stack.insert(stack.end(), kids.begin(), kids.end());
        }
    }
    os << "\n]}\n";
    return os.str();
}

} // namespace dnastore::telemetry
