/**
 * @file
 * Portable scalar reference kernels. These define the semantics the
 * vector implementations must reproduce bit-for-bit; they are also
 * the active table when DNASTORE_FORCE_ISA=scalar or the CPU offers
 * no vector extension we target.
 */

#include <algorithm>

#include "common/simd_kernels.h"

namespace dnastore::simd::detail {

namespace {

uint16_t
addSat(uint16_t a, uint16_t b)
{
    uint32_t sum = static_cast<uint32_t>(a) + b;
    return sum > kInf16 ? kInf16 : static_cast<uint16_t>(sum);
}

uint16_t
editRowScalar(const uint8_t *b, uint8_t a_ch, const uint16_t *prev,
              uint16_t *curr, size_t lo, size_t hi, uint16_t carry_in)
{
    uint16_t left = carry_in;
    uint16_t row_min = kInf16;
    for (size_t j = lo; j <= hi; ++j) {
        uint16_t cost = (a_ch == b[j - 1]) ? 0 : 1;
        uint16_t best = addSat(prev[j - 1], cost);
        best = std::min(best, addSat(prev[j], 1));
        best = std::min(best, addSat(left, 1));
        curr[j] = best;
        left = best;
        row_min = std::min(row_min, best);
    }
    // Uniform buffer contract with the vector paths: the pad lanes
    // past hi always read as "infinity" afterwards.
    for (size_t j = hi + 1; j <= hi + kEditRowPad; ++j)
        curr[j] = kInf16;
    return row_min;
}

/** Same mix as dnastore::splitMix64 (common/rng.cc). */
uint64_t
mix64(uint64_t state)
{
    uint64_t z = state + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void
minhashScalar(const uint8_t *bases, size_t len, size_t q, uint64_t mask,
              const uint64_t *salts, size_t num_salts, uint64_t *out)
{
    for (size_t s = 0; s < num_salts; ++s)
        out[s] = UINT64_MAX;
    uint64_t packed = 0;
    for (size_t i = 0; i < len; ++i) {
        packed = ((packed << 2) | bases[i]) & mask;
        if (i + 1 < q)
            continue;
        for (size_t s = 0; s < num_salts; ++s)
            out[s] = std::min(out[s], mix64(packed ^ salts[s]));
    }
}

void
gf16SyndromesScalar(const uint8_t *const *cols, size_t ncols,
                    size_t parity, size_t rows,
                    const uint8_t *mul_tables, uint8_t *out)
{
    for (size_t s = 0; s < parity; ++s) {
        const uint8_t *tbl = mul_tables + s * 16;
        uint8_t *dst = out + s * rows;
        std::fill(dst, dst + rows, uint8_t{0});
        for (size_t c = 0; c < ncols; ++c) {
            const uint8_t *col = cols[c];
            for (size_t r = 0; r < rows; ++r)
                dst[r] = tbl[dst[r]] ^ col[r];
        }
    }
}

void
gf16TableXorScalar(const uint8_t *table16, const uint8_t *src,
                   uint8_t *dst, size_t len)
{
    for (size_t i = 0; i < len; ++i)
        dst[i] ^= table16[src[i]];
}

void
gf256MulConstAccumScalar(uint8_t c, const uint8_t *src, uint8_t *dst,
                         size_t len, const uint8_t *mul_lo,
                         const uint8_t *mul_hi)
{
    const uint8_t *lo = mul_lo + static_cast<size_t>(c) * 16;
    const uint8_t *hi = mul_hi + static_cast<size_t>(c) * 16;
    for (size_t i = 0; i < len; ++i)
        dst[i] ^= lo[src[i] & 0xF] ^ hi[src[i] >> 4];
}

} // namespace

const Kernels &
scalarKernels()
{
    static const Kernels table = {
        editRowScalar,     minhashScalar,           gf16SyndromesScalar,
        gf16TableXorScalar, gf256MulConstAccumScalar,
    };
    return table;
}

} // namespace dnastore::simd::detail
