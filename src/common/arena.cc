#include "common/arena.h"

#include <atomic>

#include "common/error.h"

namespace dnastore {

namespace {

std::atomic<uint64_t> g_chunks_allocated{0};
std::atomic<uint64_t> g_bytes_reserved{0};

size_t
alignUp(size_t value, size_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace

Arena::Arena(size_t initial_chunk_bytes)
    : next_chunk_bytes_(initial_chunk_bytes == 0 ? 4096
                                                 : initial_chunk_bytes)
{
}

void
Arena::addChunk(size_t min_bytes)
{
    size_t bytes = next_chunk_bytes_;
    while (bytes < min_bytes)
        bytes *= 2;
    // Geometric growth keeps the chunk count logarithmic in the
    // high-water mark, so a warm arena re-serves any workload that
    // fits the mark without touching the heap again.
    next_chunk_bytes_ = bytes * 2;
    chunks_.push_back(
        Chunk{std::make_unique<uint8_t[]>(bytes), bytes});
    reserved_bytes_ += bytes;
    g_chunks_allocated.fetch_add(1, std::memory_order_relaxed);
    g_bytes_reserved.fetch_add(bytes, std::memory_order_relaxed);
}

void *
Arena::alloc(size_t bytes, size_t align)
{
    panicIf(align == 0 || (align & (align - 1)) != 0 || align > 64,
            "Arena::alloc: bad alignment");
    if (bytes == 0)
        bytes = 1;
    while (true) {
        if (current_ < chunks_.size()) {
            Chunk &chunk = chunks_[current_];
            // new[] memory is only max_align_t-aligned; align the
            // absolute address, not the offset.
            uintptr_t base =
                reinterpret_cast<uintptr_t>(chunk.data.get());
            uintptr_t at = alignUp(base + offset_, align);
            size_t new_offset = (at - base) + bytes;
            if (new_offset <= chunk.size) {
                offset_ = new_offset;
                return reinterpret_cast<void *>(at);
            }
            // Current chunk exhausted: move on (leftover space is
            // reclaimed by the next rewind below this mark).
            ++current_;
            offset_ = 0;
            continue;
        }
        addChunk(bytes + align);
    }
}

void
Arena::rewind(Mark m)
{
    current_ = m.chunk;
    offset_ = m.offset;
}

ArenaGlobalStats
Arena::globalStats()
{
    return {g_chunks_allocated.load(std::memory_order_relaxed),
            g_bytes_reserved.load(std::memory_order_relaxed)};
}

Arena &
Arena::scratch()
{
    thread_local Arena arena;
    return arena;
}

} // namespace dnastore
