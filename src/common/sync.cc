#include "common/sync.h"

#include <cstdio>
#include <cstdlib>

namespace dnastore::sync {

const char *
rankName(Rank rank)
{
    switch (rank) {
      case Rank::kTelemetryRegistry:
        return "TelemetryRegistry";
      case Rank::kServiceState:
        return "ServiceState";
      case Rank::kStreamState:
        return "StreamState";
      case Rank::kPoolJobs:
        return "PoolJobs";
      case Rank::kTraceCollector:
        return "TraceCollector";
      case Rank::kTraceBuffer:
        return "TraceBuffer";
      case Rank::kLeaf:
        return "Leaf";
    }
    return "UnknownRank";
}

#ifdef NDEBUG

bool
rankChecksEnabled()
{
    return false;
}

std::vector<Rank>
heldRanksForTest()
{
    return {};
}

namespace detail {

void
noteAcquire(const Mutex &)
{}

void
noteRelease(const Mutex &)
{}

} // namespace detail

#else // !NDEBUG — the rank checker proper

namespace {

/** Per-thread stack of held mutexes, acquisition order (oldest
 *  first). Function-local so first use on any thread constructs it. */
std::vector<const Mutex *> &
heldStack()
{
    thread_local std::vector<const Mutex *> stack;
    return stack;
}

/** One line per abort so death-test regexes never span newlines. */
[[noreturn]] void
abortRankViolation(const char *kind, const Mutex &acquiring,
                   const Mutex &held)
{
    const std::vector<const Mutex *> &stack = heldStack();
    std::fprintf(stderr,
                 "sync: lock-rank violation (%s): acquiring '%s' "
                 "(rank %s/%d) while holding '%s' (rank %s/%d); held "
                 "stack (oldest first): [",
                 kind, acquiring.name(), rankName(acquiring.rank()),
                 static_cast<int>(acquiring.rank()), held.name(),
                 rankName(held.rank()),
                 static_cast<int>(held.rank()));
    for (size_t i = 0; i < stack.size(); ++i)
        std::fprintf(stderr, "%s'%s' (%s)", i == 0 ? "" : ", ",
                     stack[i]->name(), rankName(stack[i]->rank()));
    std::fprintf(stderr, "]\n");
    std::fflush(stderr);
    std::abort();
}

} // namespace

bool
rankChecksEnabled()
{
    return true;
}

std::vector<Rank>
heldRanksForTest()
{
    std::vector<Rank> ranks;
    for (const Mutex *mutex : heldStack())
        ranks.push_back(mutex->rank());
    return ranks;
}

namespace detail {

void
noteAcquire(const Mutex &mutex)
{
    std::vector<const Mutex *> &stack = heldStack();
    // The order is total and strict: every held mutex must outrank
    // the one being acquired. Checking the whole stack (not just the
    // most recent) keeps the verdict exact even after out-of-order
    // releases have left the stack non-monotonic.
    for (const Mutex *held : stack) {
        if (held == &mutex)
            abortRankViolation("reentrant acquire", mutex, *held);
        if (held->rank() == mutex.rank())
            abortRankViolation("same-rank acquire", mutex, *held);
        if (held->rank() < mutex.rank())
            abortRankViolation("out-of-order acquire", mutex, *held);
    }
    stack.push_back(&mutex);
}

void
noteRelease(const Mutex &mutex)
{
    std::vector<const Mutex *> &stack = heldStack();
    for (size_t i = stack.size(); i-- > 0;) {
        if (stack[i] == &mutex) {
            stack.erase(stack.begin() +
                        static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
    std::fprintf(stderr,
                 "sync: releasing '%s' (rank %s) which this thread "
                 "does not hold\n",
                 mutex.name(), rankName(mutex.rank()));
    std::fflush(stderr);
    std::abort();
}

} // namespace detail

#endif // NDEBUG

} // namespace dnastore::sync
