#include "common/simd.h"

#include <cstdlib>
#include <string_view>

#include "common/error.h"
#include "common/simd_kernels.h"

namespace dnastore::simd {

namespace {

struct Active
{
    Isa isa;
    const Kernels *kernels;
};

Isa
detectBest()
{
#if defined(__aarch64__)
    return Isa::Neon;
#elif defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2"))
        return Isa::Avx2;
    if (__builtin_cpu_supports("sse4.2"))
        return Isa::Sse42;
    return Isa::Scalar;
#else
    return Isa::Scalar;
#endif
}

Isa
parseIsaName(std::string_view name)
{
    if (name == "scalar")
        return Isa::Scalar;
    if (name == "sse4.2" || name == "sse42")
        return Isa::Sse42;
    if (name == "avx2")
        return Isa::Avx2;
    if (name == "neon")
        return Isa::Neon;
    fatalIf(true, "DNASTORE_FORCE_ISA: unknown ISA '", name,
            "' (expected scalar, sse4.2, avx2 or neon)");
    return Isa::Scalar; // unreachable
}

Active
resolveActive()
{
    Isa isa = bestSupportedIsa();
    if (const char *forced = std::getenv("DNASTORE_FORCE_ISA")) {
        Isa wanted = parseIsaName(forced);
        fatalIf(!cpuSupports(wanted), "DNASTORE_FORCE_ISA=", forced,
                " is not runnable on this CPU (best: ",
                isaName(isa), ")");
        isa = wanted;
    }
    return {isa, kernelsFor(isa)};
}

/**
 * The resolved (ISA, kernel table) pair. Initialized once, lazily
 * and thread-safely, through the function-local static in
 * activeState(); ScopedForceIsa (test-only, single-threaded by
 * contract) swaps it temporarily.
 */
Active &
activeState()
{
    static Active active = resolveActive();
    return active;
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Sse42:
        return "sse4.2";
    case Isa::Avx2:
        return "avx2";
    case Isa::Neon:
        return "neon";
    }
    return "unknown";
}

Isa
bestSupportedIsa()
{
    static const Isa best = detectBest();
    return best;
}

bool
cpuSupports(Isa isa)
{
    if (isa == Isa::Scalar)
        return true;
#if defined(__aarch64__)
    return isa == Isa::Neon;
#elif defined(__x86_64__) || defined(__i386__)
    if (isa == Isa::Avx2)
        return __builtin_cpu_supports("avx2");
    if (isa == Isa::Sse42)
        return __builtin_cpu_supports("sse4.2");
    return false;
#else
    (void)isa;
    return false;
#endif
}

Isa
activeIsa()
{
    return activeState().isa;
}

const Kernels &
kernels()
{
    return *activeState().kernels;
}

const Kernels *
kernelsFor(Isa isa)
{
    if (!cpuSupports(isa))
        return nullptr;
    switch (isa) {
    case Isa::Scalar:
        return &detail::scalarKernels();
#if defined(__x86_64__) || defined(__i386__)
    case Isa::Sse42:
        return &detail::sse42Kernels();
    case Isa::Avx2:
        return &detail::avx2Kernels();
#endif
#if defined(__aarch64__)
    case Isa::Neon:
        return &detail::neonKernels();
#endif
    default:
        return nullptr;
    }
}

ScopedForceIsa::ScopedForceIsa(Isa isa)
    : saved_(activeState().isa)
{
    const Kernels *table = kernelsFor(isa);
    fatalIf(table == nullptr, "ScopedForceIsa: ", isaName(isa),
            " is not available on this CPU");
    activeState() = {isa, table};
}

ScopedForceIsa::~ScopedForceIsa()
{
    activeState() = {saved_, kernelsFor(saved_)};
}

} // namespace dnastore::simd
