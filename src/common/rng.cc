#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace dnastore {

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
fnv1a(std::string_view text)
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t state = seed;
    for (auto &word : s_)
        word = splitMix64(state);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    panicIf(bound == 0, "Rng::nextBelow called with bound 0");
    // Lemire's multiply-shift rejection method.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
        uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::nextInRange(int64_t lo, int64_t hi)
{
    panicIf(lo > hi, "Rng::nextInRange: lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    double u2 = nextDouble();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * M_PI * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::nextLogNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * nextGaussian());
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

uint64_t
Rng::nextPoisson(double lambda)
{
    panicIf(lambda < 0.0, "Rng::nextPoisson: negative lambda");
    if (lambda == 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth's method.
        double limit = std::exp(-lambda);
        double product = nextDouble();
        uint64_t count = 0;
        while (product > limit) {
            ++count;
            product *= nextDouble();
        }
        return count;
    }
    // Normal approximation with continuity correction.
    double value = lambda + std::sqrt(lambda) * nextGaussian() + 0.5;
    return value < 0.0 ? 0 : static_cast<uint64_t>(value);
}

Rng
Rng::deriveStream(uint64_t seed, std::string_view label)
{
    return Rng(seed ^ fnv1a(label));
}

uint64_t
Rng::deriveSeed(uint64_t seed, uint64_t index)
{
    uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL + index * 0xff51afd7ed558ccdULL);
    return splitMix64(state);
}

} // namespace dnastore
