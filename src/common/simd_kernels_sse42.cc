/**
 * @file
 * SSE4.2 kernels (8 uint16 lanes / 16 byte lanes). This translation
 * unit is compiled with -msse4.2 and its symbols are only reachable
 * through the dispatch table after a cpuSupports(Sse42) check.
 *
 * Every function must produce bit-identical results to the scalar
 * reference in simd_kernels_scalar.cc (pinned by
 * tests/simd_kernels_test.cc).
 */

#if defined(__x86_64__) || defined(__i386__)

#include <algorithm>
#include <cstring>

#include <immintrin.h>

#include "common/simd_kernels.h"

namespace dnastore::simd::detail {

namespace {

/** masks16[v][l] = 0xFFFF for lanes l >= v: ORed in to force the
 *  invalid tail lanes of a block to "infinity". */
alignas(16) constexpr uint16_t kTailMask[9][8] = {
    {0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0, 0, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0, 0, 0, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0, 0, 0, 0, 0xFFFF},
    {0, 0, 0, 0, 0, 0, 0, 0},
};

/** headMask<K>: 0xFFFF in lanes [0, K) — the lanes a left-shift by K
 *  vacated, which must read as "infinity" for the prefix-min. */
template <int K>
__m128i
headMask()
{
    alignas(16) static constexpr uint16_t mask[8] = {
        0xFFFF * (0 < K), 0xFFFF * (1 < K), 0xFFFF * (2 < K),
        0xFFFF * (3 < K), 0xFFFF * (4 < K), 0xFFFF * (5 < K),
        0xFFFF * (6 < K), 0xFFFF * (7 < K),
    };
    return _mm_load_si128(reinterpret_cast<const __m128i *>(mask));
}

/** Shift left by K uint16 lanes, shifting "infinity" in. */
template <int K>
__m128i
shiftLanesInf(__m128i v)
{
    return _mm_or_si128(_mm_slli_si128(v, 2 * K), headMask<K>());
}

uint16_t
editRowSse42(const uint8_t *b, uint8_t a_ch, const uint16_t *prev,
             uint16_t *curr, size_t lo, size_t hi, uint16_t carry_in)
{
    const __m128i vinf = _mm_set1_epi16(-1);
    const __m128i vone = _mm_set1_epi16(1);
    const __m128i ramp = _mm_setr_epi16(1, 2, 3, 4, 5, 6, 7, 8);
    const __m128i a_splat =
        _mm_set1_epi8(static_cast<char>(a_ch));
    uint16_t carry = carry_in;
    __m128i vrowmin = vinf;
    for (size_t j0 = lo; j0 <= hi; j0 += 8) {
        const size_t valid = std::min<size_t>(8, hi - j0 + 1);
        __m128i bch = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(b + j0 - 1));
        __m128i eq8 = _mm_cmpeq_epi8(bch, a_splat);
        // 0xFFFF where equal; +1 turns that into cost 0/1.
        __m128i cost =
            _mm_add_epi16(_mm_unpacklo_epi8(eq8, eq8), vone);
        __m128i pm1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(prev + j0 - 1));
        __m128i p0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(prev + j0));
        __m128i t = _mm_min_epu16(_mm_adds_epu16(pm1, cost),
                                  _mm_adds_epu16(p0, vone));
        // In-register prefix-min with +1 per lane of distance, then
        // the carry from the lanes left of this block.
        t = _mm_min_epu16(
            t, _mm_adds_epu16(shiftLanesInf<1>(t), _mm_set1_epi16(1)));
        t = _mm_min_epu16(
            t, _mm_adds_epu16(shiftLanesInf<2>(t), _mm_set1_epi16(2)));
        t = _mm_min_epu16(
            t, _mm_adds_epu16(shiftLanesInf<4>(t), _mm_set1_epi16(4)));
        t = _mm_min_epu16(
            t, _mm_adds_epu16(
                   _mm_set1_epi16(static_cast<short>(carry)), ramp));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(curr + j0), t);
        __m128i masked = _mm_or_si128(
            t, _mm_load_si128(reinterpret_cast<const __m128i *>(
                   kTailMask[valid])));
        vrowmin = _mm_min_epu16(vrowmin, masked);
        carry = static_cast<uint16_t>(_mm_extract_epi16(t, 7));
    }
    // Restore the pad lanes the full-vector stores clobbered.
    _mm_storeu_si128(reinterpret_cast<__m128i *>(curr + hi + 1), vinf);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(curr + hi + 9), vinf);
    return static_cast<uint16_t>(
        _mm_extract_epi16(_mm_minpos_epu16(vrowmin), 0));
}

/** Low 64 bits of a 64x64 multiply, per lane. */
__m128i
mul64(__m128i a, __m128i b)
{
    __m128i lo = _mm_mul_epu32(a, b);
    __m128i cross =
        _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                      _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
    return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

/** splitMix64 output step over two lanes. */
__m128i
mix64(__m128i state)
{
    const __m128i gamma = _mm_set1_epi64x(
        static_cast<long long>(0x9e3779b97f4a7c15ULL));
    const __m128i c1 = _mm_set1_epi64x(
        static_cast<long long>(0xbf58476d1ce4e5b9ULL));
    const __m128i c2 = _mm_set1_epi64x(
        static_cast<long long>(0x94d049bb133111ebULL));
    __m128i z = _mm_add_epi64(state, gamma);
    z = mul64(_mm_xor_si128(z, _mm_srli_epi64(z, 30)), c1);
    z = mul64(_mm_xor_si128(z, _mm_srli_epi64(z, 27)), c2);
    return _mm_xor_si128(z, _mm_srli_epi64(z, 31));
}

/** Unsigned 64-bit min via sign-flipped signed compare. */
__m128i
umin64(__m128i a, __m128i b)
{
    const __m128i sign = _mm_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    __m128i a_gt_b = _mm_cmpgt_epi64(_mm_xor_si128(a, sign),
                                     _mm_xor_si128(b, sign));
    return _mm_blendv_epi8(a, b, a_gt_b);
}

uint64_t
mix64Scalar(uint64_t state)
{
    uint64_t z = state + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void
minhashSse42(const uint8_t *bases, size_t len, size_t q, uint64_t mask,
             const uint64_t *salts, size_t num_salts, uint64_t *out)
{
    size_t s = 0;
    for (; s + 2 <= num_salts; s += 2) {
        __m128i vsalts = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(salts + s));
        __m128i best = _mm_set1_epi64x(-1);
        uint64_t packed = 0;
        for (size_t i = 0; i < len; ++i) {
            packed = ((packed << 2) | bases[i]) & mask;
            if (i + 1 < q)
                continue;
            __m128i state = _mm_xor_si128(
                _mm_set1_epi64x(static_cast<long long>(packed)),
                vsalts);
            best = umin64(best, mix64(state));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + s), best);
    }
    for (; s < num_salts; ++s) {
        uint64_t best = UINT64_MAX;
        uint64_t packed = 0;
        for (size_t i = 0; i < len; ++i) {
            packed = ((packed << 2) | bases[i]) & mask;
            if (i + 1 < q)
                continue;
            best = std::min(best, mix64Scalar(packed ^ salts[s]));
        }
        out[s] = best;
    }
}

void
gf16SyndromesSse42(const uint8_t *const *cols, size_t ncols,
                   size_t parity, size_t rows,
                   const uint8_t *mul_tables, uint8_t *out)
{
    const size_t full = rows & ~size_t{15};
    for (size_t s = 0; s < parity; ++s) {
        const __m128i tbl = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(mul_tables + s * 16));
        const uint8_t *tbl8 = mul_tables + s * 16;
        uint8_t *dst = out + s * rows;
        for (size_t r = 0; r < full; r += 16) {
            __m128i acc = _mm_setzero_si128();
            for (size_t c = 0; c < ncols; ++c) {
                __m128i col = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(cols[c] + r));
                acc = _mm_xor_si128(_mm_shuffle_epi8(tbl, acc), col);
            }
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + r),
                             acc);
        }
        for (size_t r = full; r < rows; ++r) {
            uint8_t acc = 0;
            for (size_t c = 0; c < ncols; ++c)
                acc = tbl8[acc] ^ cols[c][r];
            dst[r] = acc;
        }
    }
}

void
gf16TableXorSse42(const uint8_t *table16, const uint8_t *src,
                  uint8_t *dst, size_t len)
{
    const __m128i tbl = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(table16));
    size_t i = 0;
    for (; i + 16 <= len; i += 16) {
        __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(dst + i),
            _mm_xor_si128(d, _mm_shuffle_epi8(tbl, s)));
    }
    for (; i < len; ++i)
        dst[i] ^= table16[src[i]];
}

void
gf256MulConstAccumSse42(uint8_t c, const uint8_t *src, uint8_t *dst,
                        size_t len, const uint8_t *mul_lo,
                        const uint8_t *mul_hi)
{
    const uint8_t *lo8 = mul_lo + static_cast<size_t>(c) * 16;
    const uint8_t *hi8 = mul_hi + static_cast<size_t>(c) * 16;
    const __m128i tlo =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(lo8));
    const __m128i thi =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(hi8));
    const __m128i nib = _mm_set1_epi8(0x0F);
    size_t i = 0;
    for (; i + 16 <= len; i += 16) {
        __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        __m128i lo = _mm_and_si128(s, nib);
        __m128i hi = _mm_and_si128(_mm_srli_epi16(s, 4), nib);
        __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo),
                                     _mm_shuffle_epi8(thi, hi));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_xor_si128(d, prod));
    }
    for (; i < len; ++i)
        dst[i] ^= lo8[src[i] & 0xF] ^ hi8[src[i] >> 4];
}

} // namespace

const Kernels &
sse42Kernels()
{
    static const Kernels table = {
        editRowSse42,      minhashSse42,           gf16SyndromesSse42,
        gf16TableXorSse42, gf256MulConstAccumSse42,
    };
    return table;
}

} // namespace dnastore::simd::detail

#endif // x86
