/**
 * @file
 * AVX2 kernels (16 uint16 lanes / 32 byte lanes / 4 uint64 lanes).
 * Compiled with -mavx2; reachable only through the dispatch table
 * after a cpuSupports(Avx2) check. Must stay bit-identical to the
 * scalar reference (tests/simd_kernels_test.cc).
 */

#if defined(__x86_64__) || defined(__i386__)

#include <algorithm>
#include <cstring>

#include <immintrin.h>

#include "common/simd_kernels.h"

namespace dnastore::simd::detail {

namespace {

/** kTailMask[v][l] = 0xFFFF for lanes l >= v. */
alignas(32) constexpr uint16_t kTailMask[17][16] = {
#define DNASTORE_TAIL_ROW(v)                                           \
    {0xFFFF * (0 >= (v)), 0xFFFF * (1 >= (v)), 0xFFFF * (2 >= (v)),    \
     0xFFFF * (3 >= (v)), 0xFFFF * (4 >= (v)), 0xFFFF * (5 >= (v)),    \
     0xFFFF * (6 >= (v)), 0xFFFF * (7 >= (v)), 0xFFFF * (8 >= (v)),    \
     0xFFFF * (9 >= (v)), 0xFFFF * (10 >= (v)), 0xFFFF * (11 >= (v)),  \
     0xFFFF * (12 >= (v)), 0xFFFF * (13 >= (v)), 0xFFFF * (14 >= (v)), \
     0xFFFF * (15 >= (v))}
    DNASTORE_TAIL_ROW(0),  DNASTORE_TAIL_ROW(1),  DNASTORE_TAIL_ROW(2),
    DNASTORE_TAIL_ROW(3),  DNASTORE_TAIL_ROW(4),  DNASTORE_TAIL_ROW(5),
    DNASTORE_TAIL_ROW(6),  DNASTORE_TAIL_ROW(7),  DNASTORE_TAIL_ROW(8),
    DNASTORE_TAIL_ROW(9),  DNASTORE_TAIL_ROW(10), DNASTORE_TAIL_ROW(11),
    DNASTORE_TAIL_ROW(12), DNASTORE_TAIL_ROW(13), DNASTORE_TAIL_ROW(14),
    DNASTORE_TAIL_ROW(15), DNASTORE_TAIL_ROW(16),
#undef DNASTORE_TAIL_ROW
};

template <int K>
__m256i
headMask()
{
    alignas(32) static constexpr uint16_t mask[16] = {
        0xFFFF * (0 < K),  0xFFFF * (1 < K),  0xFFFF * (2 < K),
        0xFFFF * (3 < K),  0xFFFF * (4 < K),  0xFFFF * (5 < K),
        0xFFFF * (6 < K),  0xFFFF * (7 < K),  0xFFFF * (8 < K),
        0xFFFF * (9 < K),  0xFFFF * (10 < K), 0xFFFF * (11 < K),
        0xFFFF * (12 < K), 0xFFFF * (13 < K), 0xFFFF * (14 < K),
        0xFFFF * (15 < K),
    };
    return _mm256_load_si256(reinterpret_cast<const __m256i *>(mask));
}

/** Shift left by BYTES over the full 256-bit register (zero fill),
 *  crossing the 128-bit lane boundary. */
template <int BYTES>
__m256i
shiftBytesZero(__m256i v)
{
    // [0 : v_low] — the value that slides into the high lane.
    __m256i lowup = _mm256_permute2x128_si256(v, v, 0x08);
    if constexpr (BYTES == 16)
        return lowup;
    else
        return _mm256_alignr_epi8(v, lowup, 16 - BYTES);
}

/** Shift left by K uint16 lanes, shifting "infinity" in. */
template <int K>
__m256i
shiftLanesInf(__m256i v)
{
    return _mm256_or_si256(shiftBytesZero<2 * K>(v), headMask<K>());
}

uint16_t
hmin16(__m256i v)
{
    __m128i folded = _mm_min_epu16(_mm256_castsi256_si128(v),
                                   _mm256_extracti128_si256(v, 1));
    return static_cast<uint16_t>(
        _mm_extract_epi16(_mm_minpos_epu16(folded), 0));
}

uint16_t
editRowAvx2(const uint8_t *b, uint8_t a_ch, const uint16_t *prev,
            uint16_t *curr, size_t lo, size_t hi, uint16_t carry_in)
{
    const __m256i vinf = _mm256_set1_epi16(-1);
    const __m256i vone = _mm256_set1_epi16(1);
    const __m256i ramp =
        _mm256_setr_epi16(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                          14, 15, 16);
    const __m128i a_splat =
        _mm_set1_epi8(static_cast<char>(a_ch));
    uint16_t carry = carry_in;
    __m256i vrowmin = vinf;
    for (size_t j0 = lo; j0 <= hi; j0 += 16) {
        const size_t valid = std::min<size_t>(16, hi - j0 + 1);
        __m128i bch = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + j0 - 1));
        __m128i eq8 = _mm_cmpeq_epi8(bch, a_splat);
        // Sign-extending 0xFF lanes gives 0xFFFF; +1 => cost 0/1.
        __m256i cost =
            _mm256_add_epi16(_mm256_cvtepi8_epi16(eq8), vone);
        __m256i pm1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(prev + j0 - 1));
        __m256i p0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(prev + j0));
        __m256i t = _mm256_min_epu16(_mm256_adds_epu16(pm1, cost),
                                     _mm256_adds_epu16(p0, vone));
        t = _mm256_min_epu16(
            t, _mm256_adds_epu16(shiftLanesInf<1>(t),
                                 _mm256_set1_epi16(1)));
        t = _mm256_min_epu16(
            t, _mm256_adds_epu16(shiftLanesInf<2>(t),
                                 _mm256_set1_epi16(2)));
        t = _mm256_min_epu16(
            t, _mm256_adds_epu16(shiftLanesInf<4>(t),
                                 _mm256_set1_epi16(4)));
        t = _mm256_min_epu16(
            t, _mm256_adds_epu16(shiftLanesInf<8>(t),
                                 _mm256_set1_epi16(8)));
        t = _mm256_min_epu16(
            t, _mm256_adds_epu16(
                   _mm256_set1_epi16(static_cast<short>(carry)),
                   ramp));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(curr + j0),
                            t);
        __m256i masked = _mm256_or_si256(
            t, _mm256_load_si256(reinterpret_cast<const __m256i *>(
                   kTailMask[valid])));
        vrowmin = _mm256_min_epu16(vrowmin, masked);
        carry = static_cast<uint16_t>(_mm256_extract_epi16(t, 15));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(curr + hi + 1),
                        vinf);
    return hmin16(vrowmin);
}

__m256i
mul64(__m256i a, __m256i b)
{
    __m256i lo = _mm256_mul_epu32(a, b);
    __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                         _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__m256i
mix64(__m256i state)
{
    const __m256i gamma = _mm256_set1_epi64x(
        static_cast<long long>(0x9e3779b97f4a7c15ULL));
    const __m256i c1 = _mm256_set1_epi64x(
        static_cast<long long>(0xbf58476d1ce4e5b9ULL));
    const __m256i c2 = _mm256_set1_epi64x(
        static_cast<long long>(0x94d049bb133111ebULL));
    __m256i z = _mm256_add_epi64(state, gamma);
    z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), c1);
    z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), c2);
    return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

__m256i
umin64(__m256i a, __m256i b)
{
    const __m256i sign = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    __m256i a_gt_b = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                                        _mm256_xor_si256(b, sign));
    return _mm256_blendv_epi8(a, b, a_gt_b);
}

uint64_t
mix64Scalar(uint64_t state)
{
    uint64_t z = state + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void
minhashAvx2(const uint8_t *bases, size_t len, size_t q, uint64_t mask,
            const uint64_t *salts, size_t num_salts, uint64_t *out)
{
    size_t s = 0;
    for (; s + 4 <= num_salts; s += 4) {
        __m256i vsalts = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(salts + s));
        __m256i best = _mm256_set1_epi64x(-1);
        uint64_t packed = 0;
        for (size_t i = 0; i < len; ++i) {
            packed = ((packed << 2) | bases[i]) & mask;
            if (i + 1 < q)
                continue;
            __m256i state = _mm256_xor_si256(
                _mm256_set1_epi64x(static_cast<long long>(packed)),
                vsalts);
            best = umin64(best, mix64(state));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + s),
                            best);
    }
    for (; s < num_salts; ++s) {
        uint64_t best = UINT64_MAX;
        uint64_t packed = 0;
        for (size_t i = 0; i < len; ++i) {
            packed = ((packed << 2) | bases[i]) & mask;
            if (i + 1 < q)
                continue;
            best = std::min(best, mix64Scalar(packed ^ salts[s]));
        }
        out[s] = best;
    }
}

void
gf16SyndromesAvx2(const uint8_t *const *cols, size_t ncols,
                  size_t parity, size_t rows,
                  const uint8_t *mul_tables, uint8_t *out)
{
    const size_t full = rows & ~size_t{31};
    for (size_t s = 0; s < parity; ++s) {
        const __m256i tbl = _mm256_broadcastsi128_si256(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                mul_tables + s * 16)));
        const uint8_t *tbl8 = mul_tables + s * 16;
        uint8_t *dst = out + s * rows;
        for (size_t r = 0; r < full; r += 32) {
            __m256i acc = _mm256_setzero_si256();
            for (size_t c = 0; c < ncols; ++c) {
                __m256i col = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(cols[c] + r));
                acc = _mm256_xor_si256(_mm256_shuffle_epi8(tbl, acc),
                                       col);
            }
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + r),
                                acc);
        }
        for (size_t r = full; r < rows; ++r) {
            uint8_t acc = 0;
            for (size_t c = 0; c < ncols; ++c)
                acc = tbl8[acc] ^ cols[c][r];
            dst[r] = acc;
        }
    }
}

void
gf16TableXorAvx2(const uint8_t *table16, const uint8_t *src,
                 uint8_t *dst, size_t len)
{
    const __m256i tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(table16)));
    size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + i),
            _mm256_xor_si256(d, _mm256_shuffle_epi8(tbl, s)));
    }
    for (; i < len; ++i)
        dst[i] ^= table16[src[i]];
}

void
gf256MulConstAccumAvx2(uint8_t c, const uint8_t *src, uint8_t *dst,
                       size_t len, const uint8_t *mul_lo,
                       const uint8_t *mul_hi)
{
    const uint8_t *lo8 = mul_lo + static_cast<size_t>(c) * 16;
    const uint8_t *hi8 = mul_hi + static_cast<size_t>(c) * 16;
    const __m256i tlo = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(lo8)));
    const __m256i thi = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(hi8)));
    const __m256i nib = _mm256_set1_epi8(0x0F);
    size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        __m256i lo = _mm256_and_si256(s, nib);
        __m256i hi = _mm256_and_si256(_mm256_srli_epi16(s, 4), nib);
        __m256i prod =
            _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                             _mm256_shuffle_epi8(thi, hi));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_xor_si256(d, prod));
    }
    for (; i < len; ++i)
        dst[i] ^= lo8[src[i] & 0xF] ^ hi8[src[i] >> 4];
}

} // namespace

const Kernels &
avx2Kernels()
{
    static const Kernels table = {
        editRowAvx2,      minhashAvx2,           gf16SyndromesAvx2,
        gf16TableXorAvx2, gf256MulConstAccumAvx2,
    };
    return table;
}

} // namespace dnastore::simd::detail

#endif // x86
