/**
 * @file
 * Internal per-ISA kernel tables backing common/simd.h. Each table
 * lives in its own translation unit so the vector TUs can be built
 * with the matching -m flags; nothing outside common/ includes this
 * header — use simd::kernels() / simd::kernelsFor() instead.
 */

#ifndef DNASTORE_COMMON_SIMD_KERNELS_H
#define DNASTORE_COMMON_SIMD_KERNELS_H

#include "common/simd.h"

namespace dnastore::simd::detail {

/** Always present; defines the semantics every other table matches. */
const Kernels &scalarKernels();

#if defined(__x86_64__) || defined(__i386__)
const Kernels &sse42Kernels();
const Kernels &avx2Kernels();
#endif

#if defined(__aarch64__)
const Kernels &neonKernels();
#endif

} // namespace dnastore::simd::detail

#endif // DNASTORE_COMMON_SIMD_KERNELS_H
