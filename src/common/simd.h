/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the per-read decode hot
 * loops (banded edit-distance rows, MinHash hashing, GF(16)/GF(256)
 * Reed-Solomon syndrome and evaluation sweeps).
 *
 * Dispatch rules:
 *  - Every kernel has a portable scalar reference implementation;
 *    the vector paths (SSE4.2 / AVX2 on x86-64, NEON on aarch64) are
 *    selected ONCE, at first use, from CPU feature detection.
 *  - All kernels are exact: for any input they produce bit-identical
 *    results on every ISA (integer min/add/xor/table-lookup only, no
 *    floating point, no reassociation of float sums). The decode
 *    pipeline's determinism contract — byte-identical output for any
 *    thread count — therefore extends to "for any ISA", and the
 *    parity suite in tests/simd_kernels_test.cc pins it.
 *  - `DNASTORE_FORCE_ISA` (values: scalar, sse4.2, avx2, neon)
 *    overrides detection for testing; forcing an ISA the CPU cannot
 *    run is a fatal error, as is an unknown value.
 *
 * New vectorized kernels must land scalar-reference-first: the
 * scalar entry in `Kernels` defines the semantics, the vector
 * implementations must match it bit-for-bit, and a parity test in
 * tests/simd_kernels_test.cc is required (see CONTRIBUTING.md).
 */

#ifndef DNASTORE_COMMON_SIMD_H
#define DNASTORE_COMMON_SIMD_H

#include <cstddef>
#include <cstdint>

namespace dnastore::simd {

/** Instruction sets the dispatcher can select. */
enum class Isa : uint8_t {
    Scalar = 0,
    Sse42 = 1,
    Avx2 = 2,
    Neon = 3,
};

/** Human-readable name ("scalar", "sse4.2", "avx2", "neon"). */
const char *isaName(Isa isa);

/** Saturation value used as "infinity" by the uint16 DP kernels. */
inline constexpr uint16_t kInf16 = 0xFFFF;

/**
 * Lane padding contract for editRow: row buffers must extend at
 * least kEditRowPad uint16 elements past index `hi`, and the `b`
 * string buffer at least kEditRowPad bytes past index `hi - 1`.
 * Vector stores may transiently clobber curr[hi+1 .. hi+kEditRowPad];
 * the kernel restores that range to kInf16 before returning.
 */
inline constexpr size_t kEditRowPad = 16;

/**
 * The kernel table. One function pointer per hot loop; every ISA
 * fills all entries (there is no per-entry fallback, which keeps the
 * parity matrix total).
 */
struct Kernels
{
    /**
     * One row of a banded unit-cost edit-distance DP.
     *
     * For j in [lo, hi] (1-based columns, lo >= 1):
     *   t[j]    = min(prev[j-1] + (a_ch == b[j-1] ? 0 : 1),
     *                 prev[j] + 1)
     *   curr[j] = min(t[j], curr[j-1] + 1)
     * where curr[lo-1] is taken from @p carry_in (never from memory).
     * All arithmetic saturates at kInf16, which the callers treat as
     * "outside the band". Returns min(curr[lo..hi]).
     *
     * Buffer contract: see kEditRowPad. Cells below lo are not
     * written; cells in (hi, hi+kEditRowPad] are kInf16 on return.
     */
    uint16_t (*edit_row)(const uint8_t *b, uint8_t a_ch,
                         const uint16_t *prev, uint16_t *curr,
                         size_t lo, size_t hi, uint16_t carry_in);

    /**
     * MinHash signatures of one read under many salts.
     *
     * @p bases holds 2-bit base codes (values 0..3), one per
     * position. For each salt s, out[s] = min over all q-gram
     * windows w of splitMix64-mix(packed(w) ^ salts[s]), where the
     * mix matches dnastore::splitMix64 (state += golden gamma, then
     * xor-shift-multiply). @p mask is the (2q)-bit window mask.
     * Requires len >= q; out has num_salts entries.
     */
    void (*minhash)(const uint8_t *bases, size_t len, size_t q,
                    uint64_t mask, const uint64_t *salts,
                    size_t num_salts, uint64_t *out);

    /**
     * Batch GF(16) Reed-Solomon syndromes across the rows of an
     * encoding unit. cols[c] points at `rows` nibble values (0..15)
     * of column c; the codeword of row r is cols[0][r]..cols[n-1][r]
     * in descending-power order. For each syndrome index s in
     * [0, parity):
     *   acc = 0; for c: acc = mul_tables[s*16 + acc] ^ cols[c][r]
     *   out[s*rows + r] = acc
     * where mul_tables[s*16 + v] == GF16::mul(alpha^(s+1), v).
     */
    void (*gf16_syndromes)(const uint8_t *const *cols, size_t ncols,
                           size_t parity, size_t rows,
                           const uint8_t *mul_tables, uint8_t *out);

    /**
     * GF(16) table-lookup accumulate: dst[i] ^= table16[src[i]] for
     * i in [0, len), src values 0..15. With table16 = row c of
     * GF16::mulTable() this is dst[i] ^= c * src[i], the core of the
     * Chien/Forney evaluation sweeps.
     */
    void (*gf16_table_xor)(const uint8_t *table16, const uint8_t *src,
                           uint8_t *dst, size_t len);

    /**
     * GF(256) multiply-by-constant accumulate via split-nibble
     * tables: dst[i] ^= GF256::mul(c, src[i]) for i in [0, len).
     * mul_lo/mul_hi are GF256::mulTablesLo()/Hi() (256 rows of 16):
     * the product is mul_lo[c*16 + (s & 0xF)] ^ mul_hi[c*16 + (s >>
     * 4)]. The tables are built from the zero-checked scalar
     * GF256::mul, so no path — scalar or vector — ever consults the
     * log[0] sentinel.
     */
    void (*gf256_mul_const_accum)(uint8_t c, const uint8_t *src,
                                  uint8_t *dst, size_t len,
                                  const uint8_t *mul_lo,
                                  const uint8_t *mul_hi);
};

/** Best ISA the current CPU supports (ignores the env override). */
Isa bestSupportedIsa();

/** True if the current CPU can run @p isa. */
bool cpuSupports(Isa isa);

/**
 * The active ISA: best supported, unless DNASTORE_FORCE_ISA
 * overrides it. Resolved once; fatal on an unknown or unsupported
 * override value.
 */
Isa activeIsa();

/** Kernel table for the active ISA. */
const Kernels &kernels();

/**
 * Kernel table for a specific ISA, or nullptr when that ISA is not
 * compiled in or not runnable on this CPU. Parity tests iterate all
 * non-null tables against the scalar reference.
 */
const Kernels *kernelsFor(Isa isa);

/**
 * Test-only: swap the active kernel table (and reported ISA) for the
 * lifetime of the scope. Not thread-safe — use only in single-
 * threaded test setup, before fanning work out to a pool.
 */
class ScopedForceIsa
{
  public:
    explicit ScopedForceIsa(Isa isa);
    ~ScopedForceIsa();
    ScopedForceIsa(const ScopedForceIsa &) = delete;
    ScopedForceIsa &operator=(const ScopedForceIsa &) = delete;

  private:
    Isa saved_;
};

} // namespace dnastore::simd

#endif // DNASTORE_COMMON_SIMD_H
