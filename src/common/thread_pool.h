/**
 * @file
 * Fixed-size worker pool with deterministic fork-join helpers.
 *
 * The decode pipeline parallelizes its embarrassingly-parallel stages
 * (per-read MinHash signatures, per-cluster BMA consensus, per-unit
 * RS decode, per-block encode) without changing a single output byte:
 * every parallelFor/parallelMap writes results into index-addressed
 * slots, so the reduction order — and therefore the result — is
 * independent of thread count and scheduling. No work stealing, no
 * task graph: published fork-join jobs with indices claimed from a
 * per-job atomic counter; the calling thread always participates in
 * its own job.
 *
 * Multiple fork-join jobs may be in flight at once (the DecodeService
 * shards per-partition decodes across one shared pool, and each
 * partition job's internal stages fork on the same pool), including
 * nested parallelFor calls issued from inside a job body: idle
 * workers drain whichever published job still has unclaimed indices,
 * and every caller makes progress on its own job inline, so the
 * nesting can never deadlock.
 */

#ifndef DNASTORE_COMMON_THREAD_POOL_H
#define DNASTORE_COMMON_THREAD_POOL_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace dnastore {

/**
 * Fixed-size thread pool.
 *
 * A pool of size 1 never spawns a thread and runs everything inline,
 * so sequential callers pay nothing. Pools are reusable across any
 * number of parallelFor calls, and calls may overlap: any thread may
 * fork a job at any time — including from inside another job's body —
 * and the pool's workers are shared among all in-flight jobs.
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count including the calling thread;
     *                0 means hardware_concurrency().
     */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Resolved worker count (calling thread included). */
    size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Threads currently executing job iterations — an instantaneous
     * sample for telemetry gauges, not a synchronization primitive.
     * Capped at threadCount(): a thread nested inside its own job's
     * parallelFor is busy once, not twice.
     */
    size_t
    activeThreads() const
    {
        return std::min(active_.load(std::memory_order_relaxed),
                        threadCount());
    }

    /** threadCount() minus activeThreads(); same sampling caveat. */
    size_t idleThreads() const { return threadCount() - activeThreads(); }

    /** Resolve a requested thread count (0 = hardware concurrency). */
    static size_t resolveThreadCount(size_t requested);

    /**
     * Run body(i) for every i in [0, n), blocking until all
     * iterations finish. Iterations may run on any thread in any
     * order; the first exception thrown by the body is rethrown here
     * (remaining iterations of this job are abandoned; concurrent
     * jobs are unaffected). Safe to call from several threads at
     * once and reentrantly from inside a job body.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body);

    /**
     * Map [0, n) through fn into a vector, out[i] = fn(i). T must be
     * default-constructible; slot order is by index, never by
     * completion, which is what keeps parallel stages byte-identical
     * to their sequential counterparts.
     */
    template <typename T, typename Fn>
    std::vector<T>
    parallelMap(size_t n, Fn &&fn)
    {
        std::vector<T> out(n);
        parallelFor(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    /** One fork-join job: indices [0, n) claimed via `next`. */
    struct Job
    {
        const std::function<void(size_t)> *body = nullptr;
        size_t n = 0;
        std::atomic<size_t> next{0};
        /** Workers currently executing this job's iterations. */
        std::atomic<size_t> active{0};
        std::exception_ptr error;  // first failure, guarded by mutex_
    };

    void workerLoop();
    void runChunks(Job &job);

    /** First published job with unclaimed indices. */
    Job *pickRunnable() const DNASTORE_REQUIRES(mutex_);

    std::vector<std::thread> workers_;
    sync::Mutex mutex_{sync::Rank::kPoolJobs, "thread_pool"};
    sync::CondVar work_cv_;
    sync::CondVar done_cv_;
    /** In-flight jobs. Job::error is likewise written under mutex_;
     *  the other Job fields are atomics or set before publication. */
    std::vector<Job *> jobs_ DNASTORE_GUARDED_BY(mutex_);
    bool stop_ DNASTORE_GUARDED_BY(mutex_) = false;

    /** Threads inside runChunks; nested entries count again, so
     *  activeThreads() caps the sample at threadCount(). */
    std::atomic<size_t> active_{0};
};

/**
 * parallelFor through an optional pool: inline when @p pool is null
 * (the sequential path used by default-constructed params and by
 * layers that were handed no pool).
 */
void parallelFor(ThreadPool *pool, size_t n,
                 const std::function<void(size_t)> &body);

} // namespace dnastore

#endif // DNASTORE_COMMON_THREAD_POOL_H
