/**
 * @file
 * Fixed-size worker pool with deterministic fork-join helpers.
 *
 * The decode pipeline parallelizes three embarrassingly-parallel
 * stages (per-read MinHash signatures, per-cluster BMA consensus,
 * per-unit RS decode) without changing a single output byte: every
 * parallelFor/parallelMap writes results into index-addressed slots,
 * so the reduction order — and therefore the result — is independent
 * of thread count and scheduling. No work stealing, no task graph:
 * one job at a time, indices claimed from a shared atomic counter,
 * the calling thread participates.
 */

#ifndef DNASTORE_COMMON_THREAD_POOL_H
#define DNASTORE_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dnastore {

/**
 * Fixed-size thread pool.
 *
 * A pool of size 1 never spawns a thread and runs everything inline,
 * so sequential callers pay nothing. Pools are reusable across any
 * number of parallelFor calls but only one call may be in flight at a
 * time (the pipeline forks and joins stage by stage).
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count including the calling thread;
     *                0 means hardware_concurrency().
     */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Resolved worker count (calling thread included). */
    size_t threadCount() const { return workers_.size() + 1; }

    /** Resolve a requested thread count (0 = hardware concurrency). */
    static size_t resolveThreadCount(size_t requested);

    /**
     * Run body(i) for every i in [0, n), blocking until all
     * iterations finish. Iterations may run on any thread in any
     * order; the first exception thrown by the body is rethrown here
     * (remaining iterations are abandoned).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body);

    /**
     * Map [0, n) through fn into a vector, out[i] = fn(i). T must be
     * default-constructible; slot order is by index, never by
     * completion, which is what keeps parallel stages byte-identical
     * to their sequential counterparts.
     */
    template <typename T, typename Fn>
    std::vector<T>
    parallelMap(size_t n, Fn &&fn)
    {
        std::vector<T> out(n);
        parallelFor(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    /** One fork-join job: indices [0, n) claimed via `next`. */
    struct Job
    {
        const std::function<void(size_t)> *body = nullptr;
        size_t n = 0;
        std::atomic<size_t> next{0};
        /** Workers currently executing this job's iterations. */
        std::atomic<size_t> active{0};
        std::exception_ptr error;  // first failure, guarded by mutex_
    };

    void workerLoop();
    void runChunks(Job &job);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    Job *job_ = nullptr;       // guarded by mutex_
    uint64_t generation_ = 0;  // guarded by mutex_
    bool stop_ = false;        // guarded by mutex_
};

/**
 * parallelFor through an optional pool: inline when @p pool is null
 * (the sequential path used by default-constructed params and by
 * layers that were handed no pool).
 */
void parallelFor(ThreadPool *pool, size_t n,
                 const std::function<void(size_t)> &body);

} // namespace dnastore

#endif // DNASTORE_COMMON_THREAD_POOL_H
