/**
 * @file
 * Bump-pointer scratch arenas for the per-read decode hot loops.
 *
 * Every per-read kernel (primer-filter alignment rows, clusterer
 * signature buffers, per-cluster BMA cost matrices, RS work buffers)
 * draws its scratch from the calling thread's arena instead of
 * heap-allocating vectors. An ArenaScope marks the bump pointer on
 * entry and rewinds it on exit, so after one warm-up pass — once the
 * chunks have grown to the high-water mark — the steady-state decode
 * loop performs zero heap allocations per read
 * (tests/arena_test.cc pins this with an operator-new counter).
 *
 * Ownership & determinism: arenas are thread_local, so each
 * ThreadPool worker slot owns exactly one (pool workers are
 * long-lived threads). Scratch contents never escape an ArenaScope
 * and never cross threads, so arena reuse cannot perturb the decode
 * pipeline's byte-identical-for-any-thread-count (and any-ISA)
 * contract.
 */

#ifndef DNASTORE_COMMON_ARENA_H
#define DNASTORE_COMMON_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace dnastore {

/** Process-wide arena counters, for steady-state allocation tests
 *  and bench reporting. */
struct ArenaGlobalStats
{
    /** Chunks ever heap-allocated by any arena. */
    uint64_t chunks_allocated;

    /** Bytes ever reserved in those chunks. */
    uint64_t bytes_reserved;
};

/**
 * Chunked bump allocator. alloc() never invalidates earlier
 * allocations (chunks are stable); rewind() releases everything
 * allocated after a mark without freeing the chunks, so a warm arena
 * serves any number of scopes allocation-free.
 */
class Arena
{
  public:
    explicit Arena(size_t initial_chunk_bytes = 64 * 1024);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Raw allocation; align must be a power of two (<= 64). */
    void *alloc(size_t bytes, size_t align);

    /** Typed array allocation; contents are uninitialized. */
    template <typename T>
    T *
    allocArray(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is rewound, never destroyed");
        return static_cast<T *>(
            alloc(count * sizeof(T), alignof(T)));
    }

    /** Bump-pointer position; see ArenaScope. */
    struct Mark
    {
        size_t chunk;
        size_t offset;
    };

    Mark mark() const { return {current_, offset_}; }
    void rewind(Mark m);

    /** Chunks currently owned (never shrinks). */
    size_t chunkCount() const { return chunks_.size(); }

    /** Total bytes reserved across owned chunks. */
    size_t reservedBytes() const { return reserved_bytes_; }

    /** Process-wide counters across all arenas (atomic reads). */
    static ArenaGlobalStats globalStats();

    /** This thread's scratch arena (created on first use). */
    static Arena &scratch();

  private:
    struct Chunk
    {
        std::unique_ptr<uint8_t[]> data;
        size_t size;
    };

    void addChunk(size_t min_bytes);

    std::vector<Chunk> chunks_;
    size_t current_ = 0;
    size_t offset_ = 0;
    size_t next_chunk_bytes_;
    size_t reserved_bytes_ = 0;
};

/** RAII mark/rewind over a (usually thread-local) arena. */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena &arena)
        : arena_(arena), mark_(arena.mark())
    {
    }
    ~ArenaScope() { arena_.rewind(mark_); }

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

  private:
    Arena &arena_;
    Arena::Mark mark_;
};

} // namespace dnastore

#endif // DNASTORE_COMMON_ARENA_H
