#include "common/thread_pool.h"

#include <algorithm>

namespace dnastore {

namespace {

/** Balances ThreadPool::active_ across every exit path. */
struct ActiveGuard
{
    std::atomic<size_t> &count;

    explicit ActiveGuard(std::atomic<size_t> &counter) : count(counter)
    {
        count.fetch_add(1, std::memory_order_relaxed);
    }

    ~ActiveGuard() { count.fetch_sub(1, std::memory_order_relaxed); }
};

} // namespace

size_t
ThreadPool::resolveThreadCount(size_t requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return std::max<size_t>(1, hw);
}

ThreadPool::ThreadPool(size_t threads)
{
    size_t resolved = resolveThreadCount(threads);
    workers_.reserve(resolved - 1);
    try {
        for (size_t i = 0; i + 1 < resolved; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // A failed spawn (thread-resource exhaustion) must join the
        // workers already started before rethrowing, or their
        // joinable std::thread destructors would terminate().
        {
            sync::MutexLock lock(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (std::thread &worker : workers_)
            worker.join();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        sync::MutexLock lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runChunks(Job &job)
{
    ActiveGuard guard(active_);
    for (;;) {
        size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return;
        try {
            (*job.body)(i);
        } catch (...) {
            {
                sync::MutexLock lock(mutex_);
                if (!job.error)
                    job.error = std::current_exception();
            }
            // Abandon the remaining iterations: park the counter past
            // the end so every thread drains out promptly.
            job.next.store(job.n, std::memory_order_relaxed);
            return;
        }
    }
}

ThreadPool::Job *
ThreadPool::pickRunnable() const
{
    for (Job *job : jobs_) {
        if (job->next.load(std::memory_order_relaxed) < job->n)
            return job;
    }
    return nullptr;
}

void
ThreadPool::workerLoop()
{
    sync::MutexLock lock(mutex_);
    for (;;) {
        Job *job = nullptr;
        // Open-coded wait loop: the analysis sees the guarded reads
        // under the lock (a predicate lambda would be opaque to it).
        while (!stop_ && (job = pickRunnable()) == nullptr)
            work_cv_.wait(lock);
        if (stop_)
            return;
        job->active.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        runChunks(*job);
        lock.lock();
        if (job->active.fetch_sub(1, std::memory_order_relaxed) == 1)
            done_cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        ActiveGuard guard(active_);
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    Job job;
    job.body = &body;
    job.n = n;
    {
        sync::MutexLock lock(mutex_);
        jobs_.push_back(&job);
    }
    work_cv_.notify_all();
    runChunks(job);

    sync::MutexLock lock(mutex_);
    // Unpublish the job, then wait for every worker that entered it
    // to leave: a worker waking after this point no longer finds the
    // (stack-allocated) job in the published list.
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
    while (job.active.load(std::memory_order_relaxed) != 0)
        done_cv_.wait(lock);
    if (job.error)
        std::rethrow_exception(job.error);
}

void
parallelFor(ThreadPool *pool, size_t n,
            const std::function<void(size_t)> &body)
{
    if (pool) {
        pool->parallelFor(n, body);
        return;
    }
    for (size_t i = 0; i < n; ++i)
        body(i);
}

} // namespace dnastore
