/**
 * @file
 * Error-reporting helpers shared by all dnastore libraries.
 *
 * Follows the gem5 fatal()/panic() distinction: fatal() is for user
 * errors (bad configuration, invalid arguments) and panic() for
 * internal invariant violations. Both throw rather than abort so that
 * library users and tests can observe failures.
 */

#ifndef DNASTORE_COMMON_ERROR_H
#define DNASTORE_COMMON_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace dnastore {

/** Thrown on user-caused errors (bad configuration or arguments). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Thrown on internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/** Raise a FatalError built from the stream-concatenation of the args. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Raise a PanicError built from the stream-concatenation of the args. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/** Check a user-facing precondition; raise FatalError if it fails. */
template <typename... Args>
void
fatalIf(bool condition, const Args &...args)
{
    if (condition)
        fatal(args...);
}

/** Check an internal invariant; raise PanicError if it fails. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

} // namespace dnastore

#endif // DNASTORE_COMMON_ERROR_H
