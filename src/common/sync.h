/**
 * @file
 * Machine-checked locking discipline: annotated mutex wrappers plus a
 * debug-build lock-rank registry.
 *
 * Every mutex in src/ is a sync::Mutex constructed with a named rank
 * from the single ordered table below (raw std::mutex is banned in
 * src/; CI greps for it). Two independent checkers enforce the
 * discipline:
 *
 *  - **Compile time** (clang only): the wrappers carry clang
 *    capability attributes, so `-Wthread-safety -Werror` on the clang
 *    CI legs proves every GUARDED_BY field is only touched with its
 *    mutex held and every REQUIRES helper is only called under the
 *    right lock. Under gcc/MSVC the attributes expand to nothing.
 *
 *  - **Run time** (debug builds, any compiler): a thread-local
 *    held-rank stack checks each acquisition against the rank table —
 *    acquiring a mutex whose rank is not strictly below every mutex
 *    the thread already holds aborts immediately, printing both lock
 *    names and the full held stack. A lock-order inversion (the PR 6
 *    class: telemetry registry taken under the service mutex) becomes
 *    an instant deterministic failure on the first wrong acquisition,
 *    instead of a TSan lottery that needs the two threads to actually
 *    collide.
 *
 * The rank table is total: mutexes may only be acquired in strictly
 * descending rank order, so any cycle in the lock graph implies a
 * rank inversion on at least one edge, and the checker fires on that
 * edge no matter which thread runs first.
 */

#ifndef DNASTORE_COMMON_SYNC_H
#define DNASTORE_COMMON_SYNC_H

#include <condition_variable>
#include <mutex>
#include <vector>

/*
 * Clang thread-safety-analysis attribute macros (no-ops elsewhere).
 * Follows the canonical mutex.h from the clang documentation; see
 * CONTRIBUTING.md "Concurrency discipline" for the cheat-sheet.
 */
#if defined(__clang__)
#define DNASTORE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DNASTORE_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability (mutex-like). */
#define DNASTORE_CAPABILITY(x) \
    DNASTORE_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime equals a critical section. */
#define DNASTORE_SCOPED_CAPABILITY \
    DNASTORE_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be read/written with the given mutex held. */
#define DNASTORE_GUARDED_BY(x) DNASTORE_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be touched with the given mutex held. */
#define DNASTORE_PT_GUARDED_BY(x) \
    DNASTORE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the capability (held on return, not on entry). */
#define DNASTORE_ACQUIRE(...) \
    DNASTORE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability (held on entry, not on return). */
#define DNASTORE_RELEASE(...) \
    DNASTORE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Caller must hold the capability; the function does not release. */
#define DNASTORE_REQUIRES(...) \
    DNASTORE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (the function acquires it, or
 *  holding it here would deadlock / invert the rank order). */
#define DNASTORE_EXCLUDES(...) \
    DNASTORE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the given capability. */
#define DNASTORE_RETURN_CAPABILITY(x) \
    DNASTORE_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch for bodies the analysis cannot follow (drop/relock
 *  through a parameter, intentional order tricks in tests). The
 *  function's own REQUIRES/EXCLUDES contracts are still enforced at
 *  call sites. Always pair with a comment saying why. */
#define DNASTORE_NO_THREAD_SAFETY_ANALYSIS \
    DNASTORE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dnastore::sync {

/**
 * The single ordered rank table. A thread may acquire a mutex only
 * while every mutex it already holds has a strictly greater rank —
 * i.e. locks are taken top-down through this table and released in
 * any order. Equal ranks never nest (so acquiring the same mutex
 * twice, or two peers of one rank, is rejected too).
 *
 * Values are spaced so future subsystems can slot between existing
 * levels without renumbering. When adding a mutex, pick the rank of
 * the state it guards; when two guarded states must nest, the outer
 * acquisition needs the higher rank (see CONTRIBUTING.md).
 */
enum class Rank : int
{
    /** MetricsRegistry::mutex_ — instrument creation and snapshots.
     *  Highest: the registry is a leaf *service* shared by every
     *  subsystem, so no subsystem lock may be held when reaching for
     *  it (the PR 6 inversion took it under kServiceState). */
    kTelemetryRegistry = 500,

    /** DecodeService::mutex_ — admission, tenant queues, WDRR state,
     *  ticket line, in-flight accounting. */
    kServiceState = 400,

    /** DecodeStream::State::m — per-stream unit promise/future maps
     *  shared between caller threads and the dispatcher. */
    kStreamState = 300,

    /** ThreadPool::mutex_ — published fork-join jobs and stop flag.
     *  Near the bottom: pool internals may be reached from inside any
     *  higher layer's critical section, never the other way round. */
    kPoolJobs = 200,

    /** TraceCollector::mutex_ — the bounded finished-trace ring and
     *  sampling counters. A trace deposits into the collector only at
     *  root-span end, after draining its own span buffer, so the two
     *  trace mutexes never nest; the collector still outranks
     *  kTraceBuffer so a future combined walk stays legal. */
    kTraceCollector = 160,

    /** trace::TraceData::mutex_ — one live trace's span buffer.
     *  Span begin/end from decode workers may run inside pool jobs,
     *  so the buffer must rank below kPoolJobs; it never wraps any
     *  other acquisition. */
    kTraceBuffer = 150,

    /** Ad-hoc leaf mutexes (tests, callbacks, future client state)
     *  that never wrap another acquisition. */
    kLeaf = 100,
};

/** Human-readable name of a rank (for diagnostics and tests). */
const char *rankName(Rank rank);

/**
 * True when the runtime lock-rank checker is compiled in (sync.cc
 * built without NDEBUG — the Debug CI legs and `--preset debug`).
 * The deliberate-inversion death tests assert this is true in debug
 * builds, so silently disabling the checker fails the build.
 */
bool rankChecksEnabled();

/**
 * Ranks currently held by the calling thread, acquisition order
 * (oldest first). Empty when the checker is compiled out. Test
 * introspection only — not a synchronization primitive.
 */
std::vector<Rank> heldRanksForTest();

class Mutex;

namespace detail {

/** Check the rank order and push; aborts (with both names and the
 *  full held stack) on violation. No-op when the checker is off. */
void noteAcquire(const Mutex &mutex);

/** Pop the mutex from the held stack (any position — release order
 *  is unconstrained). No-op when the checker is off. */
void noteRelease(const Mutex &mutex);

} // namespace detail

/**
 * A std::mutex with a mandatory rank and a diagnostic name. Lock it
 * through MutexLock (or lock()/unlock() directly in code that cannot
 * be scoped); every acquisition passes the rank checker in debug
 * builds.
 */
class DNASTORE_CAPABILITY("mutex") Mutex
{
  public:
    /**
     * @param rank position in the ordered table above.
     * @param name diagnostic label used in rank-violation aborts;
     *             defaults to the rank's own name. Must be a string
     *             literal (the pointer is kept, not copied).
     */
    explicit Mutex(Rank rank, const char *name = nullptr)
        : rank_(rank), name_(name ? name : rankName(rank))
    {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() DNASTORE_ACQUIRE()
    {
        detail::noteAcquire(*this);
        m_.lock();
    }

    void
    unlock() DNASTORE_RELEASE()
    {
        m_.unlock();
        detail::noteRelease(*this);
    }

    Rank rank() const { return rank_; }
    const char *name() const { return name_; }

  private:
    friend class MutexLock;

    std::mutex m_;
    const Rank rank_;
    const char *const name_;
};

class CondVar;

/**
 * Scoped lock on a sync::Mutex (the only way critical sections are
 * written in src/). Supports the drop/relock idiom via unlock() and
 * lock(), and condition waits via CondVar::wait — a wait releases and
 * reacquires the underlying mutex without touching the rank stack,
 * which stays correct because a blocked thread acquires nothing.
 */
class DNASTORE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) DNASTORE_ACQUIRE(mutex)
        : mutex_(&mutex), ul_(mutex.m_, std::defer_lock)
    {
        // Check-then-block: a rank violation aborts with a clean
        // diagnostic *before* the thread can deadlock on the lock it
        // was never allowed to take.
        detail::noteAcquire(*mutex_);
        ul_.lock();
    }

    ~MutexLock() DNASTORE_RELEASE()
    {
        if (ul_.owns_lock()) {
            ul_.unlock();
            detail::noteRelease(*mutex_);
        }
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Temporarily leave the critical section (drop/relock idiom). */
    void
    unlock() DNASTORE_RELEASE()
    {
        ul_.unlock();
        detail::noteRelease(*mutex_);
    }

    /** Re-enter after unlock(); re-checked against the rank table. */
    void
    lock() DNASTORE_ACQUIRE()
    {
        detail::noteAcquire(*mutex_);
        ul_.lock();
    }

  private:
    friend class CondVar;

    Mutex *mutex_;
    std::unique_lock<std::mutex> ul_;
};

/**
 * Condition variable paired with sync::Mutex. wait() takes the
 * MutexLock guarding the predicate's state; write waits as explicit
 * `while (!pred) cv.wait(lock);` loops so the thread-safety analysis
 * sees the guarded reads under the lock (predicate lambdas are
 * opaque to it).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p lock, sleep, reacquire. The rank stack
     *  keeps the mutex marked held across the wait: the thread is
     *  blocked the whole time, so it can acquire nothing else, and
     *  on return the mutex really is held again. */
    void
    wait(MutexLock &lock)
    {
        cv_.wait(lock.ul_);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace dnastore::sync

#endif // DNASTORE_COMMON_SYNC_H
