/**
 * @file
 * Deterministic random-number generation for reproducible experiments.
 *
 * Every stochastic component in dnastore (index-tree randomization,
 * data scrambling, synthesis bias, PCR noise, sequencing noise) draws
 * from a seeded Rng. Named sub-streams can be derived from a parent
 * seed so that independent components never share a stream, which is a
 * requirement of the paper's design: the PCR-navigable index tree is
 * regenerated from its seed rather than stored (paper Section 4.4).
 */

#ifndef DNASTORE_COMMON_RNG_H
#define DNASTORE_COMMON_RNG_H

#include <cstdint>
#include <string_view>
#include <vector>

namespace dnastore {

/**
 * xoshiro256** PRNG seeded via SplitMix64.
 *
 * Small, fast, and with well-understood statistical behaviour;
 * std::mt19937 is avoided because its seeding is easy to get wrong and
 * its state is needlessly large for simulation fan-out (we create one
 * Rng per tree node on the fly).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(uint64_t seed = 0);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextInRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal variate (Box-Muller). */
    double nextGaussian();

    /** Log-normal variate with the given log-space mu and sigma. */
    double nextLogNormal(double mu, double sigma);

    /** Bernoulli trial with success probability p. */
    bool nextBool(double p);

    /** Poisson variate (Knuth for small lambda, normal approx above). */
    uint64_t nextPoisson(double lambda);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(nextBelow(i));
            std::swap(items[i - 1], items[j]);
        }
    }

    /**
     * Derive a child Rng from this seed and a label, without
     * disturbing this generator's stream. Used to give each simulator
     * component (and each index-tree node) an independent stream.
     */
    static Rng deriveStream(uint64_t seed, std::string_view label);

    /** Derive a child seed from a parent seed and a 64-bit index. */
    static uint64_t deriveSeed(uint64_t seed, uint64_t index);

  private:
    uint64_t s_[4];

    /** Cached second Box-Muller variate. */
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

/** SplitMix64 single step; also usable as a 64-bit mixing function. */
uint64_t splitMix64(uint64_t &state);

/** FNV-1a hash of a string, for deriving stream labels. */
uint64_t fnv1a(std::string_view text);

} // namespace dnastore

#endif // DNASTORE_COMMON_RNG_H
