/**
 * @file
 * NEON kernels for aarch64 (8 uint16 lanes / 16 byte lanes). NEON is
 * baseline on aarch64 so no special compile flags are needed; the
 * table is still selected through the runtime dispatcher so
 * DNASTORE_FORCE_ISA=scalar works there too. Must stay bit-identical
 * to the scalar reference (tests/simd_kernels_test.cc).
 */

#if defined(__aarch64__)

#include <algorithm>

#include <arm_neon.h>

#include "common/simd_kernels.h"

namespace dnastore::simd::detail {

namespace {

/** kTailMask[v][l] = 0xFFFF for lanes l >= v. */
alignas(16) constexpr uint16_t kTailMask[9][8] = {
    {0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0, 0, 0xFFFF, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0, 0, 0, 0xFFFF, 0xFFFF},
    {0, 0, 0, 0, 0, 0, 0, 0xFFFF},
    {0, 0, 0, 0, 0, 0, 0, 0},
};

/** Shift left by K uint16 lanes, shifting "infinity" in. */
template <int K>
uint16x8_t
shiftLanesInf(uint16x8_t v)
{
    const uint16x8_t vinf = vdupq_n_u16(0xFFFF);
    return vextq_u16(vinf, v, 8 - K);
}

uint16_t
editRowNeon(const uint8_t *b, uint8_t a_ch, const uint16_t *prev,
            uint16_t *curr, size_t lo, size_t hi, uint16_t carry_in)
{
    const uint16x8_t vinf = vdupq_n_u16(0xFFFF);
    const uint16x8_t vone = vdupq_n_u16(1);
    alignas(16) static constexpr uint16_t kRamp[8] = {1, 2, 3, 4,
                                                     5, 6, 7, 8};
    const uint16x8_t ramp = vld1q_u16(kRamp);
    const uint8x8_t a_splat = vdup_n_u8(a_ch);
    uint16_t carry = carry_in;
    uint16x8_t vrowmin = vinf;
    for (size_t j0 = lo; j0 <= hi; j0 += 8) {
        const size_t valid = std::min<size_t>(8, hi - j0 + 1);
        uint8x8_t bch = vld1_u8(b + j0 - 1);
        // vceq gives 0xFF per equal byte; invert + mask to cost 0/1.
        uint8x8_t cost8 = vand_u8(vmvn_u8(vceq_u8(bch, a_splat)),
                                  vdup_n_u8(1));
        uint16x8_t cost = vmovl_u8(cost8);
        uint16x8_t pm1 = vld1q_u16(prev + j0 - 1);
        uint16x8_t p0 = vld1q_u16(prev + j0);
        uint16x8_t t = vminq_u16(vqaddq_u16(pm1, cost),
                                 vqaddq_u16(p0, vone));
        t = vminq_u16(t, vqaddq_u16(shiftLanesInf<1>(t),
                                    vdupq_n_u16(1)));
        t = vminq_u16(t, vqaddq_u16(shiftLanesInf<2>(t),
                                    vdupq_n_u16(2)));
        t = vminq_u16(t, vqaddq_u16(shiftLanesInf<4>(t),
                                    vdupq_n_u16(4)));
        t = vminq_u16(t, vqaddq_u16(vdupq_n_u16(carry), ramp));
        vst1q_u16(curr + j0, t);
        uint16x8_t masked = vorrq_u16(t, vld1q_u16(kTailMask[valid]));
        vrowmin = vminq_u16(vrowmin, masked);
        carry = vgetq_lane_u16(t, 7);
    }
    vst1q_u16(curr + hi + 1, vinf);
    vst1q_u16(curr + hi + 9, vinf);
    return vminvq_u16(vrowmin);
}

uint64_t
mix64Scalar(uint64_t state)
{
    uint64_t z = state + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * aarch64 has no vector 64x64 multiply and its scalar 64-bit MUL is
 * single-cycle-ish, so the hash itself stays scalar; the win on NEON
 * comes from the DP-row and GF kernels.
 */
void
minhashNeon(const uint8_t *bases, size_t len, size_t q, uint64_t mask,
            const uint64_t *salts, size_t num_salts, uint64_t *out)
{
    for (size_t s = 0; s < num_salts; ++s)
        out[s] = UINT64_MAX;
    uint64_t packed = 0;
    for (size_t i = 0; i < len; ++i) {
        packed = ((packed << 2) | bases[i]) & mask;
        if (i + 1 < q)
            continue;
        for (size_t s = 0; s < num_salts; ++s)
            out[s] = std::min(out[s], mix64Scalar(packed ^ salts[s]));
    }
}

void
gf16SyndromesNeon(const uint8_t *const *cols, size_t ncols,
                  size_t parity, size_t rows,
                  const uint8_t *mul_tables, uint8_t *out)
{
    const size_t full = rows & ~size_t{15};
    for (size_t s = 0; s < parity; ++s) {
        const uint8x16_t tbl = vld1q_u8(mul_tables + s * 16);
        const uint8_t *tbl8 = mul_tables + s * 16;
        uint8_t *dst = out + s * rows;
        for (size_t r = 0; r < full; r += 16) {
            uint8x16_t acc = vdupq_n_u8(0);
            for (size_t c = 0; c < ncols; ++c) {
                uint8x16_t col = vld1q_u8(cols[c] + r);
                acc = veorq_u8(vqtbl1q_u8(tbl, acc), col);
            }
            vst1q_u8(dst + r, acc);
        }
        for (size_t r = full; r < rows; ++r) {
            uint8_t acc = 0;
            for (size_t c = 0; c < ncols; ++c)
                acc = tbl8[acc] ^ cols[c][r];
            dst[r] = acc;
        }
    }
}

void
gf16TableXorNeon(const uint8_t *table16, const uint8_t *src,
                 uint8_t *dst, size_t len)
{
    const uint8x16_t tbl = vld1q_u8(table16);
    size_t i = 0;
    for (; i + 16 <= len; i += 16) {
        uint8x16_t s = vld1q_u8(src + i);
        uint8x16_t d = vld1q_u8(dst + i);
        vst1q_u8(dst + i, veorq_u8(d, vqtbl1q_u8(tbl, s)));
    }
    for (; i < len; ++i)
        dst[i] ^= table16[src[i]];
}

void
gf256MulConstAccumNeon(uint8_t c, const uint8_t *src, uint8_t *dst,
                       size_t len, const uint8_t *mul_lo,
                       const uint8_t *mul_hi)
{
    const uint8_t *lo8 = mul_lo + static_cast<size_t>(c) * 16;
    const uint8_t *hi8 = mul_hi + static_cast<size_t>(c) * 16;
    const uint8x16_t tlo = vld1q_u8(lo8);
    const uint8x16_t thi = vld1q_u8(hi8);
    const uint8x16_t nib = vdupq_n_u8(0x0F);
    size_t i = 0;
    for (; i + 16 <= len; i += 16) {
        uint8x16_t s = vld1q_u8(src + i);
        uint8x16_t d = vld1q_u8(dst + i);
        uint8x16_t lo = vandq_u8(s, nib);
        uint8x16_t hi = vshrq_n_u8(s, 4);
        uint8x16_t prod =
            veorq_u8(vqtbl1q_u8(tlo, lo), vqtbl1q_u8(thi, hi));
        vst1q_u8(dst + i, veorq_u8(d, prod));
    }
    for (; i < len; ++i)
        dst[i] ^= lo8[src[i] & 0xF] ^ hi8[src[i] >> 4];
}

} // namespace

const Kernels &
neonKernels()
{
    static const Kernels table = {
        editRowNeon,      minhashNeon,           gf16SyndromesNeon,
        gf16TableXorNeon, gf256MulConstAccumNeon,
    };
    return table;
}

} // namespace dnastore::simd::detail

#endif // __aarch64__
