#include "dna/sequence.h"

#include <algorithm>

#include "common/error.h"

namespace dnastore::dna {

char
baseToChar(Base base)
{
    static constexpr char kChars[4] = {'A', 'C', 'G', 'T'};
    return kChars[static_cast<uint8_t>(base)];
}

Base
charToBase(char c)
{
    switch (c) {
      case 'A': return Base::A;
      case 'C': return Base::C;
      case 'G': return Base::G;
      case 'T': return Base::T;
      default:
        fatal("invalid DNA character '", c, "'");
    }
}

bool
isValidBaseChar(char c)
{
    return c == 'A' || c == 'C' || c == 'G' || c == 'T';
}

Base
complement(Base base)
{
    // A<->T is 0<->3, C<->G is 1<->2: complement == 3 - value.
    return static_cast<Base>(3 - static_cast<uint8_t>(base));
}

char
complementChar(char c)
{
    return baseToChar(complement(charToBase(c)));
}

bool
isStrong(Base base)
{
    return base == Base::C || base == Base::G;
}

bool
isStrongChar(char c)
{
    return c == 'C' || c == 'G';
}

Sequence::Sequence(std::string bases)
    : bases_(std::move(bases))
{
    for (char c : bases_) {
        fatalIf(!isValidBaseChar(c),
                "Sequence contains invalid character '", c, "'");
    }
}

Sequence::Sequence(const std::vector<Base> &bases)
{
    bases_.reserve(bases.size());
    for (Base base : bases)
        bases_.push_back(baseToChar(base));
}

Sequence::Sequence(size_t count, Base base)
    : bases_(count, baseToChar(base))
{}

Base
Sequence::baseAt(size_t i) const
{
    panicIf(i >= bases_.size(), "Sequence::baseAt out of range");
    return charToBase(bases_[i]);
}

Sequence &
Sequence::operator+=(const Sequence &other)
{
    bases_ += other.bases_;
    return *this;
}

void
Sequence::push_back(Base base)
{
    bases_.push_back(baseToChar(base));
}

Sequence
Sequence::substr(size_t pos, size_t len) const
{
    Sequence result;
    result.bases_ = pos >= bases_.size() ? std::string()
                                         : bases_.substr(pos, len);
    return result;
}

bool
Sequence::startsWith(const Sequence &prefix) const
{
    return bases_.size() >= prefix.size() &&
           bases_.compare(0, prefix.size(), prefix.bases_) == 0;
}

bool
Sequence::endsWith(const Sequence &suffix) const
{
    return bases_.size() >= suffix.size() &&
           bases_.compare(bases_.size() - suffix.size(), suffix.size(),
                          suffix.bases_) == 0;
}

Sequence
Sequence::reverseComplement() const
{
    Sequence result;
    result.bases_.reserve(bases_.size());
    for (auto it = bases_.rbegin(); it != bases_.rend(); ++it)
        result.bases_.push_back(complementChar(*it));
    return result;
}

std::vector<Base>
Sequence::toBases() const
{
    std::vector<Base> result;
    result.reserve(bases_.size());
    for (char c : bases_)
        result.push_back(charToBase(c));
    return result;
}

Sequence
operator+(const Sequence &a, const Sequence &b)
{
    Sequence result = a;
    result += b;
    return result;
}

} // namespace dnastore::dna
