/**
 * @file
 * String distance metrics used throughout the pipeline.
 *
 * Hamming distance governs primer-library compatibility; Levenshtein
 * (edit) distance governs read clustering and mispriming (reads that
 * promiscuously amplify are 2-3 edit distance from the target index,
 * paper Section 8.1). The banded variant keeps clustering cheap, and
 * the prefix-alignment variant models how well a PCR primer anneals to
 * the 5' end of a template.
 */

#ifndef DNASTORE_DNA_DISTANCE_H
#define DNASTORE_DNA_DISTANCE_H

#include <cstddef>
#include <limits>

#include "dna/sequence.h"

namespace dnastore::dna {

/** Sentinel returned by banded searches when the bound is exceeded. */
inline constexpr size_t kDistanceInfinity =
    std::numeric_limits<size_t>::max();

/**
 * Hamming distance between equal-length sequences; if lengths differ,
 * the length difference is added to the mismatch count of the common
 * prefix (the convention used when comparing index elongations).
 */
size_t hammingDistance(const Sequence &a, const Sequence &b);

/** Full Levenshtein (insert/delete/substitute) distance. */
size_t levenshteinDistance(const Sequence &a, const Sequence &b);

/**
 * Banded Levenshtein distance: exact value if it is <= @p max_dist,
 * kDistanceInfinity otherwise. O(max_dist * max(len)) time.
 */
size_t bandedLevenshtein(const Sequence &a, const Sequence &b,
                         size_t max_dist);

/** Length of the longest common prefix. */
size_t longestCommonPrefix(const Sequence &a, const Sequence &b);

/**
 * Result of aligning a primer against the 5' prefix of a template.
 */
struct PrefixAlignment
{
    /** Edit distance of the best prefix alignment. */
    size_t distance = kDistanceInfinity;

    /** Template length consumed by the best alignment. */
    size_t template_consumed = 0;

    /** Number of mismatching positions among the primer's 3'-most
     * @c three_prime_window bases (substitutions or indels landing
     * there). PCR extension is far more sensitive to 3' mismatches. */
    size_t three_prime_mismatches = 0;
};

/**
 * Semi-global alignment of @p primer against a prefix of
 * @p template_seq (template suffix is free).
 *
 * @param primer            the (possibly elongated) forward primer
 * @param template_seq      the molecule, 5'->3'
 * @param max_dist          band limit; distances above it are reported
 *                          as kDistanceInfinity
 * @param three_prime_window how many primer-3'-end positions count as
 *                          the critical window
 */
PrefixAlignment alignPrimerToPrefix(const Sequence &primer,
                                    const Sequence &template_seq,
                                    size_t max_dist,
                                    size_t three_prime_window = 3);

/** Result of a position-weighted primer-template alignment. */
struct WeightedAlignment
{
    /** Minimal weighted edit cost (kWeightInfinity if outside the
     *  band). */
    double cost = 1e300;

    /** Template length consumed by the minimal-cost alignment. */
    size_t template_consumed = 0;
};

inline constexpr double kWeightInfinity = 1e300;

/**
 * Position-weighted semi-global alignment for PCR annealing.
 *
 * Polymerase extension tolerates mismatches and bulges near the
 * primer's 5' end far better than near the 3' terminus, which is
 * exactly the asymmetry the paper's sparse index exploits (sibling
 * indexes differ in their final, i.e. 3'-most, chunk). Every edit —
 * substitution, primer-base bulge, or extra template base — is
 * charged the weight of the primer position it touches:
 * @p three_prime_factor for the last @p three_prime_window primer
 * positions and 1.0 elsewhere. The DP minimizes total weighted cost
 * directly, so "sneaky" bulge alignments cannot dodge the 3' penalty
 * the way an unweighted-distance-then-inspect-the-tail scheme can.
 *
 * Bulged bases (indels) destabilize a primer-template duplex more
 * than internal mismatches, so gaps are charged
 * @p gap_factor x the positional weight.
 *
 * @param band maximum |primer position - template position| skew
 */
WeightedAlignment alignPrimerWeighted(const Sequence &primer,
                                      const Sequence &template_seq,
                                      size_t band,
                                      size_t three_prime_window = 3,
                                      double three_prime_factor = 3.0,
                                      double gap_factor = 2.5);

} // namespace dnastore::dna

#endif // DNASTORE_DNA_DISTANCE_H
