/**
 * @file
 * Sequence composition analysis: GC content and homopolymer runs.
 *
 * These are the two composition constraints that govern PCR primer
 * viability in the paper: primers must be near 50% GC in every prefix
 * (Section 4.2) and must not contain long homopolymer runs
 * (Section 4.1).
 */

#ifndef DNASTORE_DNA_ANALYSIS_H
#define DNASTORE_DNA_ANALYSIS_H

#include <cstddef>

#include "dna/sequence.h"

namespace dnastore::dna {

/** Fraction of G/C bases in the sequence; 0 for an empty sequence. */
double gcContent(const Sequence &seq);

/** Number of G/C bases in the sequence. */
size_t gcCount(const Sequence &seq);

/** Length of the longest homopolymer run (0 for empty input). */
size_t maxHomopolymerRun(const Sequence &seq);

/**
 * Worst-case absolute deviation of GC count from len/2 over every
 * prefix of the sequence of length >= @p min_prefix.
 *
 * The paper's elongated primers can stop at any index boundary, so GC
 * balance must hold for every possible elongation, not only the full
 * index (Section 4.2). A perfectly alternating strong/weak sequence
 * has deviation 0.5.
 */
double maxPrefixGcDeviation(const Sequence &seq, size_t min_prefix = 1);

/**
 * Wallace / Marmur-Doty style melting temperature estimate (degrees
 * Celsius). Uses 2(A+T)+4(G+C) below 14 bases and the standard
 * 64.9 + 41*(GC - 16.4)/N formula otherwise; adequate for the primer
 * screening the paper performs (GC window plus Tm window).
 */
double meltingTemperature(const Sequence &seq);

} // namespace dnastore::dna

#endif // DNASTORE_DNA_ANALYSIS_H
