/**
 * @file
 * Core DNA sequence type and nucleotide helpers.
 *
 * A Sequence is a validated string over the alphabet {A, C, G, T},
 * stored 5'->3'. It is the common currency of every dnastore library:
 * codecs produce Sequences, the simulator amplifies and sequences
 * them, and the decoder parses them back into fields.
 */

#ifndef DNASTORE_DNA_SEQUENCE_H
#define DNASTORE_DNA_SEQUENCE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dnastore::dna {

/** The four nucleotides, numbered so that value == 2-bit encoding. */
enum class Base : uint8_t { A = 0, C = 1, G = 2, T = 3 };

/** All four bases in canonical A, C, G, T order. */
inline constexpr Base kAllBases[4] = {Base::A, Base::C, Base::G, Base::T};

/** Convert a base to its character. */
char baseToChar(Base base);

/** Convert a character (upper-case ACGT) to a base; throws otherwise. */
Base charToBase(char c);

/** True if the character is one of ACGT. */
bool isValidBaseChar(char c);

/** Watson-Crick complement (A<->T, C<->G). */
Base complement(Base base);

/** Complement on characters. */
char complementChar(char c);

/**
 * True for the "strong" bases G and C (three hydrogen bonds).
 *
 * The paper's spacer construction (Section 4.3) alternates strong and
 * weak bases to keep every index prefix GC-balanced.
 */
bool isStrong(Base base);

/** isStrong() on characters. */
bool isStrongChar(char c);

/**
 * A validated DNA string over {A, C, G, T}, stored 5'->3'.
 *
 * Invariant: every character of str() is one of 'A','C','G','T'.
 */
class Sequence
{
  public:
    Sequence() = default;

    /** Construct from a character string; validates the alphabet. */
    explicit Sequence(std::string bases);

    /** Construct from bases. */
    explicit Sequence(const std::vector<Base> &bases);

    /** Construct a run of @p count copies of @p base. */
    Sequence(size_t count, Base base);

    /** Raw character view. */
    const std::string &str() const { return bases_; }

    size_t size() const { return bases_.size(); }
    bool empty() const { return bases_.empty(); }

    /** Character at position i (no bounds check beyond std::string). */
    char operator[](size_t i) const { return bases_[i]; }

    /** Base at position i. */
    Base baseAt(size_t i) const;

    /** Append another sequence. */
    Sequence &operator+=(const Sequence &other);

    /** Append a single base. */
    void push_back(Base base);

    /** Substring [pos, pos+len). Clamps like std::string::substr. */
    Sequence substr(size_t pos, size_t len = std::string::npos) const;

    /** True if @p prefix is a prefix of this sequence. */
    bool startsWith(const Sequence &prefix) const;

    /** True if @p suffix is a suffix of this sequence. */
    bool endsWith(const Sequence &suffix) const;

    /** Reverse complement (the opposite strand read 5'->3'). */
    Sequence reverseComplement() const;

    /** Decompose into a vector of Base values. */
    std::vector<Base> toBases() const;

    bool operator==(const Sequence &other) const = default;
    auto operator<=>(const Sequence &other) const = default;

  private:
    std::string bases_;
};

/** Concatenate two sequences. */
Sequence operator+(const Sequence &a, const Sequence &b);

/** Hash functor so Sequence can key unordered containers. */
struct SequenceHash
{
    size_t
    operator()(const Sequence &seq) const
    {
        return std::hash<std::string>{}(seq.str());
    }
};

} // namespace dnastore::dna

#endif // DNASTORE_DNA_SEQUENCE_H
