#include "dna/analysis.h"

#include <algorithm>
#include <cmath>

namespace dnastore::dna {

size_t
gcCount(const Sequence &seq)
{
    size_t count = 0;
    for (char c : seq.str()) {
        if (isStrongChar(c))
            ++count;
    }
    return count;
}

double
gcContent(const Sequence &seq)
{
    if (seq.empty())
        return 0.0;
    return static_cast<double>(gcCount(seq)) /
           static_cast<double>(seq.size());
}

size_t
maxHomopolymerRun(const Sequence &seq)
{
    if (seq.empty())
        return 0;
    size_t best = 1;
    size_t run = 1;
    const std::string &s = seq.str();
    for (size_t i = 1; i < s.size(); ++i) {
        run = (s[i] == s[i - 1]) ? run + 1 : 1;
        best = std::max(best, run);
    }
    return best;
}

double
maxPrefixGcDeviation(const Sequence &seq, size_t min_prefix)
{
    double worst = 0.0;
    size_t strong = 0;
    const std::string &s = seq.str();
    for (size_t i = 0; i < s.size(); ++i) {
        if (isStrongChar(s[i]))
            ++strong;
        size_t len = i + 1;
        if (len < min_prefix)
            continue;
        double deviation =
            std::abs(static_cast<double>(strong) -
                     static_cast<double>(len) / 2.0);
        worst = std::max(worst, deviation);
    }
    return worst;
}

double
meltingTemperature(const Sequence &seq)
{
    if (seq.empty())
        return 0.0;
    size_t gc = gcCount(seq);
    size_t at = seq.size() - gc;
    if (seq.size() < 14)
        return 2.0 * static_cast<double>(at) + 4.0 * static_cast<double>(gc);
    return 64.9 + 41.0 * (static_cast<double>(gc) - 16.4) /
                      static_cast<double>(seq.size());
}

} // namespace dnastore::dna
