#include "dna/distance.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/arena.h"
#include "common/simd.h"

namespace dnastore::dna {

namespace {

using simd::kEditRowPad;
using simd::kInf16;

/**
 * The uint16 DP kernels are exact as long as no *finite* value can
 * reach the kInf16 saturation point: cell values are bounded by
 * m + n, and the <= max_dist accept test only inspects values that
 * must stay below kInf16 to pass. Inputs beyond these bounds (never
 * produced by the decode pipeline) take the original size_t paths.
 */
bool
fitsU16(size_t m, size_t n, size_t max_dist)
{
    return max_dist < kInf16 - 1 && m < kInf16 / 2 && n < kInf16 / 2;
}

/** Copy @p s into arena scratch with kEditRowPad bytes of zero
 *  padding so full-width vector loads stay in bounds. */
const uint8_t *
paddedBytes(Arena &arena, const std::string &s)
{
    uint8_t *buf = arena.allocArray<uint8_t>(s.size() + kEditRowPad);
    std::memcpy(buf, s.data(), s.size());
    std::memset(buf + s.size(), 0, kEditRowPad);
    return buf;
}

/** Allocate one DP row of n + 2 + kEditRowPad lanes, all kInf16. */
uint16_t *
infRow(Arena &arena, size_t n)
{
    size_t lanes = n + 2 + kEditRowPad;
    uint16_t *row = arena.allocArray<uint16_t>(lanes);
    std::memset(row, 0xFF, lanes * sizeof(uint16_t));
    return row;
}

} // namespace

size_t
hammingDistance(const Sequence &a, const Sequence &b)
{
    const std::string &sa = a.str();
    const std::string &sb = b.str();
    size_t common = std::min(sa.size(), sb.size());
    size_t distance = std::max(sa.size(), sb.size()) - common;
    for (size_t i = 0; i < common; ++i) {
        if (sa[i] != sb[i])
            ++distance;
    }
    return distance;
}

size_t
levenshteinDistance(const Sequence &a, const Sequence &b)
{
    const std::string &sa = a.str();
    const std::string &sb = b.str();
    const size_t n = sb.size();
    Arena &arena = Arena::scratch();
    ArenaScope scope(arena);
    size_t *row = arena.allocArray<size_t>(n + 1);
    for (size_t j = 0; j <= n; ++j)
        row[j] = j;
    for (size_t i = 1; i <= sa.size(); ++i) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= n; ++j) {
            size_t cost = (sa[i - 1] == sb[j - 1]) ? 0 : 1;
            size_t next = std::min({row[j] + 1, row[j - 1] + 1,
                                    diag + cost});
            diag = row[j];
            row[j] = next;
        }
    }
    return row[n];
}

size_t
bandedLevenshtein(const Sequence &a, const Sequence &b, size_t max_dist)
{
    const std::string &sa = a.str();
    const std::string &sb = b.str();
    const size_t m = sa.size();
    const size_t n = sb.size();
    size_t len_diff = m > n ? m - n : n - m;
    if (len_diff > max_dist)
        return kDistanceInfinity;
    if (m == 0 || n == 0) {
        // One side empty: the distance is the other side's length.
        // The band loop below cannot represent the n == 0 case (its
        // columns start at 1), and the seed implementation wrongly
        // reported infinity for it.
        return len_diff;
    }
    if (!fitsU16(m, n, max_dist)) {
        // Oversized inputs: the band covers cells the uint16 lanes
        // could saturate, so compute the exact distance directly.
        size_t d = levenshteinDistance(a, b);
        return d <= max_dist ? d : kDistanceInfinity;
    }

    // Rows over sa, band of half-width max_dist around the diagonal;
    // each row is one SIMD kernel call over uint16 lanes, with the
    // kernel's saturating min-reduction feeding the early-exit test.
    Arena &arena = Arena::scratch();
    ArenaScope scope(arena);
    const uint8_t *bb = paddedBytes(arena, sb);
    uint16_t *prev = infRow(arena, n);
    uint16_t *curr = infRow(arena, n);
    for (size_t j = 0; j <= std::min(n, max_dist); ++j)
        prev[j] = static_cast<uint16_t>(j);
    const simd::Kernels &kernels = simd::kernels();
    for (size_t i = 1; i <= m; ++i) {
        size_t lo = i > max_dist ? i - max_dist : 1;
        size_t hi = std::min(n, i + max_dist);
        if (lo > hi)
            return kDistanceInfinity;
        // Column lo-1 sits at (or left of) the band edge: when the
        // band still touches column 0 it holds the leading-deletion
        // cost i, otherwise it is "infinity". It seeds the row
        // minimum explicitly — the historical seed-from-curr[0]
        // behaviour, now spelled out (and pinned by the exhaustive
        // differential test in distance_test).
        uint16_t edge = (lo == 1 && i <= max_dist)
                            ? static_cast<uint16_t>(i)
                            : kInf16;
        curr[lo - 1] = edge;
        uint16_t row_min = kernels.edit_row(
            bb, static_cast<uint8_t>(sa[i - 1]), prev, curr, lo, hi,
            edge);
        if (std::min(row_min, edge) > max_dist)
            return kDistanceInfinity;
        std::swap(prev, curr);
    }
    return prev[n] <= max_dist ? prev[n] : kDistanceInfinity;
}

size_t
longestCommonPrefix(const Sequence &a, const Sequence &b)
{
    size_t limit = std::min(a.size(), b.size());
    size_t i = 0;
    while (i < limit && a[i] == b[i])
        ++i;
    return i;
}

namespace {

/** Original size_t implementation, kept for inputs outside the
 *  uint16-safe bounds (see fitsU16). */
PrefixAlignment
alignPrimerToPrefixGeneric(const Sequence &primer,
                           const Sequence &template_seq,
                           size_t max_dist, size_t three_prime_window)
{
    PrefixAlignment result;
    const std::string &p = primer.str();
    const std::string &t = template_seq.str();
    const size_t m = p.size();
    const size_t n = std::min(t.size(), m + max_dist);
    if (m > n + max_dist)
        return result;

    const size_t inf = kDistanceInfinity / 2;
    std::vector<size_t> prev(n + 1, inf), curr(n + 1, inf);
    for (size_t j = 0; j <= std::min(n, max_dist); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= m; ++i) {
        size_t lo = i > max_dist ? i - max_dist : 1;
        size_t hi = std::min(n, i + max_dist);
        if (lo > hi)
            return result;
        std::fill(curr.begin(), curr.end(), inf);
        if (lo == 1)
            curr[0] = i <= max_dist ? i : inf;
        for (size_t j = lo; j <= hi; ++j) {
            size_t cost = (p[i - 1] == t[j - 1]) ? 0 : 1;
            size_t best = prev[j - 1] + cost;
            best = std::min(best, prev[j] + 1);
            best = std::min(best, curr[j - 1] + 1);
            curr[j] = best;
        }
        std::swap(prev, curr);
    }

    size_t best_j = 0;
    size_t best_dist = inf;
    size_t lo = m > max_dist ? m - max_dist : 0;
    for (size_t j = lo; j <= n; ++j) {
        if (prev[j] < best_dist) {
            best_dist = prev[j];
            best_j = j;
        }
    }
    if (best_dist > max_dist)
        return result;

    result.distance = best_dist;
    result.template_consumed = best_j;
    size_t window = std::min(three_prime_window, std::min(m, best_j));
    size_t mismatches = 0;
    for (size_t k = 1; k <= window; ++k) {
        if (p[m - k] != t[best_j - k])
            ++mismatches;
    }
    result.three_prime_mismatches = mismatches;
    return result;
}

} // namespace

PrefixAlignment
alignPrimerToPrefix(const Sequence &primer, const Sequence &template_seq,
                    size_t max_dist, size_t three_prime_window)
{
    PrefixAlignment result;
    const std::string &p = primer.str();
    const std::string &t = template_seq.str();
    const size_t m = p.size();
    // The primer must land within max_dist indels of its own length.
    const size_t n = std::min(t.size(), m + max_dist);
    if (m > n + max_dist)
        return result;
    if (!fitsU16(m, n, max_dist))
        return alignPrimerToPrefixGeneric(primer, template_seq,
                                          max_dist,
                                          three_prime_window);

    // Both strings anchored at position 0: row 0 is the cost of
    // skipping leading template bases (deletions from the template).
    Arena &arena = Arena::scratch();
    ArenaScope scope(arena);
    const uint8_t *tb = paddedBytes(arena, t);
    uint16_t *prev = infRow(arena, n);
    uint16_t *curr = infRow(arena, n);
    for (size_t j = 0; j <= std::min(n, max_dist); ++j)
        prev[j] = static_cast<uint16_t>(j);
    const simd::Kernels &kernels = simd::kernels();
    for (size_t i = 1; i <= m; ++i) {
        size_t lo = i > max_dist ? i - max_dist : 1;
        size_t hi = std::min(n, i + max_dist);
        if (lo > hi)
            return result;
        uint16_t edge = (lo == 1 && i <= max_dist)
                            ? static_cast<uint16_t>(i)
                            : kInf16;
        curr[lo - 1] = edge;
        kernels.edit_row(tb, static_cast<uint8_t>(p[i - 1]), prev,
                         curr, lo, hi, edge);
        std::swap(prev, curr);
    }

    // Best end position in the template (template suffix is free).
    size_t best_j = 0;
    size_t best_dist = kInf16;
    size_t lo = m > max_dist ? m - max_dist : 0;
    for (size_t j = lo; j <= n; ++j) {
        if (prev[j] < best_dist) {
            best_dist = prev[j];
            best_j = j;
        }
    }
    if (best_dist > max_dist)
        return result;

    result.distance = best_dist;
    result.template_consumed = best_j;

    // Approximate 3'-end mismatch count: compare the primer tail with
    // the template bases that end at the alignment endpoint.
    size_t window = std::min(three_prime_window, std::min(m, best_j));
    size_t mismatches = 0;
    for (size_t k = 1; k <= window; ++k) {
        if (p[m - k] != t[best_j - k])
            ++mismatches;
    }
    result.three_prime_mismatches = mismatches;
    return result;
}

WeightedAlignment
alignPrimerWeighted(const Sequence &primer, const Sequence &template_seq,
                    size_t band, size_t three_prime_window,
                    double three_prime_factor, double gap_factor)
{
    WeightedAlignment result;
    const std::string &p = primer.str();
    const std::string &t = template_seq.str();
    const size_t m = p.size();
    const size_t n = std::min(t.size(), m + band);
    if (m > n + band)
        return result;

    auto weight = [&](size_t primer_pos) {
        return primer_pos + three_prime_window >= m
                   ? three_prime_factor
                   : 1.0;
    };

    // Gap-weight convention: every gap is charged at the weight of
    // the primer position it sits at. A template base consumed
    // before the primer's 5' end (row 0) or under primer base i-1
    // (rows i >= 1, the curr[j-1] transition) is an opening/extra
    // template base at that primer position; a bulged-out primer
    // base i-1 (the prev[j] transition) likewise charges its own
    // position. Row 0 therefore uses weight(0) and every row i >= 1
    // uses weight(i - 1) for both gap kinds — pinned literally by
    // distance_test's WeightedGapConvention tests.
    //
    // This stays scalar double arithmetic: reassociating the float
    // sums (as a vector prefix-min would) could move accepted
    // primers by an ulp, breaking the golden outputs.
    Arena &arena = Arena::scratch();
    ArenaScope scope(arena);
    double *prev = arena.allocArray<double>(n + 1);
    double *curr = arena.allocArray<double>(n + 1);
    std::fill(prev, prev + n + 1, kWeightInfinity);
    std::fill(curr, curr + n + 1, kWeightInfinity);
    for (size_t j = 0; j <= std::min(n, band); ++j)
        prev[j] = static_cast<double>(j) * gap_factor * weight(0);
    for (size_t i = 1; i <= m; ++i) {
        size_t lo = i > band ? i - band : 1;
        size_t hi = std::min(n, i + band);
        if (lo > hi)
            return result;
        std::fill(curr, curr + n + 1, kWeightInfinity);
        if (lo == 1 && i <= band) {
            curr[0] = prev[0] == kWeightInfinity
                          ? kWeightInfinity
                          : prev[0] + gap_factor * weight(i - 1);
        }
        for (size_t j = lo; j <= hi; ++j) {
            double sub_cost =
                p[i - 1] == t[j - 1] ? 0.0 : weight(i - 1);
            double best = prev[j - 1] + sub_cost;
            // Primer base i-1 bulged out (no template partner).
            best = std::min(best, prev[j] + gap_factor * weight(i - 1));
            // Extra template base under primer position i-1.
            best = std::min(best,
                            curr[j - 1] + gap_factor * weight(i - 1));
            curr[j] = best;
        }
        std::swap(prev, curr);
    }

    size_t lo = m > band ? m - band : 0;
    for (size_t j = lo; j <= n; ++j) {
        if (prev[j] < result.cost) {
            result.cost = prev[j];
            result.template_consumed = j;
        }
    }
    return result;
}

} // namespace dnastore::dna
