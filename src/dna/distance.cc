#include "dna/distance.h"

#include <algorithm>
#include <vector>

namespace dnastore::dna {

size_t
hammingDistance(const Sequence &a, const Sequence &b)
{
    const std::string &sa = a.str();
    const std::string &sb = b.str();
    size_t common = std::min(sa.size(), sb.size());
    size_t distance = std::max(sa.size(), sb.size()) - common;
    for (size_t i = 0; i < common; ++i) {
        if (sa[i] != sb[i])
            ++distance;
    }
    return distance;
}

size_t
levenshteinDistance(const Sequence &a, const Sequence &b)
{
    const std::string &sa = a.str();
    const std::string &sb = b.str();
    const size_t n = sb.size();
    std::vector<size_t> row(n + 1);
    for (size_t j = 0; j <= n; ++j)
        row[j] = j;
    for (size_t i = 1; i <= sa.size(); ++i) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= n; ++j) {
            size_t cost = (sa[i - 1] == sb[j - 1]) ? 0 : 1;
            size_t next = std::min({row[j] + 1, row[j - 1] + 1,
                                    diag + cost});
            diag = row[j];
            row[j] = next;
        }
    }
    return row[n];
}

size_t
bandedLevenshtein(const Sequence &a, const Sequence &b, size_t max_dist)
{
    const std::string &sa = a.str();
    const std::string &sb = b.str();
    const size_t m = sa.size();
    const size_t n = sb.size();
    size_t len_diff = m > n ? m - n : n - m;
    if (len_diff > max_dist)
        return kDistanceInfinity;

    // Rows over sa, band of half-width max_dist around the diagonal.
    const size_t inf = kDistanceInfinity / 2;
    std::vector<size_t> prev(n + 1, inf), curr(n + 1, inf);
    for (size_t j = 0; j <= std::min(n, max_dist); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= m; ++i) {
        size_t lo = i > max_dist ? i - max_dist : 1;
        size_t hi = std::min(n, i + max_dist);
        if (lo > hi)
            return kDistanceInfinity;
        std::fill(curr.begin(), curr.end(), inf);
        if (lo == 1)
            curr[0] = i <= max_dist ? i : inf;
        size_t row_min = curr[0];
        for (size_t j = lo; j <= hi; ++j) {
            size_t cost = (sa[i - 1] == sb[j - 1]) ? 0 : 1;
            size_t best = prev[j - 1] + cost;
            best = std::min(best, prev[j] + 1);
            best = std::min(best, curr[j - 1] + 1);
            curr[j] = best;
            row_min = std::min(row_min, best);
        }
        if (row_min > max_dist)
            return kDistanceInfinity;
        std::swap(prev, curr);
    }
    return prev[n] <= max_dist ? prev[n] : kDistanceInfinity;
}

size_t
longestCommonPrefix(const Sequence &a, const Sequence &b)
{
    size_t limit = std::min(a.size(), b.size());
    size_t i = 0;
    while (i < limit && a[i] == b[i])
        ++i;
    return i;
}

PrefixAlignment
alignPrimerToPrefix(const Sequence &primer, const Sequence &template_seq,
                    size_t max_dist, size_t three_prime_window)
{
    PrefixAlignment result;
    const std::string &p = primer.str();
    const std::string &t = template_seq.str();
    const size_t m = p.size();
    // The primer must land within max_dist indels of its own length.
    const size_t n = std::min(t.size(), m + max_dist);
    if (m > n + max_dist)
        return result;

    const size_t inf = kDistanceInfinity / 2;
    std::vector<size_t> prev(n + 1, inf), curr(n + 1, inf);
    // Both strings anchored at position 0: row 0 is the cost of
    // skipping leading template bases (deletions from the template).
    for (size_t j = 0; j <= std::min(n, max_dist); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= m; ++i) {
        size_t lo = i > max_dist ? i - max_dist : 1;
        size_t hi = std::min(n, i + max_dist);
        if (lo > hi)
            return result;
        std::fill(curr.begin(), curr.end(), inf);
        if (lo == 1)
            curr[0] = i <= max_dist ? i : inf;
        for (size_t j = lo; j <= hi; ++j) {
            size_t cost = (p[i - 1] == t[j - 1]) ? 0 : 1;
            size_t best = prev[j - 1] + cost;
            best = std::min(best, prev[j] + 1);
            best = std::min(best, curr[j - 1] + 1);
            curr[j] = best;
        }
        std::swap(prev, curr);
    }

    // Best end position in the template (template suffix is free).
    size_t best_j = 0;
    size_t best_dist = inf;
    size_t lo = m > max_dist ? m - max_dist : 0;
    for (size_t j = lo; j <= n; ++j) {
        if (prev[j] < best_dist) {
            best_dist = prev[j];
            best_j = j;
        }
    }
    if (best_dist > max_dist)
        return result;

    result.distance = best_dist;
    result.template_consumed = best_j;

    // Approximate 3'-end mismatch count: compare the primer tail with
    // the template bases that end at the alignment endpoint.
    size_t window = std::min(three_prime_window, std::min(m, best_j));
    size_t mismatches = 0;
    for (size_t k = 1; k <= window; ++k) {
        if (p[m - k] != t[best_j - k])
            ++mismatches;
    }
    result.three_prime_mismatches = mismatches;
    return result;
}

WeightedAlignment
alignPrimerWeighted(const Sequence &primer, const Sequence &template_seq,
                    size_t band, size_t three_prime_window,
                    double three_prime_factor, double gap_factor)
{
    WeightedAlignment result;
    const std::string &p = primer.str();
    const std::string &t = template_seq.str();
    const size_t m = p.size();
    const size_t n = std::min(t.size(), m + band);
    if (m > n + band)
        return result;

    auto weight = [&](size_t primer_pos) {
        return primer_pos + three_prime_window >= m
                   ? three_prime_factor
                   : 1.0;
    };

    std::vector<double> prev(n + 1, kWeightInfinity);
    std::vector<double> curr(n + 1, kWeightInfinity);
    // Row 0: leading template bases skipped before the primer's 5'
    // end; charge the 5'-most gap weight.
    for (size_t j = 0; j <= std::min(n, band); ++j)
        prev[j] = static_cast<double>(j) * gap_factor * weight(0);
    for (size_t i = 1; i <= m; ++i) {
        size_t lo = i > band ? i - band : 1;
        size_t hi = std::min(n, i + band);
        if (lo > hi)
            return result;
        std::fill(curr.begin(), curr.end(), kWeightInfinity);
        if (lo == 1 && i <= band) {
            curr[0] = prev[0] == kWeightInfinity
                          ? kWeightInfinity
                          : prev[0] + gap_factor * weight(i - 1);
        }
        for (size_t j = lo; j <= hi; ++j) {
            double sub_cost =
                p[i - 1] == t[j - 1] ? 0.0 : weight(i - 1);
            double best = prev[j - 1] + sub_cost;
            // Primer base i-1 bulged out (no template partner).
            best = std::min(best, prev[j] + gap_factor * weight(i - 1));
            // Extra template base under primer position i-1.
            best = std::min(
                best,
                curr[j - 1] + gap_factor * weight(i == 0 ? 0 : i - 1));
            curr[j] = best;
        }
        std::swap(prev, curr);
    }

    size_t lo = m > band ? m - band : 0;
    for (size_t j = lo; j <= n; ++j) {
        if (prev[j] < result.cost) {
            result.cost = prev[j];
            result.template_consumed = j;
        }
    }
    return result;
}

} // namespace dnastore::dna
