/**
 * @file
 * Deterministic English-like text generator.
 *
 * Stand-in for the paper's 150 KB copy of "Alice's Adventures in
 * Wonderland" (Section 6.1). The storage pipeline only cares about
 * the byte size and blocked structure of the input — one 256-byte
 * block per "paragraph" — so a seeded generator that produces
 * realistic paragraph-structured ASCII is an exact substitute and
 * keeps every experiment reproducible.
 */

#ifndef DNASTORE_CORPUS_TEXT_H
#define DNASTORE_CORPUS_TEXT_H

#include <cstdint>
#include <string>
#include <vector>

namespace dnastore::corpus {

/** Generate exactly @p size bytes of paragraph-structured text. */
std::string generateText(size_t size, uint64_t seed);

/** Generate @p size bytes as a byte vector. */
std::vector<uint8_t> generateBytes(size_t size, uint64_t seed);

} // namespace dnastore::corpus

#endif // DNASTORE_CORPUS_TEXT_H
