#include "corpus/text.h"

#include <array>

#include "common/rng.h"

namespace dnastore::corpus {

namespace {

constexpr const char *kWords[] = {
    "alice",   "rabbit",  "down",    "the",      "hole",    "was",
    "beginning", "to",    "get",     "very",     "tired",   "of",
    "sitting", "by",      "her",     "sister",   "on",      "bank",
    "and",     "having",  "nothing", "do",       "once",    "or",
    "twice",   "she",     "had",     "peeped",   "into",    "book",
    "but",     "it",      "no",      "pictures", "in",      "what",
    "is",      "use",     "thought", "without",  "conversations",
    "so",      "considering", "own", "mind",     "as",      "well",
    "could",   "for",     "hot",     "day",      "made",    "feel",
    "sleepy",  "stupid",  "whether", "pleasure", "making",  "daisy",
    "chain",   "would",   "be",      "worth",    "trouble",
};

} // namespace

std::string
generateText(size_t size, uint64_t seed)
{
    Rng rng = Rng::deriveStream(seed, "corpus");
    std::string text;
    text.reserve(size + 16);

    bool sentence_start = true;
    size_t words_in_sentence = 0;
    size_t sentence_target = 5 + rng.nextBelow(8);
    size_t sentences_in_paragraph = 0;
    size_t paragraph_target = 3 + rng.nextBelow(5);

    while (text.size() < size) {
        std::string word = kWords[rng.nextBelow(std::size(kWords))];
        if (sentence_start) {
            word[0] =
                static_cast<char>(word[0] - 'a' + 'A');
            sentence_start = false;
        } else {
            text += ' ';
        }
        text += word;
        if (++words_in_sentence >= sentence_target) {
            words_in_sentence = 0;
            sentence_target = 5 + rng.nextBelow(8);
            sentence_start = true;
            if (++sentences_in_paragraph >= paragraph_target) {
                sentences_in_paragraph = 0;
                paragraph_target = 3 + rng.nextBelow(5);
                text += ".\n\n";
            } else {
                text += ". ";
            }
        }
    }
    text.resize(size);
    return text;
}

std::vector<uint8_t>
generateBytes(size_t size, uint64_t seed)
{
    std::string text = generateText(size, seed);
    return {text.begin(), text.end()};
}

} // namespace dnastore::corpus
