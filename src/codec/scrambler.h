/**
 * @file
 * Seeded data scrambler (randomizer).
 *
 * Unconstrained coding (paper Section 2.1.1) relies on XOR-ing the
 * payload with a pseudo-random keystream so that homopolymers are
 * statistically rare and GC content is balanced on average. The same
 * seed descrambles; the per-partition seed is part of the digital
 * metadata, like the index-tree seed (Section 4.4). Scrambling also
 * improves clustering separation between unrelated payloads [28].
 */

#ifndef DNASTORE_CODEC_SCRAMBLER_H
#define DNASTORE_CODEC_SCRAMBLER_H

#include <cstdint>
#include <vector>

namespace dnastore::codec {

/**
 * XOR keystream scrambler. Stateless between calls: the keystream for
 * a buffer is derived from (seed, stream_id), so any unit can be
 * (de)scrambled independently of the others.
 */
class Scrambler
{
  public:
    explicit Scrambler(uint64_t seed) : seed_(seed) {}

    /**
     * Scramble (or descramble; the operation is an involution) the
     * buffer in place using the keystream for @p stream_id.
     */
    void apply(std::vector<uint8_t> &data, uint64_t stream_id) const;

    /** Functional version of apply(). */
    std::vector<uint8_t> applied(std::vector<uint8_t> data,
                                 uint64_t stream_id) const;

    uint64_t seed() const { return seed_; }

  private:
    uint64_t seed_;
};

} // namespace dnastore::codec

#endif // DNASTORE_CODEC_SCRAMBLER_H
