/**
 * @file
 * Unconstrained 2-bits-per-base payload codec.
 *
 * The paper stores payloads with the maximum-density mapping of two
 * bits per base (Section 2.1.1, "unconstrained coding"), relying on a
 * data scrambler for statistical GC balance and on outer Reed-Solomon
 * codes for error handling. Bytes map big-endian: the two most
 * significant bits of a byte become the first base.
 */

#ifndef DNASTORE_CODEC_BASE_CODEC_H
#define DNASTORE_CODEC_BASE_CODEC_H

#include <cstdint>
#include <vector>

#include "dna/sequence.h"

namespace dnastore::codec {

using Bytes = std::vector<uint8_t>;

/** Encode bytes to bases, 4 bases per byte, MSB-first. */
dna::Sequence bytesToBases(const Bytes &data);

/**
 * Decode bases back to bytes. The sequence length must be a multiple
 * of 4; throws FatalError otherwise.
 */
Bytes basesToBytes(const dna::Sequence &seq);

/** Encode a nibble stream (values 0-15) to bases, 2 bases each. */
dna::Sequence nibblesToBases(const std::vector<uint8_t> &nibbles);

/** Decode bases to nibbles; length must be even. */
std::vector<uint8_t> basesToNibbles(const dna::Sequence &seq);

/** Split bytes into nibbles, high nibble first. */
std::vector<uint8_t> bytesToNibbles(const Bytes &data);

/** Join nibbles (high first) into bytes; count must be even. */
Bytes nibblesToBytes(const std::vector<uint8_t> &nibbles);

} // namespace dnastore::codec

#endif // DNASTORE_CODEC_BASE_CODEC_H
