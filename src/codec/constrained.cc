#include "codec/constrained.h"

#include "common/error.h"

namespace dnastore::codec {

namespace {

/** The three bases different from @p prev, in canonical order. */
inline void
choicesAfter(dna::Base prev, dna::Base out[3])
{
    size_t n = 0;
    for (dna::Base base : dna::kAllBases) {
        if (base != prev)
            out[n++] = base;
    }
}

} // namespace

size_t
RotationCodec::encodedLength(size_t byte_count)
{
    size_t chunks = (byte_count + kChunkBytes - 1) / kChunkBytes;
    return chunks * kChunkTrits;
}

dna::Sequence
RotationCodec::encode(const std::vector<uint8_t> &data)
{
    std::vector<dna::Base> out;
    out.reserve(encodedLength(data.size()));

    // The previous base persists across chunk boundaries so the
    // homopolymer-free property holds end to end.
    dna::Base prev = dna::Base::T;  // anything not emitted yet

    for (size_t offset = 0; offset < data.size();
         offset += kChunkBytes) {
        uint64_t value = 0;
        for (size_t k = 0; k < kChunkBytes; ++k) {
            uint64_t byte =
                offset + k < data.size() ? data[offset + k] : 0;
            value |= byte << (8 * k);
        }
        // 21 trits, least significant first.
        for (size_t trit_idx = 0; trit_idx < kChunkTrits; ++trit_idx) {
            uint64_t trit = value % 3;
            value /= 3;
            dna::Base choices[3];
            choicesAfter(prev, choices);
            dna::Base base = choices[trit];
            out.push_back(base);
            prev = base;
        }
    }
    return dna::Sequence(out);
}

std::vector<uint8_t>
RotationCodec::decode(const dna::Sequence &seq, size_t byte_count)
{
    fatalIf(seq.size() != encodedLength(byte_count),
            "RotationCodec::decode: expected ",
            encodedLength(byte_count), " bases, got ", seq.size());

    std::vector<uint8_t> data;
    data.reserve(byte_count);
    dna::Base prev = dna::Base::T;
    size_t pos = 0;
    while (data.size() < byte_count) {
        uint64_t value = 0;
        uint64_t scale = 1;
        for (size_t trit_idx = 0; trit_idx < kChunkTrits; ++trit_idx) {
            dna::Base base = seq.baseAt(pos++);
            fatalIf(base == prev,
                    "homopolymer in rotation-coded sequence");
            dna::Base choices[3];
            choicesAfter(prev, choices);
            uint64_t trit = 0;
            for (uint64_t c = 0; c < 3; ++c) {
                if (choices[c] == base)
                    trit = c;
            }
            value += trit * scale;
            scale *= 3;
            prev = base;
        }
        for (size_t k = 0; k < kChunkBytes && data.size() < byte_count;
             ++k) {
            data.push_back(static_cast<uint8_t>(value >> (8 * k)));
        }
    }
    return data;
}

} // namespace dnastore::codec
