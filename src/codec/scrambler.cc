#include "codec/scrambler.h"

#include "common/rng.h"

namespace dnastore::codec {

void
Scrambler::apply(std::vector<uint8_t> &data, uint64_t stream_id) const
{
    Rng rng(Rng::deriveSeed(seed_, stream_id));
    size_t i = 0;
    while (i < data.size()) {
        uint64_t word = rng.next();
        for (size_t k = 0; k < 8 && i < data.size(); ++k, ++i) {
            data[i] ^= static_cast<uint8_t>(word >> (8 * k));
        }
    }
}

std::vector<uint8_t>
Scrambler::applied(std::vector<uint8_t> data, uint64_t stream_id) const
{
    apply(data, stream_id);
    return data;
}

} // namespace dnastore::codec
