#include "codec/base4.h"

#include "common/error.h"

namespace dnastore::codec {

Digits
toBase4(uint64_t value, size_t length)
{
    Digits digits(length, 0);
    for (size_t i = 0; i < length; ++i) {
        digits[length - 1 - i] = static_cast<uint8_t>(value & 0x3);
        value >>= 2;
    }
    fatalIf(value != 0, "toBase4: value does not fit in ", length,
            " digits");
    return digits;
}

uint64_t
fromBase4(const Digits &digits)
{
    uint64_t value = 0;
    for (uint8_t digit : digits) {
        panicIf(digit > 3, "fromBase4: digit out of range");
        value = (value << 2) | digit;
    }
    return value;
}

size_t
digitsFor(uint64_t count)
{
    if (count <= 1)
        return 0;
    size_t digits = 0;
    uint64_t capacity = 1;
    while (capacity < count) {
        capacity <<= 2;
        ++digits;
    }
    return digits;
}

} // namespace dnastore::codec
