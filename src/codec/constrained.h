/**
 * @file
 * Constrained "rotation" codec (paper Section 2.1.1).
 *
 * Early DNA-storage systems used constrained coding to forbid
 * homopolymer runs outright: at every position the previous base is
 * excluded, leaving 3 choices, i.e. log2(3) ~ 1.585 bits per base.
 * The paper instead uses unconstrained 2-bit coding plus a scrambler
 * and outer ECC, citing the higher density. This codec implements
 * the classic rotation scheme so the trade-off can be measured: the
 * payload is re-expressed in base 3 (big-integer conversion in
 * fixed-size chunks), and each trit selects one of the three bases
 * different from its predecessor.
 */

#ifndef DNASTORE_CODEC_CONSTRAINED_H
#define DNASTORE_CODEC_CONSTRAINED_H

#include <cstdint>
#include <vector>

#include "dna/sequence.h"

namespace dnastore::codec {

/**
 * Rotation codec: homopolymer-free ternary coding.
 */
class RotationCodec
{
  public:
    /** Bases produced for @p byte_count payload bytes. */
    static size_t encodedLength(size_t byte_count);

    /** Information density of the scheme in bits per base. */
    static double bitsPerBase() { return 1.5849625007211562; }

    /**
     * Encode bytes into a homopolymer-free sequence. The encoding
     * processes the payload in independent 4-byte chunks (21 trits
     * each), so decode does not require big-integer arithmetic.
     */
    static dna::Sequence encode(const std::vector<uint8_t> &data);

    /** Decode; the byte count must be supplied (chunk padding). */
    static std::vector<uint8_t> decode(const dna::Sequence &seq,
                                       size_t byte_count);

  private:
    static constexpr size_t kChunkBytes = 4;
    static constexpr size_t kChunkTrits = 21;  // 3^21 > 2^32
};

} // namespace dnastore::codec

#endif // DNASTORE_CODEC_CONSTRAINED_H
