/**
 * @file
 * Base-4 digit representation of logical block addresses.
 *
 * The internal address space of a partition is a base-4 number space
 * (paper Section 3.1): an index of length L enumerates 4^L leaves.
 * These helpers convert between integer block ids and fixed-length
 * digit vectors (most significant digit first), which are then fed to
 * the index tree for the logical->physical mapping.
 */

#ifndef DNASTORE_CODEC_BASE4_H
#define DNASTORE_CODEC_BASE4_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore::codec {

/** Digits 0..3, most significant first. */
using Digits = std::vector<uint8_t>;

/** Convert @p value to exactly @p length base-4 digits (MSD first).
 *  Throws FatalError if the value does not fit. */
Digits toBase4(uint64_t value, size_t length);

/** Convert base-4 digits (MSD first) back to an integer. */
uint64_t fromBase4(const Digits &digits);

/** Number of base-4 digits needed to represent values < @p count. */
size_t digitsFor(uint64_t count);

} // namespace dnastore::codec

#endif // DNASTORE_CODEC_BASE4_H
