#include "codec/base_codec.h"

#include "common/error.h"

namespace dnastore::codec {

dna::Sequence
bytesToBases(const Bytes &data)
{
    std::vector<dna::Base> bases;
    bases.reserve(data.size() * 4);
    for (uint8_t byte : data) {
        for (int shift = 6; shift >= 0; shift -= 2)
            bases.push_back(static_cast<dna::Base>((byte >> shift) & 0x3));
    }
    return dna::Sequence(bases);
}

Bytes
basesToBytes(const dna::Sequence &seq)
{
    fatalIf(seq.size() % 4 != 0,
            "basesToBytes: length ", seq.size(), " not a multiple of 4");
    Bytes data;
    data.reserve(seq.size() / 4);
    for (size_t i = 0; i < seq.size(); i += 4) {
        uint8_t byte = 0;
        for (size_t k = 0; k < 4; ++k) {
            byte = static_cast<uint8_t>(
                (byte << 2) | static_cast<uint8_t>(seq.baseAt(i + k)));
        }
        data.push_back(byte);
    }
    return data;
}

dna::Sequence
nibblesToBases(const std::vector<uint8_t> &nibbles)
{
    std::vector<dna::Base> bases;
    bases.reserve(nibbles.size() * 2);
    for (uint8_t nibble : nibbles) {
        panicIf(nibble > 0xf, "nibble value out of range");
        bases.push_back(static_cast<dna::Base>((nibble >> 2) & 0x3));
        bases.push_back(static_cast<dna::Base>(nibble & 0x3));
    }
    return dna::Sequence(bases);
}

std::vector<uint8_t>
basesToNibbles(const dna::Sequence &seq)
{
    fatalIf(seq.size() % 2 != 0,
            "basesToNibbles: length ", seq.size(), " not even");
    std::vector<uint8_t> nibbles;
    nibbles.reserve(seq.size() / 2);
    for (size_t i = 0; i < seq.size(); i += 2) {
        nibbles.push_back(static_cast<uint8_t>(
            (static_cast<uint8_t>(seq.baseAt(i)) << 2) |
            static_cast<uint8_t>(seq.baseAt(i + 1))));
    }
    return nibbles;
}

std::vector<uint8_t>
bytesToNibbles(const Bytes &data)
{
    std::vector<uint8_t> nibbles;
    nibbles.reserve(data.size() * 2);
    for (uint8_t byte : data) {
        nibbles.push_back(byte >> 4);
        nibbles.push_back(byte & 0xf);
    }
    return nibbles;
}

Bytes
nibblesToBytes(const std::vector<uint8_t> &nibbles)
{
    fatalIf(nibbles.size() % 2 != 0,
            "nibblesToBytes: count ", nibbles.size(), " not even");
    Bytes data;
    data.reserve(nibbles.size() / 2);
    for (size_t i = 0; i < nibbles.size(); i += 2) {
        data.push_back(static_cast<uint8_t>((nibbles[i] << 4) |
                                            (nibbles[i + 1] & 0xf)));
    }
    return data;
}

} // namespace dnastore::codec
