/**
 * @file
 * Tests for primer-library generation (the Section 1 counting
 * methodology).
 */

#include <gtest/gtest.h>

#include "dna/analysis.h"
#include "dna/distance.h"
#include "primer/library.h"

namespace dnastore::primer {
namespace {

TEST(LibraryTest, GeneratedPrimersSatisfyConstraints)
{
    Constraints constraints;
    LibraryGenerator generator(20, constraints, 42);
    LibraryResult result = generator.generate(20000);
    ASSERT_GT(result.primers.size(), 10u);
    for (const dna::Sequence &primer : result.primers) {
        EXPECT_EQ(primer.size(), 20u);
        double gc = dna::gcContent(primer);
        EXPECT_GE(gc, constraints.gc_min);
        EXPECT_LE(gc, constraints.gc_max);
        EXPECT_LE(dna::maxHomopolymerRun(primer),
                  constraints.max_homopolymer);
    }
}

TEST(LibraryTest, PairwiseDistanceHolds)
{
    Constraints constraints;
    constraints.min_pairwise_hamming = 8;
    LibraryGenerator generator(20, constraints, 7);
    LibraryResult result = generator.generate(5000);
    for (size_t i = 0; i < result.primers.size(); ++i) {
        for (size_t j = i + 1; j < result.primers.size(); ++j) {
            EXPECT_GE(dna::hammingDistance(result.primers[i],
                                           result.primers[j]),
                      8u);
        }
    }
}

TEST(LibraryTest, Deterministic)
{
    Constraints constraints;
    LibraryGenerator a(20, constraints, 99);
    LibraryGenerator b(20, constraints, 99);
    EXPECT_EQ(a.generate(2000).primers, b.generate(2000).primers);
}

TEST(LibraryTest, MaxAcceptedStopsEarly)
{
    Constraints constraints;
    LibraryGenerator generator(20, constraints, 5);
    LibraryResult result = generator.generate(100000, 10);
    EXPECT_EQ(result.primers.size(), 10u);
    EXPECT_LT(result.candidates_tried, 100000u);
}

TEST(LibraryTest, AccountingAddsUp)
{
    Constraints constraints;
    LibraryGenerator generator(20, constraints, 11);
    LibraryResult result = generator.generate(3000);
    EXPECT_EQ(result.candidates_tried,
              result.primers.size() + result.rejected_composition +
                  result.rejected_distance);
}

TEST(LibraryTest, StricterDistanceYieldsFewerPrimers)
{
    // The core scaling problem from Section 1: raising the distance
    // threshold shrinks the usable primer library.
    Constraints loose;
    loose.min_pairwise_hamming = 6;
    Constraints strict = loose;
    strict.min_pairwise_hamming = 10;
    LibraryResult a =
        LibraryGenerator(20, loose, 3).generate(30000);
    LibraryResult b =
        LibraryGenerator(20, strict, 3).generate(30000);
    EXPECT_GT(a.primers.size(), b.primers.size());
}

} // namespace
} // namespace dnastore::primer
