/**
 * @file
 * Tests for the sequencing model (sampling + IDS noise).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "dna/distance.h"
#include "sim/sequencer.h"

namespace dnastore::sim {
namespace {

Pool
twoSpeciesPool(double mass_a, double mass_b)
{
    Pool pool;
    SpeciesInfo a, b;
    a.block = 0;
    b.block = 1;
    pool.add(dna::Sequence(std::string(60, 'A') + std::string(60, 'C')),
             a, mass_a);
    pool.add(dna::Sequence(std::string(60, 'G') + std::string(60, 'T')),
             b, mass_b);
    return pool;
}

TEST(SequencerTest, SamplingFollowsMass)
{
    Pool pool = twoSpeciesPool(90.0, 10.0);
    SequencerParams params;
    params.sub_rate = 0.0;
    params.ins_rate = 0.0;
    params.del_rate = 0.0;
    std::vector<Read> reads = sequencePool(pool, 10000, params);
    size_t first = 0;
    for (const Read &read : reads)
        first += read.species_index == 0 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(first) / 10000.0, 0.9, 0.02);
}

TEST(SequencerTest, NoiselessReadsAreExact)
{
    Pool pool = twoSpeciesPool(1.0, 1.0);
    SequencerParams params;
    params.sub_rate = 0.0;
    params.ins_rate = 0.0;
    params.del_rate = 0.0;
    for (const Read &read : sequencePool(pool, 100, params)) {
        EXPECT_EQ(read.seq,
                  pool.species()[read.species_index].seq);
    }
}

TEST(SequencerTest, NoiseRatesRealized)
{
    Pool pool = twoSpeciesPool(1.0, 1.0);
    SequencerParams params;
    params.sub_rate = 0.05;
    params.ins_rate = 0.0;
    params.del_rate = 0.0;
    size_t total_dist = 0;
    size_t total_bases = 0;
    std::vector<Read> reads = sequencePool(pool, 2000, params);
    for (const Read &read : reads) {
        total_dist += dna::levenshteinDistance(
            read.seq, pool.species()[read.species_index].seq);
        total_bases += 120;
    }
    double rate =
        static_cast<double>(total_dist) / static_cast<double>(total_bases);
    EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST(SequencerTest, IndelsChangeLength)
{
    Pool pool = twoSpeciesPool(1.0, 1.0);
    SequencerParams params;
    params.sub_rate = 0.0;
    params.ins_rate = 0.05;
    params.del_rate = 0.05;
    bool longer = false, shorter = false;
    for (const Read &read : sequencePool(pool, 500, params)) {
        longer |= read.seq.size() > 120;
        shorter |= read.seq.size() < 120;
    }
    EXPECT_TRUE(longer);
    EXPECT_TRUE(shorter);
}

TEST(SequencerTest, Deterministic)
{
    Pool pool = twoSpeciesPool(3.0, 7.0);
    SequencerParams params;
    auto a = sequencePool(pool, 50, params);
    auto b = sequencePool(pool, 50, params);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seq, b[i].seq);
        EXPECT_EQ(a[i].species_index, b[i].species_index);
    }
}

TEST(SequencerTest, EmptyPoolThrows)
{
    Pool pool;
    SequencerParams params;
    EXPECT_THROW(sequencePool(pool, 10, params), dnastore::FatalError);
}

} // namespace
} // namespace dnastore::sim
