/**
 * @file
 * Unit and property tests for the 2-bit payload codec.
 */

#include <gtest/gtest.h>

#include "codec/base_codec.h"
#include "common/error.h"
#include "common/rng.h"

namespace dnastore::codec {
namespace {

TEST(BaseCodecTest, KnownEncoding)
{
    // 0x1B = 00 01 10 11 -> A C G T.
    EXPECT_EQ(bytesToBases({0x1b}).str(), "ACGT");
    EXPECT_EQ(bytesToBases({0x00}).str(), "AAAA");
    EXPECT_EQ(bytesToBases({0xff}).str(), "TTTT");
}

TEST(BaseCodecTest, RoundTrip)
{
    Rng rng(1);
    for (int trial = 0; trial < 100; ++trial) {
        Bytes data(1 + rng.nextBelow(64));
        for (uint8_t &byte : data)
            byte = static_cast<uint8_t>(rng.nextBelow(256));
        EXPECT_EQ(basesToBytes(bytesToBases(data)), data);
    }
}

TEST(BaseCodecTest, FourBasesPerByte)
{
    Bytes data(24);
    EXPECT_EQ(bytesToBases(data).size(), 96u);
}

TEST(BaseCodecTest, DecodeRejectsBadLength)
{
    EXPECT_THROW(basesToBytes(dna::Sequence("ACG")),
                 dnastore::FatalError);
}

TEST(NibbleCodecTest, RoundTrip)
{
    std::vector<uint8_t> nibbles = {0, 1, 5, 15, 8, 3};
    EXPECT_EQ(basesToNibbles(nibblesToBases(nibbles)), nibbles);
}

TEST(NibbleCodecTest, BytesToNibblesHighFirst)
{
    std::vector<uint8_t> nibbles = bytesToNibbles({0xab, 0x4f});
    ASSERT_EQ(nibbles.size(), 4u);
    EXPECT_EQ(nibbles[0], 0xau);
    EXPECT_EQ(nibbles[1], 0xbu);
    EXPECT_EQ(nibbles[2], 0x4u);
    EXPECT_EQ(nibbles[3], 0xfu);
}

TEST(NibbleCodecTest, NibbleByteRoundTrip)
{
    Rng rng(2);
    for (int trial = 0; trial < 50; ++trial) {
        Bytes data(2 + rng.nextBelow(32));
        for (uint8_t &byte : data)
            byte = static_cast<uint8_t>(rng.nextBelow(256));
        EXPECT_EQ(nibblesToBytes(bytesToNibbles(data)), data);
    }
}

TEST(NibbleCodecTest, OddNibbleCountRejected)
{
    EXPECT_THROW(nibblesToBytes({1, 2, 3}), dnastore::FatalError);
}

} // namespace
} // namespace dnastore::codec
