/**
 * @file
 * Unit and property tests for distance metrics and primer-prefix
 * alignment.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dna/distance.h"

namespace dnastore::dna {
namespace {

Sequence
randomSeq(Rng &rng, size_t len)
{
    std::vector<Base> bases(len);
    for (Base &base : bases)
        base = static_cast<Base>(rng.nextBelow(4));
    return Sequence(bases);
}

TEST(HammingTest, EqualLength)
{
    EXPECT_EQ(hammingDistance(Sequence("ACGT"), Sequence("ACGT")), 0u);
    EXPECT_EQ(hammingDistance(Sequence("ACGT"), Sequence("ACGA")), 1u);
    EXPECT_EQ(hammingDistance(Sequence("AAAA"), Sequence("TTTT")), 4u);
}

TEST(HammingTest, LengthDifferenceCounts)
{
    EXPECT_EQ(hammingDistance(Sequence("ACGT"), Sequence("AC")), 2u);
    EXPECT_EQ(hammingDistance(Sequence("AC"), Sequence("ACGT")), 2u);
}

TEST(LevenshteinTest, KnownValues)
{
    EXPECT_EQ(levenshteinDistance(Sequence("ACGT"), Sequence("ACGT")),
              0u);
    EXPECT_EQ(levenshteinDistance(Sequence("ACGT"), Sequence("AGT")),
              1u);
    EXPECT_EQ(levenshteinDistance(Sequence("ACGT"), Sequence("TGCA")),
              4u);
    EXPECT_EQ(levenshteinDistance(Sequence("GATTACA"),
                                  Sequence("GCATGCA")),
              3u);
    EXPECT_EQ(levenshteinDistance(Sequence(), Sequence("ACG")), 3u);
}

TEST(BandedLevenshteinTest, MatchesFullWithinBand)
{
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        Sequence a = randomSeq(rng, 20 + rng.nextBelow(20));
        Sequence b = randomSeq(rng, 20 + rng.nextBelow(20));
        size_t full = levenshteinDistance(a, b);
        size_t banded = bandedLevenshtein(a, b, 40);
        EXPECT_EQ(banded, full);
    }
}

TEST(BandedLevenshteinTest, ReportsInfinityBeyondBound)
{
    Sequence a("AAAAAAAAAA");
    Sequence b("TTTTTTTTTT");
    EXPECT_EQ(bandedLevenshtein(a, b, 3), kDistanceInfinity);
}

TEST(BandedLevenshteinTest, BoundaryExact)
{
    Sequence a("ACGTACGT");
    Sequence b("ACGAACGA");  // distance 2
    EXPECT_EQ(bandedLevenshtein(a, b, 2), 2u);
    EXPECT_EQ(bandedLevenshtein(a, b, 1), kDistanceInfinity);
}

TEST(BandedLevenshteinTest, LengthGapShortCircuit)
{
    Sequence a("ACGT");
    Sequence b("ACGTACGTACGT");
    EXPECT_EQ(bandedLevenshtein(a, b, 3), kDistanceInfinity);
}

TEST(LcpTest, Basics)
{
    EXPECT_EQ(longestCommonPrefix(Sequence("ACGT"), Sequence("ACGA")),
              3u);
    EXPECT_EQ(longestCommonPrefix(Sequence("ACGT"), Sequence("ACGT")),
              4u);
    EXPECT_EQ(longestCommonPrefix(Sequence("T"), Sequence("A")), 0u);
}

TEST(PrefixAlignTest, ExactPrefix)
{
    Sequence primer("ACGTACGT");
    Sequence templ("ACGTACGTTTTTGGGGCCCC");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 0u);
    EXPECT_EQ(align.template_consumed, 8u);
    EXPECT_EQ(align.three_prime_mismatches, 0u);
}

TEST(PrefixAlignTest, SingleSubstitution)
{
    Sequence primer("ACGTACGT");
    Sequence templ("ACCTACGTTTTTGGGG");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 1u);
    EXPECT_EQ(align.three_prime_mismatches, 0u);
}

TEST(PrefixAlignTest, ThreePrimeMismatchFlagged)
{
    Sequence primer("ACGTACGA");
    Sequence templ("ACGTACGTTTTTGGGG");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 1u);
    EXPECT_GE(align.three_prime_mismatches, 1u);
}

TEST(PrefixAlignTest, BeyondBandIsInfinity)
{
    Sequence primer("AAAAAAAA");
    Sequence templ("TTTTTTTTTTTTTTTT");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 3);
    EXPECT_EQ(align.distance, kDistanceInfinity);
}

TEST(PrefixAlignTest, InsertionInTemplate)
{
    // Template has one extra base inside the primer region.
    Sequence primer("ACGTACGT");
    Sequence templ("ACGGTACGTTTTT");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 1u);
    EXPECT_EQ(align.template_consumed, 9u);
}

TEST(PrefixAlignTest, TemplateShorterThanPrimer)
{
    Sequence primer("ACGTACGT");
    Sequence templ("ACGTA");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 3u);  // three primer bases unmatched
}

} // namespace
} // namespace dnastore::dna
