/**
 * @file
 * Unit and property tests for distance metrics and primer-prefix
 * alignment.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dna/distance.h"

namespace dnastore::dna {
namespace {

Sequence
randomSeq(Rng &rng, size_t len)
{
    std::vector<Base> bases(len);
    for (Base &base : bases)
        base = static_cast<Base>(rng.nextBelow(4));
    return Sequence(bases);
}

TEST(HammingTest, EqualLength)
{
    EXPECT_EQ(hammingDistance(Sequence("ACGT"), Sequence("ACGT")), 0u);
    EXPECT_EQ(hammingDistance(Sequence("ACGT"), Sequence("ACGA")), 1u);
    EXPECT_EQ(hammingDistance(Sequence("AAAA"), Sequence("TTTT")), 4u);
}

TEST(HammingTest, LengthDifferenceCounts)
{
    EXPECT_EQ(hammingDistance(Sequence("ACGT"), Sequence("AC")), 2u);
    EXPECT_EQ(hammingDistance(Sequence("AC"), Sequence("ACGT")), 2u);
}

TEST(LevenshteinTest, KnownValues)
{
    EXPECT_EQ(levenshteinDistance(Sequence("ACGT"), Sequence("ACGT")),
              0u);
    EXPECT_EQ(levenshteinDistance(Sequence("ACGT"), Sequence("AGT")),
              1u);
    EXPECT_EQ(levenshteinDistance(Sequence("ACGT"), Sequence("TGCA")),
              4u);
    EXPECT_EQ(levenshteinDistance(Sequence("GATTACA"),
                                  Sequence("GCATGCA")),
              3u);
    EXPECT_EQ(levenshteinDistance(Sequence(), Sequence("ACG")), 3u);
}

TEST(BandedLevenshteinTest, MatchesFullWithinBand)
{
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        Sequence a = randomSeq(rng, 20 + rng.nextBelow(20));
        Sequence b = randomSeq(rng, 20 + rng.nextBelow(20));
        size_t full = levenshteinDistance(a, b);
        size_t banded = bandedLevenshtein(a, b, 40);
        EXPECT_EQ(banded, full);
    }
}

TEST(BandedLevenshteinTest, ReportsInfinityBeyondBound)
{
    Sequence a("AAAAAAAAAA");
    Sequence b("TTTTTTTTTT");
    EXPECT_EQ(bandedLevenshtein(a, b, 3), kDistanceInfinity);
}

TEST(BandedLevenshteinTest, BoundaryExact)
{
    Sequence a("ACGTACGT");
    Sequence b("ACGAACGA");  // distance 2
    EXPECT_EQ(bandedLevenshtein(a, b, 2), 2u);
    EXPECT_EQ(bandedLevenshtein(a, b, 1), kDistanceInfinity);
}

TEST(BandedLevenshteinTest, LengthGapShortCircuit)
{
    Sequence a("ACGT");
    Sequence b("ACGTACGTACGT");
    EXPECT_EQ(bandedLevenshtein(a, b, 3), kDistanceInfinity);
}

/** All ACGT strings of length 0..max_len, by enumeration. */
std::vector<Sequence>
allSeqsUpTo(size_t max_len)
{
    const char kBases[] = "ACGT";
    std::vector<Sequence> all;
    for (size_t len = 0; len <= max_len; ++len) {
        size_t count = 1;
        for (size_t i = 0; i < len; ++i)
            count *= 4;
        for (size_t code = 0; code < count; ++code) {
            std::string s(len, 'A');
            size_t v = code;
            for (size_t i = 0; i < len; ++i) {
                s[i] = kBases[v & 3];
                v >>= 2;
            }
            all.emplace_back(s);
        }
    }
    return all;
}

// Differential audit of the banded DP's row seeding and early exit:
// tiny strings maximize the weight of the boundary cells (row 0, the
// curr[lo-1] edge, bands clipped to a single cell), which is exactly
// where a seeding bug would hide. Exhaustive over every pair of
// ACGT strings up to length 5 and every max_dist 0..4.
TEST(BandedLevenshteinTest, ExhaustiveSmallStringsMatchFull)
{
    const std::vector<Sequence> seqs = allSeqsUpTo(5);
    for (const Sequence &a : seqs) {
        for (const Sequence &b : seqs) {
            const size_t full = levenshteinDistance(a, b);
            for (size_t max_dist = 0; max_dist <= 4; ++max_dist) {
                const size_t want =
                    full <= max_dist ? full : kDistanceInfinity;
                ASSERT_EQ(bandedLevenshtein(a, b, max_dist), want)
                    << "a=" << a.str() << " b=" << b.str()
                    << " max_dist=" << max_dist;
            }
        }
    }
}

TEST(BandedLevenshteinTest, RandomizedDifferentialLongerStrings)
{
    Rng rng(97);
    for (int trial = 0; trial < 20000; ++trial) {
        Sequence a = randomSeq(rng, rng.nextBelow(13));
        Sequence b = randomSeq(rng, rng.nextBelow(13));
        const size_t max_dist = rng.nextBelow(7);
        const size_t full = levenshteinDistance(a, b);
        const size_t want =
            full <= max_dist ? full : kDistanceInfinity;
        ASSERT_EQ(bandedLevenshtein(a, b, max_dist), want)
            << "a=" << a.str() << " b=" << b.str()
            << " max_dist=" << max_dist;
    }
}

TEST(LcpTest, Basics)
{
    EXPECT_EQ(longestCommonPrefix(Sequence("ACGT"), Sequence("ACGA")),
              3u);
    EXPECT_EQ(longestCommonPrefix(Sequence("ACGT"), Sequence("ACGT")),
              4u);
    EXPECT_EQ(longestCommonPrefix(Sequence("T"), Sequence("A")), 0u);
}

TEST(PrefixAlignTest, ExactPrefix)
{
    Sequence primer("ACGTACGT");
    Sequence templ("ACGTACGTTTTTGGGGCCCC");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 0u);
    EXPECT_EQ(align.template_consumed, 8u);
    EXPECT_EQ(align.three_prime_mismatches, 0u);
}

TEST(PrefixAlignTest, SingleSubstitution)
{
    Sequence primer("ACGTACGT");
    Sequence templ("ACCTACGTTTTTGGGG");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 1u);
    EXPECT_EQ(align.three_prime_mismatches, 0u);
}

TEST(PrefixAlignTest, ThreePrimeMismatchFlagged)
{
    Sequence primer("ACGTACGA");
    Sequence templ("ACGTACGTTTTTGGGG");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 1u);
    EXPECT_GE(align.three_prime_mismatches, 1u);
}

TEST(PrefixAlignTest, BeyondBandIsInfinity)
{
    Sequence primer("AAAAAAAA");
    Sequence templ("TTTTTTTTTTTTTTTT");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 3);
    EXPECT_EQ(align.distance, kDistanceInfinity);
}

TEST(PrefixAlignTest, InsertionInTemplate)
{
    // Template has one extra base inside the primer region.
    Sequence primer("ACGTACGT");
    Sequence templ("ACGGTACGTTTTT");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 1u);
    EXPECT_EQ(align.template_consumed, 9u);
}

TEST(PrefixAlignTest, TemplateShorterThanPrimer)
{
    Sequence primer("ACGTACGT");
    Sequence templ("ACGTA");
    PrefixAlignment align = alignPrimerToPrefix(primer, templ, 4);
    EXPECT_EQ(align.distance, 3u);  // three primer bases unmatched
}

// Literal-value pins of the weighted alignment's cost convention
// with the default knobs (three_prime_window=3, three_prime_factor=3,
// gap_factor=2.5). Primer "ACGTAC" has weight 1.0 at positions 0-2
// and 3.0 at positions 3-5 (the 3' window). Every expected cost below
// is a short sum of exactly-representable doubles, so the
// comparisons are exact.
TEST(WeightedAlignTest, ExactMatchIsFree)
{
    WeightedAlignment align = alignPrimerWeighted(
        Sequence("ACGTAC"), Sequence("ACGTAC"), 3);
    EXPECT_DOUBLE_EQ(align.cost, 0.0);
    EXPECT_EQ(align.template_consumed, 6u);
}

TEST(WeightedAlignTest, LeadingTemplateGapsChargeFivePrimeWeight)
{
    // Row 0 skips leading template bases at gap_factor * weight(0):
    // two skipped bases cost 2 * 2.5 * 1.0 = 5.0.
    WeightedAlignment align = alignPrimerWeighted(
        Sequence("ACGTAC"), Sequence("GGACGTAC"), 3);
    EXPECT_DOUBLE_EQ(align.cost, 5.0);
    EXPECT_EQ(align.template_consumed, 8u);
}

TEST(WeightedAlignTest, BandLimitsLeadingSkew)
{
    // Four leading template bases must be skipped to align cleanly:
    // 4 * 2.5 * weight(0) = 10.0, ending at skew 4.
    Sequence primer("AAATTT");
    Sequence templ("GGGGAAATTT");
    WeightedAlignment wide = alignPrimerWeighted(primer, templ, 4);
    EXPECT_DOUBLE_EQ(wide.cost, 10.0);
    EXPECT_EQ(wide.template_consumed, 10u);
    // A narrower band cannot reach that skew, so the best alignment
    // it can offer is strictly worse.
    WeightedAlignment narrow = alignPrimerWeighted(primer, templ, 3);
    EXPECT_GT(narrow.cost, wide.cost);
}

TEST(WeightedAlignTest, PrimerBulgeChargesPositionWeight)
{
    // Primer G at position 2 (weight 1.0) has no template partner:
    // gap_factor * 1.0 = 2.5.
    WeightedAlignment outside = alignPrimerWeighted(
        Sequence("ACGTAC"), Sequence("ACTAC"), 3);
    EXPECT_DOUBLE_EQ(outside.cost, 2.5);
    EXPECT_EQ(outside.template_consumed, 5u);

    // Primer A at position 4 sits in the 3' window (weight 3.0):
    // gap_factor * 3.0 = 7.5.
    WeightedAlignment inside = alignPrimerWeighted(
        Sequence("ACGTAC"), Sequence("ACGTC"), 3);
    EXPECT_DOUBLE_EQ(inside.cost, 7.5);
    EXPECT_EQ(inside.template_consumed, 5u);
}

TEST(WeightedAlignTest, SubstitutionWeightDependsOnPosition)
{
    WeightedAlignment five_prime = alignPrimerWeighted(
        Sequence("ACGTAC"), Sequence("TCGTAC"), 3);
    EXPECT_DOUBLE_EQ(five_prime.cost, 1.0);

    WeightedAlignment three_prime = alignPrimerWeighted(
        Sequence("ACGTAC"), Sequence("ACGTAT"), 3);
    EXPECT_DOUBLE_EQ(three_prime.cost, 3.0);
}

TEST(WeightedAlignTest, ExtraTemplateBaseChargesTouchedPosition)
{
    // Extra template G between primer positions 2 and 3 is charged
    // the weight of the position it touches: 2.5 * weight(2) = 2.5.
    WeightedAlignment align = alignPrimerWeighted(
        Sequence("ACGTAC"), Sequence("ACGGTAC"), 3);
    EXPECT_DOUBLE_EQ(align.cost, 2.5);
    EXPECT_EQ(align.template_consumed, 7u);
}

TEST(WeightedAlignTest, PrimerFarLongerThanTemplateIsInfinite)
{
    WeightedAlignment align = alignPrimerWeighted(
        Sequence("ACGTACGT"), Sequence("AC"), 3);
    EXPECT_DOUBLE_EQ(align.cost, kWeightInfinity);
    EXPECT_EQ(align.template_consumed, 0u);
}

} // namespace
} // namespace dnastore::dna
