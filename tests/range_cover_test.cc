/**
 * @file
 * Tests for physical range covers (sequential access primers).
 */

#include <gtest/gtest.h>

#include "index/range_cover.h"

namespace dnastore::index {
namespace {

TEST(RangeCoverTest, CoverMapsToPhysicalPrefixes)
{
    SparseIndexTree tree(42, 5);
    std::vector<PhysicalPrefix> cover = physicalCover(tree, 0, 11);
    ASSERT_FALSE(cover.empty());
    uint64_t total = 0;
    for (const PhysicalPrefix &entry : cover) {
        EXPECT_EQ(entry.physical.size(), 2 * entry.logical.size());
        EXPECT_EQ(entry.physical,
                  tree.physicalPrefix(entry.logical));
        total += entry.blocks_covered;
    }
    EXPECT_EQ(total, 12u);
}

TEST(RangeCoverTest, EveryBlockInRangeMatchesSomePrefix)
{
    SparseIndexTree tree(7, 5);
    uint64_t lo = 100, hi = 235;
    std::vector<PhysicalPrefix> cover = physicalCover(tree, lo, hi);
    for (uint64_t block = lo; block <= hi; ++block) {
        dna::Sequence leaf = tree.leafIndex(block);
        bool matched = false;
        for (const PhysicalPrefix &entry : cover)
            matched |= leaf.startsWith(entry.physical);
        EXPECT_TRUE(matched) << "block " << block;
    }
}

TEST(RangeCoverTest, BlocksOutsideRangeMatchNoPrefix)
{
    SparseIndexTree tree(7, 5);
    uint64_t lo = 100, hi = 235;
    std::vector<PhysicalPrefix> cover = physicalCover(tree, lo, hi);
    for (uint64_t block : {0u, 99u, 236u, 531u, 1023u}) {
        dna::Sequence leaf = tree.leafIndex(block);
        for (const PhysicalPrefix &entry : cover) {
            EXPECT_FALSE(leaf.startsWith(entry.physical))
                << "block " << block;
        }
    }
}

TEST(RangeCoverTest, CommonPrefixOverRetrieves)
{
    SparseIndexTree tree(3, 3);
    // Range 0..11 at depth 3: common prefix is the first digit,
    // covering 16 leaves (over-retrieval of 4, Section 3.1 example).
    PhysicalPrefix common = physicalCommonPrefix(tree, 0, 11);
    EXPECT_EQ(common.logical.size(), 1u);
    EXPECT_EQ(common.blocks_covered, 16u);
    EXPECT_EQ(common.physical.size(), 2u);
}

TEST(RangeCoverTest, SingleBlockCoverIsFullDepth)
{
    SparseIndexTree tree(9, 5);
    std::vector<PhysicalPrefix> cover = physicalCover(tree, 531, 531);
    ASSERT_EQ(cover.size(), 1u);
    EXPECT_EQ(cover[0].blocks_covered, 1u);
    EXPECT_EQ(cover[0].physical, tree.leafIndex(531));
}

} // namespace
} // namespace dnastore::index
