/**
 * @file
 * Workload generator + simulator contract tests.
 *
 * Two kinds of assertion:
 *  - generator statistics (zipfian skew, Poisson/on-off arrival
 *    rates, op-mix fractions) hold within tolerance — these guard
 *    the model, not the bits;
 *  - replay determinism is pinned EXACTLY: same seed ⇒ identical
 *    trace, identical dispatch order, identical per-tenant SLO
 *    report (fingerprint equality of two in-process runs — never
 *    literal pins, which would couple the suite to libm), identical
 *    across service thread counts, and exact WDRR goodput ratios and
 *    latency quantiles for scripted saturation (no RNG, no FP).
 */

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "support/fixtures.h"
#include "support/scheduler_harness.h"
#include "workload/generator.h"
#include "workload/simulator.h"
#include "workload/slo_report.h"
#include "workload/trace.h"

namespace dnastore::workload {
namespace {

WorkloadParams
smallMixedWorkload()
{
    WorkloadParams wp;
    wp.seed = 0xABCD'1234;
    wp.duration_us = 200'000;
    wp.objects = 100;
    wp.zipf_s = 0.99;

    TenantClass heavy;
    heavy.name = "heavy";
    heavy.count = 3;
    heavy.arrivals.rate_per_sec = 400.0;
    heavy.admission.weight = 4;
    wp.classes.push_back(heavy);

    TenantClass standard;
    standard.name = "standard";
    standard.count = 10;
    standard.arrivals.rate_per_sec = 100.0;
    standard.mix = {0.8, 0.15, 0.05};
    wp.classes.push_back(standard);

    TenantClass bursty;
    bursty.name = "bursty";
    bursty.count = 5;
    bursty.arrivals.kind = ArrivalProcess::Kind::OnOff;
    bursty.arrivals.rate_per_sec = 500.0;
    bursty.arrivals.mean_on_us = 20'000;
    bursty.arrivals.mean_off_us = 60'000;
    bursty.admission.rate = 150.0;
    bursty.admission.burst = 20.0;
    wp.classes.push_back(bursty);
    return wp;
}

TEST(WorkloadGenTest, SameSeedSameTrace)
{
    const WorkloadParams wp = smallMixedWorkload();
    Trace a = generateTrace(wp);
    Trace b = generateTrace(wp);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_EQ(traceFingerprint(a), traceFingerprint(b));

    WorkloadParams other = wp;
    other.seed += 1;
    EXPECT_NE(traceFingerprint(generateTrace(other)),
              traceFingerprint(a));
}

TEST(WorkloadGenTest, TraceIsTotallyOrdered)
{
    Trace trace = generateTrace(smallMixedWorkload());
    std::map<core::TenantId, uint64_t> next_seq;
    for (size_t i = 1; i < trace.size(); ++i) {
        const TraceOp &prev = trace[i - 1];
        const TraceOp &cur = trace[i];
        EXPECT_TRUE(prev.arrival_us < cur.arrival_us ||
                    (prev.arrival_us == cur.arrival_us &&
                     (prev.tenant < cur.tenant ||
                      (prev.tenant == cur.tenant &&
                       prev.seq < cur.seq))))
            << "position " << i;
    }
    for (const TraceOp &op : trace)
        EXPECT_EQ(op.seq, next_seq[op.tenant]++)
            << "tenant " << op.tenant;
}

TEST(WorkloadGenTest, TenantIdsAreConsecutiveAcrossClasses)
{
    const WorkloadParams wp = smallMixedWorkload();
    const std::vector<core::TenantId> ids = tenantIds(wp);
    ASSERT_EQ(ids.size(), 18u);  // 3 + 10 + 5
    for (size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], static_cast<core::TenantId>(i + 1));
    EXPECT_EQ(classTenantIds(wp, 0),
              (std::vector<core::TenantId>{1, 2, 3}));
    EXPECT_EQ(classTenantIds(wp, 2),
              (std::vector<core::TenantId>{14, 15, 16, 17, 18}));

    const auto admission = tenantAdmission(wp);
    EXPECT_EQ(admission.at(1).weight, 4u);
    EXPECT_EQ(admission.at(14).rate, 150.0);
    EXPECT_EQ(admission.count(0), 0u);  // default tenant never used
}

TEST(WorkloadGenTest, ZipfianSkewMatchesTheory)
{
    constexpr uint64_t kObjects = 100;
    constexpr size_t kDraws = 200'000;
    const ZipfianSampler zipf(kObjects, 0.99);
    Rng rng(Rng::deriveSeed(7, 7));
    std::vector<size_t> counts(kObjects, 0);
    for (size_t i = 0; i < kDraws; ++i)
        ++counts[zipf.sample(rng)];

    // The head ranks carry enough mass for a tight relative check.
    for (uint64_t k : {0u, 1u, 2u, 9u}) {
        const double expected = zipf.pmf(k) * kDraws;
        EXPECT_NEAR(static_cast<double>(counts[k]), expected,
                    0.10 * expected)
            << "rank " << k;
    }
    // Skew direction: the top rank dominates the tail decade.
    EXPECT_GT(counts[0], 10 * counts[99]);
    // Uniform (s = 0) sanity: pmf is flat.
    const ZipfianSampler flat(kObjects, 0.0);
    EXPECT_NEAR(flat.pmf(0), flat.pmf(99), 1e-9);
}

TEST(WorkloadGenTest, PoissonArrivalRateWithinTolerance)
{
    WorkloadParams wp;
    wp.seed = 99;
    wp.duration_us = 10'000'000;
    wp.objects = 10;
    TenantClass cls;
    cls.count = 1;
    cls.arrivals.rate_per_sec = 1'000.0;
    wp.classes.push_back(cls);

    const double n = static_cast<double>(generateTrace(wp).size());
    // Expect 10'000 ± 4σ (σ = 100).
    EXPECT_NEAR(n, 10'000.0, 400.0);
}

TEST(WorkloadGenTest, OnOffDutyCycleShapesLongRunRate)
{
    WorkloadParams wp;
    wp.seed = 123;
    wp.duration_us = 20'000'000;
    wp.objects = 10;
    TenantClass cls;
    cls.count = 1;
    cls.arrivals.kind = ArrivalProcess::Kind::OnOff;
    cls.arrivals.rate_per_sec = 2'000.0;
    cls.arrivals.mean_on_us = 50'000;
    cls.arrivals.mean_off_us = 150'000;
    wp.classes.push_back(cls);

    // Long-run rate = 2000 · 50/(50+150) = 500/s over 20 s = 10'000,
    // with cycle-level variance on ~100 cycles: ±15 %.
    const double n = static_cast<double>(generateTrace(wp).size());
    EXPECT_NEAR(n, 10'000.0, 1'500.0);
}

TEST(WorkloadGenTest, OpMixFractionsWithinTolerance)
{
    WorkloadParams wp;
    wp.seed = 5;
    wp.duration_us = 5'000'000;
    wp.objects = 10;
    TenantClass cls;
    cls.count = 4;
    cls.arrivals.rate_per_sec = 1'000.0;
    cls.mix = {0.5, 0.3, 0.2};
    wp.classes.push_back(cls);

    Trace trace = generateTrace(wp);
    ASSERT_GT(trace.size(), 10'000u);
    double reads = 0;
    double writes = 0;
    double updates = 0;
    for (const TraceOp &op : trace) {
        reads += op.type == OpType::Read ? 1 : 0;
        writes += op.type == OpType::Write ? 1 : 0;
        updates += op.type == OpType::Update ? 1 : 0;
    }
    const double n = static_cast<double>(trace.size());
    EXPECT_NEAR(reads / n, 0.5, 0.03);
    EXPECT_NEAR(writes / n, 0.3, 0.03);
    EXPECT_NEAR(updates / n, 0.2, 0.03);
}

TEST(WorkloadGenTest, MaxOpsTruncatesAfterSorting)
{
    WorkloadParams wp = smallMixedWorkload();
    Trace full = generateTrace(wp);
    wp.max_ops = 50;
    Trace capped = generateTrace(wp);
    ASSERT_EQ(capped.size(), 50u);
    // The cap keeps the earliest ops of the merged trace, not whole
    // tenants.
    for (size_t i = 0; i < capped.size(); ++i)
        EXPECT_EQ(capped[i], full[i]);
}

/** Simulator suites share the canonical decoder via the scheduler
 *  fixture (tests/support/scheduler_harness.h). */
class WorkloadSimTest : public test::SchedulerFixture
{
  protected:
    SimulatorParams
    virtualParams()
    {
        SimulatorParams sp;
        sp.clock = SimulatorParams::Clock::Virtual;
        sp.decoder = &decoder();
        sp.virtual_service_time_us = 500;
        sp.record_dispatches = true;
        return sp;
    }
};

TEST_F(WorkloadSimTest, VirtualReplayIsByteReproducible)
{
    const WorkloadParams wp = smallMixedWorkload();
    const SimulatorParams sp = virtualParams();
    SimResult a = runSimulation(wp, sp);
    SimResult b = runSimulation(wp, sp);

    ASSERT_GT(a.ops_submitted, 0u);
    EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
    EXPECT_EQ(a.report_fingerprint, b.report_fingerprint);
    EXPECT_EQ(a.report.tenants, b.report.tenants);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.end_clock_us, b.end_clock_us);
    // The whole metrics snapshot — every counter, every histogram
    // bucket — is byte-identical, not just the report's projection.
    EXPECT_EQ(a.metrics, b.metrics);
    EXPECT_EQ(a.report_fingerprint, a.report.fingerprint());
}

TEST_F(WorkloadSimTest, VirtualReplayIdenticalAcrossServiceThreads)
{
    const WorkloadParams wp = smallMixedWorkload();
    SimulatorParams sp = virtualParams();
    sp.service_threads = 1;
    SimResult one = runSimulation(wp, sp);
    sp.service_threads = 4;
    SimResult four = runSimulation(wp, sp);

    EXPECT_EQ(one.report_fingerprint, four.report_fingerprint);
    EXPECT_EQ(one.dispatches, four.dispatches);
    EXPECT_EQ(one.metrics.histograms, four.metrics.histograms);
}

TEST_F(WorkloadSimTest, SaturatedWdrrDispatchMatchesWeightsExactly)
{
    // Scripted saturation: every op arrives at t = 0, weights 3:1,
    // so the dispatch order is the literal WDRR round pattern and
    // per-tenant dispatch counts split 3:1 in every full round. No
    // RNG and no floating point anywhere in this scenario.
    Trace trace;
    for (uint64_t i = 0; i < 24; ++i)
        trace.push_back(TraceOp{0, 1, 0, OpType::Read, i});
    for (uint64_t i = 0; i < 8; ++i)
        trace.push_back(TraceOp{0, 2, 0, OpType::Read, i});

    std::map<core::TenantId, core::TenantParams> admission;
    admission[1].weight = 3;
    admission[2].weight = 1;

    SimResult result = replayTrace(trace, admission, {1, 2},
                                   virtualParams());

    ASSERT_EQ(result.dispatches.size(), 32u);
    for (size_t i = 0; i < result.dispatches.size(); ++i)
        EXPECT_EQ(result.dispatches[i].tenant, i % 4 == 3 ? 2u : 1u)
            << "position " << i;

    ASSERT_EQ(result.report.tenants.size(), 2u);
    const TenantSlo &heavy = result.report.tenants[0];
    const TenantSlo &light = result.report.tenants[1];
    EXPECT_EQ(heavy.dispatched, 24u);
    EXPECT_EQ(light.dispatched, 8u);
    EXPECT_EQ(heavy.goodput(), 1.0);
    EXPECT_EQ(light.goodput(), 1.0);
}

TEST_F(WorkloadSimTest, ThrottledGoodputIsExact)
{
    // Burst 5, rate 0: exactly five of twenty offered requests admit
    // — goodput 0.25 with zero tolerance.
    Trace trace;
    for (uint64_t i = 0; i < 20; ++i)
        trace.push_back(TraceOp{0, 9, 0, OpType::Read, i});
    std::map<core::TenantId, core::TenantParams> admission;
    admission[9].burst = 5.0;
    admission[9].rate = 0.0;
    admission[9].weight = 1;

    SimResult result =
        replayTrace(trace, admission, {9}, virtualParams());
    ASSERT_EQ(result.report.tenants.size(), 1u);
    const TenantSlo &slo = result.report.tenants[0];
    EXPECT_EQ(slo.offered, 20u);
    EXPECT_EQ(slo.admitted, 5u);
    EXPECT_EQ(slo.throttled, 15u);
    EXPECT_EQ(slo.rejected, 0u);
    EXPECT_DOUBLE_EQ(slo.goodput(), 0.25);
}

TEST_F(WorkloadSimTest, QueueLatencyQuantilesAreExactUnderVirtualClock)
{
    // Ten requests at t = 0, service time 1 ms each: sojourn times
    // are exactly 1,2,...,10 ms. Under fineLatencyBoundsUs() the
    // rank-5 sample (p50) lands in the (2000, 5000] bucket and the
    // rank-10 sample (p99/p999) in (5000, 10000] — exact quantile
    // values, pinned literally.
    Trace trace;
    for (uint64_t i = 0; i < 10; ++i)
        trace.push_back(TraceOp{0, 1, 0, OpType::Read, i});
    std::map<core::TenantId, core::TenantParams> admission;
    admission[1].weight = 1;

    SimulatorParams sp = virtualParams();
    sp.virtual_service_time_us = 1'000;
    SimResult result = replayTrace(trace, admission, {1}, sp);

    ASSERT_EQ(result.report.tenants.size(), 1u);
    const TenantSlo &slo = result.report.tenants[0];
    EXPECT_EQ(slo.latency_count, 10u);
    ASSERT_TRUE(slo.p50_us.has_value());
    ASSERT_TRUE(slo.p99_us.has_value());
    ASSERT_TRUE(slo.p999_us.has_value());
    EXPECT_EQ(*slo.p50_us, 5'000u);
    EXPECT_EQ(*slo.p99_us, 10'000u);
    EXPECT_EQ(*slo.p999_us, 10'000u);
    EXPECT_EQ(result.end_clock_us, 10'000u);
}

TEST_F(WorkloadSimTest, SloReportMatchesRawCounters)
{
    const WorkloadParams wp = smallMixedWorkload();
    SimResult result = runSimulation(wp, virtualParams());

    for (const TenantSlo &slo : result.report.tenants) {
        const std::string prefix =
            "decode_service.tenant." + std::to_string(slo.tenant) +
            ".";
        EXPECT_EQ(slo.admitted, result.metrics.counters.at(
                                    prefix + "requests_admitted"));
        EXPECT_EQ(slo.throttled, result.metrics.counters.at(
                                     prefix + "requests_throttled"));
        EXPECT_EQ(slo.rejected, result.metrics.counters.at(
                                    prefix + "requests_rejected"));
        EXPECT_EQ(slo.offered,
                  slo.admitted + slo.throttled + slo.rejected);
        EXPECT_EQ(slo.latency_count,
                  result.metrics.histograms
                      .at(prefix + "queue_latency_us")
                      .count);
    }

    // Class aggregation sums its members' counters exactly.
    const std::vector<core::TenantId> heavy = classTenantIds(wp, 0);
    TenantSlo agg = aggregateSlo(result.metrics, heavy, 0);
    uint64_t admitted = 0;
    uint64_t latency = 0;
    for (core::TenantId tenant : heavy) {
        const TenantSlo &slo =
            result.report.tenants.at(tenant - 1);
        admitted += slo.admitted;
        latency += slo.latency_count;
    }
    EXPECT_EQ(agg.admitted, admitted);
    EXPECT_EQ(agg.latency_count, latency);
}

TEST_F(WorkloadSimTest, VirtualBlockPolicyWithBoundsIsRefused)
{
    Trace trace{TraceOp{0, 1, 0, OpType::Read, 0}};
    std::map<core::TenantId, core::TenantParams> admission;
    admission[1].weight = 1;

    SimulatorParams sp = virtualParams();
    sp.overflow = core::OverflowPolicy::Block;
    sp.max_queue_depth = 4;
    EXPECT_THROW(replayTrace(trace, admission, {1}, sp), FatalError);

    // Unbounded Block is fine (nothing can ever park).
    sp.max_queue_depth = 0;
    SimResult result = replayTrace(trace, admission, {1}, sp);
    EXPECT_EQ(result.ops_submitted, 1u);
}

TEST_F(WorkloadSimTest, FleetReplayDrivesRealFrontends)
{
    // Closed-loop wall-clock smoke: two tenants, each with its own
    // loaded device, reads through real StorageFrontends plus one
    // write and one update per tenant. Admission is unconstrained, so
    // every read must admit; timing is real and NOT asserted.
    const core::Bytes data = test::corpusBlocks(2);
    auto device_a = test::makeLoadedDevice({}, data);
    auto device_b = test::makeLoadedDevice({}, data);

    Trace trace;
    for (uint64_t i = 0; i < 3; ++i) {
        trace.push_back(
            TraceOp{i * 1'000, 1, i, OpType::Read, i});
        trace.push_back(
            TraceOp{i * 1'000 + 500, 2, i, OpType::Read, i});
    }
    trace.push_back(TraceOp{3'000, 1, 0, OpType::Write, 3});
    trace.push_back(TraceOp{3'500, 2, 1, OpType::Update, 3});

    std::map<core::TenantId, core::TenantParams> admission;
    admission[1].weight = 2;
    admission[2].weight = 1;
    std::map<core::TenantId, FleetDevice> fleet;
    fleet[1].device = device_a.get();
    fleet[2].device = device_b.get();

    SimulatorParams sp;
    sp.clock = SimulatorParams::Clock::Real;
    sp.service_threads = 2;
    SimResult result =
        replayOnFleet(trace, admission, {1, 2}, fleet, sp);

    EXPECT_EQ(result.ops_submitted, trace.size());
    ASSERT_EQ(result.report.tenants.size(), 2u);
    for (const TenantSlo &slo : result.report.tenants) {
        // Only reads pass through service admission; writes/updates
        // mutate the tenant's device directly.
        EXPECT_EQ(slo.offered, 3u) << "tenant " << slo.tenant;
        EXPECT_EQ(slo.admitted, 3u) << "tenant " << slo.tenant;
        EXPECT_EQ(slo.goodput(), 1.0) << "tenant " << slo.tenant;
        EXPECT_EQ(slo.latency_count, 3u) << "tenant " << slo.tenant;
    }
}

TEST_F(WorkloadSimTest, RejectPolicyShedsWhenQueueIsBounded)
{
    // 8 requests at t=0 into a depth-4 queue: 4 admit, 4 shed as
    // Overloaded — goodput 0.5 exactly, and the shed requests never
    // reach the dispatcher.
    Trace trace;
    for (uint64_t i = 0; i < 8; ++i)
        trace.push_back(TraceOp{0, 1, 0, OpType::Read, i});
    std::map<core::TenantId, core::TenantParams> admission;
    admission[1].weight = 1;

    SimulatorParams sp = virtualParams();
    sp.max_queue_depth = 4;
    SimResult result = replayTrace(trace, admission, {1}, sp);

    ASSERT_EQ(result.report.tenants.size(), 1u);
    const TenantSlo &slo = result.report.tenants[0];
    EXPECT_EQ(slo.admitted, 4u);
    EXPECT_EQ(slo.rejected, 4u);
    EXPECT_DOUBLE_EQ(slo.goodput(), 0.5);
    EXPECT_EQ(result.dispatches.size(), 4u);
}

} // namespace
} // namespace dnastore::workload
