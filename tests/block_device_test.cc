/**
 * @file
 * Integration tests for the BlockDevice facade: write, precise block
 * reads, range reads, updates (inline and overflow), and costs.
 * Inputs come from the shared tests/support fixtures.
 */

#include <gtest/gtest.h>

#include "core/block_device.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

BlockDeviceParams
smallParams()
{
    BlockDeviceParams params;
    params.reads_per_block_access = 900;
    params.coverage = 20.0;
    return params;
}

class BlockDeviceTest : public ::testing::Test
{
  protected:
    Bytes data_ = test::corpusBlocks(24, 123);
    BlockDevice device_{smallParams(), test::fwdPrimer(),
                        test::revPrimer(), 13};

    void SetUp() override { device_.writeFile(data_); }

    Bytes
    blockBytes(uint64_t block) const
    {
        return test::blockSlice(data_, block);
    }
};

TEST_F(BlockDeviceTest, WriteFilePopulatesPool)
{
    EXPECT_EQ(device_.blockCount(), 24u);
    EXPECT_EQ(device_.pool().speciesCount(), 24u * 15u);
    EXPECT_EQ(device_.costs().moleculesSynthesized(), 24u * 15u);
}

TEST_F(BlockDeviceTest, ReadBlockRoundTrip)
{
    for (uint64_t block : {0u, 11u, 23u}) {
        EXPECT_TRUE(
            test::blockMatches(device_.readBlock(block), data_, block));
    }
}

TEST_F(BlockDeviceTest, ReadBlockIsSelective)
{
    device_.readBlock(11);
    const DecodeStats &stats = device_.lastStats();
    // The reads should be overwhelmingly from the target block: the
    // decoder recovers its 15 strands from few clusters.
    EXPECT_GE(stats.units_decoded, 1u);
    EXPECT_LE(stats.units_decoded, 6u);  // target + few neighbours
}

TEST_F(BlockDeviceTest, InlineUpdateApplied)
{
    UpdateOp op;
    op.delete_pos = 0;
    op.delete_len = 3;
    op.insert_pos = 0;
    op.insert_bytes = {'X', 'Y', 'Z'};
    device_.updateBlock(7, op);
    EXPECT_EQ(device_.updateCount(7), 1u);

    auto content = device_.readBlock(7);
    ASSERT_TRUE(content.has_value());
    Bytes expected = blockBytes(7);
    expected[0] = 'X';
    expected[1] = 'Y';
    expected[2] = 'Z';
    EXPECT_EQ(*content, expected);
}

TEST_F(BlockDeviceTest, TwoInlineUpdatesChain)
{
    UpdateOp first;
    first.insert_pos = 0;
    first.insert_bytes = {'A'};
    UpdateOp second;
    second.insert_pos = 0;
    second.insert_bytes = {'B'};
    device_.updateBlock(3, first);
    device_.updateBlock(3, second);

    auto content = device_.readBlock(3);
    ASSERT_TRUE(content.has_value());
    EXPECT_EQ((*content)[0], 'B');
    EXPECT_EQ((*content)[1], 'A');
    Bytes original = blockBytes(3);
    EXPECT_TRUE(std::equal(content->begin() + 2, content->end() - 2,
                           original.begin()));
}

TEST_F(BlockDeviceTest, ReplaceBlock)
{
    Bytes fresh(256, '#');
    device_.replaceBlock(9, fresh);
    auto content = device_.readBlock(9);
    ASSERT_TRUE(content.has_value());
    EXPECT_EQ(*content, fresh);
}

TEST_F(BlockDeviceTest, OverflowChainBeyondInlineSlots)
{
    // Five updates: 2 inline + pointer -> overflow container(s).
    for (int i = 0; i < 5; ++i) {
        UpdateOp op;
        op.insert_pos = 0;
        op.insert_bytes = {static_cast<uint8_t>('a' + i)};
        device_.updateBlock(5, op);
    }
    EXPECT_EQ(device_.updateCount(5), 5u);

    size_t trips_before = device_.costs().roundTrips();
    auto content = device_.readBlock(5);
    ASSERT_TRUE(content.has_value());
    // Updates prepend in order: last one is at the front.
    EXPECT_EQ((*content)[0], 'e');
    EXPECT_EQ((*content)[1], 'd');
    EXPECT_EQ((*content)[2], 'c');
    EXPECT_EQ((*content)[3], 'b');
    EXPECT_EQ((*content)[4], 'a');
    // Overflow costs extra round trips (Figure 8's trade-off).
    EXPECT_GT(device_.costs().roundTrips(), trips_before + 1);
}

TEST_F(BlockDeviceTest, ReadRange)
{
    auto contents = device_.readRange(4, 9);
    ASSERT_EQ(contents.size(), 6u);
    for (uint64_t i = 0; i < 6; ++i) {
        EXPECT_TRUE(test::blockMatches(contents[i], data_, 4 + i))
            << "offset " << i;
    }
}

TEST_F(BlockDeviceTest, ReadAllReturnsWholeFile)
{
    test::RoundTrip result = test::roundTrip(device_, data_);
    EXPECT_EQ(result.blocks, 24u);
    EXPECT_EQ(result.decoded, 24u);
    EXPECT_EQ(result.exact, 24u) << result.first_mismatch;
}

TEST_F(BlockDeviceTest, CostsAccumulate)
{
    size_t reads_before = device_.costs().readsSequenced();
    device_.readBlock(2);
    EXPECT_EQ(device_.costs().readsSequenced(),
              reads_before + smallParams().reads_per_block_access);
    EXPECT_GT(device_.costs().sequencingCost(), 0.0);
    EXPECT_GT(device_.costs().synthesisCost(), 0.0);
}

TEST_F(BlockDeviceTest, UpdateSynthesisIsTiny)
{
    // Section 7.5: an update costs 15 molecules, not a partition.
    size_t before = device_.costs().moleculesSynthesized();
    UpdateOp op;
    op.insert_bytes = {'!'};
    device_.updateBlock(1, op);
    EXPECT_EQ(device_.costs().moleculesSynthesized(), before + 15);
}

TEST_F(BlockDeviceTest, InvalidArgumentsThrow)
{
    EXPECT_THROW(device_.readBlock(24), dnastore::FatalError);
    EXPECT_THROW(device_.readRange(5, 4), dnastore::FatalError);
    EXPECT_THROW(device_.readRange(0, 24), dnastore::FatalError);
    UpdateOp op;
    EXPECT_THROW(device_.updateBlock(99, op), dnastore::FatalError);
}

} // namespace
} // namespace dnastore::core
