/**
 * @file
 * Cross-platform determinism guard for common/rng.
 *
 * The index tree, scrambler keystream, and every simulator stream are
 * regenerated from seeds rather than stored, so the PRNG must produce
 * bit-identical sequences on every platform, compiler, and build type.
 * These golden values pin the current xoshiro256** + SplitMix64
 * implementation; if any of them changes, previously written pools
 * become undecodable and stored experiments stop being reproducible.
 * (They also guard future parallelism work: sharded encoders must be
 * able to re-derive exactly the streams a single-threaded writer used.)
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "support/fixtures.h"

namespace dnastore {
namespace {

TEST(RngDeterminismTest, GoldenNextSequence)
{
    Rng rng(42);
    const uint64_t expected[] = {
        0x15780b2e0c2ec716ULL, 0x6104d9866d113a7eULL,
        0xae17533239e499a1ULL, 0xecb8ad4703b360a1ULL,
        0xfde6dc7fe2ec5e64ULL, 0xc50da53101795238ULL,
        0xb82154855a65ddb2ULL, 0xd99a2743ebe60087ULL,
    };
    for (uint64_t want : expected) {
        EXPECT_EQ(rng.next(), want);
    }
}

TEST(RngDeterminismTest, GoldenBoundedSequence)
{
    Rng rng(42);
    const uint64_t expected[] = {83, 378, 680, 924, 991, 769, 719, 850};
    for (uint64_t want : expected) {
        EXPECT_EQ(rng.nextBelow(1000), want);
    }
}

TEST(RngDeterminismTest, GoldenDoubleSequence)
{
    // nextDouble() is derived from integer bits, so it is exact across
    // platforms; compare with EXPECT_EQ, not EXPECT_NEAR.
    Rng rng(42);
    const double expected[] = {
        0.083862971059882163,
        0.37898025066266861,
        0.68004341102813937,
        0.92469294532538759,
    };
    for (double want : expected) {
        EXPECT_EQ(rng.nextDouble(), want);
    }
}

TEST(RngDeterminismTest, GoldenDerivedSeedAndStreams)
{
    EXPECT_EQ(Rng::deriveSeed(42, 7), 0x11de7ec048c4dc66ULL);
    EXPECT_EQ(fnv1a("pcr"), 0x77c3621956709262ULL);

    Rng stream = Rng::deriveStream(42, "stream");
    EXPECT_EQ(stream.next(), 0x93f028fc5ab7ee4eULL);
    EXPECT_EQ(stream.next(), 0xf4559a6b4e47cfebULL);
}

TEST(RngDeterminismTest, IndependentInstancesAgree)
{
    // Two generators with the same seed evolve identically even when
    // interleaved with other draws (no hidden global state).
    Rng a(test::kTestSeed), b(test::kTestSeed);
    Rng noise(1);
    for (int i = 0; i < 1000; ++i) {
        noise.next();
        ASSERT_EQ(a.next(), b.next()) << "diverged at step " << i;
    }
}

TEST(RngDeterminismTest, SupportFixtureStreamIsStable)
{
    // The shared test fixture derives named streams from one seed; the
    // same label must yield the same stream in every suite.
    Rng first = test::testRng("determinism");
    Rng second = test::testRng("determinism");
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(first.next(), second.next());
    }
}

} // namespace
} // namespace dnastore
