/**
 * @file
 * Thread-invariance golden tests: the decode pipeline must produce
 * byte-identical output — decoded units AND DecodeStats counters —
 * for any DecoderParams::threads value. This is the contract that
 * lets the pipeline scale across cores without perturbing a single
 * result, and it guards every parallel stage (primer filter, MinHash
 * signatures, per-cluster BMA, per-unit RS decode).
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/decoder.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

const dna::Sequence &kFwd = test::fwdPrimer();
const dna::Sequence &kRev = test::revPrimer();

/** Seeded corpus fixture: 20-block file, synthesized pool. */
class DecodeThreadsTest : public ::testing::Test
{
  protected:
    PartitionConfig config_;
    std::unique_ptr<Partition> partition_;
    Bytes data_;
    sim::Pool pool_;

    void
    SetUp() override
    {
        partition_ =
            std::make_unique<Partition>(config_, kFwd, kRev, 13);
        data_ = test::corpusBlocks(20, 77);
        sim::SynthesisParams synthesis;
        pool_ = sim::synthesize(partition_->encodeFile(data_),
                                synthesis);
    }

    std::vector<sim::Read>
    noisyReads(size_t count) const
    {
        sim::SequencerParams params;
        params.sub_rate = 0.01;
        params.ins_rate = 0.002;
        params.del_rate = 0.002;
        params.seed = 3;
        return sim::sequencePool(pool_, count, params);
    }
};

TEST_F(DecodeThreadsTest, DecodeAllIsByteIdenticalAcrossThreadCounts)
{
    std::vector<sim::Read> reads = noisyReads(20 * 15 * 25);

    DecoderParams baseline_params;
    baseline_params.threads = 1;
    Decoder baseline(*partition_, baseline_params);
    DecodeStats baseline_stats;
    std::map<uint64_t, BlockVersions> baseline_units =
        baseline.decodeAll(reads, &baseline_stats);
    ASSERT_EQ(baseline_stats.units_decoded, 20u);

    for (size_t threads : {2u, 8u}) {
        DecoderParams params;
        params.threads = threads;
        Decoder decoder(*partition_, params);
        DecodeStats stats;
        std::map<uint64_t, BlockVersions> units =
            decoder.decodeAll(reads, &stats);
        EXPECT_EQ(units, baseline_units) << "threads=" << threads;
        EXPECT_EQ(stats, baseline_stats) << "threads=" << threads;
    }
}

TEST_F(DecodeThreadsTest, UpdateChainDecodeIsThreadInvariant)
{
    // A version chain exercises the multi-unit path: block 5 carries
    // version 0 plus an inline patch in version 1.
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kInline;
    record.op.delete_pos = 0;
    record.op.delete_len = 5;
    record.op.insert_pos = 0;
    record.op.insert_bytes = Bytes{'H', 'E', 'L', 'L', 'O'};
    sim::SynthesisParams synthesis;
    synthesis.seed = 99;
    sim::Pool patch = sim::synthesize(
        partition_->encodePatch(5, record, 1), synthesis);
    pool_.mixIn(patch,
                (pool_.totalMass() / pool_.speciesCount()) /
                    (patch.totalMass() / patch.speciesCount()));

    std::vector<sim::Read> reads = noisyReads(21 * 15 * 25);

    std::optional<Bytes> baseline;
    for (size_t threads : {1u, 2u, 8u}) {
        DecoderParams params;
        params.threads = threads;
        Decoder decoder(*partition_, params);
        std::optional<Bytes> content = decoder.decodeBlock(reads, 5);
        ASSERT_TRUE(content.has_value()) << "threads=" << threads;
        if (!baseline) {
            baseline = content;
            EXPECT_EQ((*content)[0], 'H');
        } else {
            EXPECT_EQ(*content, *baseline) << "threads=" << threads;
        }
    }
}

TEST_F(DecodeThreadsTest, DefaultThreadsUsesHardwareConcurrency)
{
    // threads == 0 resolves to hardware_concurrency and must decode
    // exactly like the sequential baseline.
    std::vector<sim::Read> reads = noisyReads(20 * 15 * 25);

    DecoderParams sequential_params;
    sequential_params.threads = 1;
    DecoderParams default_params;
    ASSERT_EQ(default_params.threads, 0u);

    DecodeStats sequential_stats;
    DecodeStats default_stats;
    auto sequential_units = Decoder(*partition_, sequential_params)
                                .decodeAll(reads, &sequential_stats);
    auto default_units = Decoder(*partition_, default_params)
                             .decodeAll(reads, &default_stats);
    EXPECT_EQ(default_units, sequential_units);
    EXPECT_EQ(default_stats, sequential_stats);
}

} // namespace
} // namespace dnastore::core
