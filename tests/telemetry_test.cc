/**
 * @file
 * Telemetry subsystem tests: instrument semantics (counter, gauge,
 * fixed-bucket histogram), registry identity and kind/bounds
 * conflicts, concurrent recording, and the deterministic snapshot /
 * text-export contract that the frontend metrics demo relies on.
 */

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "telemetry/metrics.h"

namespace dnastore::telemetry {
namespace {

TEST(TelemetryTest, CounterStartsAtZeroAndAccumulates)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.increment();
    counter.increment(41);
    EXPECT_EQ(counter.value(), 42u);
}

TEST(TelemetryTest, GaugeSetAndAdd)
{
    Gauge gauge;
    EXPECT_EQ(gauge.value(), 0);
    gauge.set(7);
    gauge.add(-10);
    EXPECT_EQ(gauge.value(), -3);
}

TEST(TelemetryTest, HistogramBucketBoundariesAreInclusive)
{
    Histogram histogram({10, 100});
    histogram.observe(0);    // <= 10
    histogram.observe(10);   // <= 10 (bound is inclusive)
    histogram.observe(11);   // <= 100
    histogram.observe(100);  // <= 100
    histogram.observe(101);  // overflow
    EXPECT_EQ(histogram.bucketCounts(),
              (std::vector<uint64_t>{2, 2, 1}));
    EXPECT_EQ(histogram.count(), 5u);
    EXPECT_EQ(histogram.sum(), 0u + 10 + 11 + 100 + 101);
}

TEST(TelemetryTest, HistogramEveryExactBoundLandsInOwnBucket)
{
    // A value exactly on an inclusive upper bound belongs to that
    // bound's bucket — for every bound of the default latency table,
    // not just the first.
    std::vector<uint64_t> bounds = defaultLatencyBoundsUs();
    Histogram histogram(bounds);
    for (uint64_t bound : bounds)
        histogram.observe(bound);

    std::vector<uint64_t> expected(bounds.size() + 1, 1);
    expected.back() = 0;  // nothing overflows
    EXPECT_EQ(histogram.bucketCounts(), expected);

    // One past each bound lands one bucket later (the last one in
    // the overflow bucket).
    for (uint64_t bound : bounds)
        histogram.observe(bound + 1);
    std::vector<uint64_t> shifted(bounds.size() + 1, 2);
    shifted.front() = 1;
    shifted.back() = 1;
    EXPECT_EQ(histogram.bucketCounts(), shifted);
}

TEST(TelemetryTest, HistogramOverflowBucketAccounting)
{
    Histogram histogram({10});
    histogram.observe(11);
    histogram.observe(1'000'000'000'000'000'000ULL);
    histogram.observe(UINT64_MAX);

    EXPECT_EQ(histogram.bucketCounts(),
              (std::vector<uint64_t>{0, 3}));
    EXPECT_EQ(histogram.count(), 3u);
    // The sum is a uint64 accumulator: it wraps modulo 2^64 rather
    // than saturating, which snapshots must reproduce verbatim.
    uint64_t expected_sum = 11;
    expected_sum += 1'000'000'000'000'000'000ULL;
    expected_sum += UINT64_MAX;
    EXPECT_EQ(histogram.sum(), expected_sum);
}

TEST(TelemetryTest, ExportTextStableAcrossIdenticallyNamedRegistries)
{
    // Two registries built in different registration orders but with
    // identical instrument names and recorded values must export the
    // same bytes — the contract that lets per-shard registries be
    // merged/diffed by name (cross-process aggregation relies on it).
    MetricsRegistry first;
    first.counter("svc.requests").increment(3);
    first.gauge("svc.depth").set(2);
    first.histogram("svc.lat", {10, 100}).observe(40);

    MetricsRegistry second;
    second.histogram("svc.lat", {10, 100}).observe(40);
    second.counter("svc.requests").increment(1);
    second.gauge("svc.depth").set(2);
    second.counter("svc.requests").increment(2);

    EXPECT_EQ(first.exportText(), second.exportText());
    EXPECT_EQ(first.snapshot(), second.snapshot());

    // Diverge one value: the exports must diverge too (stability is
    // not constancy).
    second.counter("svc.requests").increment();
    EXPECT_NE(first.exportText(), second.exportText());
}

TEST(TelemetryTest, HistogramRejectsBadBounds)
{
    EXPECT_THROW(Histogram({}), FatalError);
    EXPECT_THROW(Histogram({10, 10}), FatalError);
    EXPECT_THROW(Histogram({100, 10}), FatalError);
}

TEST(TelemetryTest, DefaultLatencyBoundsAreStrictlyIncreasing)
{
    std::vector<uint64_t> bounds = defaultLatencyBoundsUs();
    ASSERT_FALSE(bounds.empty());
    for (size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(TelemetryTest, RegistryReturnsSameInstrumentForSameName)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("requests");
    Counter &b = registry.counter("requests");
    EXPECT_EQ(&a, &b);
    a.increment();
    EXPECT_EQ(b.value(), 1u);

    Histogram &h1 = registry.histogram("latency", {1, 2});
    Histogram &h2 = registry.histogram("latency", {1, 2});
    EXPECT_EQ(&h1, &h2);
}

TEST(TelemetryTest, RegistryRejectsKindAndBoundsConflicts)
{
    MetricsRegistry registry;
    registry.counter("requests");
    EXPECT_THROW(registry.gauge("requests"), FatalError);
    EXPECT_THROW(registry.histogram("requests"), FatalError);

    registry.histogram("latency", {1, 2});
    EXPECT_THROW(registry.counter("latency"), FatalError);
    EXPECT_THROW(registry.histogram("latency", {1, 2, 3}),
                 FatalError);
}

TEST(TelemetryTest, ConcurrentRecordingLosesNothing)
{
    MetricsRegistry registry;
    Counter &counter = registry.counter("events");
    Histogram &histogram = registry.histogram("values", {8});

    constexpr size_t kThreads = 8;
    constexpr size_t kPerThread = 10000;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (size_t i = 0; i < kPerThread; ++i) {
                counter.increment();
                histogram.observe(t);  // threads 0..7: all <= 8
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(counter.value(), kThreads * kPerThread);
    EXPECT_EQ(histogram.count(), kThreads * kPerThread);
    EXPECT_EQ(histogram.bucketCounts(),
              (std::vector<uint64_t>{kThreads * kPerThread, 0}));
    // sum = kPerThread * (0 + 1 + ... + 7)
    EXPECT_EQ(histogram.sum(), kPerThread * 28);
}

TEST(TelemetryTest, SnapshotIsDeterministicAndComplete)
{
    MetricsRegistry registry;
    registry.counter("b.count").increment(2);
    registry.counter("a.count").increment(1);
    registry.gauge("depth").set(-4);
    registry.histogram("lat", {5, 50}).observe(3);
    registry.histogram("lat", {5, 50}).observe(500);

    MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters.begin()->first, "a.count");  // sorted
    EXPECT_EQ(snap.counters.at("b.count"), 2u);
    EXPECT_EQ(snap.gauges.at("depth"), -4);

    const HistogramSnapshot &lat = snap.histograms.at("lat");
    EXPECT_EQ(lat.bounds, (std::vector<uint64_t>{5, 50}));
    EXPECT_EQ(lat.buckets, (std::vector<uint64_t>{1, 0, 1}));
    EXPECT_EQ(lat.count, 2u);
    EXPECT_EQ(lat.sum, 503u);

    EXPECT_EQ(snap, registry.snapshot());  // stable when idle
}

TEST(TelemetryTest, ExportTextFormatIsPinned)
{
    MetricsRegistry registry;
    registry.counter("svc.requests").increment(3);
    registry.gauge("svc.depth").set(2);
    Histogram &lat = registry.histogram("svc.lat", {10, 100});
    lat.observe(4);
    lat.observe(40);
    lat.observe(400);

    // Cumulative buckets, +Inf last, count/sum lines — the literal
    // format contract of MetricsRegistry::exportText().
    EXPECT_EQ(registry.exportText(),
              "svc.requests 3\n"
              "svc.depth 2\n"
              "svc.lat_bucket{le=\"10\"} 1\n"
              "svc.lat_bucket{le=\"100\"} 2\n"
              "svc.lat_bucket{le=\"+Inf\"} 3\n"
              "svc.lat_count 3\n"
              "svc.lat_sum 444\n");
}

TEST(TelemetryQuantileTest, EveryBucketBoundaryIsExact)
{
    // One sample per bucket: the q-quantile for rank r must return
    // exactly bucket r's upper bound, for every bucket.
    MetricsRegistry registry;
    Histogram &histogram = registry.histogram("q", {10, 20, 50, 100});
    for (uint64_t v : {5, 15, 30, 70})
        histogram.observe(v);
    HistogramSnapshot snap = registry.snapshot().histograms.at("q");
    ASSERT_EQ(snap.count, 4u);
    EXPECT_EQ(snap.quantile(0.25), 10u);   // rank 1
    EXPECT_EQ(snap.quantile(0.50), 20u);   // rank 2
    EXPECT_EQ(snap.quantile(0.75), 50u);   // rank 3
    EXPECT_EQ(snap.quantile(1.00), 100u);  // rank 4
    // Quantiles strictly inside a rank gap round up (conservative
    // estimate: ceil(q * count)).
    EXPECT_EQ(snap.quantile(0.26), 20u);
    EXPECT_EQ(snap.quantile(0.51), 50u);
    // q = 0 clamps to rank 1 rather than an undefined rank 0.
    EXPECT_EQ(snap.quantile(0.0), 10u);
}

TEST(TelemetryQuantileTest, OverflowAndEmptyReturnNullopt)
{
    MetricsRegistry registry;
    Histogram &histogram = registry.histogram("q", {10});
    EXPECT_EQ(registry.snapshot().histograms.at("q").quantile(0.5),
              std::nullopt);

    histogram.observe(5);
    histogram.observe(100);  // overflow bucket
    HistogramSnapshot snap = registry.snapshot().histograms.at("q");
    EXPECT_EQ(snap.quantile(0.5), 10u);
    // The p100 rank lands in the overflow bucket: no finite upper
    // bound exists, so the estimate is declined, never fabricated.
    EXPECT_EQ(snap.quantile(1.0), std::nullopt);

    EXPECT_THROW((void)snap.quantile(-0.1), FatalError);
    EXPECT_THROW((void)snap.quantile(1.1), FatalError);
}

TEST(TelemetryQuantileTest, GoldenTailTripleOverFineBounds)
{
    // 1000 samples spread over the fine 1-2-5 ladder: 900 at 100 us,
    // 90 at 3 ms (-> le=5000 bucket), 9 at 40 ms (-> le=50000), 1 at
    // 900 ms (-> le=1000000). Golden p50/p99/p999 by hand:
    //   p50  rank  500 -> le=100
    //   p99  rank  990 -> le=5000
    //   p999 rank  999 -> le=50000
    //   p100 rank 1000 -> le=1000000 (the single worst sample)
    MetricsRegistry registry;
    Histogram &histogram =
        registry.histogram("q", fineLatencyBoundsUs());
    for (int i = 0; i < 900; ++i)
        histogram.observe(100);
    for (int i = 0; i < 90; ++i)
        histogram.observe(3'000);
    for (int i = 0; i < 9; ++i)
        histogram.observe(40'000);
    histogram.observe(900'000);

    HistogramSnapshot snap = registry.snapshot().histograms.at("q");
    ASSERT_EQ(snap.count, 1000u);
    EXPECT_EQ(snap.quantile(0.50), 100u);
    EXPECT_EQ(snap.quantile(0.99), 5'000u);
    EXPECT_EQ(snap.quantile(0.999), 50'000u);
    EXPECT_EQ(snap.quantile(1.0), 1'000'000u);
}

TEST(TelemetryQuantileTest, FineBoundsAreTheDocumentedLadder)
{
    const std::vector<uint64_t> bounds = fineLatencyBoundsUs();
    ASSERT_EQ(bounds.size(), 19u);
    EXPECT_EQ(bounds.front(), 10u);
    EXPECT_EQ(bounds.back(), 10'000'000u);
    for (size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
    // Bucket-resolution error bound: one 1-2-5 step, i.e. at most
    // 2.5x the true value anywhere on the ladder.
    for (size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LE(bounds[i], bounds[i - 1] * 5 / 2 + 1);
}

} // namespace
} // namespace dnastore::telemetry
