/**
 * @file
 * End-to-end integration tests: a miniature version of the paper's
 * Section 6 experiment through the full pipeline, plus failure
 * injection (molecule dropout, heavy sequencing noise, misprimed
 * duplicate candidates).
 */

#include <gtest/gtest.h>

#include "core/block_device.h"
#include "core/decoder.h"
#include "corpus/text.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"

namespace dnastore {
namespace {

const dna::Sequence kFwd("ACGTACGTACGTACGTACGT");
const dna::Sequence kRev("TGCATGCATGCATGCATGCA");

TEST(IntegrationTest, MiniAliceEndToEnd)
{
    // 40 paragraph-blocks, three updated, precise single-block reads.
    core::BlockDeviceParams params;
    core::BlockDevice device(params, kFwd, kRev, 13);
    core::Bytes book = corpus::generateBytes(40 * 256, 99);
    device.writeFile(book);

    for (uint64_t block : {7u, 21u, 39u}) {
        core::UpdateOp op;
        op.delete_pos = 0;
        op.delete_len = 2;
        op.insert_pos = 0;
        op.insert_bytes = {'#', '!'};
        device.updateBlock(block, op);
    }

    // Clean blocks decode to the original bytes.
    auto clean = device.readBlock(12);
    ASSERT_TRUE(clean.has_value());
    EXPECT_TRUE(std::equal(clean->begin(), clean->end(),
                           book.begin() + 12 * 256));

    // Updated blocks decode to edited bytes in one round trip each.
    for (uint64_t block : {7u, 21u, 39u}) {
        size_t trips = device.costs().roundTrips();
        auto content = device.readBlock(block);
        ASSERT_TRUE(content.has_value()) << "block " << block;
        EXPECT_EQ((*content)[0], '#');
        EXPECT_EQ((*content)[1], '!');
        EXPECT_TRUE(std::equal(content->begin() + 2, content->end(),
                               book.begin() + block * 256 + 2));
        EXPECT_EQ(device.costs().roundTrips(), trips + 1);
    }
}

TEST(IntegrationTest, SurvivesMoleculeDropout)
{
    // RS(15,11) rides out up to 4 lost molecules per unit; 3%
    // synthesis dropout loses ~0-2 molecules per 15-molecule block.
    core::BlockDeviceParams params;
    params.synthesis.dropout_rate = 0.03;
    core::BlockDevice device(params, kFwd, kRev, 13);
    core::Bytes data = corpus::generateBytes(16 * 256, 5);
    device.writeFile(data);

    auto contents = device.readAll();
    size_t decoded = 0;
    for (uint64_t block = 0; block < 16; ++block) {
        if (contents[block].has_value() &&
            std::equal(contents[block]->begin(),
                       contents[block]->end(),
                       data.begin() + block * 256)) {
            ++decoded;
        }
    }
    EXPECT_GE(decoded, 15u);  // at most one unlucky block
}

TEST(IntegrationTest, SurvivesHeavySequencingNoise)
{
    core::BlockDeviceParams params;
    params.sequencer.sub_rate = 0.02;
    params.sequencer.ins_rate = 0.004;
    params.sequencer.del_rate = 0.004;
    params.reads_per_block_access = 2000;
    core::BlockDevice device(params, kFwd, kRev, 13);
    core::Bytes data = corpus::generateBytes(12 * 256, 6);
    device.writeFile(data);

    auto content = device.readBlock(5);
    ASSERT_TRUE(content.has_value());
    EXPECT_TRUE(std::equal(content->begin(), content->end(),
                           data.begin() + 5 * 256));
}

TEST(IntegrationTest, ErrorCorrectionIsExercised)
{
    // With noise high enough, some units must need RS correction or
    // candidate retries, and still decode exactly.
    core::BlockDeviceParams params;
    params.sequencer.sub_rate = 0.015;
    params.coverage = 25.0;
    core::BlockDevice device(params, kFwd, kRev, 13);
    core::Bytes data = corpus::generateBytes(20 * 256, 8);
    device.writeFile(data);

    auto contents = device.readAll();
    const core::DecodeStats &stats = device.lastStats();
    size_t exact = 0;
    for (uint64_t block = 0; block < 20; ++block) {
        if (contents[block].has_value() &&
            std::equal(contents[block]->begin(),
                       contents[block]->end(),
                       data.begin() + block * 256)) {
            ++exact;
        }
    }
    EXPECT_EQ(exact, 20u);
    EXPECT_GT(stats.reads_primer_matched, 0u);
}

TEST(IntegrationTest, TwoStagePcrProtocol)
{
    // Section 7.7.3: with many partitions in the tube, first isolate
    // the partition with the main primers, then run the elongated
    // primer. Composability of runPcr makes this a two-call test.
    core::PartitionConfig config;
    core::Partition alice(config, kFwd, kRev, 13);
    core::Bytes data = corpus::generateBytes(30 * 256, 4);
    sim::SynthesisParams synthesis;
    sim::Pool pool = sim::synthesize(alice.encodeFile(data), synthesis);

    // A second partition shares the tube.
    core::PartitionConfig other_config;
    other_config.index_seed = 777;
    core::Partition other(other_config,
                          dna::Sequence("GGATCCGGATCCGGATCCGG"),
                          dna::Sequence("CAGTCAGTCAGTCAGTCAGT"), 2);
    sim::Pool other_pool = sim::synthesize(
        other.encodeFile(corpus::generateBytes(30 * 256, 3)),
        synthesis);
    pool.mixIn(other_pool);

    // Stage 1: main primers.
    sim::PcrParams stage1;
    stage1.cycles = 12;
    sim::Pool isolated = sim::runPcr(
        pool, {sim::PcrPrimer{kFwd, 1.0}}, kRev, stage1);
    double alice_fraction = isolated.massFraction(
        [](const sim::Species &s) { return s.info.file_id == 13; });
    EXPECT_GT(alice_fraction, 0.99);

    // Stage 2: elongated primer for block 17.
    sim::PcrParams stage2;
    stage2.cycles = 20;
    stage2.stringency = sim::touchdownSchedule(8, 20, 3.0);
    sim::Pool accessed = sim::runPcr(
        isolated, {sim::PcrPrimer{alice.blockPrimer(17), 1.0}}, kRev,
        stage2);
    double target_fraction =
        accessed.massFraction([](const sim::Species &s) {
            return s.info.block == 17 && !s.info.misprimed;
        });
    EXPECT_GT(target_fraction, 0.4);
}

TEST(IntegrationTest, SurvivesSynthesisByproducts)
{
    // Real oligo pools contain a tail of single-base synthesis
    // defects; clustering must not merge them destructively and the
    // consensus/ECC stack must still decode exactly.
    core::BlockDeviceParams params;
    params.synthesis.byproduct_fraction = 0.15;
    params.synthesis.byproduct_variants = 2;
    core::BlockDevice device(params, kFwd, kRev, 13);
    core::Bytes data = corpus::generateBytes(10 * 256, 21);
    device.writeFile(data);

    auto content = device.readBlock(4);
    ASSERT_TRUE(content.has_value());
    EXPECT_TRUE(std::equal(content->begin(), content->end(),
                           data.begin() + 4 * 256));
}

/** End-to-end property sweep: exact decode across noise levels. */
class NoiseSweepTest : public ::testing::TestWithParam<double>
{};

TEST_P(NoiseSweepTest, BlockDecodesExactly)
{
    double sub_rate = GetParam();
    core::BlockDeviceParams params;
    params.sequencer.sub_rate = sub_rate;
    params.sequencer.ins_rate = sub_rate / 4.0;
    params.sequencer.del_rate = sub_rate / 4.0;
    params.reads_per_block_access = 1500;
    core::BlockDevice device(params, kFwd, kRev, 13);
    core::Bytes data = corpus::generateBytes(8 * 256, 33);
    device.writeFile(data);
    auto content = device.readBlock(3);
    ASSERT_TRUE(content.has_value()) << "sub_rate " << sub_rate;
    EXPECT_TRUE(std::equal(content->begin(), content->end(),
                           data.begin() + 3 * 256));
}

INSTANTIATE_TEST_SUITE_P(ErrorRates, NoiseSweepTest,
                         ::testing::Values(0.0, 0.002, 0.005, 0.01,
                                           0.02));

TEST(IntegrationTest, RangeReadMatchesBlockReads)
{
    core::BlockDeviceParams params;
    core::BlockDevice device(params, kFwd, kRev, 13);
    core::Bytes data = corpus::generateBytes(32 * 256, 11);
    device.writeFile(data);

    auto range = device.readRange(8, 15);
    ASSERT_EQ(range.size(), 8u);
    for (size_t i = 0; i < 8; ++i) {
        ASSERT_TRUE(range[i].has_value()) << "offset " << i;
        EXPECT_TRUE(std::equal(range[i]->begin(), range[i]->end(),
                               data.begin() + (8 + i) * 256));
    }
}

} // namespace
} // namespace dnastore
