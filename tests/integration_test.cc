/**
 * @file
 * End-to-end integration tests: a miniature version of the paper's
 * Section 6 experiment through the full pipeline, plus failure
 * injection (molecule dropout, heavy sequencing noise, misprimed
 * duplicate candidates). All inputs come from the shared
 * tests/support fixtures.
 */

#include <gtest/gtest.h>

#include "core/block_device.h"
#include "core/decoder.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"

namespace dnastore {
namespace {

TEST(IntegrationTest, MiniAliceEndToEnd)
{
    // 40 paragraph-blocks, three updated, precise single-block reads.
    core::Bytes book = test::corpusBlocks(40, 99);
    auto device = test::makeLoadedDevice(core::BlockDeviceParams{}, book);

    for (uint64_t block : {7u, 21u, 39u}) {
        core::UpdateOp op;
        op.delete_pos = 0;
        op.delete_len = 2;
        op.insert_pos = 0;
        op.insert_bytes = {'#', '!'};
        device->updateBlock(block, op);
    }

    // Clean blocks decode to the original bytes.
    EXPECT_TRUE(test::blockMatches(device->readBlock(12), book, 12));

    // Updated blocks decode to edited bytes in one round trip each.
    for (uint64_t block : {7u, 21u, 39u}) {
        size_t trips = device->costs().roundTrips();
        auto content = device->readBlock(block);
        ASSERT_TRUE(content.has_value()) << "block " << block;
        EXPECT_EQ((*content)[0], '#');
        EXPECT_EQ((*content)[1], '!');
        EXPECT_TRUE(std::equal(content->begin() + 2, content->end(),
                               book.begin() + block * 256 + 2));
        EXPECT_EQ(device->costs().roundTrips(), trips + 1);
    }
}

TEST(IntegrationTest, SurvivesMoleculeDropout)
{
    // RS(15,11) rides out up to 4 lost molecules per unit; 3%
    // synthesis dropout loses ~0-2 molecules per 15-molecule block.
    core::BlockDeviceParams params;
    params.synthesis.dropout_rate = 0.03;
    core::Bytes data = test::corpusBlocks(16, 5);
    auto device = test::makeLoadedDevice(params, data);

    test::RoundTrip result = test::roundTrip(*device, data);
    EXPECT_EQ(result.blocks, 16u);
    // At most one unlucky block.
    EXPECT_GE(result.exact, 15u) << result.first_mismatch;
}

TEST(IntegrationTest, SurvivesHeavySequencingNoise)
{
    core::BlockDeviceParams params;
    params.sequencer.sub_rate = 0.02;
    params.sequencer.ins_rate = 0.004;
    params.sequencer.del_rate = 0.004;
    params.reads_per_block_access = 2000;
    core::Bytes data = test::corpusBlocks(12, 6);
    auto device = test::makeLoadedDevice(params, data);

    EXPECT_TRUE(test::blockMatches(device->readBlock(5), data, 5));
}

TEST(IntegrationTest, ErrorCorrectionIsExercised)
{
    // With noise high enough, some units must need RS correction or
    // candidate retries, and still decode exactly.
    core::BlockDeviceParams params;
    params.sequencer.sub_rate = 0.015;
    params.coverage = 25.0;
    core::Bytes data = test::corpusBlocks(20, 8);
    auto device = test::makeLoadedDevice(params, data);

    test::RoundTrip result = test::roundTrip(*device, data);
    const core::DecodeStats &stats = device->lastStats();
    EXPECT_EQ(result.exact, 20u) << result.first_mismatch;
    EXPECT_GT(stats.reads_primer_matched, 0u);
}

TEST(IntegrationTest, TwoStagePcrProtocol)
{
    // Section 7.7.3: with many partitions in the tube, first isolate
    // the partition with the main primers, then run the elongated
    // primer. Composability of runPcr makes this a two-call test.
    const dna::Sequence &fwd = test::fwdPrimer();
    const dna::Sequence &rev = test::revPrimer();
    core::PartitionConfig config;
    core::Partition alice(config, fwd, rev, 13);
    core::Bytes data = test::corpusBlocks(30, 4);
    sim::SynthesisParams synthesis;
    sim::Pool pool = sim::synthesize(alice.encodeFile(data), synthesis);

    // A second partition shares the tube.
    core::PartitionConfig other_config;
    other_config.index_seed = 777;
    core::Partition other(other_config,
                          dna::Sequence("GGATCCGGATCCGGATCCGG"),
                          dna::Sequence("CAGTCAGTCAGTCAGTCAGT"), 2);
    sim::Pool other_pool = sim::synthesize(
        other.encodeFile(test::corpusBlocks(30, 3)), synthesis);
    pool.mixIn(other_pool);

    // Stage 1: main primers.
    sim::PcrParams stage1;
    stage1.cycles = 12;
    sim::Pool isolated = sim::runPcr(
        pool, {sim::PcrPrimer{fwd, 1.0}}, rev, stage1);
    double alice_fraction = isolated.massFraction(
        [](const sim::Species &s) { return s.info.file_id == 13; });
    EXPECT_GT(alice_fraction, 0.99);

    // Stage 2: elongated primer for block 17.
    sim::PcrParams stage2;
    stage2.cycles = 20;
    stage2.stringency = sim::touchdownSchedule(8, 20, 3.0);
    sim::Pool accessed = sim::runPcr(
        isolated, {sim::PcrPrimer{alice.blockPrimer(17), 1.0}}, rev,
        stage2);
    double target_fraction =
        accessed.massFraction([](const sim::Species &s) {
            return s.info.block == 17 && !s.info.misprimed;
        });
    EXPECT_GT(target_fraction, 0.4);
}

TEST(IntegrationTest, SurvivesSynthesisByproducts)
{
    // Real oligo pools contain a tail of single-base synthesis
    // defects; clustering must not merge them destructively and the
    // consensus/ECC stack must still decode exactly.
    core::BlockDeviceParams params;
    params.synthesis.byproduct_fraction = 0.15;
    params.synthesis.byproduct_variants = 2;
    core::Bytes data = test::corpusBlocks(10, 21);
    auto device = test::makeLoadedDevice(params, data);

    EXPECT_TRUE(test::blockMatches(device->readBlock(4), data, 4));
}

/** End-to-end property sweep: exact decode across noise levels. */
class NoiseSweepTest : public ::testing::TestWithParam<double>
{};

TEST_P(NoiseSweepTest, BlockDecodesExactly)
{
    double sub_rate = GetParam();
    core::BlockDeviceParams params;
    params.sequencer.sub_rate = sub_rate;
    params.sequencer.ins_rate = sub_rate / 4.0;
    params.sequencer.del_rate = sub_rate / 4.0;
    params.reads_per_block_access = 1500;
    core::Bytes data = test::corpusBlocks(8, 33);
    auto device = test::makeLoadedDevice(params, data);
    EXPECT_TRUE(test::blockMatches(device->readBlock(3), data, 3))
        << "sub_rate " << sub_rate;
}

INSTANTIATE_TEST_SUITE_P(ErrorRates, NoiseSweepTest,
                         ::testing::Values(0.0, 0.002, 0.005, 0.01,
                                           0.02));

TEST(IntegrationTest, RangeReadMatchesBlockReads)
{
    core::Bytes data = test::corpusBlocks(32, 11);
    auto device = test::makeLoadedDevice(core::BlockDeviceParams{}, data);

    auto range = device->readRange(8, 15);
    ASSERT_EQ(range.size(), 8u);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(test::blockMatches(range[i], data, 8 + i))
            << "offset " << i;
    }
}

} // namespace
} // namespace dnastore
