/**
 * @file
 * Unit tests for base-4 address digit conversion.
 */

#include <gtest/gtest.h>

#include "codec/base4.h"
#include "common/error.h"

namespace dnastore::codec {
namespace {

TEST(Base4Test, KnownValues)
{
    EXPECT_EQ(toBase4(0, 3), (Digits{0, 0, 0}));
    EXPECT_EQ(toBase4(1, 3), (Digits{0, 0, 1}));
    EXPECT_EQ(toBase4(4, 3), (Digits{0, 1, 0}));
    EXPECT_EQ(toBase4(63, 3), (Digits{3, 3, 3}));
}

TEST(Base4Test, RoundTrip)
{
    for (uint64_t value = 0; value < 1024; ++value)
        EXPECT_EQ(fromBase4(toBase4(value, 5)), value);
}

TEST(Base4Test, OverflowRejected)
{
    EXPECT_THROW(toBase4(64, 3), dnastore::FatalError);
    EXPECT_NO_THROW(toBase4(63, 3));
}

TEST(Base4Test, DigitsFor)
{
    EXPECT_EQ(digitsFor(0), 0u);
    EXPECT_EQ(digitsFor(1), 0u);
    EXPECT_EQ(digitsFor(2), 1u);
    EXPECT_EQ(digitsFor(4), 1u);
    EXPECT_EQ(digitsFor(5), 2u);
    EXPECT_EQ(digitsFor(1024), 5u);
    EXPECT_EQ(digitsFor(1025), 6u);
}

TEST(Base4Test, EmptyDigitsIsZero)
{
    EXPECT_EQ(fromBase4({}), 0u);
}

} // namespace
} // namespace dnastore::codec
