/**
 * @file
 * Lock-rank registry and annotated-wrapper tests (common/sync.h).
 *
 * The death tests prove that a rank inversion — the defect class
 * behind the PR 6 tenant-instrument lock-order bug — aborts
 * deterministically with a diagnostic naming both mutexes and the
 * full held stack. They run only where the checker is compiled in
 * (builds without NDEBUG); the build-type test below makes a debug
 * build with the checker silently disabled FAIL rather than skip, so
 * the checker cannot be turned off without tripping CI's Debug legs.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/sync.h"
#include "core/decode_service.h"
#include "telemetry/metrics.h"

namespace dnastore {
namespace {

using core::DecodeOutcome;
using core::DecodeRequest;
using core::DecodeService;
using core::DecodeServiceParams;

bool
checksOn()
{
    return sync::rankChecksEnabled();
}

TEST(SyncTest, RankCheckerMatchesBuildType)
{
#ifdef NDEBUG
    EXPECT_FALSE(sync::rankChecksEnabled());
#else
    // A debug build whose rank checker was compiled out would let the
    // death tests below skip silently; fail the build instead.
    ASSERT_TRUE(sync::rankChecksEnabled())
        << "rank checker disabled in a !NDEBUG build — the "
           "deliberate-inversion death tests would be vacuous";
#endif
}

TEST(SyncTest, DescendingRankAcquisitionRunsClean)
{
    sync::Mutex registry(sync::Rank::kTelemetryRegistry, "reg");
    sync::Mutex service(sync::Rank::kServiceState, "svc");
    sync::Mutex pool(sync::Rank::kPoolJobs, "pool");
    {
        sync::MutexLock l1(registry);
        sync::MutexLock l2(service);
        sync::MutexLock l3(pool);
        if (checksOn()) {
            std::vector<sync::Rank> held = sync::heldRanksForTest();
            ASSERT_EQ(held.size(), 3u);
            EXPECT_EQ(held[0], sync::Rank::kTelemetryRegistry);
            EXPECT_EQ(held[1], sync::Rank::kServiceState);
            EXPECT_EQ(held[2], sync::Rank::kPoolJobs);
        }
    }
    EXPECT_TRUE(sync::heldRanksForTest().empty());
}

TEST(SyncTest, UnlockRelockMaintainsHeldStack)
{
    sync::Mutex service(sync::Rank::kServiceState, "svc");
    sync::Mutex registry(sync::Rank::kTelemetryRegistry, "reg");
    sync::MutexLock lock(service);
    // The drop/relock idiom from tenantStateLocked: release the
    // service mutex, take (and release) the higher-ranked registry
    // legally, reacquire the service mutex.
    lock.unlock();
    EXPECT_TRUE(sync::heldRanksForTest().empty());
    {
        sync::MutexLock reg_lock(registry);
    }
    lock.lock();
    if (checksOn()) {
        EXPECT_EQ(sync::heldRanksForTest().size(), 1u);
    }
}

TEST(SyncTest, RanksAreIndependentAcrossThreads)
{
    // Held ranks are thread-local: another thread may acquire a
    // higher rank while this thread holds a lower one — only
    // same-thread nesting is ordered.
    sync::Mutex pool(sync::Rank::kPoolJobs, "pool");
    sync::Mutex registry(sync::Rank::kTelemetryRegistry, "reg");
    sync::MutexLock low(pool);
    std::thread other([&] {
        sync::MutexLock high(registry);
        EXPECT_EQ(sync::heldRanksForTest().size(),
                  checksOn() ? 1u : 0u);
    });
    other.join();
}

TEST(SyncTest, CondVarWaitWakesAndKeepsMutexHeld)
{
    sync::Mutex mutex(sync::Rank::kLeaf, "cv_state");
    sync::CondVar cv;
    bool ready = false;
    std::thread producer([&] {
        sync::MutexLock lock(mutex);
        ready = true;
        cv.notify_one();
    });
    {
        sync::MutexLock lock(mutex);
        while (!ready)
            cv.wait(lock);
        EXPECT_TRUE(ready);
        if (checksOn()) {
            EXPECT_EQ(sync::heldRanksForTest().size(), 1u);
        }
    }
    producer.join();
}

TEST(SyncDeathTest, OutOfOrderAcquireAbortsNamingBothMutexes)
{
    if (!checksOn())
        GTEST_SKIP() << "rank checker compiled out (NDEBUG build)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sync::Mutex pool(sync::Rank::kPoolJobs, "pool");
    sync::Mutex service(sync::Rank::kServiceState, "service");
    EXPECT_DEATH(
        {
            sync::MutexLock l1(pool);
            sync::MutexLock l2(service);
        },
        "lock-rank violation \\(out-of-order acquire\\): acquiring "
        "'service'.*while holding 'pool'");
}

TEST(SyncDeathTest, AbortMessageCarriesFullHeldStack)
{
    if (!checksOn())
        GTEST_SKIP() << "rank checker compiled out (NDEBUG build)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sync::Mutex registry(sync::Rank::kTelemetryRegistry, "reg");
    sync::Mutex service(sync::Rank::kServiceState, "svc");
    sync::Mutex pool(sync::Rank::kPoolJobs, "pool");
    sync::Mutex stream(sync::Rank::kStreamState, "stream");
    EXPECT_DEATH(
        {
            sync::MutexLock l1(registry);
            sync::MutexLock l2(service);
            sync::MutexLock l3(pool);
            sync::MutexLock l4(stream);  // above pool: inversion
        },
        "held stack \\(oldest first\\): \\['reg' "
        "\\(TelemetryRegistry\\), 'svc' \\(ServiceState\\), 'pool' "
        "\\(PoolJobs\\)\\]");
}

TEST(SyncDeathTest, ReentrantAcquireAborts)
{
    if (!checksOn())
        GTEST_SKIP() << "rank checker compiled out (NDEBUG build)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sync::Mutex mutex(sync::Rank::kLeaf, "self");
    EXPECT_DEATH(
        {
            sync::MutexLock l1(mutex);
            sync::MutexLock l2(mutex);
        },
        "lock-rank violation \\(reentrant acquire\\): acquiring "
        "'self'.*while holding 'self'");
}

TEST(SyncDeathTest, SameRankAcquireAborts)
{
    if (!checksOn())
        GTEST_SKIP() << "rank checker compiled out (NDEBUG build)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sync::Mutex first(sync::Rank::kLeaf, "leaf_a");
    sync::Mutex second(sync::Rank::kLeaf, "leaf_b");
    EXPECT_DEATH(
        {
            sync::MutexLock l1(first);
            sync::MutexLock l2(second);
        },
        "lock-rank violation \\(same-rank acquire\\): acquiring "
        "'leaf_b'.*while holding 'leaf_a'");
}

/**
 * The PR 6 regression, re-derived: tenant-instrument creation used to
 * reach into the telemetry registry while holding the service mutex.
 * The registry ranks ABOVE the service, so taking its public API path
 * (counter() acquires the registry mutex) under a service-ranked lock
 * must fire the rank checker — reintroducing the inversion can never
 * again be a silent TSan lottery.
 */
TEST(SyncDeathTest, TelemetryRegistryUnderServiceMutexAborts)
{
    if (!checksOn())
        GTEST_SKIP() << "rank checker compiled out (NDEBUG build)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    telemetry::MetricsRegistry registry;
    registry.counter("decode_service.requests_submitted");
    sync::Mutex service_mutex(sync::Rank::kServiceState,
                              "decode_service");
    EXPECT_DEATH(
        {
            sync::MutexLock service_lock(service_mutex);
            // The historical call: first sighting of a runtime tenant
            // creating its instruments with the service lock held.
            registry.counter(
                "decode_service.tenant.9.requests_admitted");
        },
        "lock-rank violation \\(out-of-order acquire\\): acquiring "
        "'metrics_registry'.*while holding 'decode_service'");
}

/**
 * The fixed path, proven under the live checker: first-sighting
 * tenant instrument creation (which drops the service lock around
 * the registry work) runs to completion with a concurrent exporter
 * hammering the registry — no abort, no deadlock. In a Debug build
 * this test is the positive half of the PR 6 pin.
 */
TEST(SyncTest, RuntimeTenantInstrumentCreationObeysRankOrder)
{
    telemetry::MetricsRegistry registry;
    DecodeServiceParams params;
    params.threads = 2;
    params.metrics = &registry;
    DecodeService service(params);

    std::thread exporter([&] {
        for (int i = 0; i < 40; ++i)
            (void)registry.exportText();
    });
    // Each first-of-tenant submission walks tenantStateLocked's
    // drop-create-relock path. The null decoder surfaces as
    // FatalError through the future; admission is what's under test.
    for (core::TenantId tenant = 1; tenant <= 8; ++tenant) {
        std::vector<DecodeRequest> batch(1);
        batch[0].tenant = tenant;
        auto futures = service.submitBatch(std::move(batch));
        EXPECT_THROW(futures[0].get(), FatalError);
    }
    exporter.join();
    service.shutdown();
    const auto snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("decode_service.requests_submitted"),
              8u);
    EXPECT_EQ(
        snap.counters.at(
            "decode_service.tenant.3.requests_admitted"),
        1u);
}

} // namespace
} // namespace dnastore
