/**
 * @file
 * Tests for the concentration-matching mixing protocols
 * (Sections 5.5 and 6.4.2).
 */

#include <gtest/gtest.h>

#include "sim/mixing.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"

namespace dnastore::sim {
namespace {

const dna::Sequence &kFwd = test::fwdPrimer();
const dna::Sequence &kRev = test::revPrimer();

/** Build a synthetic data pool (version 0) of @p n molecules. */
std::vector<DesignedMolecule>
makeOrder(size_t n, uint8_t version, uint64_t tag)
{
    std::vector<DesignedMolecule> order;
    dna::Sequence rev_site = kRev.reverseComplement();
    for (size_t i = 0; i < n; ++i) {
        std::string payload;
        uint64_t value = tag * 1000003 + i;
        for (int k = 0; k < 16; ++k)
            payload += "ACGT"[(value >> (2 * k)) & 3];
        DesignedMolecule molecule;
        molecule.seq = kFwd + dna::Sequence(payload) + rev_site;
        molecule.info.block = i;
        molecule.info.version = version;
        order.push_back(std::move(molecule));
    }
    return order;
}

class MixingTest : public ::testing::Test
{
  protected:
    Pool data_pool_;
    Pool update_pool_;

    void
    SetUp() override
    {
        SynthesisParams twist;
        twist.scale = 1e6;
        twist.seed = 1;
        data_pool_ = synthesize(makeOrder(200, 0, 1), twist);

        // IDT pool: 50000x more concentrated (Section 6.4.1).
        SynthesisParams idt;
        idt.scale = 5e10;
        idt.seed = 2;
        update_pool_ = synthesize(makeOrder(9, 1, 2), idt);
    }
};

TEST_F(MixingTest, InitialImbalanceIsHuge)
{
    double per_data = data_pool_.totalMass() / 200.0;
    double per_update = update_pool_.totalMass() / 9.0;
    EXPECT_GT(per_update / per_data, 1e4);
}

TEST_F(MixingTest, MeasureThenAmplifyMatchesConcentrations)
{
    PcrParams pcr;
    MixingParams params;
    MixResult result = measureThenAmplify(
        data_pool_, update_pool_, {{kFwd, 1.0}}, kRev, pcr, params);
    // Target ratio is 1.0; the paper achieved "remarkable precision"
    // with basic tools, i.e. well within 2x.
    EXPECT_GT(result.achieved_ratio, 0.5);
    EXPECT_LT(result.achieved_ratio, 2.0);
    EXPECT_LT(result.dilution, 1e-3);
}

TEST_F(MixingTest, AmplifyThenMeasureMatchesConcentrations)
{
    PcrParams pcr;
    MixingParams params;
    MixResult result = amplifyThenMeasure(
        data_pool_, update_pool_, {{kFwd, 1.0}}, kRev, pcr, params);
    EXPECT_GT(result.achieved_ratio, 0.5);
    EXPECT_LT(result.achieved_ratio, 2.0);
}

TEST_F(MixingTest, MeasurementErrorDegradesGracefully)
{
    PcrParams pcr;
    MixingParams params;
    params.measurement_error = 0.2;
    MixResult result = measureThenAmplify(
        data_pool_, update_pool_, {{kFwd, 1.0}}, kRev, pcr, params);
    EXPECT_GT(result.achieved_ratio, 0.2);
    EXPECT_LT(result.achieved_ratio, 5.0);
}

TEST_F(MixingTest, PerMoleculeRatioHelper)
{
    Pool pool;
    SpeciesInfo data_info, update_info;
    update_info.version = 1;
    pool.add(dna::Sequence("AAAA"), data_info, 10.0);
    pool.add(dna::Sequence("CCCC"), update_info, 20.0);
    EXPECT_DOUBLE_EQ(perMoleculeRatio(pool), 2.0);
}

TEST_F(MixingTest, RatioZeroWithoutUpdates)
{
    Pool pool;
    SpeciesInfo data_info;
    pool.add(dna::Sequence("AAAA"), data_info, 10.0);
    EXPECT_DOUBLE_EQ(perMoleculeRatio(pool), 0.0);
}

} // namespace
} // namespace dnastore::sim
