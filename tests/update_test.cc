/**
 * @file
 * Tests for the update-patch format and application semantics.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/update.h"

namespace dnastore::core {
namespace {

Bytes
bytesOf(const std::string &text)
{
    return Bytes(text.begin(), text.end());
}

std::string
textOf(const Bytes &bytes)
{
    std::string s(bytes.begin(), bytes.end());
    return s.substr(0, s.find('\0'));
}

TEST(UpdateOpTest, DeleteThenInsert)
{
    // "hello world" -> delete "world" -> insert "there" at 6.
    UpdateOp op;
    op.delete_pos = 6;
    op.delete_len = 5;
    op.insert_pos = 6;
    op.insert_bytes = bytesOf("there");
    Bytes result = op.apply(bytesOf("hello world"), 32);
    EXPECT_EQ(textOf(result), "hello there");
    EXPECT_EQ(result.size(), 32u);
}

TEST(UpdateOpTest, PureInsert)
{
    UpdateOp op;
    op.insert_pos = 5;
    op.insert_bytes = bytesOf(",");
    EXPECT_EQ(textOf(op.apply(bytesOf("hello world"), 32)),
              "hello, world");
}

TEST(UpdateOpTest, PureDelete)
{
    UpdateOp op;
    op.delete_pos = 5;
    op.delete_len = 6;
    EXPECT_EQ(textOf(op.apply(bytesOf("hello world"), 32)), "hello");
}

TEST(UpdateOpTest, OutOfRangePositionsClamp)
{
    UpdateOp op;
    op.delete_pos = 200;
    op.delete_len = 50;
    op.insert_pos = 200;
    op.insert_bytes = bytesOf("!");
    Bytes result = op.apply(bytesOf("abc"), 8);
    EXPECT_EQ(textOf(result), "abc!");
}

TEST(UpdateOpTest, ResultClampedToBlockSize)
{
    UpdateOp op;
    op.insert_pos = 0;
    op.insert_bytes = bytesOf("0123456789");
    Bytes result = op.apply(bytesOf("abc"), 8);
    EXPECT_EQ(result.size(), 8u);
    EXPECT_EQ(std::string(result.begin(), result.end()), "01234567");
}

TEST(UpdateRecordTest, InlineRoundTrip)
{
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kInline;
    record.op.delete_pos = 10;
    record.op.delete_len = 4;
    record.op.insert_pos = 12;
    record.op.insert_bytes = bytesOf("patch-data");

    Bytes serialized = record.serialize(256);
    EXPECT_EQ(serialized.size(), 256u);
    auto parsed = UpdateRecord::deserialize(serialized);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, UpdateRecord::Kind::kInline);
    EXPECT_EQ(parsed->op.delete_pos, 10);
    EXPECT_EQ(parsed->op.delete_len, 4);
    EXPECT_EQ(parsed->op.insert_pos, 12);
    EXPECT_EQ(parsed->op.insert_bytes, bytesOf("patch-data"));
}

TEST(UpdateRecordTest, OverflowPointerRoundTrip)
{
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kOverflowPointer;
    record.overflow_block = 0x0123456789abcdefULL;
    auto parsed = UpdateRecord::deserialize(record.serialize(256));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, UpdateRecord::Kind::kOverflowPointer);
    EXPECT_EQ(parsed->overflow_block, 0x0123456789abcdefULL);
}

TEST(UpdateRecordTest, ReplaceRoundTrip)
{
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kReplace;
    record.replacement = bytesOf("entirely new block contents");
    auto parsed = UpdateRecord::deserialize(record.serialize(256));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, UpdateRecord::Kind::kReplace);
    EXPECT_EQ(parsed->replacement,
              bytesOf("entirely new block contents"));
}

TEST(UpdateRecordTest, GarbageRejected)
{
    EXPECT_FALSE(UpdateRecord::deserialize({}).has_value());
    EXPECT_FALSE(UpdateRecord::deserialize({0xff, 1, 2}).has_value());
    EXPECT_FALSE(UpdateRecord::deserialize({1, 2}).has_value());
    // Inline whose insert_len runs past the payload.
    EXPECT_FALSE(
        UpdateRecord::deserialize({1, 0, 0, 0, 0xff, 0x00})
            .has_value());
}

TEST(UpdateRecordTest, TooLargeInsertRejected)
{
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kInline;
    record.op.insert_bytes.resize(300);
    EXPECT_THROW(record.serialize(256), dnastore::FatalError);
}

TEST(UpdateRecordTest, PaperUpdateSemantics)
{
    // Section 6.4: first byte = deletion start, second = deletion
    // count, third = insertion position, rest = bytes to insert.
    // Model an edit of one paragraph of a 256-byte block.
    Bytes block(256, ' ');
    std::string paragraph = "Alice was beginning to get very tired.";
    std::copy(paragraph.begin(), paragraph.end(), block.begin());

    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kInline;
    record.op.delete_pos = 32;
    record.op.delete_len = 5;
    record.op.insert_pos = 32;
    record.op.insert_bytes = bytesOf("sleepy");

    Bytes serialized = record.serialize(256);
    auto parsed = UpdateRecord::deserialize(serialized);
    ASSERT_TRUE(parsed.has_value());
    Bytes updated = parsed->op.apply(block, 256);
    std::string text(updated.begin(), updated.end());
    EXPECT_EQ(text.substr(0, 39),
              "Alice was beginning to get very sleepy.");
}

} // namespace
} // namespace dnastore::core
