/**
 * @file
 * Behavioural tests for the PCR model: selective amplification,
 * mispriming with prefix overwrite, touchdown stringency, multiplex
 * reactions, and leftover-primer artifacts.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "sim/pcr.h"
#include "support/fixtures.h"

namespace dnastore::sim {
namespace {

const dna::Sequence &kRev = test::revPrimer();

/** Molecule: fwd_primer-like prefix + payload + reverse site. */
dna::Sequence
makeStrand(const dna::Sequence &prefix, const std::string &payload)
{
    return prefix + dna::Sequence(payload) + kRev.reverseComplement();
}

SpeciesInfo
info(uint64_t block)
{
    SpeciesInfo result;
    result.block = block;
    return result;
}

TEST(PcrTest, PerfectMatchAmplifiesExponentially)
{
    dna::Sequence primer("ACGTACGTACGTACGTACGT");
    Pool pool;
    pool.add(makeStrand(primer, "TTTTGGGGCCCCAAAA"), info(0), 1.0);

    PcrParams params;
    params.cycles = 10;
    params.efficiency_max = 1.0;
    Pool out = runPcr(pool, {{primer, 1.0}}, kRev, params);
    ASSERT_EQ(out.speciesCount(), 1u);
    EXPECT_NEAR(out.totalMass(), 1024.0, 1.0);  // 2^10
}

TEST(PcrTest, NonMatchingStrandNotAmplified)
{
    dna::Sequence primer("ACGTACGTACGTACGTACGT");
    dna::Sequence other("GGATCCGGATCCGGATCCGG");
    Pool pool;
    pool.add(makeStrand(other, "TTTTGGGGCCCCAAAA"), info(1), 1.0);

    PcrParams params;
    params.cycles = 10;
    Pool out = runPcr(pool, {{primer, 1.0}}, kRev, params);
    EXPECT_NEAR(out.totalMass(), 1.0, 1e-9);
}

TEST(PcrTest, WrongReverseSiteNotAmplified)
{
    dna::Sequence primer("ACGTACGTACGTACGTACGT");
    Pool pool;
    dna::Sequence strand =
        primer + dna::Sequence("TTTTGGGGCCCCAAAA") +
        dna::Sequence("AAAAAAAAAAAAAAAAAAAA");
    pool.add(strand, info(0), 1.0);

    PcrParams params;
    params.cycles = 10;
    Pool out = runPcr(pool, {{primer, 1.0}}, kRev, params);
    EXPECT_NEAR(out.totalMass(), 1.0, 1e-9);
}

TEST(PcrTest, SelectivityBetweenSimilarPrefixes)
{
    // Two strands whose prefixes differ by 2 internal bases: the
    // exact target must dominate after the reaction.
    dna::Sequence target("ACGTACGTACGTACGTACGT");
    dna::Sequence neighbor("ACGTACTTACGTACCTACGT");
    Pool pool;
    pool.add(makeStrand(target, "TTTTGGGGCCCCAAAA"), info(0), 1.0);
    pool.add(makeStrand(neighbor, "GGGGTTTTCCCCAAAA"), info(1), 1.0);

    PcrParams params;
    params.cycles = 18;
    Pool out = runPcr(pool, {{target, 1.0}}, kRev, params);
    double target_mass = 0.0, neighbor_mass = 0.0;
    for (const Species &s : out.species()) {
        if (s.info.block == 0)
            target_mass += s.mass;
        else
            neighbor_mass += s.mass;
    }
    EXPECT_GT(target_mass, neighbor_mass);
    EXPECT_GT(neighbor_mass, 1.0);  // but mispriming did happen
}

TEST(PcrTest, MisprimingOverwritesPrefix)
{
    // Section 8.1: misprimed amplicons carry the primer's sequence
    // but the template's payload.
    dna::Sequence target("ACGTACGTACGTACGTACGT");
    dna::Sequence neighbor("ACGTACTTACGTACCTACGT");
    Pool pool;
    pool.add(makeStrand(neighbor, "GGGGTTTTCCCCAAAA"), info(7), 1.0);

    PcrParams params;
    params.cycles = 8;
    PcrStats stats;
    Pool out = runPcr(pool, {{target, 1.0}}, kRev, params, &stats);
    EXPECT_GT(stats.misprimed_species, 0u);

    bool found_overwritten = false;
    for (const Species &s : out.species()) {
        if (s.info.misprimed) {
            EXPECT_TRUE(s.seq.startsWith(target));
            EXPECT_EQ(s.info.block, 7u);  // payload provenance kept
            found_overwritten = true;
        }
    }
    EXPECT_TRUE(found_overwritten);
}

TEST(PcrTest, TouchdownImprovesSelectivity)
{
    dna::Sequence target("ACGTACGTACGTACGTACGT");
    dna::Sequence neighbor("ACGTACTTACGTACCTACGT");

    auto run = [&](const std::vector<double> &schedule) {
        Pool pool;
        pool.add(makeStrand(target, "TTTTGGGGCCCCAAAA"), info(0), 1.0);
        pool.add(makeStrand(neighbor, "GGGGTTTTCCCCAAAA"), info(1),
                 1.0);
        PcrParams params;
        params.cycles = 20;
        params.stringency = schedule;
        Pool out = runPcr(pool, {{target, 1.0}}, kRev, params);
        double target_mass = 0.0, neighbor_mass = 0.0;
        for (const Species &s : out.species()) {
            (s.info.block == 0 ? target_mass : neighbor_mass) += s.mass;
        }
        return target_mass / neighbor_mass;
    };

    double plain = run({});
    double touchdown = run(touchdownSchedule(10, 20, 3.0));
    EXPECT_GT(touchdown, plain);
}

TEST(PcrTest, TouchdownScheduleShape)
{
    std::vector<double> schedule = touchdownSchedule(10, 28, 3.0);
    ASSERT_EQ(schedule.size(), 28u);
    EXPECT_DOUBLE_EQ(schedule[0], 3.0);
    EXPECT_DOUBLE_EQ(schedule[9], 1.0);
    EXPECT_DOUBLE_EQ(schedule[27], 1.0);
    EXPECT_GT(schedule[3], schedule[7]);
}

TEST(PcrTest, MultiplexAmplifiesAllTargets)
{
    dna::Sequence p1("ACGTACGTACGTACGTACGT");
    dna::Sequence p2("GGATCCGGATCCGGATCCGG");
    dna::Sequence p3("TCTCTAGAGATTGCAAGCAC");
    Pool pool;
    pool.add(makeStrand(p1, "AAAATTTTGGGGCCCC"), info(1), 1.0);
    pool.add(makeStrand(p2, "CCCCGGGGTTTTAAAA"), info(2), 1.0);
    pool.add(makeStrand(p3, "GGGGCCCCAAAATTTT"), info(3), 1.0);

    PcrParams params;
    params.cycles = 20;
    Pool out = runPcr(
        pool, {{p1, 1.0 / 3}, {p2, 1.0 / 3}, {p3, 1.0 / 3}}, kRev,
        params);
    for (uint64_t block : {1u, 2u, 3u}) {
        double mass = 0.0;
        for (const Species &s : out.species()) {
            if (s.info.block == block)
                mass += s.mass;
        }
        EXPECT_GT(mass, 100.0) << "block " << block;
    }
}

TEST(PcrTest, LeftoverPrimerAmplifiesEverythingWeakly)
{
    // A low-concentration main primer (carryover from a previous
    // reaction) amplifies all partition strands, producing the
    // background population of Figure 9b.
    dna::Sequence main("ACGTACGTACGTACGTACGT");
    Pool pool;
    for (int i = 0; i < 8; ++i) {
        std::string payload = "AAAATTTTGGGGCCCC";
        payload[0] = "ACGT"[i % 4];
        payload[1] = "ACGT"[(i / 4) % 4];
        pool.add(makeStrand(main, payload), info(100 + i), 1.0);
    }

    PcrParams params;
    params.cycles = 15;
    Pool out =
        runPcr(pool, {{main, 0.05}}, kRev, params);
    // Everything grows, far less than a full-strength reaction.
    double full = std::pow(1.95, 15);
    for (const Species &s : out.species()) {
        EXPECT_GT(s.mass, 1.5);
        EXPECT_LT(s.mass, full / 10.0);
    }
}

TEST(PcrTest, GainReported)
{
    dna::Sequence primer("ACGTACGTACGTACGTACGT");
    Pool pool;
    pool.add(makeStrand(primer, "TTTTGGGGCCCCAAAA"), info(0), 2.0);
    PcrParams params;
    params.cycles = 5;
    params.efficiency_max = 1.0;
    PcrStats stats;
    runPcr(pool, {{primer, 1.0}}, kRev, params, &stats);
    EXPECT_NEAR(stats.gain, 32.0, 0.5);
}

TEST(PcrTest, EmptyPrimerListThrows)
{
    Pool pool;
    pool.add(dna::Sequence("ACGT"), info(0), 1.0);
    PcrParams params;
    EXPECT_THROW(runPcr(pool, {}, kRev, params),
                 dnastore::FatalError);
}

} // namespace
} // namespace dnastore::sim
